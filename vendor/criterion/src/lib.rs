//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the criterion API this workspace's benches
//! use — groups, `bench_function`, `iter`/`iter_batched`, throughput,
//! `criterion_group!`/`criterion_main!` — with plain `std::time::Instant`
//! timing. No statistical analysis, no HTML reports, no CLI filtering:
//! each benchmark runs a warm-up then iterates until the measurement
//! time or the sample cap is hit, and prints mean ns/iter (plus
//! throughput when declared).
//!
//! Unlike real criterion, finished measurements are also pushed into a
//! process-global registry ([`take_results`]) so a custom `main` can
//! export machine-readable baselines (see `crates/bench/benches/kernel.rs`,
//! which writes `BENCH_kernel.json`).

#![warn(missing_docs)]

use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup; the stub times every routine call
/// individually, so the variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// Fresh input every iteration.
    PerIteration,
}

/// Units for derived throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The routine processes this many logical elements per iteration.
    Elements(u64),
    /// The routine processes this many bytes per iteration.
    Bytes(u64),
}

/// One finished benchmark measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Full benchmark id (`group/function`).
    pub id: String,
    /// Iterations measured.
    pub iters: u64,
    /// Mean wall-clock nanoseconds per iteration.
    pub mean_ns: f64,
    /// Declared per-iteration workload, if any.
    pub throughput: Option<Throughput>,
}

impl BenchResult {
    /// Derived rate (elements- or bytes-per-second), if throughput was declared.
    pub fn rate_per_sec(&self) -> Option<f64> {
        let units = match self.throughput? {
            Throughput::Elements(n) | Throughput::Bytes(n) => n,
        };
        if self.mean_ns <= 0.0 {
            return None;
        }
        Some(units as f64 * 1e9 / self.mean_ns)
    }
}

static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

/// Drains every measurement recorded so far in this process.
pub fn take_results() -> Vec<BenchResult> {
    std::mem::take(&mut RESULTS.lock().unwrap())
}

const DEFAULT_SAMPLES: u64 = 100;

/// Top-level benchmark driver; mirrors criterion's builder surface.
#[derive(Debug, Clone)]
pub struct Criterion {
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Sets the per-benchmark measurement budget.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the per-benchmark warm-up budget.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(
            id.into(),
            self.measurement_time,
            self.warm_up_time,
            DEFAULT_SAMPLES,
            None,
            f,
        );
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: DEFAULT_SAMPLES,
            throughput: None,
        }
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Caps the number of measured iterations (use small values for
    /// expensive benchmarks).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = (n as u64).max(1);
        self
    }

    /// Declares the per-iteration workload so a rate is reported.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(
            format!("{}/{}", self.name, id.into()),
            self.criterion.measurement_time,
            self.criterion.warm_up_time,
            self.sample_size,
            self.throughput,
            f,
        );
        self
    }

    /// Ends the group (no-op beyond matching criterion's API).
    pub fn finish(self) {}
}

/// Timing handle passed to each benchmark closure.
pub struct Bencher {
    measurement_time: Duration,
    warm_up_time: Duration,
    max_samples: u64,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine` repeatedly until the measurement budget or sample
    /// cap is reached.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warm_start = Instant::now();
        loop {
            black_box(routine());
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        let start = Instant::now();
        let mut iters = 0u64;
        let elapsed = loop {
            black_box(routine());
            iters += 1;
            let elapsed = start.elapsed();
            if elapsed >= self.measurement_time || iters >= self.max_samples {
                break elapsed;
            }
        };
        self.total += elapsed;
        self.iters += iters;
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is excluded
    /// from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup())); // warm-up: one untimed pass
        let wall = Instant::now();
        let mut timed = Duration::ZERO;
        let mut iters = 0u64;
        loop {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            timed += t.elapsed();
            iters += 1;
            if timed >= self.measurement_time
                || iters >= self.max_samples
                || wall.elapsed() >= self.measurement_time.saturating_mul(3)
            {
                break;
            }
        }
        self.total += timed;
        self.iters += iters;
    }
}

fn run_bench<F>(
    id: String,
    measurement_time: Duration,
    warm_up_time: Duration,
    max_samples: u64,
    throughput: Option<Throughput>,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        measurement_time,
        warm_up_time,
        max_samples,
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    let mean_ns = if b.iters > 0 {
        b.total.as_nanos() as f64 / b.iters as f64
    } else {
        0.0
    };
    let result = BenchResult {
        id,
        iters: b.iters,
        mean_ns,
        throughput,
    };
    match result.rate_per_sec() {
        Some(rate) => println!(
            "bench {:<44} {:>14.0} ns/iter ({} iters, {:.3e}/s)",
            result.id, result.mean_ns, result.iters, rate
        ),
        None => println!(
            "bench {:<44} {:>14.0} ns/iter ({} iters)",
            result.id, result.mean_ns, result.iters
        ),
    }
    RESULTS.lock().unwrap().push(result);
}

/// Declares a benchmark group function, criterion-style. Both the
/// `name = ...; config = ...; targets = ...` form and the positional form
/// are supported.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares `fn main()` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(1))
    }

    #[test]
    fn groups_record_results_with_throughput() {
        let mut c = quick();
        {
            let mut g = c.benchmark_group("demo");
            g.throughput(Throughput::Elements(1000));
            g.sample_size(10);
            g.bench_function("sum", |b| b.iter(|| (0..1000u64).sum::<u64>()));
            g.bench_function("batched", |b| {
                b.iter_batched(
                    || vec![1u64; 1000],
                    |v| v.into_iter().sum::<u64>(),
                    BatchSize::SmallInput,
                )
            });
            g.finish();
        }
        c.bench_function("ungrouped", |b| b.iter(|| 2 + 2));

        let results = take_results();
        let ids: Vec<&str> = results.iter().map(|r| r.id.as_str()).collect();
        assert!(ids.contains(&"demo/sum"));
        assert!(ids.contains(&"demo/batched"));
        assert!(ids.contains(&"ungrouped"));
        for r in &results {
            assert!(r.iters > 0, "{} measured no iterations", r.id);
            assert!(r.mean_ns >= 0.0);
        }
        let sum = results.iter().find(|r| r.id == "demo/sum").unwrap();
        assert!(sum.iters <= 10);
        assert!(sum.rate_per_sec().unwrap() > 0.0);
    }

    criterion_group!(positional_form, noop_bench);
    criterion_group! {
        name = named_form;
        config = crate::Criterion::default()
            .measurement_time(std::time::Duration::from_millis(5))
            .warm_up_time(std::time::Duration::from_millis(1));
        targets = noop_bench
    }

    fn noop_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("noop");
        g.sample_size(2);
        g.bench_function("nothing", |b| b.iter(|| ()));
        g.finish();
    }

    #[test]
    fn macro_forms_compile_and_run() {
        positional_form();
        named_form();
        assert!(take_results().iter().any(|r| r.id == "noop/nothing"));
    }
}
