//! Offline stand-in for `proptest`.
//!
//! Supports the subset this workspace's property tests use: the
//! [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`, integer-range
//! strategies, [`collection::vec`] / [`collection::hash_set`], tuple
//! strategies, and [`any`]. Inputs are generated from a deterministic
//! per-test seed, so failures reproduce exactly; there is **no shrinking**
//! — a failure reports the case number and the assertion message instead
//! of a minimized input.

#![warn(missing_docs)]

use std::collections::HashSet;
use std::hash::Hash;

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, Arbitrary, Strategy};
}

/// Number of random cases each property runs.
pub const CASES: u32 = 64;

/// The random source handed to strategies.
pub type TestRng = SmallRng;

/// A failed property case.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: String) -> Self {
        TestCaseError(msg)
    }
}

/// Generates values of an output type from random bits.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident: $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i32, i64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over a type's whole domain.
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(core::marker::PhantomData<T>);

/// The whole-domain strategy for `T` (`any::<u8>()` etc.).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(core::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::*;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// Strategy for `HashSet<S::Value>` with a target size drawn from `size`.
    pub fn hash_set<S: Strategy>(element: S, size: core::ops::Range<usize>) -> HashSetStrategy<S> {
        HashSetStrategy { element, size }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// See [`hash_set`].
    #[derive(Debug, Clone)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for HashSetStrategy<S>
    where
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let target = rng.gen_range(self.size.clone());
            let mut out = HashSet::new();
            // Bounded attempts: a small value domain may not be able to
            // fill the target size; the set is still valid, just smaller.
            for _ in 0..target.saturating_mul(16).max(16) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }
}

/// Runs `body` for [`CASES`] deterministic cases; panics on the first
/// failure with the test name, case index, and seed.
pub fn run_cases<F>(name: &str, mut body: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    // Stable seed per test name: FNV-1a over the name.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    for case in 0..CASES {
        let seed = h.wrapping_add(case as u64);
        let mut rng = TestRng::seed_from_u64(seed);
        if let Err(TestCaseError(msg)) = body(&mut rng) {
            panic!("property '{name}' failed at case {case} (seed {seed:#x}): {msg}");
        }
    }
}

/// Declares property tests: each `fn` runs [`CASES`] times with inputs
/// drawn from the given strategies.
#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                $crate::run_cases(stringify!($name), |__pt_rng| {
                    $(let $p = $crate::Strategy::generate(&($s), __pt_rng);)+
                    $body
                    Ok(())
                });
            }
        )*
    };
}

/// Asserts inside a property body; failure aborts the case with a message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)*), l, r
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_collections(
            x in 3u32..9,
            v in crate::collection::vec(0u8..4, 1..10),
            s in crate::collection::hash_set(0u32..100, 1..20),
            (a, b) in (0u16..5, 10u16..15),
        ) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 10);
            prop_assert!(v.iter().all(|&e| e < 4));
            prop_assert!(!s.is_empty() && s.len() < 20);
            prop_assert!(a < 5 && (10..15).contains(&b));
            prop_assert_eq!(a as u32 + b as u32, b as u32 + a as u32);
        }

        #[test]
        fn any_covers_domain(byte in any::<u8>()) {
            let _ = byte; // any u8 is fine; just confirm the plumbing works
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_report_case_and_seed() {
        crate::run_cases("always_fails", |_| {
            Err(crate::TestCaseError::fail("boom".into()))
        });
    }

    #[test]
    fn cases_are_deterministic() {
        let mut first: Vec<u64> = Vec::new();
        crate::run_cases("det", |rng| {
            first.push(crate::Strategy::generate(&(0u64..1000), rng));
            Ok(())
        });
        let mut second: Vec<u64> = Vec::new();
        crate::run_cases("det", |rng| {
            second.push(crate::Strategy::generate(&(0u64..1000), rng));
            Ok(())
        });
        assert_eq!(first, second);
    }
}
