//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// A small, fast, non-cryptographic PRNG: xoshiro256++.
///
/// Matches the algorithm `rand 0.8` uses for `SmallRng` on 64-bit targets.
/// Period 2^256 − 1; passes BigCrush. Not cryptographically secure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(mut state: u64) -> Self {
        // SplitMix64 expansion, as recommended by the xoshiro authors:
        // guarantees a non-zero state for every seed, including 0.
        let mut next = || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        SmallRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for SmallRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xoshiro_reference_vector() {
        // Reference: xoshiro256++ initialized with state [1, 2, 3, 4]
        // produces 41943041 first (from the author's test vectors).
        let mut r = SmallRng { s: [1, 2, 3, 4] };
        assert_eq!(r.next_u64(), 41943041);
        assert_eq!(r.next_u64(), 58720359);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = SmallRng::seed_from_u64(0);
        assert_ne!(r.s, [0; 4], "SplitMix64 must avoid the all-zero state");
        let a = r.next_u64();
        let b = r.next_u64();
        assert_ne!(a, b);
    }
}
