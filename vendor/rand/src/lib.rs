//! Offline stand-in for the `rand` crate.
//!
//! This container builds with no access to crates.io, so the workspace
//! vendors the exact API subset it uses: [`rngs::SmallRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] and
//! [`Rng::gen_bool`]. The generator is xoshiro256++ seeded through
//! SplitMix64 — the same algorithm `rand 0.8`'s `SmallRng` uses on 64-bit
//! targets — so streams are deterministic, high-quality, and statistically
//! equivalent to the real crate's.
//!
//! Only determinism *within* this workspace is promised: swapping the real
//! crate back in would change the exact sampled values (the real crate's
//! `gen_range` uses a different rejection scheme), which is fine — nothing
//! in the workspace asserts golden random values.

#![warn(missing_docs)]

pub mod rngs;

/// The core of a random number generator: raw word output.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let last = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&last[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (via SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Converts 64 random bits into a uniform `f64` in `[0, 1)`.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Multiply-shift: maps 64 random bits onto [0, span) with
                // bias < 2^-64 per draw — irrelevant at simulation scale.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(hi as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full 64-bit domain.
                    return rng.next_u64() as $t;
                }
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                start.wrapping_add(hi as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (unit_f64(rng.next_u64()) as f32) * (self.end - self.start)
    }
}

/// Convenience sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range`.
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let mut c = SmallRng::seed_from_u64(43);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(0usize..=5);
            assert!(w <= 5);
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut r = SmallRng::seed_from_u64(1);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[r.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 6 values hit in 1000 draws");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SmallRng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "got {hits}");
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn fill_bytes_fills_partial_chunks() {
        let mut r = SmallRng::seed_from_u64(9);
        let mut buf = [0u8; 11];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = SmallRng::seed_from_u64(1);
        let _ = r.gen_range(5u32..5);
    }
}
