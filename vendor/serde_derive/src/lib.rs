//! No-op `Serialize`/`Deserialize` derives.
//!
//! The offline serde stand-in (see `vendor/serde`) never serializes, so
//! these derives expand to nothing: the annotation compiles, no impl is
//! generated, and no code can accidentally depend on serde output.

use proc_macro::TokenStream;

/// Expands to nothing.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
