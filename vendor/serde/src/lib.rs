//! Offline stand-in for `serde`.
//!
//! The workspace only uses serde for `#[derive(Serialize, Deserialize)]`
//! annotations on config and stats types — nothing actually serializes
//! through serde yet (tables write CSV by hand). This stand-in keeps those
//! annotations compiling in a container with no crates.io access: the
//! derive macros expand to nothing, and the traits are empty markers.
//!
//! If the real serde is ever restored, delete `vendor/serde*` and point
//! the workspace dependency back at crates.io — no source changes needed.

#![warn(missing_docs)]

/// Marker for types that would be serializable under real serde.
pub trait Serialize {}

/// Marker for types that would be deserializable under real serde.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
