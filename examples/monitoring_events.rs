//! System-monitoring event dissemination — the paper's motivating
//! workload ("disseminating system monitoring events to facilitate the
//! management of distributed systems").
//!
//! A monitoring fabric of 256 agents streams alert events continuously.
//! Mid-run, a rack failure takes out 15% of the agents at once. The fabric
//! must keep delivering events to every surviving agent with bounded
//! staleness, without any operator intervention: first via gossip recovery
//! over the unbroken overlay, then — once the maintenance protocols repair
//! the overlay and the tree — at full speed again.
//!
//! The run doubles as a tour of the observability stack: the windowed
//! `FnRecorder` aggregate is composed (via the tuple recorder) with a
//! JSONL `TraceRecorder` streaming every causal event to disk and an
//! online `InvariantOracle` checking protocol invariants as they happen;
//! at the end the per-node `ProtocolCounters` are aggregated next to the
//! kernel counters.
//!
//! Run with: `cargo run --release -p gocast-examples --bin monitoring_events`

use std::time::Duration;

use gocast::{GoCastCommand, GoCastConfig, GoCastEvent, GoCastNode, MsgId};
use gocast_analysis::InvariantOracle;
use gocast_net::{synthetic_king, SyntheticKingConfig};
use gocast_sim::{FnRecorder, NodeId, SimBuilder, SimTime, TraceRecorder};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Aggregates delivery delay percentiles per reporting window.
#[derive(Default)]
struct Window {
    delays_ms: Vec<f64>,
    delivered: u64,
}

fn main() {
    let n = 256;
    let event_rate = 20.0; // monitoring events per second
    println!("monitoring fabric: {n} agents, {event_rate} events/s, rack failure at t=120s\n");

    let net = synthetic_king(
        n,
        &SyntheticKingConfig {
            sites: n,
            ..Default::default()
        },
    );

    // Shared window state updated by a streaming recorder.
    use std::cell::RefCell;
    use std::rc::Rc;
    let window: Rc<RefCell<Window>> = Rc::default();
    let inject_times: Rc<RefCell<std::collections::HashMap<MsgId, SimTime>>> = Rc::default();

    let w = Rc::clone(&window);
    let inj = Rc::clone(&inject_times);
    let recorder = FnRecorder(move |now: SimTime, _node, ev: GoCastEvent| match ev {
        GoCastEvent::Injected { id } => {
            inj.borrow_mut().insert(id, now);
        }
        GoCastEvent::Delivered { id, .. } => {
            if let Some(&t0) = inj.borrow().get(&id) {
                let mut w = w.borrow_mut();
                w.delays_ms
                    .push(now.saturating_since(t0).as_secs_f64() * 1e3);
                w.delivered += 1;
            }
        }
        _ => {}
    });

    // Compose the windowed aggregate with a causal trace sink and the
    // online invariant oracle — the tuple recorder fans every event out.
    let trace_path = std::env::temp_dir().join("monitoring_events_trace.jsonl");
    let trace = TraceRecorder::create(&trace_path).expect("trace file");
    let oracle = InvariantOracle::for_protocol(&GoCastConfig::default());

    let mut boot = gocast::bootstrap_random_graph(n, 3, 11);
    let mut sim = SimBuilder::new(net)
        .seed(11)
        .build_with((recorder, (trace, oracle)), |id| {
            let (links, members) = boot(id);
            GoCastNode::with_initial_links(id, GoCastConfig::default(), links, members)
        });

    // Warm up the overlay before the stream starts.
    sim.run_until(SimTime::from_secs(60));

    // Schedule the rack failure: 15% of agents, one "rack" = a contiguous
    // id range (they share sites, so this is a correlated failure).
    let mut rng = SmallRng::seed_from_u64(99);
    let failed: Vec<NodeId> = (0..(n as u32 * 15 / 100))
        .map(|i| NodeId::new(40 + i))
        .collect();
    for &id in &failed {
        sim.fail_node_at(SimTime::from_secs(120), id);
    }

    // Stream events for 180 s from random live sources.
    let mut next_event = SimTime::from_secs(60);
    let mut report_at = SimTime::from_secs(80);
    println!(
        "{:>8}  {:>9}  {:>10}  {:>10}  {:>10}",
        "t(s)", "delivered", "p50(ms)", "p99(ms)", "max(ms)"
    );
    while sim.now() < SimTime::from_secs(240) {
        // Inject the next event.
        let src = loop {
            let c = NodeId::new(rng.gen_range(0..n as u32));
            if sim.is_alive(c) {
                break c;
            }
        };
        sim.schedule_command(next_event, src, GoCastCommand::Multicast);
        next_event += Duration::from_secs_f64(1.0 / event_rate);
        sim.run_until(next_event);

        // Periodic report.
        if sim.now() >= report_at {
            let mut w = window.borrow_mut();
            if !w.delays_ms.is_empty() {
                w.delays_ms.sort_by(f64::total_cmp);
                let pct = |w: &Window, p: f64| {
                    w.delays_ms
                        [((w.delays_ms.len() as f64 * p) as usize).min(w.delays_ms.len() - 1)]
                };
                println!(
                    "{:>8.0}  {:>9}  {:>10.1}  {:>10.1}  {:>10.1}",
                    sim.now().as_secs_f64(),
                    w.delivered,
                    pct(&w, 0.5),
                    pct(&w, 0.99),
                    w.delays_ms.last().copied().unwrap_or(0.0),
                );
            }
            *w = Window::default();
            report_at += Duration::from_secs(20);
        }
    }

    // Drain and verify nobody alive missed anything injected after the
    // failure settled.
    sim.run_for(Duration::from_secs(30));
    let live = sim.alive_nodes().count();
    println!(
        "\nrack failure killed {} agents; {live} survivors kept receiving events",
        failed.len()
    );
    let detached = sim
        .alive_nodes()
        .filter(|&id| !sim.node(id).is_root() && sim.node(id).tree_parent().is_none())
        .count();
    println!("tree repaired: {} live agents currently detached", detached);

    // The observability stack's view of the same run.
    let totals = gocast::snapshot(&sim).total_counters();
    println!("\nprotocol counters (fabric total): {totals}");
    println!("kernel: {}", sim.kernel_stats());
    let rec = sim.recorder_mut();
    rec.1 .1.finish();
    let (trace, oracle) = (&rec.1 .0, &rec.1 .1);
    println!(
        "causal trace: {} events streamed to {}",
        trace.lines(),
        trace_path.display()
    );
    if oracle.is_clean() {
        println!(
            "invariant oracle: clean over {} records",
            oracle.records_checked()
        );
    } else {
        println!("invariant oracle: {} VIOLATIONS", oracle.violations().len());
        for v in oracle.violations().iter().take(10) {
            println!("  {v}");
        }
    }
}
