//! Quickstart: build a GoCast group on a synthetic Internet, let the
//! overlay adapt, multicast a few messages, and print what happened.
//!
//! Run with: `cargo run --release -p gocast-examples --bin quickstart`

use std::time::Duration;

use gocast::{GoCastCommand, GoCastConfig, GoCastNode};
use gocast_analysis::MetricsRecorder;
use gocast_net::{synthetic_king, SyntheticKingConfig};
use gocast_sim::{NodeId, SimBuilder, SimTime};

fn main() {
    let n = 128;
    println!("GoCast quickstart: {n} nodes on a synthetic Internet\n");

    // 1. A latency model: 128 sites in continent-like clusters, calibrated
    //    to the King dataset's statistics (mean one-way ~ 91 ms).
    let net = synthetic_king(
        n,
        &SyntheticKingConfig {
            sites: n,
            ..Default::default()
        },
    );

    // 2. One GoCastNode per participant, bootstrapped as a random graph
    //    (3 links each, so the average degree starts at the target 6).
    let mut boot = gocast::bootstrap_random_graph(n, 3, 7);
    let mut sim = SimBuilder::new(net)
        .seed(7)
        .build_with(MetricsRecorder::new(), |id| {
            let (links, members) = boot(id);
            GoCastNode::with_initial_links(id, GoCastConfig::default(), links, members)
        });

    // 3. Let the maintenance protocols shape the overlay and the tree.
    sim.run_until(SimTime::from_secs(60));
    let snap = gocast::snapshot(&sim);
    println!(
        "after 60 s of adaptation: {} overlay links (mean latency {:.1} ms), \
         tree spans {}/{} nodes (mean link latency {:.1} ms)",
        snap.overlay_edge_count(),
        snap.mean_overlay_latency(sim.latency_model()).as_secs_f64() * 1e3,
        snap.tree_edge_count() + 1,
        n,
        snap.mean_tree_latency(sim.latency_model()).as_secs_f64() * 1e3,
    );

    // 4. Multicast ten messages from different sources.
    for i in 0..10u32 {
        sim.schedule_command(
            sim.now() + Duration::from_millis(100 * i as u64),
            NodeId::new(i * 11 % n as u32),
            GoCastCommand::Multicast,
        );
    }
    sim.run_for(Duration::from_secs(10));

    // 5. Report. The delay distribution comes from the streaming
    //    histogram — bounded memory no matter how many deliveries ran.
    let rec = sim.recorder();
    let hist = rec.delay_histogram();
    println!(
        "\n{} messages, {} deliveries:",
        rec.injected(),
        rec.delivered()
    );
    println!(
        "  median delay  {:>8.1} ms",
        hist.percentile(0.5).as_secs_f64() * 1e3
    );
    println!(
        "  p99 delay     {:>8.1} ms",
        hist.percentile(0.99).as_secs_f64() * 1e3
    );
    println!("  max delay     {:>8.1} ms", hist.max().as_secs_f64() * 1e3);
    println!(
        "  {:.1}% via tree, redundancy {:.3}, {} gossip pulls",
        rec.tree_fraction() * 100.0,
        rec.redundancy_factor(),
        rec.pulls()
    );
    assert_eq!(
        rec.delivered(),
        10 * (n as u64 - 1),
        "everyone got everything"
    );
    println!("\nevery node received every message — done.");
}
