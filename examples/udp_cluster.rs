//! Real-network demo: an 8-node GoCast group over actual UDP sockets on
//! loopback — the same state machine the simulations validate, driven by
//! the `gocast-udp` deployment host instead of the simulator.
//!
//! Run with: `cargo run --release -p gocast-examples --bin udp_cluster`

use std::time::Duration;

use gocast::{GoCastCommand, GoCastConfig, GoCastEvent, GoCastNode, MsgId};
use gocast_sim::NodeId;
use gocast_udp::{AddressBook, UdpHost};

fn main() {
    let n: u32 = 8;
    let base_port: u16 = 21500;
    println!(
        "starting {n} GoCast nodes on 127.0.0.1:{base_port}..{}",
        base_port + n as u16 - 1
    );

    // Deployment-speed cadences (the paper's 15 s heartbeat is sized for
    // WANs; loopback demos want the tree within a second or two).
    let cfg = GoCastConfig {
        gossip_period: Duration::from_millis(50),
        maintenance_period: Duration::from_millis(50),
        heartbeat_period: Duration::from_millis(500),
        idle_gossip_interval: Duration::from_millis(250),
        landmark_count: 2,
        ..Default::default()
    };

    let book = AddressBook::local(n as usize, base_port);
    let hosts: Vec<UdpHost> = (0..n)
        .map(|i| {
            let links = vec![NodeId::new((i + 1) % n), NodeId::new((i + 3) % n)];
            let members: Vec<NodeId> = (0..n).filter(|&j| j != i).map(NodeId::new).collect();
            let node = GoCastNode::with_initial_links(NodeId::new(i), cfg.clone(), links, members);
            UdpHost::bind(node, book.clone(), 1000 + i as u64).expect("bind UDP port")
        })
        .collect();

    let handles: Vec<_> = hosts.iter().map(|h| h.handle()).collect();
    let threads: Vec<_> = hosts
        .into_iter()
        .map(|mut h| {
            std::thread::spawn(move || {
                h.run_for(Duration::from_secs(6));
                h
            })
        })
        .collect();

    // Overlay + tree formation, then three multicasts from different nodes.
    std::thread::sleep(Duration::from_millis(2500));
    println!("overlay formed; multicasting from nodes 2, 5, 7 ...");
    for (k, src) in [2usize, 5, 7].into_iter().enumerate() {
        handles[src].command(GoCastCommand::Multicast).unwrap();
        std::thread::sleep(Duration::from_millis(200 * (k as u64 + 1)));
    }

    let hosts: Vec<UdpHost> = threads.into_iter().map(|t| t.join().unwrap()).collect();

    println!("\nper-node summary:");
    for h in &hosts {
        let (sent, received) = h.io_counts();
        println!(
            "  {}: degree {:?}, parent {:?}, root {}, {} datagrams out / {} in",
            h.node().id(),
            h.node().degrees().total(),
            h.node().tree_parent(),
            h.node().current_root(),
            sent,
            received,
        );
    }

    let mut ok = true;
    for (src, seq) in [(2u32, 0u32), (5, 0), (7, 0)] {
        let id = MsgId::new(NodeId::new(src), seq);
        let holders = hosts.iter().filter(|h| h.node().has_message(id)).count();
        println!("message {id}: held by {holders}/{n} nodes");
        ok &= holders == n as usize;
    }
    let delays: Vec<f64> = hosts
        .iter()
        .flat_map(|h| h.events())
        .filter_map(|(t, e)| match e {
            GoCastEvent::Delivered { .. } => Some(t.as_secs_f64()),
            _ => None,
        })
        .collect();
    println!("deliveries observed: {}", delays.len());
    assert!(ok, "some node missed a multicast over UDP");
    println!("\nall multicasts reached all nodes over real UDP — done.");
}
