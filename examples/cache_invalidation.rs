//! Cache-invalidation propagation — the paper's second motivating
//! workload ("propagating updates of shared state to maintain cache
//! consistency").
//!
//! 200 replicas cache a shared object. Writes at random replicas must
//! invalidate every other cache quickly: the *stale window* (write →
//! last replica invalidated) bounds how long readers can observe stale
//! data. We race GoCast against classic push gossip (fanout 5) on the
//! same network and report stale windows and replicas that were never
//! invalidated at all.
//!
//! Run with: `cargo run --release -p gocast-examples --bin cache_invalidation`

use std::time::Duration;

use gocast::{GoCastCommand, GoCastConfig, GoCastNode};
use gocast_analysis::MetricsRecorder;
use gocast_baselines::{PushGossipConfig, PushGossipNode};
use gocast_net::{synthetic_king, SyntheticKingConfig};
use gocast_sim::{NodeId, Sim, SimBuilder, SimTime};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const N: usize = 200;
const WRITES: u32 = 100;

fn network() -> gocast_net::SiteLatencyMatrix {
    synthetic_king(
        N,
        &SyntheticKingConfig {
            sites: N,
            ..Default::default()
        },
    )
}

fn schedule_writes<P>(sim: &mut Sim<P, MetricsRecorder>, start: SimTime)
where
    P: gocast_sim::Protocol<Command = GoCastCommand, Event = gocast::GoCastEvent>,
{
    let mut rng = SmallRng::seed_from_u64(123);
    for i in 0..WRITES {
        let writer = NodeId::new(rng.gen_range(0..N as u32));
        sim.schedule_command(
            start + Duration::from_millis(100 * i as u64),
            writer,
            GoCastCommand::Multicast,
        );
    }
}

struct Outcome {
    name: &'static str,
    complete_replicas: usize,
    stale_p50_ms: f64,
    stale_p99_ms: f64,
    bytes_sent_mb: f64,
}

fn report(o: &Outcome) {
    println!(
        "{:>12}: {:>3}/{} replicas fully invalidated | stale window p50 {:>7.1} ms, p99 {:>8.1} ms | {:>6.1} MB on the wire",
        o.name, o.complete_replicas, N, o.stale_p50_ms, o.stale_p99_ms, o.bytes_sent_mb
    );
}

fn run_gocast() -> Outcome {
    let mut boot = gocast::bootstrap_random_graph(N, 3, 31);
    let mut sim = SimBuilder::new(network())
        .seed(31)
        .build_with(MetricsRecorder::new(), |id| {
            let (links, members) = boot(id);
            GoCastNode::with_initial_links(id, GoCastConfig::default(), links, members)
        });
    sim.run_until(SimTime::from_secs(60));
    sim.reset_stats();
    let start = sim.now();
    schedule_writes(&mut sim, start);
    sim.run_for(Duration::from_secs(40));
    collect("GoCast", &sim)
}

fn run_gossip() -> Outcome {
    let cfg = PushGossipConfig::default();
    let mut sim = SimBuilder::new(network())
        .seed(31)
        .build_with(MetricsRecorder::new(), |id| {
            PushGossipNode::new(id, cfg.clone())
        });
    sim.run_until(SimTime::from_secs(1));
    sim.reset_stats();
    let start = sim.now();
    schedule_writes(&mut sim, start);
    sim.run_for(Duration::from_secs(40));
    collect("gossip(F=5)", &sim)
}

fn collect<P>(name: &'static str, sim: &Sim<P, MetricsRecorder>) -> Outcome
where
    P: gocast_sim::Protocol<Command = GoCastCommand, Event = gocast::GoCastEvent>,
{
    let rec = sim.recorder();
    let nodes: Vec<NodeId> = sim.alive_nodes().collect();
    let (_, incomplete) = rec.per_node_average_delays(WRITES as u64, &nodes);
    let hist = rec.delay_histogram();
    Outcome {
        name,
        complete_replicas: N - incomplete,
        stale_p50_ms: hist.percentile(0.5).as_secs_f64() * 1e3,
        stale_p99_ms: hist.percentile(0.99).as_secs_f64() * 1e3,
        bytes_sent_mb: sim.stats().total().bytes as f64 / 1e6,
    }
}

fn main() {
    println!(
        "cache invalidation: {N} replicas, {WRITES} writes @10/s; lower stale window = fresher reads\n"
    );
    let go = run_gocast();
    let gs = run_gossip();
    report(&go);
    report(&gs);
    println!(
        "\nGoCast invalidates {:.1}x faster at the median.",
        gs.stale_p50_ms / go.stale_p50_ms
    );
    if gs.complete_replicas < N {
        println!(
            "gossip left {} replicas permanently stale for at least one write — the paper's \
             reliability argument (Figure 1) in action.",
            N - gs.complete_replicas
        );
    }
}
