//! Dynamic membership: nodes join through the runtime join protocol,
//! leave gracefully, and crash — while multicast traffic keeps flowing.
//!
//! The paper requires that "a node join or leave affects only a small
//! number of other nodes and those nodes handle the change locally". This
//! example starts with a 64-node core, grows the group to 128 through
//! `Join` commands, then churns (leaves + crashes) while verifying that
//! joined members keep receiving every multicast.
//!
//! Run with: `cargo run --release -p gocast-examples --bin churny_swarm`

use std::time::Duration;

use gocast::{GoCastCommand, GoCastConfig, GoCastNode};
use gocast_analysis::MetricsRecorder;
use gocast_net::{synthetic_king, SyntheticKingConfig};
use gocast_sim::{NodeId, SimBuilder, SimTime};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    let total = 128usize; // address space
    let core = 64usize; // initially joined
    println!(
        "churny swarm: {core} founding nodes; {} joiners; then churn\n",
        total - core
    );

    let net = synthetic_king(
        total,
        &SyntheticKingConfig {
            sites: total,
            ..Default::default()
        },
    );
    let mut boot = gocast::bootstrap_random_graph(core, 3, 17);
    let mut sim = SimBuilder::new(net)
        .seed(17)
        .build_with(MetricsRecorder::new(), |id| {
            if id.index() < core {
                let (links, members) = boot(id);
                GoCastNode::with_initial_links(id, GoCastConfig::default(), links, members)
            } else {
                GoCastNode::new(id, GoCastConfig::default(), Vec::new())
            }
        });

    // Founding cohort stabilizes.
    sim.run_until(SimTime::from_secs(40));

    // Joiners arrive one per second, each through a random founder.
    let mut rng = SmallRng::seed_from_u64(18);
    for (k, i) in (core..total).enumerate() {
        let contact = NodeId::new(rng.gen_range(0..core as u32));
        sim.schedule_command(
            SimTime::from_secs(40 + k as u64),
            NodeId::new(i as u32),
            GoCastCommand::Join { contact },
        );
    }
    sim.run_until(SimTime::from_secs(40 + (total - core) as u64 + 30));

    let joined = sim
        .iter_nodes()
        .filter(|(_, n)| n.degrees().total() >= 4)
        .count();
    println!("after join wave: {joined}/{total} nodes at healthy degree (>= 4)");

    // Churn phase: 10 graceful leaves and 10 crashes, spread over 60 s.
    let mut gone = Vec::new();
    for k in 0..20u64 {
        let victim = loop {
            let c = NodeId::new(rng.gen_range(0..total as u32));
            if sim.is_alive(c) && !gone.contains(&c) {
                break c;
            }
        };
        gone.push(victim);
        let at = sim.now() + Duration::from_secs(3 * k);
        if k % 2 == 0 {
            sim.schedule_command(at, victim, GoCastCommand::Leave);
        } else {
            sim.fail_node_at(at, victim);
        }
    }
    sim.run_for(Duration::from_secs(90)); // churn + recovery

    // Traffic check: everyone still standing receives multicasts.
    let members: Vec<NodeId> = sim
        .alive_nodes()
        .filter(|&id| sim.node(id).is_joined() && sim.node(id).degrees().total() > 0)
        .collect();
    let before = sim.recorder().delivered();
    let msgs = 20u32;
    for i in 0..msgs {
        let src = members[rng.gen_range(0..members.len())];
        sim.schedule_command(
            sim.now() + Duration::from_millis(100 * i as u64),
            src,
            GoCastCommand::Multicast,
        );
    }
    sim.run_for(Duration::from_secs(20));
    let delivered = sim.recorder().delivered() - before;
    let expected = msgs as u64 * (members.len() as u64 - 1);

    println!(
        "churn done: {} leaves/crashes; {} members remain",
        gone.len(),
        members.len()
    );
    println!("post-churn multicast: {delivered}/{expected} deliveries");
    let degrees: Vec<u16> = members
        .iter()
        .map(|&id| sim.node(id).degrees().total())
        .collect();
    let at_target = degrees.iter().filter(|&&d| (6..=7).contains(&d)).count();
    println!(
        "degrees: {}/{} members at 6-7 (self-healing back to target)",
        at_target,
        members.len()
    );
    assert_eq!(
        delivered, expected,
        "every surviving member must receive every message"
    );
    println!("\nswarm absorbed the churn — done.");
}
