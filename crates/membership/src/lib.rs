//! # gocast-membership — bounded random partial views
//!
//! GoCast nodes do not know the full system membership. Each node keeps a
//! bounded, approximately uniform random *partial view* of other nodes,
//! maintained by piggybacking a few random member addresses on the gossips
//! exchanged between overlay neighbors (the paper cites lpbcast \[5\] and
//! notes that "a 'uniformly' random partial member list is almost as good as
//! a complete member list").
//!
//! [`MemberView`] is that view: a capacity-bounded set with random eviction,
//! uniform sampling, and a stable round-robin cursor (the overlay
//! maintenance protocol walks candidates round-robin).
//!
//! ```
//! use gocast_membership::MemberView;
//! use gocast_sim::NodeId;
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! let mut rng = SmallRng::seed_from_u64(7);
//! let mut view = MemberView::new(NodeId::new(0), 4);
//! for i in 1..=10u32 {
//!     view.insert(NodeId::new(i), &mut rng);
//! }
//! assert_eq!(view.len(), 4); // bounded
//! assert!(!view.contains(NodeId::new(0))); // never contains the owner
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use rand::rngs::SmallRng;
use rand::Rng;

use gocast_sim::NodeId;

/// A bounded random partial view of system membership.
///
/// Invariants:
/// - never contains the owning node's own id;
/// - never exceeds its capacity (random eviction on overflow);
/// - contains no duplicates.
///
/// Membership tests scan the backing vector linearly: at the default
/// capacity (128 ids, half a kilobyte) a scan beats a hash map on both
/// time and — decisively, at 10⁵–10⁶ nodes where every node carries a
/// view — memory, saving several kilobytes of table per node.
#[derive(Debug, Clone)]
pub struct MemberView {
    owner: NodeId,
    capacity: usize,
    members: Vec<NodeId>,
    cursor: usize,
}

impl MemberView {
    /// Creates an empty view owned by `owner` holding at most `capacity`
    /// entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(owner: NodeId, capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        MemberView {
            owner,
            capacity,
            members: Vec::new(),
            cursor: 0,
        }
    }

    /// The owning node.
    pub fn owner(&self) -> NodeId {
        self.owner
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Whether `id` is in the view.
    pub fn contains(&self, id: NodeId) -> bool {
        self.members.contains(&id)
    }

    /// Inserts `id`. Self-insertions and duplicates are ignored. If the view
    /// is full, a uniformly random existing entry is evicted first (so the
    /// view stays an approximately uniform sample of everything it has
    /// seen). Returns `true` if `id` is newly present.
    pub fn insert(&mut self, id: NodeId, rng: &mut SmallRng) -> bool {
        if id == self.owner || self.members.contains(&id) {
            return false;
        }
        if self.members.len() >= self.capacity {
            let victim = self.members[rng.gen_range(0..self.members.len())];
            self.remove(victim);
        }
        self.members.push(id);
        true
    }

    /// Merges a batch of ids (e.g. from a gossip's piggybacked addresses).
    /// Returns how many were newly inserted.
    pub fn merge<I: IntoIterator<Item = NodeId>>(&mut self, ids: I, rng: &mut SmallRng) -> usize {
        ids.into_iter().filter(|&id| self.insert(id, rng)).count()
    }

    /// Removes `id` if present (e.g. a node discovered to have failed).
    /// Returns whether it was present.
    pub fn remove(&mut self, id: NodeId) -> bool {
        let Some(pos) = self.members.iter().position(|&m| m == id) else {
            return false;
        };
        self.members.swap_remove(pos);
        // Keep the round-robin cursor stable-ish: if we removed before it,
        // pull it back so no entry is skipped.
        if pos < self.cursor {
            self.cursor -= 1;
        }
        if self.cursor >= self.members.len() {
            self.cursor = 0;
        }
        true
    }

    /// A uniformly random member, if any.
    pub fn sample(&self, rng: &mut SmallRng) -> Option<NodeId> {
        if self.members.is_empty() {
            None
        } else {
            Some(self.members[rng.gen_range(0..self.members.len())])
        }
    }

    /// Up to `k` distinct uniformly random members (partial Fisher–Yates).
    pub fn sample_k(&self, k: usize, rng: &mut SmallRng) -> Vec<NodeId> {
        let k = k.min(self.members.len());
        let mut pool = self.members.clone();
        for i in 0..k {
            let j = rng.gen_range(i..pool.len());
            pool.swap(i, j);
        }
        pool.truncate(k);
        pool
    }

    /// The next member in round-robin order, advancing the cursor. The
    /// cursor wraps and tolerates concurrent insertions/removals.
    pub fn next_round_robin(&mut self) -> Option<NodeId> {
        if self.members.is_empty() {
            return None;
        }
        if self.cursor >= self.members.len() {
            self.cursor = 0;
        }
        let id = self.members[self.cursor];
        self.cursor = (self.cursor + 1) % self.members.len();
        Some(id)
    }

    /// Iterates over the members in storage order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.members.iter().copied()
    }

    /// A snapshot of the members (used when answering a join request).
    pub fn to_vec(&self) -> Vec<NodeId> {
        self.members.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    fn view_with(owner: u32, cap: usize, ids: &[u32]) -> (MemberView, SmallRng) {
        let mut r = rng();
        let mut v = MemberView::new(NodeId::new(owner), cap);
        for &i in ids {
            v.insert(NodeId::new(i), &mut r);
        }
        (v, r)
    }

    #[test]
    fn never_contains_owner_or_duplicates() {
        let (mut v, mut r) = view_with(0, 8, &[1, 2, 3]);
        assert!(!v.insert(NodeId::new(0), &mut r));
        assert!(!v.insert(NodeId::new(2), &mut r));
        assert_eq!(v.len(), 3);
        assert!(!v.contains(NodeId::new(0)));
    }

    #[test]
    fn capacity_is_enforced_by_random_eviction() {
        let (v, _) = view_with(0, 5, &(1..=50).collect::<Vec<_>>());
        assert_eq!(v.len(), 5);
        for id in v.iter() {
            assert!(id.as_u32() >= 1 && id.as_u32() <= 50);
        }
    }

    #[test]
    fn remove_keeps_membership_consistent() {
        let (mut v, _) = view_with(0, 8, &[1, 2, 3, 4, 5]);
        assert!(v.remove(NodeId::new(2)));
        assert!(!v.remove(NodeId::new(2)));
        assert_eq!(v.len(), 4);
        for id in [1u32, 3, 4, 5] {
            assert!(v.contains(NodeId::new(id)), "missing {id}");
        }
        // No duplicates survive the swap-remove.
        let set: std::collections::HashSet<_> = v.iter().collect();
        assert_eq!(set.len(), v.len());
    }

    #[test]
    fn round_robin_covers_everyone() {
        let (mut v, _) = view_with(0, 8, &[1, 2, 3, 4]);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..4 {
            seen.insert(v.next_round_robin().unwrap());
        }
        assert_eq!(seen.len(), 4);
        // Wraps.
        assert!(seen.contains(&v.next_round_robin().unwrap()));
    }

    #[test]
    fn round_robin_survives_removals() {
        let (mut v, _) = view_with(0, 8, &[1, 2, 3, 4, 5]);
        let first = v.next_round_robin().unwrap();
        v.remove(first);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..4 {
            seen.insert(v.next_round_robin().unwrap());
        }
        assert_eq!(seen.len(), 4, "all remaining members visited");
        assert!(!seen.contains(&first));
    }

    #[test]
    fn sample_k_is_distinct_and_bounded() {
        let (v, mut r) = view_with(0, 16, &(1..=10).collect::<Vec<_>>());
        let s = v.sample_k(4, &mut r);
        assert_eq!(s.len(), 4);
        let set: std::collections::HashSet<_> = s.iter().collect();
        assert_eq!(set.len(), 4);
        assert_eq!(v.sample_k(99, &mut r).len(), 10);
        let (empty, mut r2) = view_with(0, 4, &[]);
        assert!(empty.sample(&mut r2).is_none());
        assert!(empty.sample_k(3, &mut r2).is_empty());
    }

    #[test]
    fn merge_counts_new_entries() {
        let (mut v, mut r) = view_with(0, 16, &[1, 2]);
        let added = v.merge([1, 2, 3, 4, 0].map(NodeId::new), &mut r);
        assert_eq!(added, 2);
    }

    #[test]
    fn sampling_is_roughly_uniform() {
        let (v, mut r) = view_with(0, 32, &(1..=8).collect::<Vec<_>>());
        let mut counts = std::collections::HashMap::new();
        for _ in 0..8000 {
            *counts.entry(v.sample(&mut r).unwrap()).or_insert(0u32) += 1;
        }
        for (_, c) in counts {
            assert!((700..1300).contains(&c), "count {c} far from uniform 1000");
        }
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = MemberView::new(NodeId::new(0), 0);
    }
}
