//! Proof that updating metrics performs zero heap allocations.
//!
//! Same counting-allocator harness as `gocast-sim`'s `zero_alloc` test:
//! a global allocator tallies this thread's allocations while a tight
//! loop hammers counters, gauges, and histograms. The primitives are
//! fixed-size plain-old-data, so the count must stay at zero — the
//! property that lets the kernel and fabric keep them permanently
//! enabled on paths running millions of times per second. (`Snapshot`
//! is exempt: taking one is an explicitly off-hot-path copy.)

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use gocast_metrics::{Counter, Gauge, Log2Histogram, ProtocolMetrics};

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

struct CountingAlloc;

// SAFETY: defers to `System` for all operations; only bumps a plain
// thread-local counter (no allocation, no drop glue) on the way through.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCS.with(|c| c.get())
}

#[test]
fn metric_updates_do_not_allocate() {
    let mut counter = Counter::default();
    let mut gauge = Gauge::default();
    let mut hist = Log2Histogram::new();
    let mut proto = ProtocolMetrics::default();

    let before = allocations();
    for i in 0..1_000_000u64 {
        counter.inc();
        counter.add(i & 7);
        gauge.set((i % 1000) as i64);
        hist.observe(i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        proto.pushes.inc();
        proto.ihaves.add(2);
        proto.redundant_drops.inc();
    }
    let allocs = allocations() - before;

    assert_eq!(
        allocs, 0,
        "metric update path allocated {allocs} times over 1M iterations"
    );
    assert_eq!(hist.count(), 1_000_000);
    assert!(counter.get() > 1_000_000);
    assert_eq!(proto.pushes.get(), 1_000_000);
}
