//! Run provenance: which code, configuration, and machine produced an
//! artifact.
//!
//! Every CSV and JSONL file an experiment writes gets one manifest
//! header line, so a results file found months later still answers
//! "which commit, which seed, which stack, which host". The manifest
//! deliberately excludes anything that varies between byte-identical
//! runs — timestamps, wall-clock durations, `--jobs` — so stamping it
//! does not break output determinism.

use std::sync::OnceLock;

/// Identity of one experiment run: code version, configuration, machine.
///
/// ```
/// use gocast_metrics::RunManifest;
///
/// let m = RunManifest {
///     git_sha: "abc123".into(),
///     host: "ci-runner".into(),
///     stack: "gocast".into(),
///     seed: 42,
///     nodes: 1024,
///     messages: 1000,
///     rate: 100.0,
///     scenario: None,
/// };
/// assert_eq!(
///     m.csv_comment(),
///     "# gocast-run git=abc123 host=ci-runner stack=gocast seed=42 nodes=1024 messages=1000 rate=100"
/// );
/// assert!(m.json_line().starts_with("{\"manifest\":1,"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RunManifest {
    /// Commit id of the producing build (`unknown` outside a git checkout).
    pub git_sha: String,
    /// Hostname of the producing machine (`unknown` when undetectable).
    pub host: String,
    /// Protocol stack driven by the run.
    pub stack: String,
    /// Master seed.
    pub seed: u64,
    /// Node count.
    pub nodes: usize,
    /// Multicast messages injected.
    pub messages: u32,
    /// Injection rate, messages/second.
    pub rate: f64,
    /// Fault scenario, when one was applied.
    pub scenario: Option<String>,
}

fn escape_json(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

impl RunManifest {
    /// The manifest as a CSV comment line (no trailing newline):
    /// `# gocast-run git=<sha> host=<host> stack=<stack> seed=<seed> ...`.
    pub fn csv_comment(&self) -> String {
        let mut s = format!(
            "# gocast-run git={} host={} stack={} seed={} nodes={} messages={} rate={}",
            self.git_sha, self.host, self.stack, self.seed, self.nodes, self.messages, self.rate
        );
        if let Some(sc) = &self.scenario {
            s.push_str(" scenario=");
            s.push_str(sc);
        }
        s
    }

    /// The manifest as one JSON object line (no trailing newline). The
    /// leading `"manifest":1` key lets JSONL readers skip it without
    /// schema knowledge.
    pub fn json_line(&self) -> String {
        let mut s = String::from("{\"manifest\":1,\"tool\":\"gocast-experiments\",\"git\":\"");
        escape_json(&self.git_sha, &mut s);
        s.push_str("\",\"host\":\"");
        escape_json(&self.host, &mut s);
        s.push_str("\",\"stack\":\"");
        escape_json(&self.stack, &mut s);
        use std::fmt::Write as _;
        let _ = write!(
            s,
            "\",\"seed\":{},\"nodes\":{},\"messages\":{},\"rate\":{}",
            self.seed, self.nodes, self.messages, self.rate
        );
        if let Some(sc) = &self.scenario {
            s.push_str(",\"scenario\":\"");
            escape_json(sc, &mut s);
            s.push('"');
        }
        s.push('}');
        s
    }

    /// The current checkout's commit id, detected once per process via
    /// `git rev-parse` (`unknown` when git or the repository is absent).
    pub fn detect_git_sha() -> &'static str {
        static SHA: OnceLock<String> = OnceLock::new();
        SHA.get_or_init(|| {
            std::process::Command::new("git")
                .args(["rev-parse", "--short=12", "HEAD"])
                .output()
                .ok()
                .filter(|o| o.status.success())
                .and_then(|o| String::from_utf8(o.stdout).ok())
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .unwrap_or_else(|| "unknown".into())
        })
    }

    /// This machine's hostname, detected once per process (`unknown`
    /// when undetectable).
    pub fn detect_host() -> &'static str {
        static HOST: OnceLock<String> = OnceLock::new();
        HOST.get_or_init(|| {
            std::env::var("HOSTNAME")
                .ok()
                .or_else(|| std::fs::read_to_string("/proc/sys/kernel/hostname").ok())
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .unwrap_or_else(|| "unknown".into())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunManifest {
        RunManifest {
            git_sha: "deadbeef".into(),
            host: "box".into(),
            stack: "plumtree".into(),
            seed: 7,
            nodes: 64,
            messages: 50,
            rate: 25.0,
            scenario: Some("churn(end=60)".into()),
        }
    }

    #[test]
    fn csv_comment_includes_scenario_when_present() {
        let m = sample();
        assert_eq!(
            m.csv_comment(),
            "# gocast-run git=deadbeef host=box stack=plumtree seed=7 nodes=64 \
             messages=50 rate=25 scenario=churn(end=60)"
        );
    }

    #[test]
    fn json_line_is_flat_and_skippable() {
        let line = sample().json_line();
        assert!(line.starts_with("{\"manifest\":1,"));
        assert!(line.ends_with('}'));
        assert!(line.contains("\"seed\":7"));
        assert!(line.contains("\"scenario\":\"churn(end=60)\""));
        assert!(!line.contains('\n'));
    }

    #[test]
    fn json_escaping_handles_quotes_and_controls() {
        let mut m = sample();
        m.scenario = Some("a\"b\\c\nd".into());
        let line = m.json_line();
        assert!(line.contains("a\\\"b\\\\c\\nd"));
    }

    #[test]
    fn detection_never_panics_and_caches() {
        let a = RunManifest::detect_git_sha();
        let b = RunManifest::detect_git_sha();
        assert_eq!(a, b);
        assert!(!RunManifest::detect_host().is_empty());
    }
}
