//! # gocast-metrics — zero-steady-state-allocation runtime telemetry
//!
//! The live counterpart of the offline analysis crates: where
//! `gocast-analysis` folds recorded event streams *after* a run, this
//! crate instruments the runtime itself — the simulation kernel, the
//! protocol stacks, and the loopback-UDP fabric — while it executes.
//!
//! Three primitives, all plain-old-data with `&mut self` update paths:
//!
//! - [`Counter`] — a monotonic `u64`;
//! - [`Gauge`] — a signed level with a high-water mark;
//! - [`Log2Histogram`] — a fixed-bucket power-of-two histogram
//!   (bucket *i* ≥ 1 holds values in `[2^(i-1), 2^i)`, bucket 0 holds
//!   exactly zero, the top bucket saturates).
//!
//! None of them allocate, lock, or hash — ever. Updating a metric is an
//! array index plus an integer add, so the hot paths of a simulation
//! processing millions of events per second can stay instrumented
//! permanently (the kernel's `zero_alloc` test asserts the claim).
//!
//! A [`Snapshot`] is taken on demand: it copies current values into an
//! ordered list of named entries that can be rendered as a table or
//! streamed as one JSON object per sample. Entries carry a
//! *wall-clock* flag: values derived from `Instant` readings (dispatch
//! timings) vary run to run, so [`Snapshot::write_json_fields`] can
//! exclude them — keeping JSONL time-series byte-identical for a given
//! seed at any `--jobs` count.
//!
//! ```
//! use gocast_metrics::{Log2Histogram, Snapshot};
//!
//! let mut h = Log2Histogram::new();
//! for v in [0, 1, 2, 3, 4, 1000] {
//!     h.observe(v);
//! }
//! assert_eq!(h.count(), 6);
//! assert_eq!(h.max(), 1000);
//!
//! let mut snap = Snapshot::new();
//! snap.record_histogram("latency", &h);
//! let mut line = String::new();
//! snap.write_json_fields(&mut line, true);
//! assert!(line.starts_with("\"latency\":{\"count\":6,"));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod manifest;

pub use manifest::RunManifest;

/// A monotonic event counter.
///
/// ```
/// use gocast_metrics::Counter;
///
/// let mut c = Counter::default();
/// c.inc();
/// c.add(4);
/// assert_eq!(c.get(), 5);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0
    }
}

/// A signed level with a high-water mark.
///
/// ```
/// use gocast_metrics::Gauge;
///
/// let mut g = Gauge::default();
/// g.set(7);
/// g.set(3);
/// assert_eq!(g.get(), 3);
/// assert_eq!(g.high_water(), 7);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Gauge {
    value: i64,
    high_water: i64,
}

impl Gauge {
    /// Sets the current level, updating the high-water mark.
    #[inline]
    pub fn set(&mut self, v: i64) {
        self.value = v;
        if v > self.high_water {
            self.high_water = v;
        }
    }

    /// Current level.
    #[inline]
    pub fn get(&self) -> i64 {
        self.value
    }

    /// Highest level ever set.
    #[inline]
    pub fn high_water(&self) -> i64 {
        self.high_water
    }
}

/// Number of buckets in a [`Log2Histogram`]: bucket 0 plus one bucket per
/// power of two up to `2^(BUCKETS-2)`; the last bucket saturates.
pub const BUCKETS: usize = 44;

/// A fixed-bucket power-of-two histogram.
///
/// Bucket 0 counts exact zeros; bucket `i >= 1` counts values in
/// `[2^(i-1), 2^i)`; the top bucket absorbs everything at or above
/// `2^(BUCKETS-2)`. With [`BUCKETS`] = 44 the top bucket starts at
/// `2^42` ≈ 4.4 × 10¹² — over an hour in nanoseconds — so saturation is
/// a pathology signal, not an expected state.
///
/// `observe` is an integer log2 (one `leading_zeros`) plus three adds:
/// no allocation, no branching on magnitude, suitable for paths running
/// millions of times per second.
///
/// ```
/// use gocast_metrics::Log2Histogram;
///
/// let mut h = Log2Histogram::new();
/// h.observe(0); // bucket 0
/// h.observe(1); // bucket 1: [1, 2)
/// h.observe(7); // bucket 3: [4, 8)
/// assert_eq!(h.bucket_count(0), 1);
/// assert_eq!(h.bucket_count(1), 1);
/// assert_eq!(h.bucket_count(3), 1);
/// assert_eq!(Log2Histogram::bucket_bounds(3), (4, 8));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Log2Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Log2Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Log2Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// The bucket index `v` falls into.
    #[inline]
    pub fn bucket_index(v: u64) -> usize {
        // Bit length: 0 for 0, k for 2^(k-1) <= v < 2^k; saturate at top.
        ((64 - v.leading_zeros()) as usize).min(BUCKETS - 1)
    }

    /// The half-open value range `[lo, hi)` of bucket `i`. The top
    /// bucket's `hi` is `u64::MAX` (it saturates).
    pub fn bucket_bounds(i: usize) -> (u64, u64) {
        assert!(i < BUCKETS, "bucket {i} out of range");
        if i == 0 {
            (0, 1)
        } else if i == BUCKETS - 1 {
            (1u64 << (i - 1), u64::MAX)
        } else {
            (1u64 << (i - 1), 1u64 << i)
        }
    }

    /// Records one value.
    #[inline]
    pub fn observe(&mut self, v: u64) {
        self.buckets[Self::bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        if v > self.max {
            self.max = v;
        }
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Count in bucket `i`.
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// `(bucket index, count)` for every non-empty bucket, in order.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
    }

    /// Upper bound of the bucket containing quantile `q` (`0.0..=1.0`) —
    /// a conservative streaming quantile at power-of-two resolution.
    /// Returns 0 when empty.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if c > 0 && seen >= target.max(1) {
                let (_, hi) = Self::bucket_bounds(i);
                return hi.saturating_sub(1).min(self.max);
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        if other.max > self.max {
            self.max = other.max;
        }
    }
}

/// Per-message protocol dissemination counters, capability-neutral: each
/// field maps to an event every stack (GoCast, Plumtree, the gossip
/// baselines) already emits, so the same struct instruments all of them.
/// Stacks without a capability simply leave its counter at zero.
///
/// ```
/// use gocast_metrics::{ProtocolMetrics, Snapshot};
///
/// let mut m = ProtocolMetrics::default();
/// m.pushes.inc();
/// m.deliveries.inc();
/// let mut s = Snapshot::new();
/// m.snapshot_into(&mut s);
/// let mut out = String::new();
/// s.write_json_fields(&mut out, true);
/// assert!(out.contains("\"proto_pushes\":1"));
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ProtocolMetrics {
    /// Multicasts injected by the application.
    pub injected: Counter,
    /// First receptions delivered to the application.
    pub deliveries: Counter,
    /// Full payloads pushed to tree/eager neighbors.
    pub pushes: Counter,
    /// Message ids advertised in gossip/IHAVE digests (one per id entry).
    pub ihaves: Counter,
    /// Pull/graft requests issued for missing payloads.
    pub pull_requests: Counter,
    /// Pull/graft requests answered with the payload.
    pub pulls_served: Counter,
    /// Redundant payload receptions discarded as duplicates.
    pub redundant_drops: Counter,
}

impl ProtocolMetrics {
    /// Appends this struct's counters to `snap` under stable
    /// `proto_*` names.
    pub fn snapshot_into(&self, snap: &mut Snapshot) {
        snap.record_counter("proto_injected", self.injected.get());
        snap.record_counter("proto_deliveries", self.deliveries.get());
        snap.record_counter("proto_pushes", self.pushes.get());
        snap.record_counter("proto_ihaves", self.ihaves.get());
        snap.record_counter("proto_pull_requests", self.pull_requests.get());
        snap.record_counter("proto_pulls_served", self.pulls_served.get());
        snap.record_counter("proto_redundant_drops", self.redundant_drops.get());
    }

    /// Adds another instance's counts into this one.
    pub fn merge(&mut self, other: &ProtocolMetrics) {
        self.injected.add(other.injected.get());
        self.deliveries.add(other.deliveries.get());
        self.pushes.add(other.pushes.get());
        self.ihaves.add(other.ihaves.get());
        self.pull_requests.add(other.pull_requests.get());
        self.pulls_served.add(other.pulls_served.get());
        self.redundant_drops.add(other.redundant_drops.get());
    }
}

/// A point-in-time copy of a histogram, detached from its fixed buckets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
    /// `(bucket index, count)` for non-empty buckets, ascending.
    pub buckets: Vec<(u32, u64)>,
}

/// One snapshotted metric value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A monotonic counter reading.
    Counter(u64),
    /// A gauge reading with its high-water mark.
    Gauge {
        /// Level at snapshot time.
        value: i64,
        /// Highest level ever set.
        high_water: i64,
    },
    /// A histogram copy.
    Histogram(HistogramSnapshot),
}

/// A named snapshot entry.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricEntry {
    /// Stable snake_case metric name (a schema other tools parse).
    pub name: &'static str,
    /// The value at snapshot time.
    pub value: MetricValue,
    /// Whether the value derives from wall-clock readings (excluded from
    /// deterministic artifacts).
    pub wall: bool,
}

/// An ordered, named copy of metric values, taken on demand.
///
/// Snapshots allocate (they are off the hot path by design); the metrics
/// they copy never do.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    entries: Vec<MetricEntry>,
}

impl Snapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// The entries, in recording order.
    pub fn entries(&self) -> &[MetricEntry] {
        &self.entries
    }

    /// Records a counter reading.
    pub fn record_counter(&mut self, name: &'static str, value: u64) {
        self.entries.push(MetricEntry {
            name,
            value: MetricValue::Counter(value),
            wall: false,
        });
    }

    /// Records a gauge reading.
    pub fn record_gauge(&mut self, name: &'static str, gauge: Gauge) {
        self.entries.push(MetricEntry {
            name,
            value: MetricValue::Gauge {
                value: gauge.get(),
                high_water: gauge.high_water(),
            },
            wall: false,
        });
    }

    /// Records a gauge-style level without a live [`Gauge`] behind it.
    pub fn record_level(&mut self, name: &'static str, value: i64, high_water: i64) {
        self.entries.push(MetricEntry {
            name,
            value: MetricValue::Gauge { value, high_water },
            wall: false,
        });
    }

    /// Records a histogram copy.
    pub fn record_histogram(&mut self, name: &'static str, h: &Log2Histogram) {
        self.push_histogram(name, h, false);
    }

    /// Records a histogram copy derived from wall-clock readings
    /// (excluded from deterministic renderings).
    pub fn record_wall_histogram(&mut self, name: &'static str, h: &Log2Histogram) {
        self.push_histogram(name, h, true);
    }

    fn push_histogram(&mut self, name: &'static str, h: &Log2Histogram, wall: bool) {
        self.entries.push(MetricEntry {
            name,
            value: MetricValue::Histogram(HistogramSnapshot {
                count: h.count(),
                sum: h.sum(),
                max: h.max(),
                buckets: h.nonzero_buckets().map(|(i, c)| (i as u32, c)).collect(),
            }),
            wall,
        });
    }

    /// Appends `"name":value` JSON fields (comma-separated, no braces)
    /// for every entry — every *deterministic* entry when
    /// `deterministic_only` — in recording order. Gauges emit two fields:
    /// `name` and `name_hw`.
    pub fn write_json_fields(&self, out: &mut String, deterministic_only: bool) {
        use std::fmt::Write as _;
        let mut first = true;
        for e in &self.entries {
            if deterministic_only && e.wall {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            match &e.value {
                MetricValue::Counter(v) => {
                    let _ = write!(out, "\"{}\":{}", e.name, v);
                }
                MetricValue::Gauge { value, high_water } => {
                    let _ = write!(out, "\"{0}\":{1},\"{0}_hw\":{2}", e.name, value, high_water);
                }
                MetricValue::Histogram(h) => {
                    let _ = write!(
                        out,
                        "\"{}\":{{\"count\":{},\"sum\":{},\"max\":{},\"buckets\":[",
                        e.name, h.count, h.sum, h.max
                    );
                    for (k, (i, c)) in h.buckets.iter().enumerate() {
                        if k > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "[{i},{c}]");
                    }
                    out.push_str("]}");
                }
            }
        }
    }

    /// A copy containing only the deterministic (non-wall-clock) entries.
    pub fn deterministic(&self) -> Snapshot {
        Snapshot {
            entries: self.entries.iter().filter(|e| !e.wall).cloned().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let mut c = Counter::default();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);

        let mut g = Gauge::default();
        g.set(5);
        g.set(-3);
        assert_eq!(g.get(), -3);
        assert_eq!(g.high_water(), 5);
    }

    #[test]
    fn histogram_bucket_boundaries_are_powers_of_two() {
        // Exactly at each power of two a value moves up one bucket.
        assert_eq!(Log2Histogram::bucket_index(0), 0);
        assert_eq!(Log2Histogram::bucket_index(1), 1);
        assert_eq!(Log2Histogram::bucket_index(2), 2);
        assert_eq!(Log2Histogram::bucket_index(3), 2);
        assert_eq!(Log2Histogram::bucket_index(4), 3);
        assert_eq!(Log2Histogram::bucket_index(7), 3);
        assert_eq!(Log2Histogram::bucket_index(8), 4);
        for i in 1..BUCKETS - 1 {
            let (lo, hi) = Log2Histogram::bucket_bounds(i);
            assert_eq!(Log2Histogram::bucket_index(lo), i, "low edge of {i}");
            assert_eq!(Log2Histogram::bucket_index(hi - 1), i, "high edge of {i}");
            assert_eq!(Log2Histogram::bucket_index(hi), i + 1, "next bucket");
        }
    }

    #[test]
    fn histogram_top_bucket_saturates() {
        let mut h = Log2Histogram::new();
        let (top_lo, top_hi) = Log2Histogram::bucket_bounds(BUCKETS - 1);
        assert_eq!(top_hi, u64::MAX);
        h.observe(top_lo);
        h.observe(u64::MAX);
        assert_eq!(h.bucket_count(BUCKETS - 1), 2);
        assert_eq!(h.max(), u64::MAX);
        // Sum saturates instead of wrapping.
        assert_eq!(h.sum(), u64::MAX);
    }

    #[test]
    fn histogram_aggregates_and_quantiles() {
        let mut h = Log2Histogram::new();
        for v in 1..=1000u64 {
            h.observe(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 500_500);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 500.5).abs() < 1e-9);
        // Median of 1..=1000 lies in bucket [256, 512); the conservative
        // estimate is that bucket's upper bound.
        let med = h.quantile_upper_bound(0.5);
        assert!((256..=511).contains(&med), "median bound {med}");
        assert_eq!(h.quantile_upper_bound(1.0), 1000);
        assert_eq!(Log2Histogram::new().quantile_upper_bound(0.5), 0);
    }

    #[test]
    fn histogram_merge_adds_everything() {
        let mut a = Log2Histogram::new();
        let mut b = Log2Histogram::new();
        a.observe(3);
        b.observe(100);
        b.observe(0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 103);
        assert_eq!(a.max(), 100);
        assert_eq!(a.bucket_count(0), 1);
    }

    #[test]
    fn snapshot_renders_flat_json_fields() {
        let mut g = Gauge::default();
        g.set(4);
        g.set(2);
        let mut h = Log2Histogram::new();
        h.observe(5);
        let mut s = Snapshot::new();
        s.record_counter("events", 12);
        s.record_gauge("queue", g);
        s.record_histogram("depth", &h);
        let mut out = String::new();
        s.write_json_fields(&mut out, true);
        assert_eq!(
            out,
            "\"events\":12,\"queue\":2,\"queue_hw\":4,\
             \"depth\":{\"count\":1,\"sum\":5,\"max\":5,\"buckets\":[[3,1]]}"
        );
    }

    #[test]
    fn wall_entries_are_excluded_from_deterministic_renderings() {
        let mut h = Log2Histogram::new();
        h.observe(7);
        let mut s = Snapshot::new();
        s.record_counter("events", 1);
        s.record_wall_histogram("dispatch_ns", &h);
        let mut det = String::new();
        s.write_json_fields(&mut det, true);
        assert_eq!(det, "\"events\":1");
        let mut full = String::new();
        s.write_json_fields(&mut full, false);
        assert!(full.contains("dispatch_ns"));
        assert_eq!(s.deterministic().entries().len(), 1);
    }

    #[test]
    fn protocol_metrics_fold_and_merge() {
        let mut a = ProtocolMetrics::default();
        a.pushes.add(3);
        a.ihaves.inc();
        let mut b = ProtocolMetrics::default();
        b.pushes.inc();
        b.pull_requests.inc();
        a.merge(&b);
        assert_eq!(a.pushes.get(), 4);
        assert_eq!(a.ihaves.get(), 1);
        assert_eq!(a.pull_requests.get(), 1);
        let mut s = Snapshot::new();
        a.snapshot_into(&mut s);
        assert_eq!(s.entries().len(), 7);
        assert!(s.entries().iter().all(|e| !e.wall));
    }
}
