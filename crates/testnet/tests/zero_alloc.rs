//! Proof that the batched wire path performs zero heap allocations at
//! steady state.
//!
//! A counting global allocator tallies every allocation made by this
//! thread. After one warm-up round grows the [`BatchBuffer`]'s slots,
//! the [`RecvBatch`]'s buffers, and each slot's capacity to their
//! high-water mark, pumping framed protocol datagrams out through
//! `sendmmsg` batches and back in through `recvmmsg` must not allocate
//! at all: payloads are encoded straight into reused slots
//! ([`gocast::encode_into`]), receive buffers are recycled, and the
//! mmsg header/iovec arrays live on the stack.
//!
//! This file is its own test binary (run on one thread per test) so the
//! counter sees only the workload under measurement.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::net::{Ipv4Addr, SocketAddr, UdpSocket};

use gocast::GoCastMsg;
use gocast_testnet::{loopback_available, BatchBuffer, BatchMode, FabricStats, RecvBatch};

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

struct CountingAlloc;

// SAFETY: defers to `System` for all operations; only bumps a plain
// thread-local counter (no allocation, no drop glue) on the way through.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCS.with(|c| c.get())
}

fn skip() -> bool {
    if loopback_available() {
        false
    } else {
        eprintln!("skipping: loopback UDP unavailable in this environment");
        true
    }
}

/// One round: gather `per_round` framed protocol datagrams into the
/// batch, flush them in one `sendmmsg` (or portable loop), then drain
/// the receiving socket. Returns how many datagrams arrived.
#[allow(clippy::too_many_arguments)]
fn pump_round(
    batch: &mut BatchBuffer,
    recv: &mut RecvBatch,
    tx: &UdpSocket,
    rx: &UdpSocket,
    dest: SocketAddr,
    mode: &mut BatchMode,
    stats: &mut FabricStats,
    per_round: usize,
) -> u64 {
    // The same framing discipline `FabricIo::send` uses: a 5-byte
    // transport header plus the codec bytes, written in place.
    let msg = GoCastMsg::JoinRequest;
    for _ in 0..per_round {
        let full = batch.push_with(dest, |buf| {
            buf.push(0xD0);
            buf.extend_from_slice(&7u32.to_le_bytes());
            gocast::encode_into(&msg, buf);
        });
        if full {
            batch.flush(tx, mode, stats);
        }
    }
    batch.flush(tx, mode, stats);

    let mut got_total = 0u64;
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
    while got_total < per_round as u64 && std::time::Instant::now() < deadline {
        let got = recv.recv(rx, mode, stats);
        for i in 0..got {
            let (_, bytes) = recv.datagram(i);
            assert_eq!(bytes[0], 0xD0, "frame tag survived the trip");
        }
        got_total += got as u64;
        if got == 0 {
            std::hint::spin_loop();
        }
    }
    got_total
}

fn steady_state_does_not_allocate(mut mode: BatchMode) {
    let tx = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
    let rx = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
    rx.set_nonblocking(true).unwrap();
    let dest = rx.local_addr().unwrap();

    let mut batch = BatchBuffer::new();
    let mut recv = RecvBatch::new();
    let mut stats = FabricStats::default();
    const PER_ROUND: usize = 32;

    // Warm-up: grows batch slots, receive buffers, and slot capacities.
    let warmed = pump_round(
        &mut batch, &mut recv, &tx, &rx, dest, &mut mode, &mut stats, PER_ROUND,
    );
    assert_eq!(warmed, PER_ROUND as u64, "warm-up round lost datagrams");

    let allocs_before = allocations();
    let mut moved = 0u64;
    for _ in 0..64 {
        moved += pump_round(
            &mut batch, &mut recv, &tx, &rx, dest, &mut mode, &mut stats, PER_ROUND,
        );
    }
    let allocs = allocations() - allocs_before;

    assert!(moved >= 2000, "workload too small: {moved} datagrams");
    assert_eq!(
        allocs, 0,
        "steady-state batched wire path allocated {allocs} times over {moved} datagrams"
    );
    assert_eq!(stats.datagrams_sent, stats.datagrams_received);
    assert!(stats.bytes_sent > 0);
}

#[test]
fn batched_send_recv_path_does_not_allocate() {
    if skip() {
        return;
    }
    steady_state_does_not_allocate(BatchMode::detect());
}

#[test]
fn portable_send_recv_path_does_not_allocate() {
    if skip() {
        return;
    }
    steady_state_does_not_allocate(BatchMode::Portable);
}
