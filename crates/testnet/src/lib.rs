//! `gocast-testnet`: a process-local deployment fabric for GoCast.
//!
//! The simulation kernel (`gocast-sim`) runs the protocol in virtual
//! time; `gocast-udp` hosts a *single* node on a real socket. This crate
//! closes the gap between them: it spins up N GoCast nodes inside one
//! process, each on its own non-blocking loopback [`std::net::UdpSocket`],
//! driven by a hand-rolled synchronous event loop (sockets + the
//! [`gocast_udp::TimerWheel`] scheduler — no async runtime). On top of
//! that fabric it layers the pieces a real deployment study needs:
//!
//! - **Seed bootstrap** ([`bootstrap`]): nodes start knowing only the
//!   seed nodes' addresses and discover the rest at runtime through a
//!   tiny WHOHAS/PEER side protocol, replacing `gocast-udp`'s static
//!   `AddressBook`.
//! - **Chaos parity** ([`impair`]): the same compiled
//!   [`gocast_sim::scenario::ScenarioPlan`]s the PR-4 chaos engine runs
//!   in simulation replay against the real sockets — loss, jitter,
//!   partitions, link cuts, crash/leave/join.
//! - **Wire-side tracing**: every protocol event a node emits is captured
//!   with fabric-monotonic time and rendered in the PR-2 JSONL trace
//!   format, so `gocast_analysis::trace` (including the
//!   `InvariantOracle`) audits real-socket runs unchanged.
//! - **Sim-vs-wire conformance** ([`conformance`]): a differential
//!   harness that runs the same workload through the simulator and the
//!   testnet and compares delivery ratio, hop histograms, and
//!   tree-vs-pull recovery fractions within stated tolerances.
//! - **A batched, sharded wire path** ([`batch`]): outbound datagrams
//!   gather into `sendmmsg` batches and inbound traffic drains through
//!   `recvmmsg` (portable one-at-a-time fallback at runtime), while
//!   [`TestnetConfig::shards`] partitions nodes across OS threads, each
//!   owning its slice's sockets and timers. Steady-state framing
//!   allocates nothing.
//!
//! # Quick start
//!
//! ```no_run
//! use std::time::Duration;
//! use gocast_sim::{NodeId, SimTime};
//! use gocast::GoCastCommand;
//! use gocast_testnet::{Testnet, TestnetConfig};
//!
//! let cfg = TestnetConfig::new(8).with_seed(7);
//! let mut net = Testnet::build_bootstrap(&cfg).unwrap();
//! // Let the overlay and tree form, then multicast from node 3.
//! net.schedule_command(
//!     SimTime::from_secs(3),
//!     NodeId::new(3),
//!     GoCastCommand::Multicast,
//! );
//! net.run_for(Duration::from_secs(5));
//! let jsonl = net.trace_jsonl(); // feed to gocast-analysis
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod batch;
pub mod bootstrap;
pub mod conformance;
mod fabric;
pub mod impair;
mod shard;

pub use batch::{BatchBuffer, BatchMode, RecvBatch};
pub use bootstrap::PeerTable;
pub use conformance::{ConformanceOptions, ConformanceReport, SideReport};
pub use fabric::{FabricStats, Testnet, TestnetConfig};
pub use impair::{Impairments, Verdict};

use std::net::{Ipv4Addr, UdpSocket};
use std::time::Duration;

use gocast::GoCastConfig;

/// The protocol configuration testnet runs default to: the same
/// wall-clock-friendly cadences `gocast-udp`'s deployment tests use, so a
/// tree forms within a few seconds of real time.
pub fn deployment_config() -> GoCastConfig {
    GoCastConfig {
        gossip_period: Duration::from_millis(50),
        maintenance_period: Duration::from_millis(50),
        heartbeat_period: Duration::from_millis(500),
        idle_gossip_interval: Duration::from_millis(300),
        landmark_count: 2,
        ..Default::default()
    }
}

/// Whether this environment can bind loopback UDP sockets at all.
/// Socket-dependent tests and CI steps skip gracefully when it cannot
/// (some sandboxes forbid any socket creation).
pub fn loopback_available() -> bool {
    UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).is_ok()
}
