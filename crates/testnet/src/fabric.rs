//! The deployment fabric: N GoCast nodes on loopback UDP, one thread.
//!
//! Each node gets its own non-blocking [`UdpSocket`] bound to an ephemeral
//! `127.0.0.1` port, its own deterministic RNG, and its own
//! [`TimerWheel`] (the scheduler shared with `gocast-udp`'s single-node
//! host). A single synchronous event loop drives all of them:
//!
//! 1. replay due [`ScenarioPlan`] faults into the impairment shim /
//!    protocol commands;
//! 2. fire due protocol commands scheduled by the harness;
//! 3. fire due timers per node;
//! 4. release impairment-delayed datagrams whose hold expired;
//! 5. drain every socket (`recv_from` until `WouldBlock`), decode the
//!    transport frame, learn the sender's address, and dispatch;
//! 6. if the iteration did no work, sleep until the earliest known
//!    deadline (capped at 500 µs, since loopback arrivals cannot
//!    interrupt a sleep).
//!
//! The protocol sees fabric-monotonic [`SimTime`] (zero at the first
//! `run_for` call), which makes the wire-side trace directly consumable
//! by the PR-2 analysis pipeline.

use std::collections::BinaryHeap;
use std::net::{Ipv4Addr, SocketAddr, UdpSocket};
use std::time::{Duration, Instant};

use gocast::{decode, encode, GoCastCommand, GoCastConfig, GoCastEvent, GoCastMsg, GoCastNode};
use gocast_metrics::{Gauge, Log2Histogram, Snapshot};
use gocast_sim::scenario::{Fault, PlannedFault, ScenarioPlan};
use gocast_sim::{
    Ctx, FxHashMap, HostBackend, NodeId, Protocol, Recorder, SimTime, Timer, TraceRecorder,
};
use gocast_udp::TimerWheel;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::bootstrap::{decode_frame, encode_data, encode_peer, encode_whohas, Frame, PeerTable};
use crate::impair::{Impairments, Verdict};

/// Messages queued per unknown peer before the oldest is dropped.
const PENDING_CAP: usize = 64;
/// Outstanding who-has questions a node remembers on behalf of others.
const WANTED_CAP: usize = 256;
/// Idle-sleep cap: loopback arrivals cannot interrupt a sleep, so the
/// loop never sleeps longer than this past "nothing to do".
const IDLE_POLL: Duration = Duration::from_micros(500);

/// How a fabric is laid out: node count, how many of them are bootstrap
/// seeds, the run seed, and the protocol configuration.
#[derive(Debug, Clone)]
pub struct TestnetConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// The first `seed_count` nodes are bootstrap seeds: their addresses
    /// are the only ones every node is configured with.
    pub seed_count: usize,
    /// Run seed (per-node RNGs and the impairment stream derive from it).
    pub seed: u64,
    /// Protocol configuration (defaults to [`crate::deployment_config`]).
    pub protocol: GoCastConfig,
}

impl TestnetConfig {
    /// A fabric of `nodes` nodes with deployment cadences, seed 42, and
    /// `min(3, nodes)` bootstrap seeds.
    pub fn new(nodes: usize) -> Self {
        TestnetConfig {
            nodes,
            seed_count: nodes.min(3),
            seed: 42,
            protocol: crate::deployment_config(),
        }
    }

    /// Replaces the run seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Wire-side counters, separate from the protocol's own
/// [`gocast::ProtocolCounters`].
#[derive(Debug, Clone, Copy, Default)]
pub struct FabricStats {
    /// Datagrams handed to the OS (`send_to` calls that did not error).
    pub datagrams_sent: u64,
    /// Datagrams read off sockets.
    pub datagrams_received: u64,
    /// GoCast protocol messages decoded and dispatched.
    pub wire_msgs: u64,
    /// `send_to` syscalls attempted (including ones the OS rejected).
    pub sendto_calls: u64,
    /// `recv_from` syscalls attempted (including `WouldBlock` returns).
    pub recvfrom_calls: u64,
    /// Payload bytes handed to the OS on successful sends.
    pub bytes_sent: u64,
    /// Payload bytes read off sockets.
    pub bytes_received: u64,
    /// Datagrams dropped by injected loss.
    pub dropped_loss: u64,
    /// Datagrams dropped crossing a partition.
    pub dropped_partition: u64,
    /// Datagrams dropped on a cut link.
    pub dropped_cut: u64,
    /// Datagrams dropped to/from crashed nodes.
    pub dropped_crashed: u64,
    /// Datagrams held back by injected jitter.
    pub delayed: u64,
    /// Address queries sent (bootstrap discovery).
    pub whohas_sent: u64,
    /// Address answers sent.
    pub peer_replies: u64,
    /// Protocol sends dropped because the peer address stayed unknown.
    pub unresolved_dropped: u64,
    /// Datagrams that failed transport-frame or codec decoding.
    pub malformed: u64,
}

/// Event-loop health beyond raw counters: distribution shapes and queue
/// depths. All of it is wall-clock flavoured (the fabric runs in real
/// time), so the histograms are flagged `wall` in snapshots.
#[derive(Debug, Default)]
struct FabricTelemetry {
    /// Datagrams drained across all sockets per event-loop iteration.
    datagrams_per_poll: Log2Histogram,
    /// How late each timer fired relative to its deadline, in ns.
    timer_lateness_ns: Log2Histogram,
    /// Datagrams queued fabric-wide awaiting address resolution.
    pending_depth: Gauge,
    /// Outstanding who-has questions remembered fabric-wide.
    wanted_depth: Gauge,
}

/// A datagram held back by the jitter impairment.
#[derive(Debug)]
struct DelayedDatagram {
    release_at: Instant,
    seq: u64,
    from_index: usize,
    dest: SocketAddr,
    bytes: Vec<u8>,
}

impl PartialEq for DelayedDatagram {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl Eq for DelayedDatagram {}
impl PartialOrd for DelayedDatagram {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for DelayedDatagram {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.release_at, other.seq).cmp(&(self.release_at, self.seq))
    }
}

/// One hosted node: protocol state machine plus its transport state.
#[derive(Debug)]
struct NodeSlot {
    node: GoCastNode,
    socket: UdpSocket,
    addr: SocketAddr,
    rng: SmallRng,
    timers: TimerWheel,
    peers: PeerTable,
    /// Framed datagrams awaiting address resolution, per unknown peer.
    pending: FxHashMap<NodeId, Vec<Vec<u8>>>,
    /// Questions this node could not answer yet: target → askers.
    wanted: FxHashMap<NodeId, Vec<(NodeId, SocketAddr)>>,
    wanted_len: usize,
}

/// The process-local deployment fabric. See the [crate docs](crate).
#[derive(Debug)]
pub struct Testnet {
    epoch: Instant,
    started: bool,
    nodes: Vec<NodeSlot>,
    impair: Impairments,
    plan: Vec<PlannedFault>,
    plan_next: usize,
    cmds: Vec<(SimTime, NodeId, GoCastCommand)>,
    cmds_next: usize,
    delayed: BinaryHeap<DelayedDatagram>,
    delayed_seq: u64,
    trace: Vec<(SimTime, NodeId, GoCastEvent)>,
    stats: FabricStats,
    telemetry: FabricTelemetry,
}

impl Testnet {
    /// Binds `cfg.nodes` loopback sockets and builds one node per slot
    /// via `make` (which receives the node's id and must apply
    /// `cfg.protocol` itself, mirroring `SimBuilder::build_with`).
    ///
    /// # Errors
    ///
    /// Propagates socket binding errors (e.g. no loopback available).
    pub fn build(
        cfg: &TestnetConfig,
        mut make: impl FnMut(NodeId) -> GoCastNode,
    ) -> std::io::Result<Self> {
        assert!(cfg.nodes > 0, "a testnet needs at least one node");
        assert!(
            (1..=cfg.nodes).contains(&cfg.seed_count),
            "seed_count must be in 1..=nodes"
        );
        let sockets: Vec<(UdpSocket, SocketAddr)> = (0..cfg.nodes)
            .map(|_| {
                let s = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0))?;
                s.set_nonblocking(true)?;
                let a = s.local_addr()?;
                Ok((s, a))
            })
            .collect::<std::io::Result<_>>()?;
        let seeds: Vec<(NodeId, SocketAddr)> = sockets[..cfg.seed_count]
            .iter()
            .enumerate()
            .map(|(i, (_, a))| (NodeId::new(i as u32), *a))
            .collect();
        let nodes = sockets
            .into_iter()
            .enumerate()
            .map(|(i, (socket, addr))| {
                let id = NodeId::new(i as u32);
                let mut peers = PeerTable::new(seeds.clone());
                peers.learn(id, addr); // a node always knows itself
                NodeSlot {
                    node: make(id),
                    socket,
                    addr,
                    // Same per-node stream derivation as `SimBuilder`.
                    rng: SmallRng::seed_from_u64(
                        cfg.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ i as u64,
                    ),
                    timers: TimerWheel::new(),
                    peers,
                    pending: FxHashMap::default(),
                    wanted: FxHashMap::default(),
                    wanted_len: 0,
                }
            })
            .collect();
        Ok(Testnet {
            epoch: Instant::now(),
            started: false,
            nodes,
            impair: Impairments::new(cfg.nodes, cfg.seed),
            plan: Vec::new(),
            plan_next: 0,
            cmds: Vec::new(),
            cmds_next: 0,
            delayed: BinaryHeap::new(),
            delayed_seq: 0,
            trace: Vec::new(),
            stats: FabricStats::default(),
            telemetry: FabricTelemetry::default(),
        })
    }

    /// Builds a fabric whose nodes start from the paper's bootstrap state
    /// (random graph + partial member views), the same construction the
    /// simulation experiments use — only addresses are learned at runtime.
    ///
    /// # Errors
    ///
    /// Propagates socket binding errors.
    pub fn build_bootstrap(cfg: &TestnetConfig) -> std::io::Result<Self> {
        let links = (cfg.protocol.c_degree() / 2)
            .max(1)
            .min(cfg.nodes.saturating_sub(1));
        let mut boot = gocast::bootstrap_random_graph(cfg.nodes, links, cfg.seed ^ 0xB007);
        let protocol = cfg.protocol.clone();
        Testnet::build(cfg, move |id| {
            let (links, members) = boot(id);
            GoCastNode::with_initial_links(id, protocol.clone(), links, members)
        })
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the fabric is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Fabric-monotonic time: zero at the first [`Testnet::run_for`].
    pub fn now(&self) -> SimTime {
        SimTime::from_nanos(self.epoch.elapsed().as_nanos() as u64)
    }

    /// The hosted protocol state machine of `id` (inspect between runs).
    pub fn node(&self, id: NodeId) -> &GoCastNode {
        &self.nodes[id.index()].node
    }

    /// Iterates over all hosted nodes.
    pub fn iter_nodes(&self) -> impl Iterator<Item = &GoCastNode> {
        self.nodes.iter().map(|s| &s.node)
    }

    /// The socket address `id` is bound to.
    pub fn addr_of(&self, id: NodeId) -> SocketAddr {
        self.nodes[id.index()].addr
    }

    /// How many peer addresses `id` has learned so far.
    pub fn known_peers(&self, id: NodeId) -> usize {
        self.nodes[id.index()].peers.known()
    }

    /// Whether `id` was crashed by a scenario fault.
    pub fn is_crashed(&self, id: NodeId) -> bool {
        self.impair.is_crashed(id)
    }

    /// Wire-side counters.
    pub fn stats(&self) -> &FabricStats {
        &self.stats
    }

    /// A [`Snapshot`] of the fabric's wire-side metrics under `fabric_*`
    /// names: syscall/datagram/byte counters, per-poll drain and
    /// timer-lateness distributions, and discovery queue depths. The
    /// histograms are wall-clock flavoured and flagged accordingly.
    pub fn metrics_snapshot(&self) -> Snapshot {
        let mut snap = Snapshot::new();
        let s = &self.stats;
        snap.record_counter("fabric_sendto_calls", s.sendto_calls);
        snap.record_counter("fabric_recvfrom_calls", s.recvfrom_calls);
        snap.record_counter("fabric_datagrams_sent", s.datagrams_sent);
        snap.record_counter("fabric_datagrams_received", s.datagrams_received);
        snap.record_counter("fabric_bytes_sent", s.bytes_sent);
        snap.record_counter("fabric_bytes_received", s.bytes_received);
        snap.record_counter("fabric_wire_msgs", s.wire_msgs);
        snap.record_counter("fabric_delayed", s.delayed);
        snap.record_counter("fabric_dropped_loss", s.dropped_loss);
        snap.record_counter("fabric_dropped_partition", s.dropped_partition);
        snap.record_counter("fabric_dropped_cut", s.dropped_cut);
        snap.record_counter("fabric_dropped_crashed", s.dropped_crashed);
        snap.record_counter("fabric_whohas_sent", s.whohas_sent);
        snap.record_counter("fabric_peer_replies", s.peer_replies);
        snap.record_counter("fabric_unresolved_dropped", s.unresolved_dropped);
        snap.record_counter("fabric_malformed", s.malformed);
        snap.record_gauge("fabric_pending_depth", self.telemetry.pending_depth);
        snap.record_gauge("fabric_wanted_depth", self.telemetry.wanted_depth);
        snap.record_wall_histogram(
            "fabric_datagrams_per_poll",
            &self.telemetry.datagrams_per_poll,
        );
        snap.record_wall_histogram(
            "fabric_timer_fire_lateness_ns",
            &self.telemetry.timer_lateness_ns,
        );
        snap
    }

    /// The captured protocol event trace, stamped with fabric time.
    pub fn trace(&self) -> &[(SimTime, NodeId, GoCastEvent)] {
        &self.trace
    }

    /// Renders the captured trace as PR-2 JSONL bytes — byte-compatible
    /// with what `gocast_sim::TraceRecorder` writes for simulated runs, so
    /// `gocast_analysis::trace::{scan_trace, InvariantOracle}` consume it
    /// unchanged.
    pub fn trace_jsonl(&self) -> Vec<u8> {
        let mut rec = TraceRecorder::new(Vec::new());
        for (t, n, e) in &self.trace {
            rec.record(*t, *n, e.clone());
        }
        rec.finish().expect("in-memory sink cannot fail")
    }

    /// Schedules a protocol command at fabric time `at` (commands due in
    /// the past fire on the next loop iteration).
    pub fn schedule_command(&mut self, at: SimTime, node: NodeId, cmd: GoCastCommand) {
        assert!(
            self.cmds_next == 0 || at >= self.cmds[self.cmds_next - 1].0,
            "cannot schedule a command before already-fired ones"
        );
        self.cmds.push((at, node, cmd));
        self.cmds[self.cmds_next..].sort_by_key(|(t, n, _)| (*t, n.as_u32()));
    }

    /// Attaches a compiled scenario: its faults replay against the real
    /// sockets at their planned (fabric-relative) times. Compile the plan
    /// with `ScenarioEnv::starting_at` to offset it into the run.
    ///
    /// # Panics
    ///
    /// Panics if the plan was compiled for a different node count.
    pub fn attach_plan(&mut self, plan: &ScenarioPlan) {
        assert_eq!(
            plan.nodes(),
            self.nodes.len(),
            "plan was compiled for a different node count"
        );
        self.plan.extend(plan.events().iter().cloned());
        self.plan[self.plan_next..].sort_by_key(|f| f.at);
    }

    fn instant_of(&self, t: SimTime) -> Instant {
        self.epoch + Duration::from_nanos(t.as_nanos())
    }

    /// Runs every node's `on_start` once; fabric time zero is here.
    fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        self.epoch = Instant::now();
        for i in 0..self.nodes.len() {
            self.with_ctx(i, |n, ctx| n.on_start(ctx));
        }
    }

    /// Runs the fabric for `duration` of wall-clock time. Callable
    /// repeatedly; `on_start` fires on the first call.
    pub fn run_for(&mut self, duration: Duration) {
        self.start();
        let deadline = Instant::now() + duration;
        let mut buf = [0u8; 65536];
        loop {
            let now_i = Instant::now();
            if now_i >= deadline {
                return;
            }
            let now_s = self.now();
            let sent_before = self.stats.datagrams_sent + self.stats.delayed;
            let mut activity = false;

            // 1. Planned scenario faults.
            while self.plan_next < self.plan.len() && self.plan[self.plan_next].at <= now_s {
                let fault = self.plan[self.plan_next].fault.clone();
                self.plan_next += 1;
                self.apply_fault(fault);
                activity = true;
            }
            // 2. Scheduled protocol commands.
            while self.cmds_next < self.cmds.len() && self.cmds[self.cmds_next].0 <= now_s {
                let (_, id, cmd) = self.cmds[self.cmds_next];
                self.cmds_next += 1;
                if !self.impair.is_crashed(id) {
                    self.with_ctx(id.index(), |n, ctx| n.on_command(ctx, cmd));
                }
                activity = true;
            }
            // 3. Due timers, per node.
            for i in 0..self.nodes.len() {
                if self.impair.is_crashed(NodeId::new(i as u32)) {
                    continue;
                }
                while let Some(deadline) = self.nodes[i].timers.next_deadline() {
                    let Some(timer) = self.nodes[i].timers.pop_due(now_i) else {
                        break;
                    };
                    self.telemetry
                        .timer_lateness_ns
                        .observe(now_i.saturating_duration_since(deadline).as_nanos() as u64);
                    self.with_ctx(i, |n, ctx| n.on_timer(ctx, timer));
                    activity = true;
                }
            }
            // 4. Jitter-delayed datagrams whose hold expired.
            while let Some(d) = self.delayed.peek() {
                if d.release_at > now_i {
                    break;
                }
                let d = self.delayed.pop().expect("peeked");
                self.stats.sendto_calls += 1;
                if self.nodes[d.from_index]
                    .socket
                    .send_to(&d.bytes, d.dest)
                    .is_ok()
                {
                    self.stats.datagrams_sent += 1;
                    self.stats.bytes_sent += d.bytes.len() as u64;
                }
                activity = true;
            }
            // 5. Drain every socket.
            let mut drained = 0u64;
            for i in 0..self.nodes.len() {
                if self.impair.is_crashed(NodeId::new(i as u32)) {
                    continue;
                }
                loop {
                    self.stats.recvfrom_calls += 1;
                    match self.nodes[i].socket.recv_from(&mut buf) {
                        Ok((len, src)) => {
                            activity = true;
                            drained += 1;
                            self.stats.bytes_received += len as u64;
                            self.on_datagram(i, src, &buf[..len]);
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(_) => break, // transient; UDP semantics
                    }
                }
            }

            activity |= (self.stats.datagrams_sent + self.stats.delayed) != sent_before;
            if activity {
                self.telemetry.datagrams_per_poll.observe(drained);
                let (mut pending, mut wanted) = (0i64, 0i64);
                for slot in &self.nodes {
                    pending += slot.pending.values().map(Vec::len).sum::<usize>() as i64;
                    wanted += slot.wanted_len as i64;
                }
                self.telemetry.pending_depth.set(pending);
                self.telemetry.wanted_depth.set(wanted);
                continue;
            }
            // 6. Idle: sleep until the earliest deadline we know about.
            let mut next = deadline;
            if let Some(f) = self.plan.get(self.plan_next) {
                next = next.min(self.instant_of(f.at));
            }
            if let Some((t, _, _)) = self.cmds.get(self.cmds_next) {
                next = next.min(self.instant_of(*t));
            }
            if let Some(d) = self.delayed.peek() {
                next = next.min(d.release_at);
            }
            for slot in &mut self.nodes {
                if let Some(t) = slot.timers.next_deadline() {
                    next = next.min(t);
                }
            }
            let wait = next
                .saturating_duration_since(Instant::now())
                .min(IDLE_POLL);
            if !wait.is_zero() {
                std::thread::sleep(wait);
            }
        }
    }

    /// Replays one planned fault: network faults go to the impairment
    /// shim, node faults become crash marks or protocol commands — the
    /// same split `ScenarioPlan::schedule_into` performs for the kernel.
    fn apply_fault(&mut self, fault: Fault) {
        match fault {
            Fault::Crash(id) => self.impair.set_crashed(id),
            Fault::Leave(id) => {
                if !self.impair.is_crashed(id) {
                    self.with_ctx(id.index(), |n, ctx| n.on_command(ctx, GoCastCommand::Leave));
                }
            }
            Fault::Join { node, contact } => {
                if !self.impair.is_crashed(node) {
                    self.with_ctx(node.index(), |n, ctx| {
                        n.on_command(ctx, GoCastCommand::Join { contact })
                    });
                }
            }
            net => {
                self.impair.apply(&net);
            }
        }
    }

    /// Handles one received datagram for node `i`.
    fn on_datagram(&mut self, i: usize, src: SocketAddr, data: &[u8]) {
        self.stats.datagrams_received += 1;
        let Some(frame) = decode_frame(data) else {
            self.stats.malformed += 1;
            return;
        };
        match frame {
            Frame::Data { sender, payload } => {
                let msg = match decode(payload) {
                    Ok(m) => m,
                    Err(_) => {
                        self.stats.malformed += 1;
                        return;
                    }
                };
                if self.nodes[i].peers.learn(sender, src) {
                    self.on_learned(i, sender);
                }
                self.stats.wire_msgs += 1;
                self.with_ctx(i, |n, ctx| n.on_message(ctx, sender, msg));
            }
            Frame::WhoHas { sender, target } => {
                if self.nodes[i].peers.learn(sender, src) {
                    self.on_learned(i, sender);
                }
                match self.nodes[i].peers.addr_of(target) {
                    Some(addr) => self.answer_whohas(i, sender, src, target, addr),
                    None => {
                        // Remember the question; answer when the target
                        // first contacts us (bounded memory).
                        let slot = &mut self.nodes[i];
                        if slot.wanted_len < WANTED_CAP {
                            slot.wanted.entry(target).or_default().push((sender, src));
                            slot.wanted_len += 1;
                        }
                    }
                }
            }
            Frame::Peer { sender, peer, addr } => {
                if self.nodes[i].peers.learn(sender, src) {
                    self.on_learned(i, sender);
                }
                if self.nodes[i].peers.learn(peer, addr) {
                    self.on_learned(i, peer);
                }
            }
        }
    }

    /// Node `i` just learned `peer`'s address: flush datagrams queued for
    /// it and answer anyone who asked where it lives.
    fn on_learned(&mut self, i: usize, peer: NodeId) {
        let Some(addr) = self.nodes[i].peers.addr_of(peer) else {
            return;
        };
        if let Some(queue) = self.nodes[i].pending.remove(&peer) {
            for bytes in queue {
                self.transmit_from(i, peer, addr, bytes);
            }
        }
        if let Some(askers) = self.nodes[i].wanted.remove(&peer) {
            self.nodes[i].wanted_len -= askers.len();
            for (asker, asker_addr) in askers {
                self.answer_whohas(i, asker, asker_addr, peer, addr);
            }
        }
    }

    fn answer_whohas(
        &mut self,
        i: usize,
        asker: NodeId,
        asker_addr: SocketAddr,
        target: NodeId,
        target_addr: SocketAddr,
    ) {
        let me = self.nodes[i].node.id();
        if let Some(bytes) = encode_peer(me, target, target_addr) {
            self.stats.peer_replies += 1;
            self.transmit_from(i, asker, asker_addr, bytes);
        }
    }

    /// Sends pre-framed bytes from node `i` to `to`, through the
    /// impairment shim.
    fn transmit_from(&mut self, i: usize, to: NodeId, dest: SocketAddr, bytes: Vec<u8>) {
        let from = self.nodes[i].node.id();
        transmit(
            &self.nodes[i].socket,
            i,
            from,
            to,
            dest,
            bytes,
            &mut self.impair,
            &mut self.delayed,
            &mut self.delayed_seq,
            &mut self.stats,
        );
    }

    /// Runs a protocol handler for node `i` with a fabric-backed context.
    fn with_ctx<F>(&mut self, i: usize, f: F)
    where
        F: FnOnce(&mut GoCastNode, &mut Ctx<'_, GoCastNode>),
    {
        let node_count = self.nodes.len();
        let now = self.now();
        let Testnet {
            nodes,
            impair,
            delayed,
            delayed_seq,
            trace,
            stats,
            ..
        } = self;
        let slot = &mut nodes[i];
        let id = slot.node.id();
        let mut io = FabricIo {
            id,
            from_index: i,
            now,
            node_count,
            socket: &slot.socket,
            peers: &mut slot.peers,
            pending: &mut slot.pending,
            timers: &mut slot.timers,
            impair,
            delayed,
            delayed_seq,
            trace,
            stats,
        };
        let mut ctx = Ctx::for_host(id, now, &mut slot.rng, &mut io);
        f(&mut slot.node, &mut ctx);
    }
}

/// Shared transmit path: every outgoing datagram — protocol data,
/// discovery queries, discovery answers, flushed backlogs — passes the
/// impairment shim exactly once.
#[allow(clippy::too_many_arguments)]
fn transmit(
    socket: &UdpSocket,
    from_index: usize,
    from: NodeId,
    to: NodeId,
    dest: SocketAddr,
    bytes: Vec<u8>,
    impair: &mut Impairments,
    delayed: &mut BinaryHeap<DelayedDatagram>,
    delayed_seq: &mut u64,
    stats: &mut FabricStats,
) {
    match impair.judge(from, to) {
        Verdict::Deliver => {
            stats.sendto_calls += 1;
            if socket.send_to(&bytes, dest).is_ok() {
                stats.datagrams_sent += 1;
                stats.bytes_sent += bytes.len() as u64;
            }
        }
        Verdict::DeliverAfter(extra) => {
            *delayed_seq += 1;
            stats.delayed += 1;
            delayed.push(DelayedDatagram {
                release_at: Instant::now() + extra,
                seq: *delayed_seq,
                from_index,
                dest,
                bytes,
            });
        }
        Verdict::DropLoss => stats.dropped_loss += 1,
        Verdict::DropPartition => stats.dropped_partition += 1,
        Verdict::DropCut => stats.dropped_cut += 1,
        Verdict::DropCrashed => stats.dropped_crashed += 1,
    }
}

/// The world a protocol handler sees on the fabric.
struct FabricIo<'a> {
    id: NodeId,
    from_index: usize,
    now: SimTime,
    node_count: usize,
    socket: &'a UdpSocket,
    peers: &'a mut PeerTable,
    pending: &'a mut FxHashMap<NodeId, Vec<Vec<u8>>>,
    timers: &'a mut TimerWheel,
    impair: &'a mut Impairments,
    delayed: &'a mut BinaryHeap<DelayedDatagram>,
    delayed_seq: &'a mut u64,
    trace: &'a mut Vec<(SimTime, NodeId, GoCastEvent)>,
    stats: &'a mut FabricStats,
}

impl HostBackend<GoCastNode> for FabricIo<'_> {
    fn send(&mut self, to: NodeId, msg: GoCastMsg) {
        let framed = encode_data(self.id, &encode(&msg));
        match self.peers.addr_of(to) {
            Some(dest) => transmit(
                self.socket,
                self.from_index,
                self.id,
                to,
                dest,
                framed,
                self.impair,
                self.delayed,
                self.delayed_seq,
                self.stats,
            ),
            None => {
                // Unknown peer: queue the datagram and ask the seeds.
                let queue = self.pending.entry(to).or_default();
                if queue.len() >= PENDING_CAP {
                    queue.remove(0);
                    self.stats.unresolved_dropped += 1;
                }
                queue.push(framed);
                // Query on the first enqueue, then every eighth, so a
                // lost query is retried as protocol traffic keeps coming.
                if queue.len() % 8 == 1 {
                    let query = encode_whohas(self.id, to);
                    for (seed, seed_addr) in self.peers.seeds().to_vec() {
                        if seed == self.id {
                            continue;
                        }
                        self.stats.whohas_sent += 1;
                        transmit(
                            self.socket,
                            self.from_index,
                            self.id,
                            seed,
                            seed_addr,
                            query.clone(),
                            self.impair,
                            self.delayed,
                            self.delayed_seq,
                            self.stats,
                        );
                    }
                }
            }
        }
    }

    fn set_timer(&mut self, delay: Duration, timer: Timer) {
        self.timers.schedule(Instant::now() + delay, timer);
    }

    fn emit(&mut self, event: GoCastEvent) {
        self.trace.push((self.now, self.id, event));
    }

    fn node_count(&self) -> usize {
        self.node_count
    }
}

impl std::fmt::Display for FabricStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "sent={} recv={} msgs={} delayed={} drops(loss/part/cut/crash)={}/{}/{}/{} \
             whohas={} replies={} unresolved={} malformed={}",
            self.datagrams_sent,
            self.datagrams_received,
            self.wire_msgs,
            self.delayed,
            self.dropped_loss,
            self.dropped_partition,
            self.dropped_cut,
            self.dropped_crashed,
            self.whohas_sent,
            self.peer_replies,
            self.unresolved_dropped,
            self.malformed,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gocast_sim::scenario::{Scenario, ScenarioEnv, Split};

    fn skip() -> bool {
        if crate::loopback_available() {
            false
        } else {
            eprintln!("skipping: loopback UDP unavailable");
            true
        }
    }

    #[test]
    fn fabric_delivers_a_multicast_end_to_end() {
        if skip() {
            return;
        }
        let cfg = TestnetConfig::new(4).with_seed(9);
        let mut net = Testnet::build_bootstrap(&cfg).expect("bind loopback");
        net.schedule_command(
            SimTime::from_secs(2),
            NodeId::new(1),
            GoCastCommand::Multicast,
        );
        net.run_for(Duration::from_secs(3));
        let deliveries = net
            .trace()
            .iter()
            .filter(|(_, _, e)| matches!(e, GoCastEvent::Delivered { .. }))
            .count();
        assert_eq!(deliveries, 3, "every other node must deliver once");
        assert_eq!(net.stats().malformed, 0);
    }

    #[test]
    fn partition_plan_drops_real_datagrams_then_heals() {
        if skip() {
            return;
        }
        let cfg = TestnetConfig::new(4).with_seed(5);
        let mut net = Testnet::build_bootstrap(&cfg).expect("bind loopback");
        let scenario = Scenario::new().partition_at(
            Duration::from_secs(1),
            Duration::from_secs(2),
            Split::Halves,
        );
        let plan = scenario.compile(&ScenarioEnv::new(4, 5));
        net.attach_plan(&plan);
        net.run_for(Duration::from_millis(1500));
        let mid = net.stats().dropped_partition;
        assert!(mid > 0, "partition never dropped a datagram on the wire");
        net.run_for(Duration::from_millis(1000));
        let healed = net.stats().dropped_partition;
        net.run_for(Duration::from_millis(500));
        assert_eq!(
            net.stats().dropped_partition,
            healed,
            "partition kept dropping after its heal time"
        );
    }

    #[test]
    fn crash_fault_silences_a_node() {
        if skip() {
            return;
        }
        let cfg = TestnetConfig::new(3).with_seed(2);
        let mut net = Testnet::build_bootstrap(&cfg).expect("bind loopback");
        let scenario = Scenario::new().crash_at(Duration::from_millis(500), NodeId::new(2));
        let plan = scenario.compile(&ScenarioEnv::new(3, 2));
        net.attach_plan(&plan);
        net.run_for(Duration::from_secs(2));
        assert!(net.is_crashed(NodeId::new(2)));
        assert!(
            net.stats().dropped_crashed > 0,
            "no traffic hit the crash wall"
        );
    }
}
