//! The deployment fabric: N GoCast nodes on loopback UDP.
//!
//! Each node gets its own non-blocking [`UdpSocket`](std::net::UdpSocket)
//! bound to an ephemeral `127.0.0.1` port, its own deterministic RNG, and
//! its own `TimerWheel` (the scheduler shared with `gocast-udp`'s
//! single-node host). Nodes are partitioned round-robin across
//! [`TestnetConfig::shards`] event loops, each on its own OS thread (one
//! shard runs inline on the caller's thread). Every shard runs the same
//! synchronous loop over its slice:
//!
//! 1. replay due [`ScenarioPlan`] faults into the impairment shim /
//!    protocol commands;
//! 2. fire due protocol commands scheduled by the harness;
//! 3. fire due timers per node;
//! 4. release impairment-delayed datagrams whose hold expired;
//! 5. drain every socket in `recvmmsg` batches, decode the transport
//!    frame, learn the sender's address, and dispatch;
//! 6. flush gathered outbound datagrams in one `sendmmsg` batch; if the
//!    iteration did no work, sleep until the earliest known deadline
//!    (timer wheels *and* the jitter queue head, capped at 500 µs since
//!    loopback arrivals cannot interrupt a sleep).
//!
//! Cross-shard traffic travels over real loopback UDP like any other
//! datagram — shards share no mutable state. Recorded [`GoCastEvent`]s
//! accumulate in per-shard streams (time-sorted by construction) and are
//! merged into one trace with a deterministic stable merge after every
//! run window, the same submission-order discipline the simulator's
//! `parallel_map` uses for its shards.
//!
//! The protocol sees fabric-monotonic [`SimTime`] (zero at the first
//! `run_for` call), which makes the wire-side trace directly consumable
//! by the PR-2 analysis pipeline.

use std::net::{Ipv4Addr, SocketAddr, UdpSocket};
use std::time::{Duration, Instant};

use gocast::{GoCastCommand, GoCastConfig, GoCastEvent, GoCastNode};
use gocast_metrics::{Gauge, Snapshot};
use gocast_sim::scenario::ScenarioPlan;
use gocast_sim::{FxHashMap, NodeId, Recorder, SimTime, TraceRecorder};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::batch::BatchMode;
use crate::bootstrap::PeerTable;
use crate::shard::{NodeSlot, Shard};
use gocast_udp::TimerWheel;

pub use crate::shard::FabricStats;

/// How a fabric is laid out: node count, how many of them are bootstrap
/// seeds, the run seed, shard count, and the protocol configuration.
#[derive(Debug, Clone)]
pub struct TestnetConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// The first `seed_count` nodes are bootstrap seeds: their addresses
    /// are the only ones every node is configured with.
    pub seed_count: usize,
    /// Run seed (per-node RNGs and the impairment stream derive from it).
    pub seed: u64,
    /// Event-loop shards: nodes are partitioned `id % shards` across
    /// this many OS threads. `1` (the default) runs everything inline on
    /// the calling thread, byte-identical to the pre-shard fabric.
    pub shards: usize,
    /// Whether to record the protocol event trace (default `true`;
    /// saturation benchmarks turn it off to keep memory flat).
    pub record_trace: bool,
    /// Protocol configuration (defaults to [`crate::deployment_config`]).
    pub protocol: GoCastConfig,
}

impl TestnetConfig {
    /// A fabric of `nodes` nodes with deployment cadences, seed 42, one
    /// shard, and `min(3, nodes)` bootstrap seeds.
    pub fn new(nodes: usize) -> Self {
        TestnetConfig {
            nodes,
            seed_count: nodes.min(3),
            seed: 42,
            shards: 1,
            record_trace: true,
            protocol: crate::deployment_config(),
        }
    }

    /// Replaces the run seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the shard count (builder style); clamped to `1..=nodes` at
    /// build time.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Enables or disables protocol-event trace recording.
    pub fn with_record_trace(mut self, record: bool) -> Self {
        self.record_trace = record;
        self
    }
}

/// The process-local deployment fabric. See the [crate docs](crate).
#[derive(Debug)]
pub struct Testnet {
    epoch: Instant,
    started: bool,
    shard_count: usize,
    nodes_total: usize,
    shards: Vec<Shard>,
    trace: Vec<(SimTime, NodeId, GoCastEvent)>,
}

impl Testnet {
    /// Binds `cfg.nodes` loopback sockets and builds one node per slot
    /// via `make` (which receives the node's id and must apply
    /// `cfg.protocol` itself, mirroring `SimBuilder::build_with`).
    ///
    /// # Errors
    ///
    /// Propagates socket binding errors (e.g. no loopback available).
    pub fn build(
        cfg: &TestnetConfig,
        mut make: impl FnMut(NodeId) -> GoCastNode,
    ) -> std::io::Result<Self> {
        assert!(cfg.nodes > 0, "a testnet needs at least one node");
        assert!(
            (1..=cfg.nodes).contains(&cfg.seed_count),
            "seed_count must be in 1..=nodes"
        );
        assert!(cfg.shards > 0, "shard count must be at least 1");
        let shard_count = cfg.shards.min(cfg.nodes);
        let sockets: Vec<(UdpSocket, SocketAddr)> = (0..cfg.nodes)
            .map(|_| {
                let s = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0))?;
                s.set_nonblocking(true)?;
                let a = s.local_addr()?;
                Ok((s, a))
            })
            .collect::<std::io::Result<_>>()?;
        let seeds: Vec<(NodeId, SocketAddr)> = sockets[..cfg.seed_count]
            .iter()
            .enumerate()
            .map(|(i, (_, a))| (NodeId::new(i as u32), *a))
            .collect();
        let mut shards: Vec<Shard> = (0..shard_count)
            .map(|k| Shard::new(k, shard_count, cfg.nodes, cfg.seed, cfg.record_trace))
            .collect();
        for (i, (socket, addr)) in sockets.into_iter().enumerate() {
            let id = NodeId::new(i as u32);
            let mut peers = PeerTable::new(seeds.clone());
            peers.learn(id, addr); // a node always knows itself
            shards[i % shard_count].slots.push(NodeSlot {
                node: make(id),
                socket,
                addr,
                // Same per-node stream derivation as `SimBuilder`.
                rng: SmallRng::seed_from_u64(
                    cfg.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ i as u64,
                ),
                timers: TimerWheel::new(),
                peers,
                pending: FxHashMap::default(),
                wanted: FxHashMap::default(),
                wanted_len: 0,
            });
        }
        Ok(Testnet {
            epoch: Instant::now(),
            started: false,
            shard_count,
            nodes_total: cfg.nodes,
            shards,
            trace: Vec::new(),
        })
    }

    /// Builds a fabric whose nodes start from the paper's bootstrap state
    /// (random graph + partial member views), the same construction the
    /// simulation experiments use — only addresses are learned at runtime.
    ///
    /// # Errors
    ///
    /// Propagates socket binding errors.
    pub fn build_bootstrap(cfg: &TestnetConfig) -> std::io::Result<Self> {
        let links = (cfg.protocol.c_degree() / 2)
            .max(1)
            .min(cfg.nodes.saturating_sub(1));
        let mut boot = gocast::bootstrap_random_graph(cfg.nodes, links, cfg.seed ^ 0xB007);
        let protocol = cfg.protocol.clone();
        Testnet::build(cfg, move |id| {
            let (links, members) = boot(id);
            GoCastNode::with_initial_links(id, protocol.clone(), links, members)
        })
    }

    fn slot(&self, id: NodeId) -> &NodeSlot {
        let i = id.index();
        &self.shards[i % self.shard_count].slots[i / self.shard_count]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes_total
    }

    /// Whether the fabric is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.nodes_total == 0
    }

    /// Number of event-loop shards driving the fabric.
    pub fn shard_count(&self) -> usize {
        self.shard_count
    }

    /// The syscall batching mode the fabric selected at startup. Shards
    /// demote themselves to [`BatchMode::Portable`] independently on
    /// `ENOSYS`; this reports shard 0's current mode.
    pub fn batch_mode(&self) -> BatchMode {
        self.shards[0].mode()
    }

    /// Fabric-monotonic time: zero at the first [`Testnet::run_for`].
    pub fn now(&self) -> SimTime {
        SimTime::from_nanos(self.epoch.elapsed().as_nanos() as u64)
    }

    /// The hosted protocol state machine of `id` (inspect between runs).
    pub fn node(&self, id: NodeId) -> &GoCastNode {
        &self.slot(id).node
    }

    /// Iterates over all hosted nodes in id order.
    pub fn iter_nodes(&self) -> impl Iterator<Item = &GoCastNode> {
        (0..self.nodes_total).map(move |i| &self.slot(NodeId::new(i as u32)).node)
    }

    /// The socket address `id` is bound to.
    pub fn addr_of(&self, id: NodeId) -> SocketAddr {
        self.slot(id).addr
    }

    /// How many peer addresses `id` has learned so far.
    pub fn known_peers(&self, id: NodeId) -> usize {
        self.slot(id).peers.known()
    }

    /// Whether `id` was crashed by a scenario fault. (Every shard
    /// replays the full plan, so any shard's replica can answer.)
    pub fn is_crashed(&self, id: NodeId) -> bool {
        self.shards[0].is_crashed(id)
    }

    /// Wire-side counters, aggregated across shards.
    pub fn stats(&self) -> FabricStats {
        let mut total = FabricStats::default();
        for sh in &self.shards {
            total.absorb(&sh.stats);
        }
        total
    }

    /// A [`Snapshot`] of the fabric's wire-side metrics under `fabric_*`
    /// names: syscall/datagram/byte counters (including the batching
    /// economics: `fabric_sendmmsg_calls`, `fabric_recvmmsg_calls`,
    /// `fabric_syscalls_saved`), per-poll drain and timer-lateness
    /// distributions, and discovery queue depths — all aggregated across
    /// shards. The histograms are wall-clock flavoured and flagged
    /// accordingly.
    pub fn metrics_snapshot(&self) -> Snapshot {
        let mut snap = Snapshot::new();
        let s = self.stats();
        snap.record_counter("fabric_sendto_calls", s.sendto_calls);
        snap.record_counter("fabric_recvfrom_calls", s.recvfrom_calls);
        snap.record_counter("fabric_sendmmsg_calls", s.sendmmsg_calls);
        snap.record_counter("fabric_recvmmsg_calls", s.recvmmsg_calls);
        snap.record_counter("fabric_syscalls_saved", s.syscalls_saved);
        snap.record_counter("fabric_datagrams_sent", s.datagrams_sent);
        snap.record_counter("fabric_datagrams_received", s.datagrams_received);
        snap.record_counter("fabric_bytes_sent", s.bytes_sent);
        snap.record_counter("fabric_bytes_received", s.bytes_received);
        snap.record_counter("fabric_wire_msgs", s.wire_msgs);
        snap.record_counter("fabric_delayed", s.delayed);
        snap.record_counter("fabric_dropped_loss", s.dropped_loss);
        snap.record_counter("fabric_dropped_partition", s.dropped_partition);
        snap.record_counter("fabric_dropped_cut", s.dropped_cut);
        snap.record_counter("fabric_dropped_crashed", s.dropped_crashed);
        snap.record_counter("fabric_whohas_sent", s.whohas_sent);
        snap.record_counter("fabric_peer_replies", s.peer_replies);
        snap.record_counter("fabric_unresolved_dropped", s.unresolved_dropped);
        snap.record_counter("fabric_malformed", s.malformed);
        // Gauges: sum the per-shard depths. Setting the summed high
        // water first makes the merged gauge's own high-water mark
        // cover it, then the summed current level lands on top.
        let mut pending = Gauge::default();
        let mut wanted = Gauge::default();
        pending.set(
            self.shards
                .iter()
                .map(|s| s.telemetry.pending_depth.high_water())
                .sum(),
        );
        pending.set(
            self.shards
                .iter()
                .map(|s| s.telemetry.pending_depth.get())
                .sum(),
        );
        wanted.set(
            self.shards
                .iter()
                .map(|s| s.telemetry.wanted_depth.high_water())
                .sum(),
        );
        wanted.set(
            self.shards
                .iter()
                .map(|s| s.telemetry.wanted_depth.get())
                .sum(),
        );
        snap.record_gauge("fabric_pending_depth", pending);
        snap.record_gauge("fabric_wanted_depth", wanted);
        let mut per_poll = self.shards[0].telemetry.datagrams_per_poll;
        let mut lateness = self.shards[0].telemetry.timer_lateness_ns;
        for sh in &self.shards[1..] {
            per_poll.merge(&sh.telemetry.datagrams_per_poll);
            lateness.merge(&sh.telemetry.timer_lateness_ns);
        }
        snap.record_wall_histogram("fabric_datagrams_per_poll", &per_poll);
        snap.record_wall_histogram("fabric_timer_fire_lateness_ns", &lateness);
        snap
    }

    /// The captured protocol event trace, stamped with fabric time and
    /// merged across shards (empty when the fabric was built with
    /// `record_trace` off).
    pub fn trace(&self) -> &[(SimTime, NodeId, GoCastEvent)] {
        &self.trace
    }

    /// Renders the captured trace as PR-2 JSONL bytes — byte-compatible
    /// with what `gocast_sim::TraceRecorder` writes for simulated runs, so
    /// `gocast_analysis::trace::{scan_trace, InvariantOracle}` consume it
    /// unchanged.
    pub fn trace_jsonl(&self) -> Vec<u8> {
        let mut rec = TraceRecorder::new(Vec::new());
        for (t, n, e) in &self.trace {
            rec.record(*t, *n, e.clone());
        }
        rec.finish().expect("in-memory sink cannot fail")
    }

    /// A canonical digest of *which node delivered which message*: one
    /// `origin,seq,receiver` line per delivery, sorted. Wall-clock
    /// timestamps differ run to run (and shard to shard), but once every
    /// injected message has drained, this digest is byte-identical for
    /// any shard count — the shard-conformance tests gate on it.
    pub fn delivery_manifest(&self) -> String {
        let mut lines: Vec<String> = self
            .trace
            .iter()
            .filter_map(|(_, node, e)| match e {
                GoCastEvent::Delivered { id, .. } => Some(format!(
                    "{},{},{}",
                    id.origin.as_u32(),
                    id.seq,
                    node.as_u32()
                )),
                _ => None,
            })
            .collect();
        lines.sort_unstable();
        lines.join("\n")
    }

    /// Schedules a protocol command at fabric time `at` (commands due in
    /// the past fire on the next loop iteration). The command is routed
    /// to the shard that owns `node`.
    pub fn schedule_command(&mut self, at: SimTime, node: NodeId, cmd: GoCastCommand) {
        let k = node.index() % self.shard_count;
        self.shards[k].schedule_command(at, node, cmd);
    }

    /// Attaches a compiled scenario: its faults replay against the real
    /// sockets at their planned (fabric-relative) times. Compile the plan
    /// with `ScenarioEnv::starting_at` to offset it into the run. Every
    /// shard replays the full plan against its own impairment replica.
    ///
    /// # Panics
    ///
    /// Panics if the plan was compiled for a different node count.
    pub fn attach_plan(&mut self, plan: &ScenarioPlan) {
        assert_eq!(
            plan.nodes(),
            self.nodes_total,
            "plan was compiled for a different node count"
        );
        for sh in &mut self.shards {
            sh.attach_plan(plan.events());
        }
    }

    /// Resets shared fabric time and arms every shard; fabric time zero
    /// is here.
    fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        self.epoch = Instant::now();
        for sh in &mut self.shards {
            sh.epoch = self.epoch;
        }
    }

    /// Runs the fabric for `duration` of wall-clock time. Callable
    /// repeatedly; `on_start` fires on the first call. With one shard
    /// everything runs inline on the calling thread; with more, each
    /// shard gets a scoped OS thread and the per-shard event streams are
    /// merged deterministically when all of them return.
    pub fn run_for(&mut self, duration: Duration) {
        self.start();
        let deadline = Instant::now() + duration;
        if self.shards.len() == 1 {
            self.shards[0].run_until(deadline);
        } else {
            std::thread::scope(|s| {
                for shard in &mut self.shards {
                    s.spawn(move || shard.run_until(deadline));
                }
            });
        }
        let streams: Vec<_> = self.shards.iter_mut().map(|sh| &mut sh.trace).collect();
        merge_event_streams(&mut self.trace, streams);
    }
}

/// Drains per-shard event streams into `dst` with a deterministic merge:
/// streams are appended in shard order, then the new tail is stable-sorted
/// by timestamp — so equal-time events keep shard-index order, and events
/// within one shard keep their submission order. This is the same merge
/// discipline `gocast_sim`'s `parallel_map` uses for simulator shards.
fn merge_event_streams(
    dst: &mut Vec<(SimTime, NodeId, GoCastEvent)>,
    streams: Vec<&mut Vec<(SimTime, NodeId, GoCastEvent)>>,
) {
    let start = dst.len();
    let total: usize = streams.iter().map(|s| s.len()).sum();
    if total == 0 {
        return;
    }
    dst.reserve(total);
    for stream in streams {
        dst.append(stream);
    }
    dst[start..].sort_by_key(|(t, _, _)| *t);
}

#[cfg(test)]
mod tests {
    use super::*;
    use gocast_sim::scenario::{Scenario, ScenarioEnv, Split};

    fn skip() -> bool {
        if crate::loopback_available() {
            false
        } else {
            eprintln!("skipping: loopback UDP unavailable");
            true
        }
    }

    #[test]
    fn fabric_delivers_a_multicast_end_to_end() {
        if skip() {
            return;
        }
        let cfg = TestnetConfig::new(4).with_seed(9);
        let mut net = Testnet::build_bootstrap(&cfg).expect("bind loopback");
        net.schedule_command(
            SimTime::from_secs(2),
            NodeId::new(1),
            GoCastCommand::Multicast,
        );
        net.run_for(Duration::from_secs(3));
        let deliveries = net
            .trace()
            .iter()
            .filter(|(_, _, e)| matches!(e, GoCastEvent::Delivered { .. }))
            .count();
        assert_eq!(deliveries, 3, "every other node must deliver once");
        assert_eq!(net.stats().malformed, 0);
    }

    #[test]
    fn sharded_fabric_delivers_and_saves_syscalls() {
        if skip() {
            return;
        }
        let cfg = TestnetConfig::new(4).with_seed(9).with_shards(2);
        let mut net = Testnet::build_bootstrap(&cfg).expect("bind loopback");
        assert_eq!(net.shard_count(), 2);
        net.schedule_command(
            SimTime::from_secs(2),
            NodeId::new(1),
            GoCastCommand::Multicast,
        );
        net.run_for(Duration::from_secs(3));
        let deliveries = net
            .trace()
            .iter()
            .filter(|(_, _, e)| matches!(e, GoCastEvent::Delivered { .. }))
            .count();
        assert_eq!(deliveries, 3, "every other node must deliver once");
        let stats = net.stats();
        assert_eq!(stats.malformed, 0);
        if net.batch_mode() == crate::BatchMode::Mmsg {
            assert!(
                stats.recvmmsg_calls > 0,
                "mmsg mode never used recvmmsg: {stats}"
            );
        }
    }

    #[test]
    fn merged_trace_is_time_sorted_with_stable_ties() {
        let ev = || GoCastEvent::Injected {
            id: gocast::MsgId {
                origin: NodeId::new(0),
                seq: 0,
            },
        };
        let t = SimTime::from_nanos;
        // Two synthetic shard streams with an equal-time collision at 5.
        let mut a = vec![
            (t(1), NodeId::new(0), ev()),
            (t(5), NodeId::new(0), ev()),
            (t(9), NodeId::new(2), ev()),
        ];
        let mut b = vec![(t(2), NodeId::new(1), ev()), (t(5), NodeId::new(1), ev())];
        let mut merged = Vec::new();
        merge_event_streams(&mut merged, vec![&mut a, &mut b]);
        let order: Vec<(u64, u32)> = merged
            .iter()
            .map(|(t, n, _)| (t.as_nanos(), n.as_u32()))
            .collect();
        // Time-sorted; the tie at t=5 keeps shard order (shard 0 first).
        assert_eq!(order, vec![(1, 0), (2, 1), (5, 0), (5, 1), (9, 2)]);
        assert!(a.is_empty() && b.is_empty(), "streams must be drained");
        // Merging the next window appends after the existing tail.
        let mut c = vec![(t(11), NodeId::new(1), ev())];
        merge_event_streams(&mut merged, vec![&mut c]);
        assert_eq!(merged.len(), 6);
        assert_eq!(merged[5].0, t(11));
    }

    #[test]
    fn partition_plan_drops_real_datagrams_then_heals() {
        if skip() {
            return;
        }
        let cfg = TestnetConfig::new(4).with_seed(5);
        let mut net = Testnet::build_bootstrap(&cfg).expect("bind loopback");
        let scenario = Scenario::new().partition_at(
            Duration::from_secs(1),
            Duration::from_secs(2),
            Split::Halves,
        );
        let plan = scenario.compile(&ScenarioEnv::new(4, 5));
        net.attach_plan(&plan);
        net.run_for(Duration::from_millis(1500));
        let mid = net.stats().dropped_partition;
        assert!(mid > 0, "partition never dropped a datagram on the wire");
        net.run_for(Duration::from_millis(1000));
        let healed = net.stats().dropped_partition;
        net.run_for(Duration::from_millis(500));
        assert_eq!(
            net.stats().dropped_partition,
            healed,
            "partition kept dropping after its heal time"
        );
    }

    #[test]
    fn crash_fault_silences_a_node() {
        if skip() {
            return;
        }
        let cfg = TestnetConfig::new(3).with_seed(2);
        let mut net = Testnet::build_bootstrap(&cfg).expect("bind loopback");
        let scenario = Scenario::new().crash_at(Duration::from_millis(500), NodeId::new(2));
        let plan = scenario.compile(&ScenarioEnv::new(3, 2));
        net.attach_plan(&plan);
        net.run_for(Duration::from_secs(2));
        assert!(net.is_crashed(NodeId::new(2)));
        assert!(
            net.stats().dropped_crashed > 0,
            "no traffic hit the crash wall"
        );
    }

    /// Regression: with jitter holding datagrams back, the idle sleep
    /// must wake for the jitter-queue head (not only timer wheels), so
    /// held datagrams release on time and deliveries still happen
    /// promptly.
    #[test]
    fn jittered_datagrams_release_on_time() {
        if skip() {
            return;
        }
        let cfg = TestnetConfig::new(4).with_seed(7);
        let mut net = Testnet::build_bootstrap(&cfg).expect("bind loopback");
        let scenario =
            Scenario::new().jitter_at(Duration::from_millis(0), Duration::from_millis(30));
        let plan = scenario.compile(&ScenarioEnv::new(4, 7));
        net.attach_plan(&plan);
        net.schedule_command(
            SimTime::from_secs(2),
            NodeId::new(0),
            GoCastCommand::Multicast,
        );
        net.run_for(Duration::from_secs(3));
        let stats = net.stats();
        assert!(stats.delayed > 0, "jitter plan never held a datagram");
        let deliveries = net
            .trace()
            .iter()
            .filter(|(_, _, e)| matches!(e, GoCastEvent::Delivered { .. }))
            .count();
        assert_eq!(
            deliveries, 3,
            "held datagrams failed to release in time: {stats}"
        );
    }

    #[test]
    fn record_trace_off_keeps_the_trace_empty() {
        if skip() {
            return;
        }
        let cfg = TestnetConfig::new(2).with_seed(4).with_record_trace(false);
        let mut net = Testnet::build_bootstrap(&cfg).expect("bind loopback");
        net.schedule_command(
            SimTime::from_millis(1500),
            NodeId::new(0),
            GoCastCommand::Multicast,
        );
        net.run_for(Duration::from_millis(2500));
        assert!(net.trace().is_empty(), "trace recorded despite opt-out");
        assert!(net.stats().wire_msgs > 0, "fabric moved no messages");
    }
}
