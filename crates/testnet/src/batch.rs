//! Syscall batching for the loopback fabric.
//!
//! The wire path gathers outbound datagrams per poll iteration into a
//! reusable [`BatchBuffer`] and flushes them with a single `sendmmsg(2)`
//! call; inbound traffic drains through a [`RecvBatch`] backed by
//! `recvmmsg(2)`. Both syscalls are declared by hand (the workspace
//! vendors no libc crate) behind a small safe wrapper, and a portable
//! one-datagram-at-a-time fallback is selected at runtime:
//!
//! - on non-Linux targets, always;
//! - when `GOCAST_FABRIC_PORTABLE=1` is set (CI exercises this);
//! - permanently after a `sendmmsg`/`recvmmsg` call fails with `ENOSYS`.
//!
//! All buffers are allocated once and reused, so the steady-state send
//! and receive paths perform no heap allocation (proved by
//! `crates/testnet/tests/zero_alloc.rs`).

use std::net::{SocketAddr, UdpSocket};

use crate::shard::FabricStats;

/// Datagrams gathered per `sendmmsg` flush.
pub(crate) const SEND_BATCH: usize = 32;
/// Datagrams drained per `recvmmsg` call.
pub(crate) const RECV_BATCH: usize = 32;
/// Receive buffer size per slot — a UDP datagram never exceeds 64 KiB.
pub(crate) const RECV_BUF: usize = 65536;

/// `ENOSYS` — syscall not implemented on this kernel.
const ENOSYS: i32 = 38;

/// How datagrams cross the syscall boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchMode {
    /// Linux `sendmmsg`/`recvmmsg`: one syscall moves up to a batch.
    Mmsg,
    /// Portable `send_to`/`recv_from`: one syscall per datagram.
    Portable,
}

impl BatchMode {
    /// Picks the batching mode for this process.
    ///
    /// Linux gets [`BatchMode::Mmsg`] unless `GOCAST_FABRIC_PORTABLE` is
    /// set to a non-empty value other than `0`; everything else gets
    /// [`BatchMode::Portable`]. A later `ENOSYS` from either syscall
    /// demotes a running fabric to portable mode permanently.
    pub fn detect() -> BatchMode {
        let forced =
            std::env::var_os("GOCAST_FABRIC_PORTABLE").is_some_and(|v| !v.is_empty() && v != *"0");
        if cfg!(target_os = "linux") && !forced {
            BatchMode::Mmsg
        } else {
            BatchMode::Portable
        }
    }
}

/// Raw Linux FFI for `sendmmsg(2)`/`recvmmsg(2)`.
///
/// Layouts mirror glibc on 64-bit Linux: `#[repr(C)]` inserts the
/// 4-byte pad after `namelen` that the kernel ABI expects.
#[cfg(target_os = "linux")]
mod ffi {
    use std::net::{IpAddr, Ipv4Addr, SocketAddr, SocketAddrV4};

    pub const AF_INET: u16 = 2;
    pub const MSG_DONTWAIT: i32 = 0x40;

    /// `struct sockaddr_in`.
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct SockAddrIn {
        pub family: u16,
        /// Port in network byte order.
        pub port_be: u16,
        /// IPv4 address in network byte order.
        pub addr_be: u32,
        pub zero: [u8; 8],
    }

    impl SockAddrIn {
        pub const ZERO: SockAddrIn = SockAddrIn {
            family: 0,
            port_be: 0,
            addr_be: 0,
            zero: [0; 8],
        };

        /// Encodes a socket address; the fabric is IPv4-only.
        pub fn from_sockaddr(a: SocketAddr) -> SockAddrIn {
            let (ip, port) = match a {
                SocketAddr::V4(v4) => (*v4.ip(), v4.port()),
                SocketAddr::V6(_) => unreachable!("fabric sockets are IPv4-only"),
            };
            SockAddrIn {
                family: AF_INET,
                port_be: port.to_be(),
                addr_be: u32::from_ne_bytes(ip.octets()),
                zero: [0; 8],
            }
        }

        /// Decodes back into a socket address.
        pub fn to_sockaddr(self) -> SocketAddr {
            SocketAddr::V4(SocketAddrV4::new(
                Ipv4Addr::from(self.addr_be.to_ne_bytes()),
                u16::from_be(self.port_be),
            ))
        }

        /// Loopback placeholder used when a source address is missing.
        pub fn fallback() -> SocketAddr {
            SocketAddr::new(IpAddr::V4(Ipv4Addr::LOCALHOST), 0)
        }
    }

    /// `struct iovec`.
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct IoVec {
        pub base: *mut u8,
        pub len: usize,
    }

    impl IoVec {
        pub const NULL: IoVec = IoVec {
            base: std::ptr::null_mut(),
            len: 0,
        };
    }

    /// `struct msghdr`.
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct MsgHdr {
        pub name: *mut SockAddrIn,
        pub namelen: u32,
        pub iov: *mut IoVec,
        pub iovlen: usize,
        pub control: *mut u8,
        pub controllen: usize,
        pub flags: i32,
    }

    /// `struct mmsghdr`.
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct MMsgHdr {
        pub hdr: MsgHdr,
        pub len: u32,
    }

    impl MMsgHdr {
        pub const ZERO: MMsgHdr = MMsgHdr {
            hdr: MsgHdr {
                name: std::ptr::null_mut(),
                namelen: 0,
                iov: std::ptr::null_mut(),
                iovlen: 0,
                control: std::ptr::null_mut(),
                controllen: 0,
                flags: 0,
            },
            len: 0,
        };
    }

    extern "C" {
        pub fn sendmmsg(fd: i32, msgvec: *mut MMsgHdr, vlen: u32, flags: i32) -> i32;
        pub fn recvmmsg(
            fd: i32,
            msgvec: *mut MMsgHdr,
            vlen: u32,
            flags: i32,
            timeout: *mut u8,
        ) -> i32;
    }
}

/// Reusable gather buffer for outbound datagrams.
///
/// Each slot owns a `Vec<u8>` that is cleared and refilled in place, so
/// pushing and flushing allocate nothing once the slots have grown to
/// their steady-state sizes. All datagrams in a batch leave through the
/// same socket (the fabric flushes whenever the sending node changes).
#[derive(Debug)]
pub struct BatchBuffer {
    bufs: Vec<Vec<u8>>,
    dests: Vec<SocketAddr>,
    len: usize,
}

impl Default for BatchBuffer {
    fn default() -> Self {
        BatchBuffer::new()
    }
}

impl BatchBuffer {
    /// Creates an empty buffer; slots are grown lazily on first use.
    pub fn new() -> BatchBuffer {
        BatchBuffer {
            bufs: Vec::new(),
            dests: Vec::new(),
            len: 0,
        }
    }

    /// Number of datagrams currently gathered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no datagrams are gathered.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends one datagram, letting `fill` write the payload directly
    /// into the reused slot. Returns `true` when the batch is full and
    /// must be flushed before the next push.
    pub fn push_with<F: FnOnce(&mut Vec<u8>)>(&mut self, dest: SocketAddr, fill: F) -> bool {
        if self.len == self.bufs.len() {
            self.bufs.push(Vec::with_capacity(2048));
            self.dests.push(dest);
        }
        let slot = &mut self.bufs[self.len];
        slot.clear();
        fill(slot);
        self.dests[self.len] = dest;
        self.len += 1;
        self.len >= SEND_BATCH
    }

    /// Sends every gathered datagram through `socket` and empties the
    /// buffer. In [`BatchMode::Mmsg`] the whole batch goes out in a
    /// single `sendmmsg` call (demoting `mode` to portable on `ENOSYS`);
    /// otherwise one `send_to` per datagram. Counters in `stats` record
    /// datagrams, bytes, syscalls, and syscalls saved by batching.
    pub fn flush(&mut self, socket: &UdpSocket, mode: &mut BatchMode, stats: &mut FabricStats) {
        if self.len == 0 {
            return;
        }
        if *mode == BatchMode::Mmsg {
            #[cfg(target_os = "linux")]
            {
                if self.flush_mmsg(socket, stats) {
                    self.len = 0;
                    return;
                }
                *mode = BatchMode::Portable;
            }
            #[cfg(not(target_os = "linux"))]
            {
                *mode = BatchMode::Portable;
            }
        }
        for (buf, dest) in self.bufs[..self.len].iter().zip(&self.dests) {
            stats.sendto_calls += 1;
            if socket.send_to(buf, *dest).is_ok() {
                stats.datagrams_sent += 1;
                stats.bytes_sent += buf.len() as u64;
            }
        }
        self.len = 0;
    }

    /// One-syscall flush; returns `false` only on `ENOSYS` so the caller
    /// can demote to portable mode and retry there.
    #[cfg(target_os = "linux")]
    fn flush_mmsg(&mut self, socket: &UdpSocket, stats: &mut FabricStats) -> bool {
        use std::os::fd::AsRawFd;

        let n = self.len;
        let mut addrs = [ffi::SockAddrIn::ZERO; SEND_BATCH];
        let mut iovs = [ffi::IoVec::NULL; SEND_BATCH];
        let mut hdrs = [ffi::MMsgHdr::ZERO; SEND_BATCH];
        // The header pointers point into the `addrs`/`iovs` arrays above,
        // which outlive the syscall below.
        for ((hdr, (addr, iov)), (buf, dest)) in hdrs
            .iter_mut()
            .zip(addrs.iter_mut().zip(iovs.iter_mut()))
            .zip(self.bufs[..n].iter_mut().zip(&self.dests))
        {
            *addr = ffi::SockAddrIn::from_sockaddr(*dest);
            *iov = ffi::IoVec {
                base: buf.as_mut_ptr(),
                len: buf.len(),
            };
            *hdr = ffi::MMsgHdr {
                hdr: ffi::MsgHdr {
                    name: std::ptr::from_mut(addr),
                    namelen: std::mem::size_of::<ffi::SockAddrIn>() as u32,
                    iov: std::ptr::from_mut(iov),
                    iovlen: 1,
                    control: std::ptr::null_mut(),
                    controllen: 0,
                    flags: 0,
                },
                len: 0,
            };
        }
        let fd = socket.as_raw_fd();
        let mut off = 0;
        while off < n {
            // SAFETY: hdrs[off..n] are fully initialized and their iovec
            // and name pointers are valid for the duration of the call.
            let sent =
                unsafe { ffi::sendmmsg(fd, hdrs.as_mut_ptr().add(off), (n - off) as u32, 0) };
            if sent > 0 {
                let sent = sent as usize;
                stats.sendmmsg_calls += 1;
                stats.syscalls_saved += sent as u64 - 1;
                for buf in &self.bufs[off..off + sent] {
                    stats.datagrams_sent += 1;
                    stats.bytes_sent += buf.len() as u64;
                }
                off += sent;
            } else {
                let err = std::io::Error::last_os_error();
                if err.raw_os_error() == Some(ENOSYS) {
                    return false;
                }
                // UDP is fire-and-forget: on EAGAIN or any transient
                // error the unsent tail is dropped, like a full socket
                // buffer would drop it.
                stats.sendmmsg_calls += 1;
                break;
            }
        }
        true
    }
}

/// Reusable scatter buffer for inbound datagrams.
///
/// One `recvmmsg` call fills up to `RECV_BATCH` (32) pre-allocated slots;
/// the shard then dispatches each datagram by index. The portable
/// fallback fills one slot per `recv_from` call.
#[derive(Debug, Default)]
pub struct RecvBatch {
    bufs: Vec<Vec<u8>>,
    srcs: Vec<SocketAddr>,
    lens: Vec<usize>,
}

impl RecvBatch {
    /// Creates an empty batch; buffers are grown on first receive.
    pub fn new() -> RecvBatch {
        RecvBatch::default()
    }

    fn ensure_slots(&mut self) {
        if self.bufs.is_empty() {
            self.bufs = vec![vec![0u8; RECV_BUF]; RECV_BATCH];
            self.srcs = vec![
                SocketAddr::new(std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST), 0);
                RECV_BATCH
            ];
            self.lens = vec![0; RECV_BATCH];
        }
    }

    /// Drains up to `RECV_BATCH` (32) datagrams from `socket` without
    /// blocking. Returns how many slots were filled; `0` means the
    /// socket is empty (or errored transiently). Counters in `stats`
    /// record datagrams, bytes, syscalls, and syscalls saved.
    pub fn recv(
        &mut self,
        socket: &UdpSocket,
        mode: &mut BatchMode,
        stats: &mut FabricStats,
    ) -> usize {
        self.ensure_slots();
        if *mode == BatchMode::Mmsg {
            #[cfg(target_os = "linux")]
            {
                match self.recv_mmsg(socket, stats) {
                    Some(n) => return n,
                    None => *mode = BatchMode::Portable,
                }
            }
            #[cfg(not(target_os = "linux"))]
            {
                *mode = BatchMode::Portable;
            }
        }
        stats.recvfrom_calls += 1;
        match socket.recv_from(&mut self.bufs[0]) {
            Ok((len, src)) => {
                self.lens[0] = len;
                self.srcs[0] = src;
                stats.datagrams_received += 1;
                stats.bytes_received += len as u64;
                1
            }
            Err(_) => 0,
        }
    }

    /// One-syscall drain; `None` only on `ENOSYS` (demote to portable).
    #[cfg(target_os = "linux")]
    fn recv_mmsg(&mut self, socket: &UdpSocket, stats: &mut FabricStats) -> Option<usize> {
        use std::os::fd::AsRawFd;

        let mut addrs = [ffi::SockAddrIn::ZERO; RECV_BATCH];
        let mut iovs = [ffi::IoVec::NULL; RECV_BATCH];
        let mut hdrs = [ffi::MMsgHdr::ZERO; RECV_BATCH];
        // The header pointers point into the `addrs`/`iovs` arrays above,
        // which outlive the syscall below; each buffer is RECV_BUF bytes.
        for ((hdr, (addr, iov)), buf) in hdrs
            .iter_mut()
            .zip(addrs.iter_mut().zip(iovs.iter_mut()))
            .zip(self.bufs.iter_mut())
        {
            *iov = ffi::IoVec {
                base: buf.as_mut_ptr(),
                len: RECV_BUF,
            };
            *hdr = ffi::MMsgHdr {
                hdr: ffi::MsgHdr {
                    name: std::ptr::from_mut(addr),
                    namelen: std::mem::size_of::<ffi::SockAddrIn>() as u32,
                    iov: std::ptr::from_mut(iov),
                    iovlen: 1,
                    control: std::ptr::null_mut(),
                    controllen: 0,
                    flags: 0,
                },
                len: 0,
            };
        }
        // SAFETY: hdrs are fully initialized; MSG_DONTWAIT keeps the
        // call non-blocking regardless of socket flags.
        let got = unsafe {
            ffi::recvmmsg(
                socket.as_raw_fd(),
                hdrs.as_mut_ptr(),
                RECV_BATCH as u32,
                ffi::MSG_DONTWAIT,
                std::ptr::null_mut(),
            )
        };
        if got < 0 {
            let err = std::io::Error::last_os_error();
            if err.raw_os_error() == Some(ENOSYS) {
                return None;
            }
            // EAGAIN (socket empty) and transient errors both end the
            // drain; the syscall still happened.
            stats.recvmmsg_calls += 1;
            return Some(0);
        }
        let got = got as usize;
        stats.recvmmsg_calls += 1;
        stats.syscalls_saved += got.saturating_sub(1) as u64;
        for i in 0..got {
            let len = hdrs[i].len as usize;
            self.lens[i] = len;
            self.srcs[i] = if hdrs[i].hdr.namelen as usize >= std::mem::size_of::<ffi::SockAddrIn>()
                && addrs[i].family == ffi::AF_INET
            {
                addrs[i].to_sockaddr()
            } else {
                ffi::SockAddrIn::fallback()
            };
            stats.datagrams_received += 1;
            stats.bytes_received += len as u64;
        }
        Some(got)
    }

    /// Returns the `i`-th received datagram from the last [`Self::recv`].
    pub fn datagram(&self, i: usize) -> (SocketAddr, &[u8]) {
        (self.srcs[i], &self.bufs[i][..self.lens[i]])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loopback_available;

    fn skip() -> bool {
        if loopback_available() {
            false
        } else {
            eprintln!("skipping: loopback UDP unavailable in this environment");
            true
        }
    }

    fn pair() -> (UdpSocket, UdpSocket, SocketAddr) {
        let a = UdpSocket::bind((std::net::Ipv4Addr::LOCALHOST, 0)).unwrap();
        let b = UdpSocket::bind((std::net::Ipv4Addr::LOCALHOST, 0)).unwrap();
        b.set_nonblocking(true).unwrap();
        let dest = b.local_addr().unwrap();
        (a, b, dest)
    }

    fn round_trip(mut mode: BatchMode) -> FabricStats {
        let (a, b, dest) = pair();
        let mut stats = FabricStats::default();
        let mut batch = BatchBuffer::new();
        for k in 0..10u8 {
            let full = batch.push_with(dest, |buf| buf.extend_from_slice(&[k; 24]));
            assert!(!full, "batch of 10 must not report full");
        }
        batch.flush(&a, &mut mode, &mut stats);
        assert!(batch.is_empty());
        assert_eq!(stats.datagrams_sent, 10);
        assert_eq!(stats.bytes_sent, 240);

        let mut recv = RecvBatch::new();
        let mut seen = Vec::new();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
        while seen.len() < 10 && std::time::Instant::now() < deadline {
            let got = recv.recv(&b, &mut mode, &mut stats);
            for i in 0..got {
                let (src, bytes) = recv.datagram(i);
                assert_eq!(src, a.local_addr().unwrap());
                assert_eq!(bytes.len(), 24);
                seen.push(bytes[0]);
            }
            if got == 0 {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<u8>>());
        assert_eq!(stats.datagrams_received, 10);
        assert_eq!(stats.bytes_received, 240);
        stats
    }

    #[test]
    fn portable_round_trip_counts_one_syscall_per_datagram() {
        if skip() {
            return;
        }
        let stats = round_trip(BatchMode::Portable);
        assert_eq!(stats.sendto_calls, 10);
        assert_eq!(stats.sendmmsg_calls, 0);
        assert_eq!(stats.syscalls_saved, 0);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn mmsg_round_trip_batches_datagrams_into_few_syscalls() {
        if skip() {
            return;
        }
        let stats = round_trip(BatchMode::Mmsg);
        // 10 datagrams left in one sendmmsg: 9 syscalls saved outbound,
        // plus whatever recvmmsg saved on the inbound side.
        assert_eq!(stats.sendto_calls, 0);
        assert!(stats.sendmmsg_calls >= 1);
        assert!(
            stats.syscalls_saved >= 9,
            "expected >=9 saved, got {}",
            stats.syscalls_saved
        );
    }

    #[test]
    fn batch_reports_full_at_capacity() {
        let dest = SocketAddr::new(std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST), 9);
        let mut batch = BatchBuffer::new();
        for k in 0..SEND_BATCH {
            let full = batch.push_with(dest, |buf| buf.push(k as u8));
            assert_eq!(full, k + 1 == SEND_BATCH);
        }
        assert_eq!(batch.len(), SEND_BATCH);
    }

    #[test]
    fn detect_honors_portable_override() {
        // Don't mutate the process environment (tests run in parallel);
        // just pin the non-forced expectation for this target.
        if std::env::var_os("GOCAST_FABRIC_PORTABLE").is_none() {
            if cfg!(target_os = "linux") {
                assert_eq!(BatchMode::detect(), BatchMode::Mmsg);
            } else {
                assert_eq!(BatchMode::detect(), BatchMode::Portable);
            }
        }
    }
}
