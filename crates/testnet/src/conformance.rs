//! Sim-vs-wire differential conformance.
//!
//! The simulator and the testnet host the *same* protocol state machine
//! behind the same [`gocast_sim::HostBackend`] seam; what differs is the
//! world around it — virtual time and a latency matrix versus real
//! sockets and the OS scheduler. This harness runs one workload through
//! both and demands the protocol-level outcomes agree:
//!
//! - both sides run the same node count, protocol configuration,
//!   bootstrap graph (same seed), injection schedule, and (optionally)
//!   the same compiled chaos scenario;
//! - both sides' traces are rendered as PR-2 JSONL and pushed through
//!   the *identical* `gocast-analysis` pipeline — [`scan_trace`], the
//!   [`InvariantOracle`], and [`TraceAnalysis`] — proving the wire trace
//!   is consumable unchanged;
//! - the resulting delivery ratios, hop histograms, and tree-vs-pull
//!   recovery fractions must match within stated tolerances.
//!
//! Exact equality is not the bar: the wire side sees real jitter,
//! discovery round-trips, and scheduling noise, so hop counts and
//! recovery fractions wander. What must *not* wander is the shape —
//! near-total delivery, histograms concentrated at the same depths, and
//! comparable reliance on pull recovery.

use std::io;
use std::time::{Duration, Instant};

use gocast::{bootstrap_random_graph, GoCastCommand, GoCastConfig, GoCastNode};
use gocast_analysis::trace::{scan_trace, InvariantOracle, TraceAnalysis};
use gocast_sim::scenario::{Scenario, ScenarioEnv};
use gocast_sim::{HashedLatency, NodeId, SimBuilder, SimTime, TraceRecorder};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::fabric::{Testnet, TestnetConfig};

/// Agreement thresholds for [`ConformanceReport::failures`].
#[derive(Debug, Clone, Copy)]
pub struct Tolerances {
    /// Minimum delivery ratio demanded of *each* side (only enforced
    /// when [`Tolerances::require_delivery`] is set; chaos scenarios
    /// legitimately lose deliveries to crashed/left nodes).
    pub min_delivery: f64,
    /// Maximum allowed |sim − wire| difference in mean hop count.
    pub mean_hops_diff: f64,
    /// Maximum allowed |sim − wire| difference in pull-recovery fraction.
    pub recovery_diff: f64,
    /// Maximum allowed total-variation distance between the two
    /// (normalized) hop histograms.
    pub hist_tv: f64,
    /// Whether to enforce [`Tolerances::min_delivery`].
    pub require_delivery: bool,
}

impl Default for Tolerances {
    fn default() -> Self {
        Tolerances {
            min_delivery: 0.999,
            mean_hops_diff: 2.5,
            recovery_diff: 0.25,
            hist_tv: 0.35,
            require_delivery: true,
        }
    }
}

/// One conformance run's shape: workload, timing, protocol, and an
/// optional chaos scenario applied identically to both sides.
#[derive(Debug)]
pub struct ConformanceOptions {
    /// Node count (both sides).
    pub nodes: usize,
    /// Multicasts to inject from random origins.
    pub messages: usize,
    /// Run seed: bootstrap graph, injection schedule, per-node RNGs, and
    /// scenario compilation all derive from it on both sides.
    pub seed: u64,
    /// Overlay/tree formation time before the first injection.
    pub warmup: Duration,
    /// Injection rate in messages per second.
    pub rate: f64,
    /// Settling time after the last injection (pull recovery tail).
    pub drain: Duration,
    /// Protocol configuration (identical on both sides).
    pub protocol: GoCastConfig,
    /// Chaos scenario compiled with the same seed for both sides and
    /// anchored at the end of warm-up. `None` runs fault-free.
    pub scenario: Option<Scenario>,
    /// Event-loop shards for the wire side (the simulator side is
    /// unaffected; 1 = the single-threaded fabric).
    pub shards: usize,
    /// Agreement thresholds.
    pub tol: Tolerances,
}

impl ConformanceOptions {
    /// A fault-free run of `messages` multicasts over `nodes` nodes with
    /// deployment cadences, 3 s warm-up, 100 msg/s, 3 s drain, seed 42.
    pub fn new(nodes: usize, messages: usize) -> Self {
        ConformanceOptions {
            nodes,
            messages,
            seed: 42,
            warmup: Duration::from_secs(3),
            rate: 100.0,
            drain: Duration::from_secs(3),
            protocol: crate::deployment_config(),
            scenario: None,
            shards: 1,
            tol: Tolerances::default(),
        }
    }

    /// Sets the wire side's event-loop shard count.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Attaches a chaos scenario (applied to both sides) and relaxes the
    /// absolute delivery gate, since node faults shrink the receiver set.
    pub fn with_scenario(mut self, scenario: Scenario) -> Self {
        self.scenario = Some(scenario);
        self.tol.require_delivery = false;
        self
    }

    /// Replaces the run seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Total run length: warm-up, injection window, drain.
    pub fn total(&self) -> Duration {
        let window = Duration::from_secs_f64(self.messages as f64 / self.rate);
        self.warmup + window + self.drain
    }

    /// The horizon both sides actually run to: [`ConformanceOptions::total`]
    /// extended to cover every planned fault plus a drain tail, so a chaos
    /// scenario sized longer than the injection window still executes (and
    /// heals) inside the run.
    fn horizon(&self, plan: Option<&gocast_sim::scenario::ScenarioPlan>) -> Duration {
        match plan.and_then(|p| p.end()) {
            Some(end) => self
                .total()
                .max(Duration::from_nanos(end.as_nanos()) + self.drain),
            None => self.total(),
        }
    }

    /// The injection schedule both sides share: message `k` fires at
    /// `warmup + k/rate` from a seed-derived random origin.
    fn injections(&self) -> Vec<(SimTime, NodeId)> {
        let mut rng = SmallRng::seed_from_u64(self.seed ^ 0x5EED);
        (0..self.messages)
            .map(|k| {
                let at = SimTime::from_nanos(
                    self.warmup.as_nanos() as u64 + (k as f64 / self.rate * 1e9) as u64,
                );
                (at, NodeId::new(rng.gen_range(0..self.nodes) as u32))
            })
            .collect()
    }

    fn compile_plan(&self) -> Option<gocast_sim::scenario::ScenarioPlan> {
        self.scenario.as_ref().map(|sc| {
            let env = ScenarioEnv::new(self.nodes, self.seed)
                .starting_at(SimTime::from_nanos(self.warmup.as_nanos() as u64));
            sc.compile(&env)
        })
    }

    /// Runs both sides and compares them.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from the wire side and trace-parse errors
    /// from either side's analysis pass (a parse error on the wire side
    /// would itself be a conformance failure of the trace format).
    pub fn run(&self) -> io::Result<ConformanceReport> {
        let sim = self.run_sim()?;
        let wire = self.run_wire()?;
        Ok(ConformanceReport {
            sim,
            wire,
            tol: self.tol,
        })
    }

    /// The simulation side: virtual time over a loopback-like latency
    /// matrix (hash-distributed 100–900 µs, matching what two processes
    /// on one host see).
    pub fn run_sim(&self) -> io::Result<SideReport> {
        let latency = HashedLatency::new(
            self.nodes,
            Duration::from_micros(100),
            Duration::from_micros(900),
            self.seed,
        );
        let links = (self.protocol.c_degree() / 2).max(1);
        let mut boot = bootstrap_random_graph(self.nodes, links, self.seed ^ 0xB007);
        let protocol = self.protocol.clone();
        let mut sim = SimBuilder::new(latency).seed(self.seed).build_with(
            TraceRecorder::new(Vec::new()),
            |id| {
                let (l, m) = boot(id);
                GoCastNode::with_initial_links(id, protocol.clone(), l, m)
            },
        );
        let plan = self.compile_plan();
        let horizon = self.horizon(plan.as_ref());
        if let Some(plan) = &plan {
            plan.schedule_into(
                &mut sim,
                |contact| GoCastCommand::Join { contact },
                || GoCastCommand::Leave,
            );
        }
        for (at, origin) in self.injections() {
            sim.schedule_command(at, origin, GoCastCommand::Multicast);
        }
        let started = Instant::now();
        sim.run_until(SimTime::from_nanos(horizon.as_nanos() as u64));
        let elapsed = started.elapsed();
        let jsonl = sim.into_recorder().finish()?;
        self.analyze("sim", &jsonl, elapsed)
    }

    /// The wire side: the same workload over real loopback sockets.
    pub fn run_wire(&self) -> io::Result<SideReport> {
        let cfg = TestnetConfig {
            nodes: self.nodes,
            seed_count: self.nodes.min(3),
            seed: self.seed,
            shards: self.shards,
            record_trace: true,
            protocol: self.protocol.clone(),
        };
        let mut net = Testnet::build_bootstrap(&cfg)?;
        let plan = self.compile_plan();
        let horizon = self.horizon(plan.as_ref());
        if let Some(plan) = &plan {
            net.attach_plan(plan);
        }
        for (at, origin) in self.injections() {
            net.schedule_command(at, origin, GoCastCommand::Multicast);
        }
        let started = Instant::now();
        net.run_for(horizon);
        let elapsed = started.elapsed();
        let jsonl = net.trace_jsonl();
        let mut report = self.analyze("wire", &jsonl, elapsed)?;
        report.wire_metrics = Some(net.metrics_snapshot());
        Ok(report)
    }

    /// Shared analysis pass: JSONL bytes → [`scan_trace`] →
    /// [`InvariantOracle`] + [`TraceAnalysis`]. Identical for both sides
    /// by construction.
    fn analyze(&self, side: &str, jsonl: &[u8], elapsed: Duration) -> io::Result<SideReport> {
        let mut oracle = InvariantOracle::for_protocol(&self.protocol);
        let mut analysis = TraceAnalysis::new();
        let records = scan_trace(jsonl, |rec| {
            oracle.check(&rec);
            analysis.feed(&rec);
        })
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{side} trace: {e}")))?;
        oracle.finish();
        let report = analysis.report();
        let expected = (self.messages * self.nodes.saturating_sub(1)) as u64;
        let deliveries = report.deliveries;
        Ok(SideReport {
            delivery_ratio: if expected == 0 {
                1.0
            } else {
                deliveries as f64 / expected as f64
            },
            deliveries,
            mean_hops: report.mean_hops(),
            max_hop: report.max_hop(),
            hop_histogram: report.hop_histogram.clone(),
            recovery_fraction: report.recovery_fraction(),
            violations: oracle.violations().len(),
            trace_records: records,
            elapsed,
            msgs_per_sec: if elapsed.is_zero() {
                0.0
            } else {
                deliveries as f64 / elapsed.as_secs_f64()
            },
            wire_metrics: None,
        })
    }
}

/// What one side (sim or wire) measured.
#[derive(Debug, Clone)]
pub struct SideReport {
    /// Deliveries over `messages × (nodes − 1)`.
    pub delivery_ratio: f64,
    /// Raw delivery count.
    pub deliveries: u64,
    /// Mean delivery hop count.
    pub mean_hops: f64,
    /// Deepest delivery hop observed.
    pub max_hop: u32,
    /// Deliveries per hop count (`hop_histogram[h]` = deliveries at `h`).
    pub hop_histogram: Vec<u64>,
    /// Fraction of deliveries that arrived via gossip pull recovery.
    pub recovery_fraction: f64,
    /// Invariant-oracle violations in the trace.
    pub violations: usize,
    /// JSONL records scanned.
    pub trace_records: u64,
    /// Wall-clock time the side took.
    pub elapsed: Duration,
    /// Delivery throughput: deliveries per wall-clock second.
    pub msgs_per_sec: f64,
    /// Fabric-level wire metrics (`fabric_*`), wire side only.
    pub wire_metrics: Option<gocast_metrics::Snapshot>,
}

/// Both sides plus the thresholds they were compared under.
#[derive(Debug, Clone)]
pub struct ConformanceReport {
    /// Simulation-side measurements.
    pub sim: SideReport,
    /// Wire-side measurements.
    pub wire: SideReport,
    /// The thresholds applied.
    pub tol: Tolerances,
}

/// Total-variation distance between two hop histograms, each normalized
/// to a probability distribution (0 = identical shape, 1 = disjoint).
pub fn histogram_tv(a: &[u64], b: &[u64]) -> f64 {
    let (sa, sb) = (a.iter().sum::<u64>() as f64, b.iter().sum::<u64>() as f64);
    if sa == 0.0 || sb == 0.0 {
        return if sa == sb { 0.0 } else { 1.0 };
    }
    let len = a.len().max(b.len());
    (0..len)
        .map(|i| {
            let pa = a.get(i).copied().unwrap_or(0) as f64 / sa;
            let pb = b.get(i).copied().unwrap_or(0) as f64 / sb;
            (pa - pb).abs()
        })
        .sum::<f64>()
        / 2.0
}

impl ConformanceReport {
    /// Every threshold the run violated, as human-readable strings.
    /// Empty means the sides conform.
    pub fn failures(&self) -> Vec<String> {
        let mut out = Vec::new();
        let t = &self.tol;
        for (side, r) in [("sim", &self.sim), ("wire", &self.wire)] {
            if t.require_delivery && r.delivery_ratio < t.min_delivery {
                out.push(format!(
                    "{side} delivery ratio {:.4} below {:.4}",
                    r.delivery_ratio, t.min_delivery
                ));
            }
            if r.violations > 0 {
                out.push(format!(
                    "{side} trace has {} oracle violations",
                    r.violations
                ));
            }
        }
        let hops = (self.sim.mean_hops - self.wire.mean_hops).abs();
        if hops > t.mean_hops_diff {
            out.push(format!(
                "mean-hop gap {hops:.2} exceeds {:.2} (sim {:.2}, wire {:.2})",
                t.mean_hops_diff, self.sim.mean_hops, self.wire.mean_hops
            ));
        }
        let rec = (self.sim.recovery_fraction - self.wire.recovery_fraction).abs();
        if rec > t.recovery_diff {
            out.push(format!(
                "recovery-fraction gap {rec:.3} exceeds {:.3} (sim {:.3}, wire {:.3})",
                t.recovery_diff, self.sim.recovery_fraction, self.wire.recovery_fraction
            ));
        }
        let tv = histogram_tv(&self.sim.hop_histogram, &self.wire.hop_histogram);
        if tv > t.hist_tv {
            out.push(format!(
                "hop-histogram TV distance {tv:.3} exceeds {:.3}",
                t.hist_tv
            ));
        }
        out
    }

    /// Whether every threshold held.
    pub fn passed(&self) -> bool {
        self.failures().is_empty()
    }

    /// A compact table of the comparison, for CLI output.
    pub fn render(&self) -> String {
        let tv = histogram_tv(&self.sim.hop_histogram, &self.wire.hop_histogram);
        let mut s = String::new();
        s.push_str("metric               sim        wire\n");
        s.push_str(&format!(
            "delivery ratio    {:>8.4}  {:>8.4}\n",
            self.sim.delivery_ratio, self.wire.delivery_ratio
        ));
        s.push_str(&format!(
            "mean hops         {:>8.2}  {:>8.2}\n",
            self.sim.mean_hops, self.wire.mean_hops
        ));
        s.push_str(&format!(
            "max hop           {:>8}  {:>8}\n",
            self.sim.max_hop, self.wire.max_hop
        ));
        s.push_str(&format!(
            "recovery frac     {:>8.3}  {:>8.3}\n",
            self.sim.recovery_fraction, self.wire.recovery_fraction
        ));
        s.push_str(&format!(
            "oracle violations {:>8}  {:>8}\n",
            self.sim.violations, self.wire.violations
        ));
        s.push_str(&format!(
            "trace records     {:>8}  {:>8}\n",
            self.sim.trace_records, self.wire.trace_records
        ));
        s.push_str(&format!(
            "msgs/sec          {:>8.0}  {:>8.0}\n",
            self.sim.msgs_per_sec, self.wire.msgs_per_sec
        ));
        s.push_str(&format!("hop-histogram TV  {tv:>8.3}\n"));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_tv_basics() {
        assert_eq!(histogram_tv(&[], &[]), 0.0);
        assert_eq!(histogram_tv(&[10, 0], &[5, 0]), 0.0); // same shape
        assert_eq!(histogram_tv(&[10, 0], &[0, 10]), 1.0); // disjoint
        let tv = histogram_tv(&[5, 5], &[10, 0]);
        assert!((tv - 0.5).abs() < 1e-9);
        assert_eq!(histogram_tv(&[1], &[]), 1.0); // one empty
    }

    #[test]
    fn injection_schedule_is_deterministic_and_paced() {
        let opts = ConformanceOptions::new(8, 10);
        let a = opts.injections();
        let b = opts.injections();
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
        assert_eq!(a[0].0, SimTime::from_secs(3));
        assert!(a[9].0 > a[0].0);
        assert!(a.iter().all(|(_, n)| n.index() < 8));
    }
}
