//! One shard of the fabric: a slice of nodes driven by one OS thread.
//!
//! The fabric partitions its nodes round-robin across `shards` event
//! loops (`global_id % shards` names the owning shard), each owning its
//! slice's sockets, timer wheels, jitter queue, batch buffers, and
//! telemetry. Cross-shard traffic needs no special handoff: datagrams
//! travel over real loopback UDP exactly like intra-shard traffic, so a
//! shard never touches another shard's state. Recorded [`GoCastEvent`]s
//! stay in per-shard streams (each stream is time-sorted by
//! construction) and the coordinator merges them deterministically after
//! every run window — the same submission-order merge discipline the
//! simulator's `parallel_map` uses.
//!
//! Each shard replays the *full* scenario plan against its own
//! [`Impairments`] replica (network faults and crash marks are global
//! state every shard must agree on), but dispatches `Leave`/`Join`
//! protocol commands only for nodes it owns.

use std::net::{SocketAddr, UdpSocket};
use std::time::{Duration, Instant};

use gocast::{decode, encode_into, GoCastCommand, GoCastEvent, GoCastMsg, GoCastNode};
use gocast_metrics::{Gauge, Log2Histogram};
use gocast_sim::scenario::{Fault, PlannedFault};
use gocast_sim::{Ctx, FxHashMap, HostBackend, NodeId, Protocol, SimTime, Timer};
use gocast_udp::{DelayQueue, TimerWheel};
use rand::rngs::SmallRng;

use crate::batch::{BatchBuffer, BatchMode, RecvBatch, RECV_BATCH};
use crate::bootstrap::{
    decode_frame, encode_peer, encode_whohas, frame_data_into, Frame, PeerTable,
};
use crate::impair::{Impairments, Verdict};

/// Messages queued per unknown peer before the oldest is dropped.
const PENDING_CAP: usize = 64;
/// Outstanding who-has questions a node remembers on behalf of others.
const WANTED_CAP: usize = 256;
/// Idle-sleep cap: loopback arrivals cannot interrupt a sleep, so the
/// loop never sleeps longer than this past "nothing to do".
const IDLE_POLL: Duration = Duration::from_micros(500);
/// Receive batches drained per socket per iteration before moving on,
/// so one chatty node cannot starve its shard-mates.
const DRAIN_BATCHES: usize = 4;

/// Wire-side counters, separate from the protocol's own
/// [`gocast::ProtocolCounters`].
#[derive(Debug, Clone, Copy, Default)]
pub struct FabricStats {
    /// Datagrams handed to the OS (sends that did not error).
    pub datagrams_sent: u64,
    /// Datagrams read off sockets.
    pub datagrams_received: u64,
    /// GoCast protocol messages decoded and dispatched.
    pub wire_msgs: u64,
    /// `send_to` syscalls attempted (including ones the OS rejected).
    pub sendto_calls: u64,
    /// `recv_from` syscalls attempted (including `WouldBlock` returns).
    pub recvfrom_calls: u64,
    /// `sendmmsg` syscalls issued (each moves a whole batch).
    pub sendmmsg_calls: u64,
    /// `recvmmsg` syscalls issued (including empty-socket returns).
    pub recvmmsg_calls: u64,
    /// Syscalls avoided by batching: a `sendmmsg`/`recvmmsg` that moved
    /// `k` datagrams counts `k - 1` here (`k` datagrams, one syscall).
    pub syscalls_saved: u64,
    /// Payload bytes handed to the OS on successful sends.
    pub bytes_sent: u64,
    /// Payload bytes read off sockets.
    pub bytes_received: u64,
    /// Datagrams dropped by injected loss.
    pub dropped_loss: u64,
    /// Datagrams dropped crossing a partition.
    pub dropped_partition: u64,
    /// Datagrams dropped on a cut link.
    pub dropped_cut: u64,
    /// Datagrams dropped to/from crashed nodes.
    pub dropped_crashed: u64,
    /// Datagrams held back by injected jitter.
    pub delayed: u64,
    /// Address queries sent (bootstrap discovery).
    pub whohas_sent: u64,
    /// Address answers sent.
    pub peer_replies: u64,
    /// Protocol sends dropped because the peer address stayed unknown.
    pub unresolved_dropped: u64,
    /// Datagrams that failed transport-frame or codec decoding.
    pub malformed: u64,
}

impl FabricStats {
    /// Adds `other`'s counters into `self` (shard aggregation).
    pub fn absorb(&mut self, other: &FabricStats) {
        self.datagrams_sent += other.datagrams_sent;
        self.datagrams_received += other.datagrams_received;
        self.wire_msgs += other.wire_msgs;
        self.sendto_calls += other.sendto_calls;
        self.recvfrom_calls += other.recvfrom_calls;
        self.sendmmsg_calls += other.sendmmsg_calls;
        self.recvmmsg_calls += other.recvmmsg_calls;
        self.syscalls_saved += other.syscalls_saved;
        self.bytes_sent += other.bytes_sent;
        self.bytes_received += other.bytes_received;
        self.dropped_loss += other.dropped_loss;
        self.dropped_partition += other.dropped_partition;
        self.dropped_cut += other.dropped_cut;
        self.dropped_crashed += other.dropped_crashed;
        self.delayed += other.delayed;
        self.whohas_sent += other.whohas_sent;
        self.peer_replies += other.peer_replies;
        self.unresolved_dropped += other.unresolved_dropped;
        self.malformed += other.malformed;
    }
}

impl std::fmt::Display for FabricStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "sent={} recv={} msgs={} saved={} delayed={} drops(loss/part/cut/crash)={}/{}/{}/{} \
             whohas={} replies={} unresolved={} malformed={}",
            self.datagrams_sent,
            self.datagrams_received,
            self.wire_msgs,
            self.syscalls_saved,
            self.delayed,
            self.dropped_loss,
            self.dropped_partition,
            self.dropped_cut,
            self.dropped_crashed,
            self.whohas_sent,
            self.peer_replies,
            self.unresolved_dropped,
            self.malformed,
        )
    }
}

/// Event-loop health beyond raw counters: distribution shapes and queue
/// depths. All of it is wall-clock flavoured (the fabric runs in real
/// time), so the histograms are flagged `wall` in snapshots.
#[derive(Debug, Default)]
pub(crate) struct FabricTelemetry {
    /// Datagrams drained across the shard's sockets per loop iteration.
    pub(crate) datagrams_per_poll: Log2Histogram,
    /// How late each timer fired relative to its deadline, in ns.
    pub(crate) timer_lateness_ns: Log2Histogram,
    /// Datagrams queued shard-wide awaiting address resolution.
    pub(crate) pending_depth: Gauge,
    /// Outstanding who-has questions remembered shard-wide.
    pub(crate) wanted_depth: Gauge,
}

/// A datagram held back by the jitter impairment.
#[derive(Debug)]
pub(crate) struct HeldDatagram {
    from_local: usize,
    dest: SocketAddr,
    bytes: Vec<u8>,
}

/// One hosted node: protocol state machine plus its transport state.
#[derive(Debug)]
pub(crate) struct NodeSlot {
    pub(crate) node: GoCastNode,
    pub(crate) socket: UdpSocket,
    pub(crate) addr: SocketAddr,
    pub(crate) rng: SmallRng,
    pub(crate) timers: TimerWheel,
    pub(crate) peers: PeerTable,
    /// Framed datagrams awaiting address resolution, per unknown peer.
    pub(crate) pending: FxHashMap<NodeId, Vec<Vec<u8>>>,
    /// Questions this node could not answer yet: target → askers.
    pub(crate) wanted: FxHashMap<NodeId, Vec<(NodeId, SocketAddr)>>,
    pub(crate) wanted_len: usize,
}

/// One event loop's worth of fabric state. See the [module docs](self).
#[derive(Debug)]
pub(crate) struct Shard {
    /// This shard's index in `0..shard_count`.
    pub(crate) index: usize,
    /// Total number of shards (the round-robin stride).
    pub(crate) shard_count: usize,
    /// Global node count across all shards (what the protocol sees).
    nodes_total: usize,
    pub(crate) epoch: Instant,
    started: bool,
    pub(crate) slots: Vec<NodeSlot>,
    impair: Impairments,
    plan: Vec<PlannedFault>,
    plan_next: usize,
    cmds: Vec<(SimTime, NodeId, GoCastCommand)>,
    cmds_next: usize,
    delayed: DelayQueue<HeldDatagram>,
    /// This shard's slice of the event stream; drained by the merge.
    pub(crate) trace: Vec<(SimTime, NodeId, GoCastEvent)>,
    record_trace: bool,
    pub(crate) stats: FabricStats,
    pub(crate) telemetry: FabricTelemetry,
    batch: BatchBuffer,
    /// Local slot index whose socket owns the gathered batch, if any.
    batch_owner: Option<usize>,
    recv: RecvBatch,
    mode: BatchMode,
}

impl Shard {
    pub(crate) fn new(
        index: usize,
        shard_count: usize,
        nodes_total: usize,
        seed: u64,
        record_trace: bool,
    ) -> Shard {
        Shard {
            index,
            shard_count,
            nodes_total,
            epoch: Instant::now(),
            started: false,
            slots: Vec::new(),
            impair: Impairments::new(nodes_total, seed),
            plan: Vec::new(),
            plan_next: 0,
            cmds: Vec::new(),
            cmds_next: 0,
            delayed: DelayQueue::new(),
            trace: Vec::new(),
            record_trace,
            stats: FabricStats::default(),
            telemetry: FabricTelemetry::default(),
            batch: BatchBuffer::new(),
            batch_owner: None,
            recv: RecvBatch::new(),
            mode: BatchMode::detect(),
        }
    }

    /// The global node id of local slot `local`.
    fn global_id(&self, local: usize) -> NodeId {
        NodeId::new((local * self.shard_count + self.index) as u32)
    }

    /// The batching mode this shard is currently running in.
    pub(crate) fn mode(&self) -> BatchMode {
        self.mode
    }

    pub(crate) fn is_crashed(&self, id: NodeId) -> bool {
        self.impair.is_crashed(id)
    }

    pub(crate) fn schedule_command(&mut self, at: SimTime, node: NodeId, cmd: GoCastCommand) {
        assert!(
            self.cmds_next == 0 || at >= self.cmds[self.cmds_next - 1].0,
            "cannot schedule a command before already-fired ones"
        );
        self.cmds.push((at, node, cmd));
        self.cmds[self.cmds_next..].sort_by_key(|(t, n, _)| (*t, n.as_u32()));
    }

    pub(crate) fn attach_plan(&mut self, events: &[PlannedFault]) {
        self.plan.extend(events.iter().cloned());
        self.plan[self.plan_next..].sort_by_key(|f| f.at);
    }

    /// Pending-resolution and remembered-question depths (for gauges).
    pub(crate) fn queue_depths(&self) -> (i64, i64) {
        let pending = self
            .slots
            .iter()
            .map(|s| s.pending.values().map(Vec::len).sum::<usize>())
            .sum::<usize>() as i64;
        let wanted = self.slots.iter().map(|s| s.wanted_len as i64).sum();
        (pending, wanted)
    }

    fn now(&self) -> SimTime {
        SimTime::from_nanos(self.epoch.elapsed().as_nanos() as u64)
    }

    fn instant_of(&self, t: SimTime) -> Instant {
        self.epoch + Duration::from_nanos(t.as_nanos())
    }

    /// Flushes the gathered batch through its owner's socket.
    fn flush_batch(&mut self) {
        if let Some(owner) = self.batch_owner {
            self.batch
                .flush(&self.slots[owner].socket, &mut self.mode, &mut self.stats);
        }
        self.batch_owner = None;
    }

    /// Runs this shard's event loop until `deadline`. The first call
    /// fires `on_start` for every owned node.
    pub(crate) fn run_until(&mut self, deadline: Instant) {
        if !self.started {
            self.started = true;
            for local in 0..self.slots.len() {
                self.with_ctx(local, |n, ctx| n.on_start(ctx));
            }
        }
        loop {
            let now_i = Instant::now();
            if now_i >= deadline {
                self.flush_batch();
                return;
            }
            let now_s = self.now();
            let sent_before =
                self.stats.datagrams_sent + self.stats.delayed + self.batch.len() as u64;
            let mut activity = false;

            // 1. Planned scenario faults.
            while self.plan_next < self.plan.len() && self.plan[self.plan_next].at <= now_s {
                let fault = self.plan[self.plan_next].fault.clone();
                self.plan_next += 1;
                self.apply_fault(fault);
                activity = true;
            }
            // 2. Scheduled protocol commands (owned nodes only; the
            //    coordinator routes each command to its owner shard).
            while self.cmds_next < self.cmds.len() && self.cmds[self.cmds_next].0 <= now_s {
                let (_, id, cmd) = self.cmds[self.cmds_next];
                self.cmds_next += 1;
                if !self.impair.is_crashed(id) {
                    let local = id.index() / self.shard_count;
                    self.with_ctx(local, |n, ctx| n.on_command(ctx, cmd));
                }
                activity = true;
            }
            // 3. Due timers, per owned node.
            for local in 0..self.slots.len() {
                if self.impair.is_crashed(self.global_id(local)) {
                    continue;
                }
                while let Some(t_deadline) = self.slots[local].timers.next_deadline() {
                    let Some(timer) = self.slots[local].timers.pop_due(now_i) else {
                        break;
                    };
                    self.telemetry
                        .timer_lateness_ns
                        .observe(now_i.saturating_duration_since(t_deadline).as_nanos() as u64);
                    self.with_ctx(local, |n, ctx| n.on_timer(ctx, timer));
                    activity = true;
                }
            }
            // 4. Jitter-delayed datagrams whose hold expired. These
            //    bypass the batch (rare path, arbitrary sender).
            while let Some(d) = self.delayed.pop_due(now_i) {
                self.stats.sendto_calls += 1;
                if self.slots[d.from_local]
                    .socket
                    .send_to(&d.bytes, d.dest)
                    .is_ok()
                {
                    self.stats.datagrams_sent += 1;
                    self.stats.bytes_sent += d.bytes.len() as u64;
                }
                activity = true;
            }
            // 5. Drain every owned socket in batches.
            let recv_before = self.stats.datagrams_received;
            let mut recv = std::mem::take(&mut self.recv);
            for local in 0..self.slots.len() {
                if self.impair.is_crashed(self.global_id(local)) {
                    continue;
                }
                for _ in 0..DRAIN_BATCHES {
                    let got = recv.recv(&self.slots[local].socket, &mut self.mode, &mut self.stats);
                    for j in 0..got {
                        let (src, bytes) = recv.datagram(j);
                        self.on_datagram(local, src, bytes);
                    }
                    if got > 0 {
                        activity = true;
                    }
                    if got < RECV_BATCH {
                        break;
                    }
                }
            }
            self.recv = recv;

            // Everything gathered this iteration leaves before we sleep
            // or poll again, so batching never holds a datagram back
            // longer than one loop iteration.
            self.flush_batch();

            activity |= (self.stats.datagrams_sent + self.stats.delayed) != sent_before;
            if activity {
                self.telemetry
                    .datagrams_per_poll
                    .observe(self.stats.datagrams_received - recv_before);
                let (pending, wanted) = self.queue_depths();
                self.telemetry.pending_depth.set(pending);
                self.telemetry.wanted_depth.set(wanted);
                continue;
            }
            // 6. Idle: sleep until the earliest deadline we know about —
            //    timer wheels AND the jitter queue head (a delayed
            //    datagram must not wait for an unrelated timer).
            let mut next = deadline;
            if let Some(f) = self.plan.get(self.plan_next) {
                next = next.min(self.instant_of(f.at));
            }
            if let Some((t, _, _)) = self.cmds.get(self.cmds_next) {
                next = next.min(self.instant_of(*t));
            }
            if let Some(t) = self.delayed.next_deadline() {
                next = next.min(t);
            }
            for slot in &mut self.slots {
                if let Some(t) = slot.timers.next_deadline() {
                    next = next.min(t);
                }
            }
            let wait = next
                .saturating_duration_since(Instant::now())
                .min(IDLE_POLL);
            if !wait.is_zero() {
                std::thread::sleep(wait);
            }
        }
    }

    /// Replays one planned fault. Network faults and crash marks update
    /// this shard's impairment replica (every shard replays them so all
    /// replicas agree); `Leave`/`Join` protocol commands dispatch only on
    /// the shard that owns the node.
    fn apply_fault(&mut self, fault: Fault) {
        match fault {
            Fault::Crash(id) => self.impair.set_crashed(id),
            Fault::Leave(id) => {
                if self.owns(id) && !self.impair.is_crashed(id) {
                    let local = id.index() / self.shard_count;
                    self.with_ctx(local, |n, ctx| n.on_command(ctx, GoCastCommand::Leave));
                }
            }
            Fault::Join { node, contact } => {
                if self.owns(node) && !self.impair.is_crashed(node) {
                    let local = node.index() / self.shard_count;
                    self.with_ctx(local, |n, ctx| {
                        n.on_command(ctx, GoCastCommand::Join { contact })
                    });
                }
            }
            net => {
                self.impair.apply(&net);
            }
        }
    }

    fn owns(&self, id: NodeId) -> bool {
        id.index() % self.shard_count == self.index
    }

    /// Handles one received datagram for local slot `local`.
    fn on_datagram(&mut self, local: usize, src: SocketAddr, data: &[u8]) {
        let Some(frame) = decode_frame(data) else {
            self.stats.malformed += 1;
            return;
        };
        match frame {
            Frame::Data { sender, payload } => {
                let msg = match decode(payload) {
                    Ok(m) => m,
                    Err(_) => {
                        self.stats.malformed += 1;
                        return;
                    }
                };
                if self.slots[local].peers.learn(sender, src) {
                    self.on_learned(local, sender);
                }
                self.stats.wire_msgs += 1;
                self.with_ctx(local, |n, ctx| n.on_message(ctx, sender, msg));
            }
            Frame::WhoHas { sender, target } => {
                if self.slots[local].peers.learn(sender, src) {
                    self.on_learned(local, sender);
                }
                match self.slots[local].peers.addr_of(target) {
                    Some(addr) => self.answer_whohas(local, sender, src, target, addr),
                    None => {
                        // Remember the question; answer when the target
                        // first contacts us (bounded memory).
                        let slot = &mut self.slots[local];
                        if slot.wanted_len < WANTED_CAP {
                            slot.wanted.entry(target).or_default().push((sender, src));
                            slot.wanted_len += 1;
                        }
                    }
                }
            }
            Frame::Peer { sender, peer, addr } => {
                if self.slots[local].peers.learn(sender, src) {
                    self.on_learned(local, sender);
                }
                if self.slots[local].peers.learn(peer, addr) {
                    self.on_learned(local, peer);
                }
            }
        }
    }

    /// Local node `local` just learned `peer`'s address: flush datagrams
    /// queued for it and answer anyone who asked where it lives.
    fn on_learned(&mut self, local: usize, peer: NodeId) {
        let Some(addr) = self.slots[local].peers.addr_of(peer) else {
            return;
        };
        if let Some(queue) = self.slots[local].pending.remove(&peer) {
            for bytes in queue {
                self.transmit_local(local, peer, addr, &bytes);
            }
        }
        if let Some(askers) = self.slots[local].wanted.remove(&peer) {
            self.slots[local].wanted_len -= askers.len();
            for (asker, asker_addr) in askers {
                self.answer_whohas(local, asker, asker_addr, peer, addr);
            }
        }
    }

    fn answer_whohas(
        &mut self,
        local: usize,
        asker: NodeId,
        asker_addr: SocketAddr,
        target: NodeId,
        target_addr: SocketAddr,
    ) {
        let me = self.slots[local].node.id();
        if let Some(bytes) = encode_peer(me, target, target_addr) {
            self.stats.peer_replies += 1;
            self.transmit_local(local, asker, asker_addr, &bytes);
        }
    }

    /// Sends pre-framed bytes from local slot `local` to `to`, through
    /// the impairment shim and the batch path.
    fn transmit_local(&mut self, local: usize, to: NodeId, dest: SocketAddr, bytes: &[u8]) {
        let from = self.slots[local].node.id();
        match self.impair.judge(from, to) {
            Verdict::Deliver => {
                if self.batch_owner != Some(local) {
                    self.flush_batch();
                    self.batch_owner = Some(local);
                }
                let full = self
                    .batch
                    .push_with(dest, |buf| buf.extend_from_slice(bytes));
                if full {
                    self.flush_batch();
                    self.batch_owner = Some(local);
                }
            }
            Verdict::DeliverAfter(extra) => {
                self.stats.delayed += 1;
                self.delayed.push(
                    Instant::now() + extra,
                    HeldDatagram {
                        from_local: local,
                        dest,
                        bytes: bytes.to_vec(),
                    },
                );
            }
            Verdict::DropLoss => self.stats.dropped_loss += 1,
            Verdict::DropPartition => self.stats.dropped_partition += 1,
            Verdict::DropCut => self.stats.dropped_cut += 1,
            Verdict::DropCrashed => self.stats.dropped_crashed += 1,
        }
    }

    /// Runs a protocol handler for local slot `local` with a
    /// fabric-backed context. Claims the batch for `local`'s socket
    /// first, flushing anything a different sender gathered.
    pub(crate) fn with_ctx<F>(&mut self, local: usize, f: F)
    where
        F: FnOnce(&mut GoCastNode, &mut Ctx<'_, GoCastNode>),
    {
        if self.batch_owner != Some(local) {
            self.flush_batch();
            self.batch_owner = Some(local);
        }
        let node_count = self.nodes_total;
        let now = self.now();
        let Shard {
            slots,
            impair,
            delayed,
            trace,
            record_trace,
            stats,
            batch,
            mode,
            ..
        } = self;
        let slot = &mut slots[local];
        let id = slot.node.id();
        let mut io = FabricIo {
            id,
            local,
            now,
            node_count,
            socket: &slot.socket,
            peers: &mut slot.peers,
            pending: &mut slot.pending,
            timers: &mut slot.timers,
            impair,
            delayed,
            trace,
            record_trace: *record_trace,
            stats,
            batch,
            mode,
        };
        let mut ctx = Ctx::for_host(id, now, &mut slot.rng, &mut io);
        f(&mut slot.node, &mut ctx);
    }
}

/// The world a protocol handler sees on the fabric.
struct FabricIo<'a> {
    id: NodeId,
    local: usize,
    now: SimTime,
    node_count: usize,
    socket: &'a UdpSocket,
    peers: &'a mut PeerTable,
    pending: &'a mut FxHashMap<NodeId, Vec<Vec<u8>>>,
    timers: &'a mut TimerWheel,
    impair: &'a mut Impairments,
    delayed: &'a mut DelayQueue<HeldDatagram>,
    trace: &'a mut Vec<(SimTime, NodeId, GoCastEvent)>,
    record_trace: bool,
    stats: &'a mut FabricStats,
    batch: &'a mut BatchBuffer,
    mode: &'a mut BatchMode,
}

impl FabricIo<'_> {
    /// Gathers pre-judged bytes into the batch, flushing when full. The
    /// caller (`with_ctx`) already claimed the batch for this sender.
    fn push_batched(&mut self, dest: SocketAddr, bytes: &[u8]) {
        let full = self
            .batch
            .push_with(dest, |buf| buf.extend_from_slice(bytes));
        if full {
            self.batch.flush(self.socket, self.mode, self.stats);
        }
    }
}

impl HostBackend<GoCastNode> for FabricIo<'_> {
    fn send(&mut self, to: NodeId, msg: GoCastMsg) {
        let id = self.id;
        match self.peers.addr_of(to) {
            Some(dest) => match self.impair.judge(id, to) {
                Verdict::Deliver => {
                    // Steady-state fast path: frame + codec bytes are
                    // written straight into the reused batch slot.
                    let full = self.batch.push_with(dest, |buf| {
                        frame_data_into(id, buf);
                        encode_into(&msg, buf);
                    });
                    if full {
                        self.batch.flush(self.socket, self.mode, self.stats);
                    }
                }
                Verdict::DeliverAfter(extra) => {
                    self.stats.delayed += 1;
                    let mut bytes = Vec::with_capacity(5 + gocast::encoded_len(&msg));
                    frame_data_into(id, &mut bytes);
                    encode_into(&msg, &mut bytes);
                    self.delayed.push(
                        Instant::now() + extra,
                        HeldDatagram {
                            from_local: self.local,
                            dest,
                            bytes,
                        },
                    );
                }
                Verdict::DropLoss => self.stats.dropped_loss += 1,
                Verdict::DropPartition => self.stats.dropped_partition += 1,
                Verdict::DropCut => self.stats.dropped_cut += 1,
                Verdict::DropCrashed => self.stats.dropped_crashed += 1,
            },
            None => {
                // Unknown peer: queue the datagram and ask the seeds.
                // Bootstrap-only path — allocation here is fine.
                let mut framed = Vec::with_capacity(5 + gocast::encoded_len(&msg));
                frame_data_into(id, &mut framed);
                encode_into(&msg, &mut framed);
                let queue = self.pending.entry(to).or_default();
                if queue.len() >= PENDING_CAP {
                    queue.remove(0);
                    self.stats.unresolved_dropped += 1;
                }
                queue.push(framed);
                // Query on the first enqueue, then every eighth, so a
                // lost query is retried as protocol traffic keeps coming.
                if queue.len() % 8 == 1 {
                    let query = encode_whohas(id, to);
                    for (seed, seed_addr) in self.peers.seeds().to_vec() {
                        if seed == id {
                            continue;
                        }
                        self.stats.whohas_sent += 1;
                        match self.impair.judge(id, seed) {
                            Verdict::Deliver => self.push_batched(seed_addr, &query),
                            Verdict::DeliverAfter(extra) => {
                                self.stats.delayed += 1;
                                self.delayed.push(
                                    Instant::now() + extra,
                                    HeldDatagram {
                                        from_local: self.local,
                                        dest: seed_addr,
                                        bytes: query.clone(),
                                    },
                                );
                            }
                            Verdict::DropLoss => self.stats.dropped_loss += 1,
                            Verdict::DropPartition => self.stats.dropped_partition += 1,
                            Verdict::DropCut => self.stats.dropped_cut += 1,
                            Verdict::DropCrashed => self.stats.dropped_crashed += 1,
                        }
                    }
                }
            }
        }
    }

    fn set_timer(&mut self, delay: Duration, timer: Timer) {
        self.timers.schedule(Instant::now() + delay, timer);
    }

    fn emit(&mut self, event: GoCastEvent) {
        if self.record_trace {
            self.trace.push((self.now, self.id, event));
        }
    }

    fn node_count(&self) -> usize {
        self.node_count
    }
}
