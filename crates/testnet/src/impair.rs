//! The wire-side impairment shim: chaos parity for real sockets.
//!
//! The simulation kernel injects loss, jitter, partitions, and link cuts
//! when it moves messages between nodes; on the testnet the operating
//! system moves the bytes, so the same faults are applied here, in the
//! fabric's transmit path, *before* `send_to`. The fault state is driven
//! by the exact same compiled [`gocast_sim::ScenarioPlan`]s the chaos
//! engine uses in simulation (PR 4): the fabric replays a plan's network
//! faults into an [`Impairments`] and its node faults (crash/leave/join)
//! into protocol commands, giving every chaos preset a real-socket
//! counterpart.
//!
//! Semantics mirror the kernel: loss and jitter apply only between
//! distinct live nodes, partitions drop datagrams whose endpoints carry
//! different side labels, cut links drop both directions of a pair, and
//! crashed nodes neither send nor receive. Randomness comes from a
//! dedicated fabric RNG stream seeded from the run seed, so impairment
//! draws never perturb protocol-level randomness.

use std::time::Duration;

use gocast_sim::scenario::Fault;
use gocast_sim::NodeId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// What the shim decided for one outgoing datagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Transmit now.
    Deliver,
    /// Transmit after holding the datagram for the given extra delay.
    DeliverAfter(Duration),
    /// Drop: the injected loss probability fired.
    DropLoss,
    /// Drop: sender and receiver are on different partition sides.
    DropPartition,
    /// Drop: the pairwise link is cut.
    DropCut,
    /// Drop: the destination (or source) node has crashed.
    DropCrashed,
}

/// Wire-side network fault state, evolved by replaying a
/// [`gocast_sim::ScenarioPlan`]'s events in fabric time.
#[derive(Debug)]
pub struct Impairments {
    nodes: usize,
    loss: f64,
    jitter: Duration,
    partition: Option<Vec<u32>>,
    /// Cut pairs, stored normalized (`a < b`) and sorted for binary search
    /// (the kernel's `LinkSet` idiom).
    cut: Vec<(u32, u32)>,
    crashed: Vec<bool>,
    rng: SmallRng,
}

impl Impairments {
    /// Fault-free state over `nodes` nodes; `seed` feeds the dedicated
    /// impairment RNG stream.
    pub fn new(nodes: usize, seed: u64) -> Self {
        Impairments {
            nodes,
            loss: 0.0,
            jitter: Duration::ZERO,
            partition: None,
            cut: Vec::new(),
            crashed: vec![false; nodes],
            rng: SmallRng::seed_from_u64(seed ^ 0x5CE7_A110_0000_CAFE),
        }
    }

    /// Applies a network-level fault. Returns `false` for node-level
    /// faults (`Crash`/`Leave`/`Join`), which the fabric handles itself.
    pub fn apply(&mut self, fault: &Fault) -> bool {
        match fault {
            Fault::CutLink(a, b) => {
                let pair = Self::norm(*a, *b);
                if let Err(i) = self.cut.binary_search(&pair) {
                    self.cut.insert(i, pair);
                }
                true
            }
            Fault::HealLink(a, b) => {
                let pair = Self::norm(*a, *b);
                if let Ok(i) = self.cut.binary_search(&pair) {
                    self.cut.remove(i);
                }
                true
            }
            Fault::Partition(sides) => {
                assert_eq!(sides.len(), self.nodes, "partition side labels per node");
                self.partition = Some(sides.clone());
                true
            }
            Fault::HealPartition => {
                self.partition = None;
                true
            }
            Fault::SetLoss(p) => {
                self.loss = p.clamp(0.0, 1.0);
                true
            }
            Fault::SetJitter(j) => {
                self.jitter = *j;
                true
            }
            Fault::Crash(_) | Fault::Leave(_) | Fault::Join { .. } => false,
        }
    }

    /// Marks `node` as crashed: it neither sends nor receives from now on.
    pub fn set_crashed(&mut self, node: NodeId) {
        self.crashed[node.index()] = true;
    }

    /// Whether `node` has crashed.
    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.crashed[node.index()]
    }

    /// Judges one outgoing datagram `from → to`. Order matches the
    /// kernel: crash, then partition/cut (structural), then stochastic
    /// loss, then jitter.
    pub fn judge(&mut self, from: NodeId, to: NodeId) -> Verdict {
        if self.crashed[from.index()] || self.crashed[to.index()] {
            return Verdict::DropCrashed;
        }
        if from == to {
            // Self-sends bypass the (inter-node) network, like the kernel.
            return Verdict::Deliver;
        }
        if let Some(sides) = &self.partition {
            if sides[from.index()] != sides[to.index()] {
                return Verdict::DropPartition;
            }
        }
        if !self.cut.is_empty() && self.cut.binary_search(&Self::norm(from, to)).is_ok() {
            return Verdict::DropCut;
        }
        if self.loss > 0.0 && self.rng.gen_bool(self.loss) {
            return Verdict::DropLoss;
        }
        if !self.jitter.is_zero() {
            let extra = self.rng.gen_range(0..=self.jitter.as_nanos() as u64);
            if extra > 0 {
                return Verdict::DeliverAfter(Duration::from_nanos(extra));
            }
        }
        Verdict::Deliver
    }

    fn norm(a: NodeId, b: NodeId) -> (u32, u32) {
        let (a, b) = (a.as_u32(), b.as_u32());
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn fault_free_state_delivers_everything() {
        let mut imp = Impairments::new(4, 1);
        for a in 0..4 {
            for b in 0..4 {
                assert_eq!(imp.judge(n(a), n(b)), Verdict::Deliver);
            }
        }
    }

    #[test]
    fn partition_drops_cross_side_only() {
        let mut imp = Impairments::new(4, 1);
        assert!(imp.apply(&Fault::Partition(vec![0, 0, 1, 1])));
        assert_eq!(imp.judge(n(0), n(1)), Verdict::Deliver);
        assert_eq!(imp.judge(n(0), n(2)), Verdict::DropPartition);
        assert_eq!(imp.judge(n(3), n(1)), Verdict::DropPartition);
        assert!(imp.apply(&Fault::HealPartition));
        assert_eq!(imp.judge(n(0), n(2)), Verdict::Deliver);
    }

    #[test]
    fn cut_links_drop_both_directions_until_healed() {
        let mut imp = Impairments::new(3, 1);
        assert!(imp.apply(&Fault::CutLink(n(2), n(0))));
        assert_eq!(imp.judge(n(0), n(2)), Verdict::DropCut);
        assert_eq!(imp.judge(n(2), n(0)), Verdict::DropCut);
        assert_eq!(imp.judge(n(0), n(1)), Verdict::Deliver);
        assert!(imp.apply(&Fault::HealLink(n(0), n(2))));
        assert_eq!(imp.judge(n(0), n(2)), Verdict::Deliver);
    }

    #[test]
    fn loss_fires_with_the_configured_probability() {
        let mut imp = Impairments::new(2, 7);
        assert!(imp.apply(&Fault::SetLoss(0.5)));
        let drops = (0..10_000)
            .filter(|_| imp.judge(n(0), n(1)) == Verdict::DropLoss)
            .count();
        assert!((4_000..6_000).contains(&drops), "drops = {drops}");
    }

    #[test]
    fn jitter_delays_but_never_drops() {
        let mut imp = Impairments::new(2, 7);
        assert!(imp.apply(&Fault::SetJitter(Duration::from_millis(5))));
        for _ in 0..100 {
            match imp.judge(n(0), n(1)) {
                Verdict::Deliver => {}
                Verdict::DeliverAfter(d) => assert!(d <= Duration::from_millis(5)),
                other => panic!("unexpected verdict {other:?}"),
            }
        }
    }

    #[test]
    fn crashed_nodes_are_silenced_and_self_sends_bypass_faults() {
        let mut imp = Impairments::new(3, 1);
        imp.apply(&Fault::SetLoss(1.0));
        assert_eq!(imp.judge(n(1), n(1)), Verdict::Deliver); // self-send exempt
        imp.set_crashed(n(2));
        assert!(imp.is_crashed(n(2)));
        assert_eq!(imp.judge(n(0), n(2)), Verdict::DropCrashed);
        assert_eq!(imp.judge(n(2), n(0)), Verdict::DropCrashed);
    }

    #[test]
    fn node_level_faults_are_not_network_faults() {
        let mut imp = Impairments::new(2, 1);
        assert!(!imp.apply(&Fault::Crash(n(0))));
        assert!(!imp.apply(&Fault::Leave(n(0))));
        assert!(!imp.apply(&Fault::Join {
            node: n(0),
            contact: n(1)
        }));
    }
}
