//! Seed-node bootstrap and dynamic peer discovery.
//!
//! The fabric replaces `gocast-udp`'s static `AddressBook` with a learned
//! [`PeerTable`]: a node starts knowing only the *seed* nodes' socket
//! addresses and discovers everyone else at runtime. Discovery rides on a
//! 1-byte transport framing in front of every datagram:
//!
//! ```text
//! DATA    [0xD0][sender: u32 LE][gocast-codec payload]
//! WHOHAS  [0xD1][sender: u32 LE][target: u32 LE]
//! PEER    [0xD2][sender: u32 LE][peer: u32 LE][ipv4: 4B][port: u16 LE]
//! ```
//!
//! The GoCast protocol bytes inside a `DATA` frame are exactly what
//! [`gocast::encode`] produces — the framing is transport identity (the
//! role an IP header plays in a real deployment), not a protocol change.
//! Every received frame teaches the receiver the sender's `NodeId ↔
//! SocketAddr` mapping; a send to an unknown `NodeId` is queued while a
//! `WHOHAS` query goes to the seeds (and any peer already learned), which
//! answer with `PEER` if they know the target. This is the same shape as
//! the membership piggybacking that real gossip deployments use (cf.
//! saorsa-gossip's peer cache), scaled down to the fabric's needs.

use std::net::{IpAddr, Ipv4Addr, SocketAddr};

use gocast_sim::{FxHashMap, NodeId};

/// Frame tag for a GoCast protocol datagram.
pub(crate) const TAG_DATA: u8 = 0xD0;
/// Frame tag for an address query.
pub(crate) const TAG_WHOHAS: u8 = 0xD1;
/// Frame tag for an address answer.
pub(crate) const TAG_PEER: u8 = 0xD2;

/// A decoded transport frame.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum Frame<'a> {
    /// A GoCast protocol message from `sender`.
    Data { sender: NodeId, payload: &'a [u8] },
    /// `sender` asks: what address does `target` live at?
    WhoHas { sender: NodeId, target: NodeId },
    /// `sender` answers: `peer` lives at `addr`.
    Peer {
        sender: NodeId,
        peer: NodeId,
        addr: SocketAddr,
    },
}

/// Frames a GoCast payload with the sender's identity. The wire path
/// frames in place via [`frame_data_into`]; this allocating variant
/// remains for round-trip tests.
#[cfg(test)]
pub(crate) fn encode_data(sender: NodeId, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(5 + payload.len());
    frame_data_into(sender, &mut out);
    out.extend_from_slice(payload);
    out
}

/// Appends the `DATA` frame header to `out`; the caller appends the
/// codec payload (via [`gocast::encode_into`]) right after, so a framed
/// protocol datagram is built without any intermediate allocation.
pub(crate) fn frame_data_into(sender: NodeId, out: &mut Vec<u8>) {
    out.push(TAG_DATA);
    out.extend_from_slice(&sender.as_u32().to_le_bytes());
}

/// Encodes an address query for `target`.
pub(crate) fn encode_whohas(sender: NodeId, target: NodeId) -> Vec<u8> {
    let mut out = Vec::with_capacity(9);
    out.push(TAG_WHOHAS);
    out.extend_from_slice(&sender.as_u32().to_le_bytes());
    out.extend_from_slice(&target.as_u32().to_le_bytes());
    out
}

/// Encodes an address answer. Only IPv4 addresses are representable (the
/// fabric binds IPv4 loopback exclusively); returns `None` for IPv6.
pub(crate) fn encode_peer(sender: NodeId, peer: NodeId, addr: SocketAddr) -> Option<Vec<u8>> {
    let IpAddr::V4(ip) = addr.ip() else {
        return None;
    };
    let mut out = Vec::with_capacity(15);
    out.push(TAG_PEER);
    out.extend_from_slice(&sender.as_u32().to_le_bytes());
    out.extend_from_slice(&peer.as_u32().to_le_bytes());
    out.extend_from_slice(&ip.octets());
    out.extend_from_slice(&addr.port().to_le_bytes());
    Some(out)
}

fn read_u32(buf: &[u8], at: usize) -> Option<u32> {
    Some(u32::from_le_bytes(buf.get(at..at + 4)?.try_into().ok()?))
}

/// Decodes a transport frame; `None` for anything truncated or unknown
/// (malformed datagrams are dropped, mirroring the UDP host's policy).
pub(crate) fn decode_frame(buf: &[u8]) -> Option<Frame<'_>> {
    let (&tag, rest) = buf.split_first()?;
    match tag {
        TAG_DATA => Some(Frame::Data {
            sender: NodeId::new(read_u32(rest, 0)?),
            payload: rest.get(4..)?,
        }),
        TAG_WHOHAS if rest.len() == 8 => Some(Frame::WhoHas {
            sender: NodeId::new(read_u32(rest, 0)?),
            target: NodeId::new(read_u32(rest, 4)?),
        }),
        TAG_PEER if rest.len() == 14 => {
            let ip = Ipv4Addr::new(rest[8], rest[9], rest[10], rest[11]);
            let port = u16::from_le_bytes([rest[12], rest[13]]);
            Some(Frame::Peer {
                sender: NodeId::new(read_u32(rest, 0)?),
                peer: NodeId::new(read_u32(rest, 4)?),
                addr: SocketAddr::from((ip, port)),
            })
        }
        _ => None,
    }
}

/// A node's learned view of where peers live: pre-loaded with the seed
/// set, extended by every frame the node receives and every `PEER` answer.
#[derive(Debug, Clone)]
pub struct PeerTable {
    addrs: FxHashMap<NodeId, SocketAddr>,
    by_addr: FxHashMap<SocketAddr, NodeId>,
    seeds: Vec<(NodeId, SocketAddr)>,
}

impl PeerTable {
    /// A table pre-loaded with the seed nodes (the only addresses a
    /// joiner is configured with).
    pub fn new(seeds: Vec<(NodeId, SocketAddr)>) -> Self {
        let mut t = PeerTable {
            addrs: FxHashMap::default(),
            by_addr: FxHashMap::default(),
            seeds: seeds.clone(),
        };
        for (id, addr) in seeds {
            t.learn(id, addr);
        }
        t
    }

    /// Records that `id` lives at `addr`. Returns `true` when this taught
    /// the table a previously unknown (or changed) mapping.
    pub fn learn(&mut self, id: NodeId, addr: SocketAddr) -> bool {
        match self.addrs.insert(id, addr) {
            Some(prev) if prev == addr => false,
            Some(prev) => {
                self.by_addr.remove(&prev);
                self.by_addr.insert(addr, id);
                true
            }
            None => {
                self.by_addr.insert(addr, id);
                true
            }
        }
    }

    /// The learned address of `id`, if any.
    pub fn addr_of(&self, id: NodeId) -> Option<SocketAddr> {
        self.addrs.get(&id).copied()
    }

    /// Reverse lookup: which node sends from `addr`?
    pub fn node_of(&self, addr: SocketAddr) -> Option<NodeId> {
        self.by_addr.get(&addr).copied()
    }

    /// The configured seed set.
    pub fn seeds(&self) -> &[(NodeId, SocketAddr)] {
        &self.seeds
    }

    /// Number of known peer addresses.
    pub fn known(&self) -> usize {
        self.addrs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(port: u16) -> SocketAddr {
        SocketAddr::from((Ipv4Addr::LOCALHOST, port))
    }

    #[test]
    fn data_frame_round_trips() {
        let payload = gocast::encode(&gocast::GoCastMsg::JoinRequest);
        let framed = encode_data(NodeId::new(7), &payload);
        match decode_frame(&framed) {
            Some(Frame::Data { sender, payload: p }) => {
                assert_eq!(sender, NodeId::new(7));
                assert_eq!(gocast::decode(p).unwrap(), gocast::GoCastMsg::JoinRequest);
            }
            other => panic!("bad decode: {other:?}"),
        }
    }

    #[test]
    fn whohas_and_peer_round_trip() {
        let q = encode_whohas(NodeId::new(3), NodeId::new(12));
        assert_eq!(
            decode_frame(&q),
            Some(Frame::WhoHas {
                sender: NodeId::new(3),
                target: NodeId::new(12)
            })
        );
        let a = encode_peer(NodeId::new(12), NodeId::new(5), addr(4567)).unwrap();
        assert_eq!(
            decode_frame(&a),
            Some(Frame::Peer {
                sender: NodeId::new(12),
                peer: NodeId::new(5),
                addr: addr(4567),
            })
        );
    }

    #[test]
    fn truncated_and_unknown_frames_are_rejected() {
        assert_eq!(decode_frame(&[]), None);
        assert_eq!(decode_frame(&[TAG_DATA]), None);
        assert_eq!(decode_frame(&[TAG_DATA, 1, 2]), None);
        assert_eq!(decode_frame(&[TAG_WHOHAS, 0, 0, 0, 0]), None);
        assert_eq!(decode_frame(&[TAG_PEER, 0, 0, 0, 0, 1]), None);
        assert_eq!(decode_frame(&[0x42, 0, 0, 0, 0]), None);
    }

    #[test]
    fn peer_table_learns_and_reverses() {
        let mut t = PeerTable::new(vec![(NodeId::new(0), addr(9000))]);
        assert_eq!(t.known(), 1);
        assert_eq!(t.addr_of(NodeId::new(0)), Some(addr(9000)));
        assert!(t.learn(NodeId::new(1), addr(9001)));
        assert!(!t.learn(NodeId::new(1), addr(9001))); // already known
        assert!(t.learn(NodeId::new(1), addr(9002))); // rebind
        assert_eq!(t.node_of(addr(9002)), Some(NodeId::new(1)));
        assert_eq!(t.node_of(addr(9001)), None);
        assert_eq!(t.seeds().len(), 1);
    }
}
