//! Decentralized latency estimation (the paper's "triangular heuristic").
//!
//! A joining GoCast node must rank hundreds of member-list candidates by
//! latency *without* pinging them all. The paper cites the triangular
//! heuristic of Ng & Zhang [13] and omits details. We implement the standard
//! landmark formulation: every node measures its RTT to a small fixed set of
//! landmark nodes; the RTT between two nodes is then estimated from their
//! landmark vectors using triangle-inequality bounds — for each landmark
//! `i`, `|a_i - b_i| <= rtt(A,B) <= a_i + b_i` — taking the midpoint of the
//! tightest bounds.
//!
//! Landmark vectors travel inside membership entries, so any node can rank
//! any candidate it has heard of.

use std::time::Duration;

use serde::{Deserialize, Serialize};

/// Default number of landmark nodes.
pub const DEFAULT_LANDMARKS: usize = 8;

/// Maximum number of landmark slots a [`LandmarkVector`] can hold.
///
/// Landmark vectors ride inside every gossip, pong, and membership entry,
/// so they are stored inline (no heap indirection): cloning one is a plain
/// memcpy and hot-path message construction performs no allocation for
/// coordinates. The cap bounds the inline size; configurations requesting
/// more landmarks are clamped to it.
pub const MAX_LANDMARKS: usize = DEFAULT_LANDMARKS;

/// A node's measured RTTs to the landmark set, in microseconds.
///
/// An empty vector means "not yet measured"; estimation then fails and the
/// caller falls back to an arbitrary ordering (exactly the cold-start
/// behaviour of the paper's protocol, which refines by real RTT probes
/// anyway).
///
/// Storage is a fixed inline array of [`MAX_LANDMARKS`] slots plus a
/// length, so the type is `Copy` and never touches the heap. Unused slots
/// hold `u32::MAX` ("unmeasured"), which keeps derived equality honest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LandmarkVector {
    rtt_us: [u32; MAX_LANDMARKS],
    len: u8,
}

impl Default for LandmarkVector {
    fn default() -> Self {
        LandmarkVector {
            rtt_us: [u32::MAX; MAX_LANDMARKS],
            len: 0,
        }
    }
}

impl LandmarkVector {
    /// An unmeasured (empty) vector.
    pub fn unknown() -> Self {
        LandmarkVector::default()
    }

    /// Builds a vector from measured landmark RTTs.
    ///
    /// # Panics
    ///
    /// Panics if the iterator yields more than [`MAX_LANDMARKS`] values.
    pub fn from_rtts<I: IntoIterator<Item = Duration>>(rtts: I) -> Self {
        let mut v = LandmarkVector::default();
        for (i, d) in rtts.into_iter().enumerate() {
            v.set(i, d);
        }
        v
    }

    /// Number of landmarks measured.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether no landmarks have been measured yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Records the RTT to landmark `i`, growing the length as needed
    /// (intervening slots stay unmeasured).
    ///
    /// # Panics
    ///
    /// Panics if `i >= MAX_LANDMARKS`.
    pub fn set(&mut self, i: usize, rtt: Duration) {
        assert!(
            i < MAX_LANDMARKS,
            "landmark index {i} exceeds MAX_LANDMARKS ({MAX_LANDMARKS})"
        );
        self.rtt_us[i] = rtt.as_micros().min(u32::MAX as u128) as u32;
        self.len = self.len.max(i as u8 + 1);
    }

    /// Whether every landmark slot up to `n` has been measured.
    pub fn is_complete(&self, n: usize) -> bool {
        self.len() >= n && self.rtt_us[..n].iter().all(|&v| v != u32::MAX)
    }

    /// Raw RTT of landmark slot `i` in microseconds (`u32::MAX` =
    /// unmeasured). Used by wire codecs.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn rtt_us_at(&self, i: usize) -> u32 {
        self.rtt_us[..self.len()][i]
    }

    /// Estimates the RTT to a node with vector `other` via the triangular
    /// heuristic. Returns `None` when either vector is empty or the vectors
    /// share no measured landmark.
    ///
    /// ```
    /// use gocast_net::LandmarkVector;
    /// use std::time::Duration;
    ///
    /// let ms = |v| Duration::from_millis(v);
    /// let a = LandmarkVector::from_rtts([ms(10), ms(100)]);
    /// let b = LandmarkVector::from_rtts([ms(90), ms(20)]);
    /// let est = a.estimate_rtt(&b).unwrap();
    /// // Bounds: max(|10-90|, |100-20|) = 80 .. min(10+90, 100+20) = 100.
    /// assert_eq!(est, ms(90));
    /// ```
    pub fn estimate_rtt(&self, other: &LandmarkVector) -> Option<Duration> {
        let mut lower = 0u64;
        let mut upper = u64::MAX;
        let mut shared = false;
        for (&a, &b) in self.rtt_us[..self.len()]
            .iter()
            .zip(&other.rtt_us[..other.len()])
        {
            if a == u32::MAX || b == u32::MAX {
                continue;
            }
            shared = true;
            let (a, b) = (a as u64, b as u64);
            lower = lower.max(a.abs_diff(b));
            upper = upper.min(a + b);
        }
        if !shared {
            return None;
        }
        // Noisy measurements can cross the bounds; midpoint still works.
        let est = if upper >= lower {
            (lower + upper) / 2
        } else {
            upper
        };
        Some(Duration::from_micros(est))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn empty_vectors_yield_none() {
        let a = LandmarkVector::unknown();
        let b = LandmarkVector::from_rtts([ms(10)]);
        assert_eq!(a.estimate_rtt(&b), None);
        assert_eq!(b.estimate_rtt(&a), None);
        assert!(a.is_empty());
    }

    #[test]
    fn estimate_is_symmetric() {
        let a = LandmarkVector::from_rtts([ms(10), ms(50), ms(200)]);
        let b = LandmarkVector::from_rtts([ms(60), ms(55), ms(30)]);
        assert_eq!(a.estimate_rtt(&b), b.estimate_rtt(&a));
    }

    #[test]
    fn identical_vectors_estimate_small() {
        // A node compared with a co-located node: lower bound 0, upper bound
        // 2 * min RTT; midpoint = min RTT.
        let a = LandmarkVector::from_rtts([ms(10), ms(40)]);
        assert_eq!(a.estimate_rtt(&a), Some(ms(10)));
    }

    #[test]
    fn set_grows_and_completes() {
        let mut v = LandmarkVector::unknown();
        v.set(2, ms(30));
        assert_eq!(v.len(), 3);
        assert!(!v.is_complete(3), "slots 0 and 1 unmeasured");
        v.set(0, ms(10));
        v.set(1, ms(20));
        assert!(v.is_complete(3));
        assert!(!v.is_complete(4));
    }

    #[test]
    fn unmeasured_slots_are_skipped() {
        let mut a = LandmarkVector::unknown();
        a.set(0, ms(10));
        a.set(1, ms(99));
        let mut b = LandmarkVector::unknown();
        b.set(1, ms(99));
        b.set(2, ms(5));
        // Only landmark 1 is shared: bounds 0 .. 198ms, midpoint 99ms.
        assert_eq!(a.estimate_rtt(&b), Some(ms(99)));
    }

    #[test]
    fn closer_nodes_estimate_lower() {
        // Geometry: landmarks at 0 and 100 on a line; nodes at 10, 20, 80.
        let at = |x: i64| {
            LandmarkVector::from_rtts([
                Duration::from_millis(x.unsigned_abs()),
                Duration::from_millis((100 - x).unsigned_abs()),
            ])
        };
        let n10 = at(10);
        let n20 = at(20);
        let n80 = at(80);
        let near = n10.estimate_rtt(&n20).unwrap();
        let far = n10.estimate_rtt(&n80).unwrap();
        assert!(near < far, "near={near:?} far={far:?}");
    }
}
