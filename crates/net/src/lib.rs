//! # gocast-net — network substrate for the GoCast reproduction
//!
//! Everything the protocols need to know about "the Internet":
//!
//! - [`SiteLatencyMatrix`]: site-based one-way latency tables implementing
//!   [`gocast_sim::LatencyModel`], mirroring the King dataset's structure.
//! - [`synthetic_king`] / [`king_like`]: a calibrated synthetic replacement
//!   for the King dataset (mean one-way latency ≈ 91 ms, max ≤ 399 ms,
//!   continent-like clustering). See DESIGN.md for the substitution
//!   rationale.
//! - [`AsTopology`] / [`LinkStress`]: an AS-level physical topology with
//!   shortest-path routing, used to measure the stress overlay traffic
//!   imposes on bottleneck physical links.
//! - [`LandmarkVector`]: decentralized RTT estimation (the paper's
//!   "triangular heuristic") used to rank neighbor candidates cheaply.
//!
//! ```
//! use gocast_net::king_like;
//! use gocast_sim::{LatencyModel, NodeId};
//!
//! let net = king_like(64, 42);
//! let l = net.one_way(NodeId::new(0), NodeId::new(1));
//! assert!(l > std::time::Duration::ZERO);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod astopo;
mod estimate;
mod king;
mod matrix;
mod ondemand;

pub use astopo::{geographic_site_assignment, AsTopology, LinkStress};
pub use estimate::{LandmarkVector, DEFAULT_LANDMARKS, MAX_LANDMARKS};
pub use king::{king_like, synthetic_king, two_continents, SyntheticKingConfig};
pub use matrix::SiteLatencyMatrix;
pub use ondemand::OnDemandKing;
