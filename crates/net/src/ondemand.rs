//! Constant-memory synthetic King model for million-node simulations.
//!
//! [`synthetic_king`](crate::synthetic_king) materializes a full
//! `sites × sites` microsecond table (~12 MB at the paper's 1,740 sites)
//! plus an O(N) node→site vector. Both are fine at experiment scale, but
//! the sharded kernel targets 10⁵–10⁶ nodes where the principle is
//! **no per-pair state and no per-node state**: everything a latency
//! query needs must be computable from O(sites) data.
//!
//! [`OnDemandKing`] keeps only the site *positions* (the same continent-
//! cluster placement the matrix generator draws, via a shared helper) and
//! derives the rest on demand:
//!
//! - **node → site**: a hash of `(assignment seed, node id)` — no vector;
//! - **site pair latency**: euclidean distance in the synthetic
//!   coordinate space, times a deterministic per-pair jitter drawn by
//!   hashing the unordered site pair, times a calibration scale, clamped
//!   into `[min_floor, max_cap]`;
//! - **calibration**: the scale that maps the raw mean onto the paper's
//!   91 ms target is fitted at construction from a deterministic sample
//!   of site pairs (the full pair set is quadratic in sites, and the
//!   sample mean converges to the same scale).
//!
//! The result is symmetric, zero on the diagonal, stable across calls,
//! byte-for-byte reproducible per seed — and its memory footprint is
//! independent of the node count. It also promises the positive
//! [`LatencyModel::lookahead`] bound the sharded kernel requires: no two
//! distinct nodes are ever closer than the intra-site latency.

use std::time::Duration;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use gocast_sim::{LatencyModel, NodeId};

use crate::king::{place_sites, SyntheticKingConfig};

/// Number of site pairs sampled to fit the calibration scale.
const CALIBRATION_SAMPLES: usize = 4096;

/// A splitmix64-style finalizer: the hash behind site assignment and
/// per-pair jitter.
#[inline]
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58476d1ce4e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// A clustered King-like latency model whose memory footprint is
/// O(sites), independent of the node count.
///
/// Query cost is O(1): two hashes, one square root. Construction: node
/// → site by hash, sites on a jittered continent grid (the same layout
/// [`synthetic_king`](crate::synthetic_king) builds), pairwise latency derived
/// on demand from site distance plus deterministic per-pair jitter.
///
/// ```
/// use gocast_net::OnDemandKing;
/// use gocast_sim::{LatencyModel, NodeId};
/// use std::time::Duration;
///
/// let net = OnDemandKing::paper_default(100_000, 42);
/// let l = net.one_way(NodeId::new(0), NodeId::new(99_999));
/// assert!(l >= net.lookahead().unwrap());
/// assert!(l <= Duration::from_millis(399));
/// assert_eq!(l, net.one_way(NodeId::new(99_999), NodeId::new(0)));
/// ```
#[derive(Debug, Clone)]
pub struct OnDemandKing {
    nodes: usize,
    /// Seed for node→site assignment and per-pair jitter.
    seed: u64,
    /// Site positions in "milliseconds of propagation" coordinates.
    coords: Vec<(f64, f64)>,
    /// Raw-latency → microseconds calibration factor.
    scale_us: f64,
    floor_us: u32,
    cap_us: u32,
    intra_site_us: u32,
}

impl OnDemandKing {
    /// Builds the model for `nodes` nodes from the same configuration the
    /// matrix generator takes. `cfg.seed` drives site placement, node
    /// assignment, and jitter.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0` or `cfg.sites < 2`.
    pub fn new(nodes: usize, cfg: &SyntheticKingConfig) -> Self {
        assert!(nodes > 0, "need at least one node");
        assert!(cfg.sites >= 2, "need at least two sites");
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let coords = place_sites(&mut rng, cfg.sites);

        // Fit the calibration scale on a deterministic pair sample. Raw
        // latency mirrors the matrix generator: last-mile base (4 ms) +
        // propagation distance, times per-pair jitter in [0.75, 1.65).
        let mut sum = 0f64;
        let mut samples = 0u64;
        for _ in 0..CALIBRATION_SAMPLES {
            let i = rng.gen_range(0..cfg.sites);
            let j = rng.gen_range(0..cfg.sites);
            if i == j {
                continue;
            }
            sum += raw_ms(&coords, cfg.seed, i as u32, j as u32);
            samples += 1;
        }
        let mean = sum / samples.max(1) as f64;
        let scale_us = cfg.target_mean.as_secs_f64() * 1e6 / mean;

        OnDemandKing {
            nodes,
            seed: cfg.seed,
            coords,
            scale_us,
            floor_us: cfg.min_floor.as_micros() as u32,
            cap_us: cfg.max_cap.as_micros() as u32,
            intra_site_us: cfg.intra_site.as_micros() as u32,
        }
    }

    /// The paper-default network at any scale: 1,740 sites calibrated to
    /// the King summary statistics. The O(1)-memory counterpart of
    /// [`king_like`](crate::king_like).
    pub fn paper_default(nodes: usize, seed: u64) -> Self {
        OnDemandKing::new(
            nodes,
            &SyntheticKingConfig {
                seed,
                ..Default::default()
            },
        )
    }

    /// Number of sites.
    pub fn site_count(&self) -> usize {
        self.coords.len()
    }

    /// The site a node hashes to.
    #[inline]
    pub fn site_of(&self, node: NodeId) -> u32 {
        (mix(self.seed ^ 0x517E_A551 ^ node.as_u32() as u64) % self.coords.len() as u64) as u32
    }

    /// Materializes the node→site assignment — the group map fault
    /// scenarios need for correlated site crashes. O(nodes) to build;
    /// the model itself never stores it.
    pub fn site_assignment(&self) -> Vec<u32> {
        (0..self.nodes as u32)
            .map(|i| self.site_of(NodeId::new(i)))
            .collect()
    }

    /// One-way latency between two *sites* (zero for `a == b`).
    pub fn site_latency(&self, a: u32, b: u32) -> Duration {
        if a == b {
            return Duration::ZERO;
        }
        let us = (raw_ms(&self.coords, self.seed, a, b) * self.scale_us) as u32;
        Duration::from_micros(us.clamp(self.floor_us, self.cap_us) as u64)
    }

    /// Mean one-way latency over a deterministic sample of distinct site
    /// pairs (diagnostics; mirrors
    /// [`SiteLatencyMatrix::mean_site_latency`](crate::SiteLatencyMatrix::mean_site_latency)
    /// without enumerating all pairs).
    pub fn sampled_mean_latency(&self) -> Duration {
        let sites = self.coords.len();
        let mut rng = SmallRng::seed_from_u64(self.seed ^ 0x5A3B);
        let mut sum = 0u64;
        let mut count = 0u64;
        for _ in 0..CALIBRATION_SAMPLES {
            let i = rng.gen_range(0..sites) as u32;
            let j = rng.gen_range(0..sites) as u32;
            if i == j {
                continue;
            }
            sum += self.site_latency(i, j).as_micros() as u64;
            count += 1;
        }
        Duration::from_micros(sum.checked_div(count).unwrap_or(0))
    }
}

/// Uncalibrated site-pair latency in milliseconds: base + distance, times
/// a jitter hashed from the unordered pair (symmetric and stable).
#[inline]
fn raw_ms(coords: &[(f64, f64)], seed: u64, a: u32, b: u32) -> f64 {
    let (xa, ya) = coords[a as usize];
    let (xb, yb) = coords[b as usize];
    let dist = ((xa - xb).powi(2) + (ya - yb).powi(2)).sqrt();
    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
    let h = mix(seed ^ ((lo as u64) << 32 | hi as u64));
    // Map the hash onto [0.75, 1.65), the matrix generator's jitter range.
    let jitter = 0.75 + 0.9 * (h >> 11) as f64 / (1u64 << 53) as f64;
    (4.0 + dist) * jitter
}

impl LatencyModel for OnDemandKing {
    fn one_way(&self, a: NodeId, b: NodeId) -> Duration {
        if a == b {
            return Duration::ZERO;
        }
        let (sa, sb) = (self.site_of(a), self.site_of(b));
        if sa == sb {
            Duration::from_micros(self.intra_site_us as u64)
        } else {
            self.site_latency(sa, sb)
        }
    }

    fn len(&self) -> usize {
        self.nodes
    }

    fn lookahead(&self) -> Option<Duration> {
        let bound = self.intra_site_us.min(self.floor_us);
        (bound > 0).then(|| Duration::from_micros(bound as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(nodes: usize, seed: u64) -> OnDemandKing {
        OnDemandKing::new(
            nodes,
            &SyntheticKingConfig {
                sites: 256,
                seed,
                ..Default::default()
            },
        )
    }

    #[test]
    fn symmetric_stable_and_zero_on_diagonal() {
        let m = model(1000, 1);
        for i in (0..1000u32).step_by(97) {
            for j in (0..1000u32).step_by(89) {
                let (a, b) = (NodeId::new(i), NodeId::new(j));
                assert_eq!(m.one_way(a, b), m.one_way(b, a));
                assert_eq!(m.one_way(a, b), m.one_way(a, b), "stable across calls");
            }
            assert_eq!(m.one_way(NodeId::new(i), NodeId::new(i)), Duration::ZERO);
        }
    }

    #[test]
    fn mean_is_calibrated_and_range_respected() {
        let m = model(1000, 2);
        let mean = m.sampled_mean_latency();
        assert!(
            mean >= Duration::from_millis(75) && mean <= Duration::from_millis(107),
            "sampled mean {mean:?} not near 91ms"
        );
        for i in (0..256u32).step_by(7) {
            for j in (0..256u32).step_by(11) {
                if i == j {
                    continue;
                }
                let l = m.site_latency(i, j);
                assert!(l >= Duration::from_millis(1) && l <= Duration::from_millis(399));
            }
        }
    }

    #[test]
    fn lookahead_lower_bounds_every_pair() {
        let m = model(500, 3);
        let delta = m.lookahead().expect("positive lookahead");
        assert_eq!(delta, Duration::from_micros(500));
        for i in (0..500u32).step_by(13) {
            for j in (0..500u32).step_by(17) {
                if i == j {
                    continue;
                }
                assert!(m.one_way(NodeId::new(i), NodeId::new(j)) >= delta);
            }
        }
    }

    #[test]
    fn deterministic_per_seed_and_seed_sensitive() {
        let a = model(200, 7);
        let b = model(200, 7);
        let c = model(200, 8);
        let mut differs = false;
        for i in 0..200u32 {
            for j in 0..200u32 {
                let (x, y) = (NodeId::new(i), NodeId::new(j));
                assert_eq!(a.one_way(x, y), b.one_way(x, y));
                differs |= a.one_way(x, y) != c.one_way(x, y);
            }
        }
        assert!(differs, "different seeds should differ");
    }

    #[test]
    fn site_assignment_matches_site_of() {
        let m = model(300, 4);
        let groups = m.site_assignment();
        assert_eq!(groups.len(), 300);
        for (i, &g) in groups.iter().enumerate() {
            assert_eq!(g, m.site_of(NodeId::new(i as u32)));
            assert!((g as usize) < m.site_count());
        }
    }

    #[test]
    fn memory_is_independent_of_node_count() {
        let small = model(100, 5);
        let big = model(1_000_000, 5);
        assert_eq!(small.coords.len(), big.coords.len());
        // Same sites, same scale: identical site-level geometry.
        assert_eq!(small.site_latency(0, 1), big.site_latency(0, 1));
        assert_eq!(big.len(), 1_000_000);
    }

    #[test]
    fn clustering_shows_heavy_spread() {
        let m = model(1000, 6);
        let mut lats: Vec<Duration> = Vec::new();
        for i in 0..256u32 {
            for j in (i + 1)..256 {
                lats.push(m.site_latency(i, j));
            }
        }
        lats.sort();
        let p10 = lats[lats.len() / 10];
        let p90 = lats[lats.len() * 9 / 10];
        assert!(
            p90 > p10 * 4,
            "expected heavy spread, got p10={p10:?} p90={p90:?}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn rejects_zero_nodes() {
        let _ = OnDemandKing::paper_default(0, 1);
    }
}
