//! AS-level physical topology and link-stress accounting.
//!
//! **Substitution note (see DESIGN.md):** the paper's bottleneck-stress
//! experiment uses "large-scale snapshots of the Internet Autonomous
//! Systems". Offline, we synthesize an AS graph with the property that
//! experiment exercises — a power-law-ish degree distribution where a few
//! transit hubs carry most cross-traffic — using preferential attachment.
//! Sites attach to stub ASes; overlay traffic between two sites is routed on
//! the shortest AS path, and *link stress* counts how many overlay messages
//! traverse each physical (AS-AS) link.

use std::collections::HashMap;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use gocast_sim::NodeId;

use crate::matrix::SiteLatencyMatrix;

/// How sites attach to stub ASes.
#[derive(Debug, Clone)]
enum SiteAttachment {
    /// `n` sites, each on a uniformly random stub.
    Random(usize),
    /// Explicit group index per site; equal groups share a stub.
    Grouped(Vec<u32>),
}

impl SiteAttachment {
    fn site_count(&self) -> usize {
        match self {
            SiteAttachment::Random(n) => *n,
            SiteAttachment::Grouped(g) => g.len(),
        }
    }
}

/// Groups sites by latency proximity: a greedy clustering that repeatedly
/// takes an unassigned site and groups the nearest unassigned sites with
/// it. Sites in the same group get the same group index, which
/// [`AsTopology::with_site_groups`] maps onto the same stub AS — modelling
/// the fact that low-latency site pairs are usually topologically close.
pub fn geographic_site_assignment(net: &SiteLatencyMatrix, groups: usize, seed: u64) -> Vec<u32> {
    let sites = net.site_count();
    assert!(groups > 0, "need at least one group");
    let group_size = sites.div_ceil(groups);
    let mut assignment = vec![u32::MAX; sites];
    let mut order: Vec<u32> = (0..sites as u32).collect();
    let mut rng = SmallRng::seed_from_u64(seed);
    for i in (1..order.len()).rev() {
        order.swap(i, rng.gen_range(0..=i));
    }
    let mut next_group = 0u32;
    for &leader in &order {
        if assignment[leader as usize] != u32::MAX {
            continue;
        }
        let mut nearest: Vec<(u64, u32)> = (0..sites as u32)
            .filter(|&s| assignment[s as usize] == u32::MAX && s != leader)
            .map(|s| (net.site_latency(leader, s).as_micros() as u64, s))
            .collect();
        nearest.sort_unstable();
        assignment[leader as usize] = next_group;
        for (_, s) in nearest.into_iter().take(group_size - 1) {
            assignment[s as usize] = next_group;
        }
        next_group += 1;
    }
    assignment
}

/// An undirected AS-level graph with deterministic shortest-path routing and
/// a site-to-AS attachment.
#[derive(Debug, Clone)]
pub struct AsTopology {
    adj: Vec<Vec<u32>>,
    site_as: Vec<u32>,
    /// `parents[src][v]` = predecessor of `v` on the BFS tree rooted at
    /// `src` (`u32::MAX` for unreachable / root).
    parents: Vec<Vec<u32>>,
}

impl AsTopology {
    /// Builds a preferential-attachment AS graph of `as_count` ASes, each
    /// new AS attaching to `links_per_new` existing ones, and attaches
    /// `sites` sites to stub ASes.
    ///
    /// # Panics
    ///
    /// Panics if `as_count < links_per_new + 2`, or `links_per_new == 0`,
    /// or `sites == 0`.
    pub fn preferential_attachment(
        as_count: usize,
        links_per_new: usize,
        sites: usize,
        seed: u64,
    ) -> Self {
        Self::build(as_count, links_per_new, SiteAttachment::Random(sites), seed)
    }

    /// Like [`AsTopology::preferential_attachment`] but with an explicit
    /// site-to-stub-group assignment: sites with the same group index
    /// attach to the same stub AS. Use
    /// [`geographic_site_assignment`] to derive groups from a latency
    /// matrix, which models the reality that topological proximity and
    /// latency proximity correlate.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as `preferential_attachment`, or
    /// if `groups` is empty.
    pub fn with_site_groups(
        as_count: usize,
        links_per_new: usize,
        groups: Vec<u32>,
        seed: u64,
    ) -> Self {
        assert!(!groups.is_empty(), "need at least one site");
        Self::build(
            as_count,
            links_per_new,
            SiteAttachment::Grouped(groups),
            seed,
        )
    }

    /// Builds a two-level **transit–stub** topology (the classic GT-ITM
    /// shape) aligned with a latency matrix:
    ///
    /// - `regions` transit ASes form the core — a sparse ring with one
    ///   cross chord (like a real backbone, where inter-continental
    ///   capacity is concentrated on few links);
    /// - each region owns `stubs_per_region` stub ASes, single-homed to
    ///   its regional transit;
    /// - sites are clustered by latency twice — coarsely into regions and
    ///   finely into stub groups — so that low-latency site pairs attach
    ///   to the same stub (0 AS hops) or to stubs of the same region
    ///   (2 hops), while far pairs cross the core (3 hops).
    ///
    /// This is the topology where proximity-aware overlays pay off: it
    /// encodes the real-Internet correlation between latency and AS-path
    /// locality that a flat random attachment destroys.
    ///
    /// # Panics
    ///
    /// Panics if `regions < 2` or `stubs_per_region == 0`.
    pub fn transit_stub(
        net: &SiteLatencyMatrix,
        regions: usize,
        stubs_per_region: usize,
        seed: u64,
    ) -> Self {
        assert!(regions >= 2, "need at least two regions");
        assert!(stubs_per_region > 0, "need at least one stub per region");
        let sites = net.site_count();
        let coarse = geographic_site_assignment(net, regions, seed);
        let fine = geographic_site_assignment(net, regions * stubs_per_region, seed ^ 1);

        // Region of each fine group: majority vote of its sites' coarse
        // groups (coarse group indices are arbitrary but consistent).
        let fine_count = fine.iter().map(|&g| g as usize + 1).max().unwrap_or(1);
        let coarse_count = coarse.iter().map(|&g| g as usize + 1).max().unwrap_or(1);
        let mut votes = vec![vec![0u32; coarse_count]; fine_count];
        for s in 0..sites {
            votes[fine[s] as usize][coarse[s] as usize] += 1;
        }
        let region_of_fine: Vec<usize> = votes
            .iter()
            .map(|v| {
                v.iter()
                    .enumerate()
                    .max_by_key(|(i, &c)| (c, usize::MAX - i))
                    .map(|(i, _)| i % regions)
                    .unwrap_or(0)
            })
            .collect();

        // AS ids: 0..regions = transit core; then stubs_per_region per
        // region.
        let as_count = regions + regions * stubs_per_region;
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); as_count];
        let core_link = |adj: &mut Vec<Vec<u32>>, a: usize, b: usize| {
            if a != b && !adj[a].contains(&(b as u32)) {
                adj[a].push(b as u32);
                adj[b].push(a as u32);
            }
        };
        if regions <= 3 {
            for a in 0..regions {
                for b in (a + 1)..regions {
                    core_link(&mut adj, a, b);
                }
            }
        } else {
            // Ring plus one diameter chord.
            for a in 0..regions {
                core_link(&mut adj, a, (a + 1) % regions);
            }
            core_link(&mut adj, 0, regions / 2);
        }
        let stub_id = |region: usize, k: usize| regions + region * stubs_per_region + k;
        for r in 0..regions {
            for k in 0..stubs_per_region {
                let s = stub_id(r, k);
                adj[s].push(r as u32);
                adj[r].push(s as u32);
            }
        }
        for l in &mut adj {
            l.sort_unstable();
        }

        // Map fine groups onto their region's stubs round-robin.
        let mut next_in_region = vec![0usize; regions];
        let stub_of_fine: Vec<u32> = region_of_fine
            .iter()
            .map(|&r| {
                let k = next_in_region[r] % stubs_per_region;
                next_in_region[r] += 1;
                stub_id(r, k) as u32
            })
            .collect();
        let site_as: Vec<u32> = (0..sites).map(|s| stub_of_fine[fine[s] as usize]).collect();

        let parents = Self::all_pairs_bfs(&adj);
        AsTopology {
            adj,
            site_as,
            parents,
        }
    }

    fn all_pairs_bfs(adj: &[Vec<u32>]) -> Vec<Vec<u32>> {
        let as_count = adj.len();
        (0..as_count)
            .map(|src| {
                let mut parent = vec![u32::MAX; as_count];
                let mut seen = vec![false; as_count];
                let mut queue = std::collections::VecDeque::new();
                seen[src] = true;
                queue.push_back(src as u32);
                while let Some(u) = queue.pop_front() {
                    for &w in &adj[u as usize] {
                        if !seen[w as usize] {
                            seen[w as usize] = true;
                            parent[w as usize] = u;
                            queue.push_back(w);
                        }
                    }
                }
                parent
            })
            .collect()
    }

    fn build(as_count: usize, links_per_new: usize, attachment: SiteAttachment, seed: u64) -> Self {
        assert!(links_per_new > 0, "links_per_new must be positive");
        assert!(
            as_count >= links_per_new + 2,
            "need at least links_per_new + 2 ASes"
        );
        let sites = attachment.site_count();
        assert!(sites > 0, "need at least one site");
        let mut rng = SmallRng::seed_from_u64(seed);

        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); as_count];
        // Endpoint multiset for degree-proportional sampling.
        let mut endpoints: Vec<u32> = Vec::new();
        let m0 = links_per_new + 1;
        // Seed clique.
        for i in 0..m0 {
            for j in (i + 1)..m0 {
                adj[i].push(j as u32);
                adj[j].push(i as u32);
                endpoints.push(i as u32);
                endpoints.push(j as u32);
            }
        }
        // Attach the rest preferentially.
        for v in m0..as_count {
            let mut chosen: Vec<u32> = Vec::with_capacity(links_per_new);
            while chosen.len() < links_per_new {
                let t = endpoints[rng.gen_range(0..endpoints.len())];
                if t != v as u32 && !chosen.contains(&t) {
                    chosen.push(t);
                }
            }
            for t in chosen {
                adj[v].push(t);
                adj[t as usize].push(v as u32);
                endpoints.push(v as u32);
                endpoints.push(t);
            }
        }
        for l in &mut adj {
            l.sort_unstable();
        }

        // Stubs: the attachment-degree ASes (exclude the seed clique and
        // anything that accumulated extra links).
        let stubs: Vec<u32> = (0..as_count)
            .filter(|&v| adj[v].len() <= links_per_new + 1 && v >= m0)
            .map(|v| v as u32)
            .collect();
        let pool: Vec<u32> = if stubs.is_empty() {
            // Degenerate tiny graphs: fall back to all ASes.
            (0..as_count as u32).collect()
        } else {
            stubs
        };
        let site_as = match attachment {
            SiteAttachment::Random(n) => {
                (0..n).map(|_| pool[rng.gen_range(0..pool.len())]).collect()
            }
            SiteAttachment::Grouped(groups) => groups
                .into_iter()
                .map(|g| pool[g as usize % pool.len()])
                .collect(),
        };

        // All-pairs BFS parents (deterministic: adjacency is sorted).
        let parents = Self::all_pairs_bfs(&adj);

        AsTopology {
            adj,
            site_as,
            parents,
        }
    }

    /// Number of ASes.
    pub fn as_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of physical (AS-AS) links.
    pub fn link_count(&self) -> usize {
        self.adj.iter().map(|l| l.len()).sum::<usize>() / 2
    }

    /// Degree of AS `v`.
    pub fn degree(&self, v: u32) -> usize {
        self.adj[v as usize].len()
    }

    /// The AS a site attaches to.
    pub fn as_of_site(&self, site: u32) -> u32 {
        self.site_as[site as usize]
    }

    /// The AS-level links (normalized `(min, max)` pairs) on the shortest
    /// path between the ASes of two sites. Empty if co-located.
    pub fn path_links(&self, site_a: u32, site_b: u32) -> Vec<(u32, u32)> {
        let (a, b) = (self.as_of_site(site_a), self.as_of_site(site_b));
        let mut links = Vec::new();
        let parent = &self.parents[a as usize];
        let mut v = b;
        while v != a {
            let p = parent[v as usize];
            assert_ne!(p, u32::MAX, "AS graph must be connected");
            links.push((v.min(p), v.max(p)));
            v = p;
        }
        links
    }

    /// AS-path hop count between two sites.
    pub fn path_len(&self, site_a: u32, site_b: u32) -> usize {
        self.path_links(site_a, site_b).len()
    }
}

/// Per-physical-link traffic totals for overlay traffic (bytes when fed
/// from [`gocast_sim::TrafficStats::pair_counts`], or any unit the caller
/// accumulates).
#[derive(Debug, Clone, Default)]
pub struct LinkStress {
    counts: HashMap<(u32, u32), u64>,
}

impl LinkStress {
    /// Empty accumulator.
    pub fn new() -> Self {
        LinkStress::default()
    }

    /// Adds `msgs` units of overlay traffic between two sites, routed on
    /// `topo`.
    pub fn accumulate(&mut self, topo: &AsTopology, site_a: u32, site_b: u32, msgs: u64) {
        for link in topo.path_links(site_a, site_b) {
            *self.counts.entry(link).or_insert(0) += msgs;
        }
    }

    /// Builds stress from a simulation's per-pair byte counts.
    pub fn from_pair_counts(
        topo: &AsTopology,
        net: &SiteLatencyMatrix,
        pair_counts: &HashMap<(NodeId, NodeId), u64>,
    ) -> Self {
        let mut s = LinkStress::new();
        for (&(a, b), &msgs) in pair_counts {
            s.accumulate(topo, net.site_of(a), net.site_of(b), msgs);
        }
        s
    }

    /// Highest traversal count over any physical link (the bottleneck).
    pub fn max(&self) -> u64 {
        self.counts.values().copied().max().unwrap_or(0)
    }

    /// Total traversals over all links.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Number of physical links that carried any traffic.
    pub fn links_used(&self) -> usize {
        self.counts.len()
    }

    /// The `k` most stressed links, descending.
    pub fn top_k(&self, k: usize) -> Vec<((u32, u32), u64)> {
        let mut v: Vec<_> = self.counts.iter().map(|(&l, &c)| (l, c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }

    /// Mean traversal count over links that carried traffic.
    pub fn mean_over_used(&self) -> f64 {
        if self.counts.is_empty() {
            0.0
        } else {
            self.total() as f64 / self.counts.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> AsTopology {
        AsTopology::preferential_attachment(64, 2, 100, 5)
    }

    #[test]
    fn graph_is_connected_and_sized() {
        let t = topo();
        assert_eq!(t.as_count(), 64);
        // Every AS reachable from AS 0.
        for v in 1..64u32 {
            assert!(
                t.parents[0][v as usize] != u32::MAX,
                "AS {v} unreachable from 0"
            );
        }
    }

    #[test]
    fn degrees_are_skewed() {
        let t = topo();
        let max_deg = (0..64u32).map(|v| t.degree(v)).max().unwrap();
        let min_deg = (0..64u32).map(|v| t.degree(v)).min().unwrap();
        assert!(
            max_deg >= 3 * min_deg,
            "expected hubs, got max {max_deg} min {min_deg}"
        );
    }

    #[test]
    fn paths_connect_and_are_consistent() {
        let t = topo();
        for a in 0..20u32 {
            for b in 0..20u32 {
                let links = t.path_links(a, b);
                if t.as_of_site(a) == t.as_of_site(b) {
                    assert!(links.is_empty());
                } else {
                    assert!(!links.is_empty());
                    // Path endpoints must touch both ASes.
                    let flat: Vec<u32> = links.iter().flat_map(|&(x, y)| [x, y]).collect();
                    assert!(flat.contains(&t.as_of_site(a)));
                    assert!(flat.contains(&t.as_of_site(b)));
                }
            }
        }
    }

    #[test]
    fn stress_accumulates_per_link() {
        let t = topo();
        let mut s = LinkStress::new();
        s.accumulate(&t, 0, 1, 10);
        s.accumulate(&t, 0, 1, 5);
        let hops = t.path_len(0, 1) as u64;
        assert_eq!(s.total(), 15 * hops);
        if hops > 0 {
            assert_eq!(s.max(), 15);
        }
        assert!(s.mean_over_used() > 0.0 || hops == 0);
    }

    #[test]
    fn top_k_is_sorted_desc() {
        let t = topo();
        let mut s = LinkStress::new();
        for a in 0..30u32 {
            s.accumulate(&t, a, (a + 31) % 100, 1);
        }
        let top = s.top_k(5);
        for w in top.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        assert!(top.len() <= 5);
    }

    #[test]
    fn deterministic() {
        let a = AsTopology::preferential_attachment(32, 2, 10, 9);
        let b = AsTopology::preferential_attachment(32, 2, 10, 9);
        assert_eq!(a.site_as, b.site_as);
        assert_eq!(a.adj, b.adj);
    }

    #[test]
    #[should_panic(expected = "links_per_new")]
    fn rejects_zero_links() {
        let _ = AsTopology::preferential_attachment(10, 0, 5, 1);
    }

    #[test]
    fn grouped_sites_share_stubs() {
        let groups = vec![0, 0, 0, 1, 1, 1, 2, 2, 2];
        let t = AsTopology::with_site_groups(32, 2, groups, 3);
        assert_eq!(t.as_of_site(0), t.as_of_site(1));
        assert_eq!(t.as_of_site(0), t.as_of_site(2));
        assert_eq!(t.as_of_site(3), t.as_of_site(5));
        // Same-stub sites have empty physical paths.
        assert!(t.path_links(0, 2).is_empty());
    }

    #[test]
    fn geographic_assignment_groups_nearby_sites() {
        let net = crate::two_continents(20, 4);
        let groups = geographic_site_assignment(&net, 4, 4);
        assert_eq!(groups.len(), 20);
        // No group spans both continents (inter-continent latency is
        // ~10x intra), so continents map to disjoint group sets.
        let west: std::collections::HashSet<u32> = (0..10).map(|s| groups[s as usize]).collect();
        let east: std::collections::HashSet<u32> = (10..20).map(|s| groups[s as usize]).collect();
        assert!(west.is_disjoint(&east), "west {west:?} east {east:?}");
    }

    #[test]
    fn transit_stub_paths_reflect_locality() {
        let net = crate::two_continents(40, 6);
        let topo = AsTopology::transit_stub(&net, 2, 4, 6);
        assert_eq!(topo.as_count(), 2 + 8);
        // Cross-continent sites pay 3 hops (stub-transit-transit-stub) or
        // 2 if one side sits on... never: distinct regions => 3.
        let cross = topo.path_len(0, 30);
        assert_eq!(cross, 3, "cross-region path should cross the core");
        // Same-continent pairs pay at most 2 hops.
        for a in 0..20u32 {
            for b in (a + 1)..20 {
                assert!(
                    topo.path_len(a, b) <= 2,
                    "intra-region {a}-{b} took {} hops",
                    topo.path_len(a, b)
                );
            }
        }
    }

    #[test]
    fn transit_stub_same_stub_sites_share_as() {
        let net = crate::two_continents(40, 7);
        let topo = AsTopology::transit_stub(&net, 2, 2, 7);
        // 40 sites over 4 stubs: some pair must share a stub (0 hops).
        let mut shared = false;
        for a in 0..40u32 {
            for b in (a + 1)..40 {
                if topo.path_len(a, b) == 0 {
                    shared = true;
                }
            }
        }
        assert!(shared, "expected co-located sites on a shared stub");
    }

    #[test]
    #[should_panic(expected = "two regions")]
    fn transit_stub_rejects_single_region() {
        let net = crate::two_continents(10, 8);
        let _ = AsTopology::transit_stub(&net, 1, 2, 8);
    }

    #[test]
    fn geographic_assignment_balances_group_sizes() {
        let net = crate::king_like(1, 5); // 1740 sites
        let groups = geographic_site_assignment(&net, 100, 5);
        let mut counts = std::collections::HashMap::new();
        for g in groups {
            *counts.entry(g).or_insert(0usize) += 1;
        }
        // ceil(1740 / ceil(1740/100)) = 97 groups of <= 18 sites.
        assert!(counts.len() >= 90, "got {} groups", counts.len());
        let max = counts.values().max().unwrap();
        assert!(*max <= 18, "groups should hold ~17-18 sites, max {max}");
    }
}
