//! Site-based latency matrices.
//!
//! The paper uses the King dataset: pairwise RTTs between 1,740 DNS server
//! *sites*. Simulated nodes map onto sites ("When the number of simulated
//! nodes is larger than the number of measured DNS servers, we simulate
//! multiple nodes at a single DNS server site"). [`SiteLatencyMatrix`]
//! reproduces that structure: an explicit symmetric site x site one-way
//! latency table plus a node -> site map.

use std::time::Duration;

use gocast_sim::{LatencyModel, NodeId};

/// One-way latencies between sites, with nodes assigned to sites.
///
/// Latencies are stored in microseconds (`u32`), which comfortably covers
/// the paper's 399 ms maximum while keeping an 1,740 x 1,740 matrix at
/// ~12 MB.
#[derive(Debug, Clone)]
pub struct SiteLatencyMatrix {
    sites: usize,
    /// Row-major `sites x sites` one-way latencies in microseconds.
    lat_us: Vec<u32>,
    /// `node -> site` assignment.
    node_site: Vec<u32>,
    /// One-way latency between two distinct nodes at the same site.
    intra_site: Duration,
}

impl SiteLatencyMatrix {
    /// Builds a matrix from a row-major `sites x sites` table of one-way
    /// latencies in microseconds and a node-to-site assignment.
    ///
    /// # Panics
    ///
    /// Panics if `lat_us.len() != sites * sites`, if the table is not
    /// symmetric with a zero diagonal, or if any node maps to a site out of
    /// range.
    pub fn new(sites: usize, lat_us: Vec<u32>, node_site: Vec<u32>, intra_site: Duration) -> Self {
        assert_eq!(lat_us.len(), sites * sites, "latency table has wrong size");
        for i in 0..sites {
            assert_eq!(lat_us[i * sites + i], 0, "diagonal must be zero");
            for j in (i + 1)..sites {
                assert_eq!(
                    lat_us[i * sites + j],
                    lat_us[j * sites + i],
                    "latency table must be symmetric"
                );
            }
        }
        for &s in &node_site {
            assert!((s as usize) < sites, "node assigned to unknown site {s}");
        }
        SiteLatencyMatrix {
            sites,
            lat_us,
            node_site,
            intra_site,
        }
    }

    /// Number of sites.
    pub fn site_count(&self) -> usize {
        self.sites
    }

    /// The site a node lives at.
    pub fn site_of(&self, node: NodeId) -> u32 {
        self.node_site[node.index()]
    }

    /// The full node-to-site assignment (one site id per node id).
    ///
    /// Fault scenarios use this as the group map for correlated site-level
    /// crashes and site-isolating partitions.
    pub fn site_assignment(&self) -> &[u32] {
        &self.node_site
    }

    /// One-way latency between two sites.
    pub fn site_latency(&self, a: u32, b: u32) -> Duration {
        Duration::from_micros(self.lat_us[a as usize * self.sites + b as usize] as u64)
    }

    /// Mean one-way latency over all distinct site pairs.
    pub fn mean_site_latency(&self) -> Duration {
        let mut sum = 0u64;
        let mut count = 0u64;
        for i in 0..self.sites {
            for j in (i + 1)..self.sites {
                sum += self.lat_us[i * self.sites + j] as u64;
                count += 1;
            }
        }
        match sum.checked_div(count) {
            Some(v) => Duration::from_micros(v),
            None => Duration::ZERO,
        }
    }

    /// Maximum one-way latency over all site pairs.
    pub fn max_site_latency(&self) -> Duration {
        Duration::from_micros(self.lat_us.iter().copied().max().unwrap_or(0) as u64)
    }
}

impl LatencyModel for SiteLatencyMatrix {
    fn one_way(&self, a: NodeId, b: NodeId) -> Duration {
        if a == b {
            return Duration::ZERO;
        }
        let (sa, sb) = (self.node_site[a.index()], self.node_site[b.index()]);
        if sa == sb {
            self.intra_site
        } else {
            self.site_latency(sa, sb)
        }
    }

    fn len(&self) -> usize {
        self.node_site.len()
    }

    fn lookahead(&self) -> Option<Duration> {
        // The smallest latency any two distinct nodes can see: co-located
        // nodes pay `intra_site`, everyone else some nonzero table entry.
        let min_pair = self
            .lat_us
            .iter()
            .copied()
            .filter(|&us| us > 0)
            .min()
            .map(|us| Duration::from_micros(us as u64))
            .unwrap_or(self.intra_site);
        let bound = min_pair.min(self.intra_site);
        (bound > Duration::ZERO).then_some(bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SiteLatencyMatrix {
        // 3 sites: 0-1 = 10ms, 0-2 = 20ms, 1-2 = 30ms. 4 nodes, two at site 0.
        let ms = |v: u32| v * 1000;
        #[rustfmt::skip]
        let lat = vec![
            0,        ms(10), ms(20),
            ms(10),   0,      ms(30),
            ms(20),   ms(30), 0,
        ];
        SiteLatencyMatrix::new(3, lat, vec![0, 0, 1, 2], Duration::from_micros(500))
    }

    #[test]
    fn node_latencies_follow_sites() {
        let m = tiny();
        let n = NodeId::new;
        assert_eq!(m.one_way(n(0), n(2)), Duration::from_millis(10));
        assert_eq!(m.one_way(n(2), n(3)), Duration::from_millis(30));
        assert_eq!(
            m.one_way(n(0), n(1)),
            Duration::from_micros(500),
            "intra-site"
        );
        assert_eq!(m.one_way(n(3), n(3)), Duration::ZERO);
        assert_eq!(m.len(), 4);
        assert_eq!(m.site_count(), 3);
        assert_eq!(m.site_of(n(3)), 2);
    }

    #[test]
    fn symmetry_holds_for_nodes() {
        let m = tiny();
        for i in 0..4u32 {
            for j in 0..4u32 {
                assert_eq!(
                    m.one_way(NodeId::new(i), NodeId::new(j)),
                    m.one_way(NodeId::new(j), NodeId::new(i))
                );
            }
        }
    }

    #[test]
    fn summary_statistics() {
        let m = tiny();
        assert_eq!(m.mean_site_latency(), Duration::from_millis(20));
        assert_eq!(m.max_site_latency(), Duration::from_millis(30));
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn rejects_asymmetric_table() {
        let lat = vec![0, 1, 2, 0];
        let _ = SiteLatencyMatrix::new(2, lat, vec![0, 1], Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "diagonal")]
    fn rejects_nonzero_diagonal() {
        let lat = vec![5, 1, 1, 0];
        let _ = SiteLatencyMatrix::new(2, lat, vec![0, 1], Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "unknown site")]
    fn rejects_bad_assignment() {
        let lat = vec![0, 1, 1, 0];
        let _ = SiteLatencyMatrix::new(2, lat, vec![0, 9], Duration::ZERO);
    }
}
