//! Synthetic "King-like" Internet latency matrix.
//!
//! **Substitution note (see DESIGN.md):** the paper replays the King
//! dataset — measured RTTs between 1,740 DNS servers, average one-way
//! latency 91 ms, maximum 399 ms. That dataset is not available offline, so
//! this module synthesizes a matrix with the same structure: sites grouped
//! into continent-like clusters, intra-cluster latencies small, inter-
//! cluster latencies large and heavy-tailed, plus per-pair jitter (which,
//! like real King data, may violate the triangle inequality). The generated
//! matrix is calibrated to the two summary statistics the paper reports:
//! mean one-way latency ~= 91 ms, and a 399 ms cap.

use std::time::Duration;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::matrix::SiteLatencyMatrix;

/// A continent-like cluster of sites.
#[derive(Debug, Clone, Copy)]
struct Cluster {
    /// Center in "milliseconds of one-way propagation" coordinates.
    center: (f64, f64),
    /// Gaussian spread of sites around the center (ms).
    sigma: f64,
    /// Fraction of sites in this cluster.
    weight: f64,
}

/// Continent layout loosely modelled on real inter-region latencies.
const CLUSTERS: [Cluster; 6] = [
    // North America
    Cluster {
        center: (0.0, 0.0),
        sigma: 14.0,
        weight: 0.42,
    },
    // Europe
    Cluster {
        center: (48.0, 4.0),
        sigma: 11.0,
        weight: 0.28,
    },
    // Asia
    Cluster {
        center: (98.0, 26.0),
        sigma: 16.0,
        weight: 0.17,
    },
    // South America
    Cluster {
        center: (28.0, 58.0),
        sigma: 12.0,
        weight: 0.06,
    },
    // Oceania
    Cluster {
        center: (112.0, 72.0),
        sigma: 10.0,
        weight: 0.05,
    },
    // Africa
    Cluster {
        center: (64.0, 38.0),
        sigma: 12.0,
        weight: 0.02,
    },
];

/// Configuration for [`synthetic_king`].
#[derive(Debug, Clone)]
pub struct SyntheticKingConfig {
    /// Number of sites (the King dataset has 1,740).
    pub sites: usize,
    /// RNG seed for the matrix (independent of the simulation seed).
    pub seed: u64,
    /// Target mean one-way latency across site pairs (paper: 91 ms).
    pub target_mean: Duration,
    /// Hard cap on one-way latency (paper max: 399 ms).
    pub max_cap: Duration,
    /// Minimum one-way latency between distinct sites.
    pub min_floor: Duration,
    /// One-way latency between co-located nodes (same site).
    pub intra_site: Duration,
}

impl Default for SyntheticKingConfig {
    fn default() -> Self {
        SyntheticKingConfig {
            sites: 1740,
            seed: 0x90CA57,
            target_mean: Duration::from_millis(91),
            max_cap: Duration::from_millis(399),
            min_floor: Duration::from_millis(1),
            intra_site: Duration::from_micros(500),
        }
    }
}

/// Draws a standard normal via Box–Muller (rand's `StandardNormal` lives in
/// `rand_distr`, which is outside the approved dependency set).
fn std_normal(rng: &mut SmallRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Places `sites` site positions in the continent clusters (shared by the
/// matrix generator and the on-demand model, so both draw from the same
/// spatial distribution).
pub(crate) fn place_sites(rng: &mut SmallRng, sites: usize) -> Vec<(f64, f64)> {
    let mut positions = Vec::with_capacity(sites);
    for c in &CLUSTERS {
        let count = (c.weight * sites as f64).round() as usize;
        for _ in 0..count {
            positions.push((
                c.center.0 + c.sigma * std_normal(rng),
                c.center.1 + c.sigma * std_normal(rng),
            ));
        }
    }
    // Rounding may leave us short or long; pad with the largest cluster /
    // truncate.
    while positions.len() < sites {
        let c = &CLUSTERS[0];
        positions.push((
            c.center.0 + c.sigma * std_normal(rng),
            c.center.1 + c.sigma * std_normal(rng),
        ));
    }
    positions.truncate(sites);
    positions
}

/// Generates a calibrated clustered latency matrix with `nodes` simulated
/// nodes assigned round-robin over a seeded shuffle of the sites.
///
/// Nodes in excess of `cfg.sites` share sites, exactly as in the paper.
///
/// ```
/// use gocast_net::{synthetic_king, SyntheticKingConfig};
/// use gocast_sim::LatencyModel;
/// use std::time::Duration;
///
/// let cfg = SyntheticKingConfig { sites: 64, ..Default::default() };
/// let net = synthetic_king(128, &cfg);
/// assert_eq!(net.len(), 128);
/// let mean = net.mean_site_latency();
/// assert!(mean > Duration::from_millis(80) && mean < Duration::from_millis(102));
/// ```
///
/// # Panics
///
/// Panics if `nodes == 0` or `cfg.sites < 2`.
pub fn synthetic_king(nodes: usize, cfg: &SyntheticKingConfig) -> SiteLatencyMatrix {
    assert!(nodes > 0, "need at least one node");
    assert!(cfg.sites >= 2, "need at least two sites");
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let sites = cfg.sites;

    // Place sites in clusters.
    let positions = place_sites(&mut rng, sites);

    // Raw latencies: last-mile base + propagation + multiplicative jitter.
    let mut raw = vec![0f64; sites * sites];
    let mut sum = 0f64;
    let mut pairs = 0u64;
    for i in 0..sites {
        for j in (i + 1)..sites {
            let (xi, yi) = positions[i];
            let (xj, yj) = positions[j];
            let dist = ((xi - xj).powi(2) + (yi - yj).powi(2)).sqrt();
            let jitter = rng.gen_range(0.75..1.65);
            let l = (4.0 + dist) * jitter;
            raw[i * sites + j] = l;
            raw[j * sites + i] = l;
            sum += l;
            pairs += 1;
        }
    }

    // Calibrate the mean, then clamp into [floor, cap].
    let mean = sum / pairs as f64;
    let scale = cfg.target_mean.as_secs_f64() * 1e3 / mean;
    let floor_us = cfg.min_floor.as_micros() as u32;
    let cap_us = cfg.max_cap.as_micros() as u32;
    let lat_us: Vec<u32> = raw
        .iter()
        .enumerate()
        .map(|(k, &l)| {
            if k / sites == k % sites {
                0
            } else {
                (((l * scale) * 1000.0) as u32).clamp(floor_us, cap_us)
            }
        })
        .collect();

    // Assign nodes to a seeded shuffle of sites, wrapping for n > sites.
    let mut order: Vec<u32> = (0..sites as u32).collect();
    for i in (1..order.len()).rev() {
        order.swap(i, rng.gen_range(0..=i));
    }
    let node_site = (0..nodes).map(|i| order[i % sites]).collect();

    SiteLatencyMatrix::new(sites, lat_us, node_site, cfg.intra_site)
}

/// Builds the paper-default network: 1,740 sites calibrated to the King
/// dataset's summary statistics, `nodes` nodes.
pub fn king_like(nodes: usize, seed: u64) -> SiteLatencyMatrix {
    synthetic_king(
        nodes,
        &SyntheticKingConfig {
            seed,
            ..Default::default()
        },
    )
}

/// The paper's §2.2 thought experiment as a network: two well-separated
/// continents ("suppose a system consists of 500 nodes in America and 500
/// nodes in Asia"). Intra-continent one-way latencies are ~5–35 ms;
/// inter-continent ~150–200 ms with no intermediate sites, so *nearby*
/// links alone can never connect the continents.
///
/// Used to demonstrate that an overlay with `C_rand` = 0 partitions even
/// without failures, while a single random link per node bridges the
/// continents.
///
/// # Panics
///
/// Panics if `nodes < 2`.
pub fn two_continents(nodes: usize, seed: u64) -> SiteLatencyMatrix {
    assert!(nodes >= 2, "need at least two nodes");
    let sites = nodes;
    let mut rng = SmallRng::seed_from_u64(seed);
    let half = sites / 2;
    let mut lat_us = vec![0u32; sites * sites];
    for i in 0..sites {
        for j in (i + 1)..sites {
            let same = (i < half) == (j < half);
            let ms = if same {
                rng.gen_range(5.0..35.0)
            } else {
                rng.gen_range(150.0..200.0)
            };
            let us = (ms * 1000.0) as u32;
            lat_us[i * sites + j] = us;
            lat_us[j * sites + i] = us;
        }
    }
    let node_site = (0..nodes).map(|i| i as u32).collect();
    SiteLatencyMatrix::new(sites, lat_us, node_site, Duration::from_micros(500))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gocast_sim::{LatencyModel, NodeId};

    fn small_cfg(seed: u64) -> SyntheticKingConfig {
        SyntheticKingConfig {
            sites: 120,
            seed,
            ..Default::default()
        }
    }

    #[test]
    fn mean_is_calibrated_and_max_capped() {
        let m = synthetic_king(120, &small_cfg(1));
        let mean = m.mean_site_latency();
        assert!(
            mean >= Duration::from_millis(80) && mean <= Duration::from_millis(102),
            "mean {mean:?} not near 91ms"
        );
        assert!(m.max_site_latency() <= Duration::from_millis(399));
    }

    #[test]
    fn latencies_have_floor() {
        let m = synthetic_king(120, &small_cfg(2));
        for i in 0..120 {
            for j in (i + 1)..120 {
                assert!(m.site_latency(i as u32, j as u32) >= Duration::from_millis(1));
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = synthetic_king(50, &small_cfg(7));
        let b = synthetic_king(50, &small_cfg(7));
        let c = synthetic_king(50, &small_cfg(8));
        for i in 0..50u32 {
            for j in 0..50u32 {
                assert_eq!(
                    a.one_way(NodeId::new(i), NodeId::new(j)),
                    b.one_way(NodeId::new(i), NodeId::new(j))
                );
            }
        }
        let differs = (0..50u32).any(|i| {
            (0..50u32).any(|j| {
                a.one_way(NodeId::new(i), NodeId::new(j))
                    != c.one_way(NodeId::new(i), NodeId::new(j))
            })
        });
        assert!(differs, "different seeds should differ");
    }

    #[test]
    fn more_nodes_than_sites_share_sites() {
        let m = synthetic_king(300, &small_cfg(3));
        assert_eq!(m.len(), 300);
        // Node i and node i+120 share a site.
        assert_eq!(m.site_of(NodeId::new(0)), m.site_of(NodeId::new(120)));
        assert_eq!(
            m.one_way(NodeId::new(0), NodeId::new(120)),
            Duration::from_micros(500)
        );
    }

    #[test]
    fn clustering_shows_bimodal_latencies() {
        // Some pairs should be much closer than the mean and some much
        // farther — the property proximity-aware neighbor selection needs.
        let m = synthetic_king(120, &small_cfg(4));
        let mut lats: Vec<Duration> = Vec::new();
        for i in 0..120 {
            for j in (i + 1)..120 {
                lats.push(m.site_latency(i as u32, j as u32));
            }
        }
        lats.sort();
        let p10 = lats[lats.len() / 10];
        let p90 = lats[lats.len() * 9 / 10];
        assert!(
            p90 > p10 * 4,
            "expected heavy spread, got p10={p10:?} p90={p90:?}"
        );
    }

    #[test]
    fn two_continents_is_bimodal() {
        let m = two_continents(40, 1);
        assert_eq!(m.len(), 40);
        // Same continent: short. Different: long. Symmetric.
        use gocast_sim::LatencyModel as _;
        let near = m.one_way(NodeId::new(0), NodeId::new(1));
        let far = m.one_way(NodeId::new(0), NodeId::new(30));
        assert!(near < Duration::from_millis(40), "intra {near:?}");
        assert!(far > Duration::from_millis(140), "inter {far:?}");
        assert_eq!(far, m.one_way(NodeId::new(30), NodeId::new(0)));
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn rejects_zero_nodes() {
        let _ = synthetic_king(0, &small_cfg(1));
    }
}
