//! Tunable parameters of the Plumtree/HyParView stack.

use std::time::Duration;

use serde::{Deserialize, Serialize};

/// Configuration for [`PlumtreeNode`](crate::PlumtreeNode).
///
/// Membership parameters follow HyParView (Leitão et al., DSN 2007):
/// a small symmetric *active* view carries all protocol traffic, a larger
/// *passive* view is a repair reservoir refreshed by periodic shuffles.
/// Dissemination parameters follow Plumtree (Leitão et al., SRDS 2007):
/// payloads are eagerly pushed along a spanning subtree of the active
/// view, IHAVE announcements cover the remaining (lazy) edges, and
/// GRAFT/PRUNE move edges between the two sets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlumtreeConfig {
    /// Active-view size: the node's overlay degree target. Default 6
    /// matches GoCast's `C_near + C_rand` so head-to-head runs compare
    /// equal-degree overlays.
    pub active_view: usize,
    /// Passive-view capacity (the repair reservoir).
    pub passive_view: usize,
    /// Active random-walk length for `ForwardJoin` placement.
    pub arwl: u32,
    /// Passive random-walk length: the `ForwardJoin` TTL at which the
    /// joiner is also recorded in the passive view.
    pub prwl: u32,
    /// Period of the shuffle that refreshes the passive view.
    pub shuffle_period: Duration,
    /// Members carried per shuffle (self + passive sample).
    pub shuffle_len: usize,
    /// Shuffle random-walk TTL.
    pub shuffle_ttl: u32,
    /// Period of the maintenance tick (heartbeats, failure detection,
    /// active-view refill).
    pub maintenance_period: Duration,
    /// Silence threshold after which an active peer is declared failed.
    pub neighbor_timeout: Duration,
    /// How long to wait for the eager payload after an IHAVE before
    /// grafting the announcer's edge.
    pub ihave_timeout: Duration,
    /// Retry interval between graft attempts (rotating announcers).
    pub graft_retry: Duration,
    /// Give up grafting a message after this many attempts (a later
    /// IHAVE restarts recovery).
    pub max_graft_rounds: u32,
    /// Message retention before garbage collection.
    pub gc_wait: Duration,
    /// Multicast payload size (bytes, accounting only).
    pub payload_size: u32,
}

impl Default for PlumtreeConfig {
    fn default() -> Self {
        PlumtreeConfig {
            active_view: 6,
            passive_view: 24,
            arwl: 6,
            prwl: 3,
            shuffle_period: Duration::from_secs(10),
            shuffle_len: 8,
            shuffle_ttl: 4,
            maintenance_period: Duration::from_secs(1),
            neighbor_timeout: Duration::from_secs(3),
            ihave_timeout: Duration::from_millis(120),
            graft_retry: Duration::from_millis(300),
            max_graft_rounds: 8,
            gc_wait: Duration::from_secs(120),
            payload_size: 1024,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_degree_matches_gocast_total() {
        let cfg = PlumtreeConfig::default();
        assert_eq!(cfg.active_view, 6, "C_near(5) + C_rand(1)");
        assert!(cfg.passive_view > cfg.active_view);
        assert!(cfg.ihave_timeout < cfg.graft_retry);
    }
}
