//! The Plumtree/HyParView protocol state machine.

use std::collections::{BTreeMap, VecDeque};
use std::time::Duration;

use gocast::{DeliveryPath, DropReason, GoCastCommand, GoCastEvent, LinkKind, MsgId};
use gocast_membership::MemberView;
use gocast_sim::{
    Ctx, FxHashMap, NodeId, Protocol, SimTime, Stack, StackCaps, Timer, TrafficClass, Wire,
};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::PlumtreeConfig;

/// Timer kinds.
mod timers {
    /// Periodic passive-view shuffle.
    pub const SHUFFLE: u32 = 1;
    /// Heartbeats, failure detection, active-view refill.
    pub const MAINT: u32 = 2;
    /// IHAVE deadline / graft retry for one missing message (payload
    /// carries the [`MsgId`](gocast::MsgId)).
    pub const MISSING: u32 = 3;
    /// Message-store garbage collection.
    pub const GC: u32 = 4;
}

/// Wire messages of the Plumtree/HyParView stack.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PlumtreeMsg {
    /// HyParView join request sent to a contact node.
    Join {
        /// Remaining active random-walk length.
        ttl: u32,
    },
    /// Random walk propagating a join through the overlay.
    ForwardJoin {
        /// The joining node.
        joiner: NodeId,
        /// Remaining walk length; the joiner is accepted at 0.
        ttl: u32,
    },
    /// Request to become an active neighbor.
    NeighborRequest {
        /// High priority: the requester has an empty active view and must
        /// be accepted (it is otherwise disconnected from the overlay).
        high: bool,
    },
    /// The sender accepted a neighbor/join request.
    NeighborAccept,
    /// The sender declined a neighbor request (active view full).
    NeighborReject,
    /// Graceful removal of an active-view link.
    Disconnect,
    /// Passive-view shuffle random walk.
    Shuffle {
        /// The node whose passive view is being refreshed.
        origin: NodeId,
        /// Remaining walk length; the shuffle is accepted at 0.
        ttl: u32,
        /// Sample of the origin's neighborhood (self + passive members).
        members: Vec<NodeId>,
    },
    /// Sample returned to a shuffle origin.
    ShuffleReply {
        /// The acceptor's passive sample.
        members: Vec<NodeId>,
    },
    /// Liveness beacon between active neighbors.
    Heartbeat,
    /// Full payload pushed along an eager link.
    Gossip {
        /// Message identity.
        id: MsgId,
        /// Causal hop count stamped on this copy.
        hop: u32,
        /// Payload bytes.
        size: u32,
    },
    /// Lazy announcement of held message IDs.
    IHave {
        /// The announced IDs.
        entries: Vec<MsgId>,
    },
    /// Request to promote the link to eager and retransmit `id`.
    Graft {
        /// The missing message.
        id: MsgId,
    },
    /// Request to demote the link to lazy (duplicate payload received).
    Prune,
}

impl Wire for PlumtreeMsg {
    fn wire_size(&self) -> u32 {
        28 + match self {
            PlumtreeMsg::Join { .. } => 4,
            PlumtreeMsg::ForwardJoin { .. } => 12,
            PlumtreeMsg::NeighborRequest { .. } => 1,
            PlumtreeMsg::NeighborAccept
            | PlumtreeMsg::NeighborReject
            | PlumtreeMsg::Disconnect
            | PlumtreeMsg::Heartbeat
            | PlumtreeMsg::Prune => 0,
            PlumtreeMsg::Shuffle { members, .. } => 12 + 4 * members.len() as u32,
            PlumtreeMsg::ShuffleReply { members } => 4 * members.len() as u32,
            PlumtreeMsg::Gossip { size, .. } => 16 + size,
            PlumtreeMsg::IHave { entries } => 8 * entries.len() as u32,
            PlumtreeMsg::Graft { .. } => 8,
        }
    }

    fn class(&self) -> TrafficClass {
        match self {
            PlumtreeMsg::Gossip { .. } => TrafficClass::Data,
            PlumtreeMsg::IHave { .. } => TrafficClass::Gossip,
            PlumtreeMsg::Graft { .. } => TrafficClass::Request,
            PlumtreeMsg::Prune | PlumtreeMsg::Disconnect => TrafficClass::Control,
            PlumtreeMsg::Heartbeat => TrafficClass::Probe,
            PlumtreeMsg::Join { .. }
            | PlumtreeMsg::ForwardJoin { .. }
            | PlumtreeMsg::NeighborRequest { .. }
            | PlumtreeMsg::NeighborAccept
            | PlumtreeMsg::NeighborReject
            | PlumtreeMsg::Shuffle { .. }
            | PlumtreeMsg::ShuffleReply { .. } => TrafficClass::Membership,
        }
    }
}

/// Per-active-neighbor state.
#[derive(Debug, Clone)]
struct Peer {
    /// Eager links carry full payloads; lazy links carry IHAVEs.
    eager: bool,
    last_seen: SimTime,
}

#[derive(Debug, Clone)]
struct Stored {
    hop: u32,
    size: u32,
}

#[derive(Debug, Clone)]
struct Missing {
    /// Neighbors that announced the ID, in announcement order.
    announcers: Vec<NodeId>,
    /// Rotation cursor over `announcers`.
    next: usize,
    /// Graft attempts so far.
    rounds: u32,
    /// Whether a graft was sent (marks the eventual delivery as recovery).
    grafted: bool,
}

/// A node running Plumtree dissemination over HyParView membership.
///
/// The node emits [`GoCastEvent`]s with the same meanings as the GoCast
/// stack so the whole analysis layer (delivery trackers, recovery windows,
/// trace oracle) applies unchanged: eager pushes are `PushSent`, lazy
/// announcements are `IHaveSent`, grafts are `PullRequested`/`PullServed`,
/// and active-view membership changes are `LinkAdded`/`LinkDropped` with
/// kind [`LinkKind::Random`] (HyParView neighbors are uniformly random;
/// there is no latency-aware "nearby" class).
#[derive(Debug)]
pub struct PlumtreeNode {
    cfg: PlumtreeConfig,
    id: NodeId,
    /// Active view: `BTreeMap` so iteration (forwarding fan-out, eviction
    /// sampling) is in deterministic key order.
    active: BTreeMap<NodeId, Peer>,
    /// Passive view: the repair reservoir.
    passive: MemberView,
    store: FxHashMap<MsgId, Stored>,
    /// Store insertion order, for O(1) GC.
    recent: VecDeque<(SimTime, MsgId)>,
    missing: FxHashMap<MsgId, Missing>,
    next_seq: u32,
    delivered: u64,
    redundant: u64,
    joined: bool,
    frozen: bool,
    initial_links: Vec<NodeId>,
    initial_members: Vec<NodeId>,
}

impl PlumtreeNode {
    /// Creates an isolated node (it must be sent a
    /// [`GoCastCommand::Join`] or contacted by a peer to participate).
    pub fn new(id: NodeId, cfg: PlumtreeConfig) -> Self {
        Self::with_initial_links(id, cfg, Vec::new(), Vec::new())
    }

    /// Creates a node with bootstrap state: `links` become the initial
    /// active view (eager), `members` seed the passive view.
    ///
    /// The shape matches [`gocast::bootstrap_random_graph`] so both stacks
    /// can be booted from the identical overlay.
    pub fn with_initial_links(
        id: NodeId,
        cfg: PlumtreeConfig,
        links: Vec<NodeId>,
        members: Vec<NodeId>,
    ) -> Self {
        assert!(cfg.active_view > 0, "active view must be positive");
        let passive = MemberView::new(id, cfg.passive_view);
        PlumtreeNode {
            cfg,
            id,
            active: BTreeMap::new(),
            passive,
            store: FxHashMap::default(),
            recent: VecDeque::new(),
            missing: FxHashMap::default(),
            next_seq: 0,
            delivered: 0,
            redundant: 0,
            joined: false,
            frozen: false,
            initial_links: links,
            initial_members: members,
        }
    }

    /// Whether this node currently participates in the overlay.
    pub fn is_joined(&self) -> bool {
        self.joined
    }

    /// Active-view size (overlay degree).
    pub fn active_degree(&self) -> usize {
        self.active.len()
    }

    /// Active links currently carrying full payloads.
    pub fn eager_degree(&self) -> usize {
        self.active.values().filter(|p| p.eager).count()
    }

    /// Passive-view size.
    pub fn passive_len(&self) -> usize {
        self.passive.len()
    }

    /// Redundant payload receptions.
    pub fn redundant_count(&self) -> u64 {
        self.redundant
    }

    /// Whether this node holds `id`.
    pub fn has_message(&self, id: MsgId) -> bool {
        self.store.contains_key(&id)
    }

    fn choose(&self, ctx: &mut Ctx<'_, Self>, candidates: &[NodeId]) -> Option<NodeId> {
        if candidates.is_empty() {
            None
        } else {
            Some(candidates[ctx.rng().gen_range(0..candidates.len())])
        }
    }

    fn note_alive(&mut self, ctx: &mut Ctx<'_, Self>, peer: NodeId) {
        let now = ctx.now();
        if let Some(p) = self.active.get_mut(&peer) {
            p.last_seen = now;
        }
    }

    /// Inserts `peer` into the active view (evicting a random member if
    /// full, HyParView-style) and emits the link events.
    fn add_active(&mut self, ctx: &mut Ctx<'_, Self>, peer: NodeId, eager: bool) {
        if peer == self.id {
            return;
        }
        let now = ctx.now();
        if let Some(p) = self.active.get_mut(&peer) {
            p.eager |= eager;
            p.last_seen = now;
            return;
        }
        if self.active.len() >= self.cfg.active_view {
            let idx = ctx.rng().gen_range(0..self.active.len());
            let victim = *self.active.keys().nth(idx).expect("active view nonempty");
            self.active.remove(&victim);
            ctx.send(victim, PlumtreeMsg::Disconnect);
            ctx.emit(GoCastEvent::LinkDropped {
                peer: victim,
                kind: LinkKind::Random,
                reason: DropReason::Surplus,
            });
            self.passive.insert(victim, ctx.rng());
        }
        let was_empty = self.active.is_empty();
        self.active.insert(
            peer,
            Peer {
                eager,
                last_seen: now,
            },
        );
        self.passive.remove(peer);
        ctx.emit(GoCastEvent::LinkAdded {
            peer,
            kind: LinkKind::Random,
        });
        if was_empty {
            // "Attached to the dissemination structure" for Plumtree means
            // having at least one active link; report it with the same
            // event GoCast uses for tree attachment so orphan tracking
            // works across stacks.
            ctx.emit(GoCastEvent::ParentChanged { parent: Some(peer) });
        }
    }

    fn remove_active(
        &mut self,
        ctx: &mut Ctx<'_, Self>,
        peer: NodeId,
        reason: DropReason,
        to_passive: bool,
    ) {
        if self.active.remove(&peer).is_none() {
            return;
        }
        ctx.emit(GoCastEvent::LinkDropped {
            peer,
            kind: LinkKind::Random,
            reason,
        });
        if to_passive {
            self.passive.insert(peer, ctx.rng());
        }
        if self.active.is_empty() && self.joined {
            ctx.emit(GoCastEvent::ParentChanged { parent: None });
        }
    }

    fn accept_neighbor(&mut self, ctx: &mut Ctx<'_, Self>, peer: NodeId) {
        self.add_active(ctx, peer, true);
        ctx.send(peer, PlumtreeMsg::NeighborAccept);
    }

    fn integrate(&mut self, ctx: &mut Ctx<'_, Self>, members: &[NodeId]) {
        for &m in members {
            if m != self.id && !self.active.contains_key(&m) {
                self.passive.insert(m, ctx.rng());
            }
        }
    }

    fn admit(&mut self, ctx: &mut Ctx<'_, Self>, id: MsgId, hop: u32, size: u32) {
        self.store.insert(id, Stored { hop, size });
        self.recent.push_back((ctx.now(), id));
    }

    /// Pushes `id` on eager links and announces it on lazy links.
    fn forward(
        &mut self,
        ctx: &mut Ctx<'_, Self>,
        id: MsgId,
        hop: u32,
        size: u32,
        skip: Option<NodeId>,
    ) {
        let peers: Vec<(NodeId, bool)> = self.active.iter().map(|(&p, s)| (p, s.eager)).collect();
        for (peer, eager) in peers {
            if Some(peer) == skip {
                continue;
            }
            if eager {
                ctx.emit(GoCastEvent::PushSent { id, to: peer, hop });
                ctx.send(peer, PlumtreeMsg::Gossip { id, hop, size });
            } else {
                ctx.emit(GoCastEvent::IHaveSent { id, to: peer });
                ctx.send(peer, PlumtreeMsg::IHave { entries: vec![id] });
            }
        }
    }

    fn on_gossip(&mut self, ctx: &mut Ctx<'_, Self>, from: NodeId, id: MsgId, hop: u32, size: u32) {
        self.note_alive(ctx, from);
        if self.store.contains_key(&id) {
            self.redundant += 1;
            ctx.emit(GoCastEvent::RedundantData { id, from });
            // Plumtree: a duplicate payload marks the edge as redundant for
            // the tree; demote it to lazy on both sides.
            if let Some(p) = self.active.get_mut(&from) {
                p.eager = false;
            }
            ctx.send(from, PlumtreeMsg::Prune);
            return;
        }
        let grafted = self.missing.remove(&id).map(|m| m.grafted).unwrap_or(false);
        self.admit(ctx, id, hop, size);
        self.delivered += 1;
        ctx.emit(GoCastEvent::Delivered {
            id,
            via: if grafted {
                DeliveryPath::Pull
            } else {
                DeliveryPath::Tree
            },
            from,
            hop,
        });
        // The sender is our parent for this message: keep (or make) the
        // edge eager so the tree stays connected through it.
        if self.active.contains_key(&from) {
            if let Some(p) = self.active.get_mut(&from) {
                p.eager = true;
            }
        } else {
            self.add_active(ctx, from, true);
        }
        self.forward(ctx, id, hop + 1, size, Some(from));
    }

    fn on_ihave(&mut self, ctx: &mut Ctx<'_, Self>, from: NodeId, entries: Vec<MsgId>) {
        self.note_alive(ctx, from);
        for id in entries {
            if self.store.contains_key(&id) {
                continue;
            }
            match self.missing.get_mut(&id) {
                Some(m) => {
                    if !m.announcers.contains(&from) {
                        m.announcers.push(from);
                    }
                }
                None => {
                    self.missing.insert(
                        id,
                        Missing {
                            announcers: vec![from],
                            next: 0,
                            rounds: 0,
                            grafted: false,
                        },
                    );
                    ctx.set_timer(
                        self.cfg.ihave_timeout,
                        Timer::with_payload(timers::MISSING, id.origin.as_u32(), id.seq as u64),
                    );
                }
            }
        }
    }

    fn on_missing_deadline(&mut self, ctx: &mut Ctx<'_, Self>, id: MsgId) {
        if self.store.contains_key(&id) || !self.joined {
            self.missing.remove(&id);
            return;
        }
        let Some(m) = self.missing.get_mut(&id) else {
            return;
        };
        if m.rounds >= self.cfg.max_graft_rounds {
            // Give up; a later IHAVE restarts recovery from scratch.
            self.missing.remove(&id);
            return;
        }
        m.rounds += 1;
        m.grafted = true;
        let target = m.announcers[m.next % m.announcers.len()];
        m.next += 1;
        ctx.emit(GoCastEvent::PullRequested { id, to: target });
        ctx.send(target, PlumtreeMsg::Graft { id });
        if let Some(p) = self.active.get_mut(&target) {
            p.eager = true;
        }
        ctx.set_timer(
            self.cfg.graft_retry,
            Timer::with_payload(timers::MISSING, id.origin.as_u32(), id.seq as u64),
        );
    }

    fn on_maintenance(&mut self, ctx: &mut Ctx<'_, Self>) {
        let now = ctx.now();
        let stale: Vec<NodeId> = self
            .active
            .iter()
            .filter(|(_, p)| now.saturating_since(p.last_seen) > self.cfg.neighbor_timeout)
            .map(|(&n, _)| n)
            .collect();
        for n in stale {
            // A silent peer is presumed crashed; do not recycle it into
            // the passive view.
            self.remove_active(ctx, n, DropReason::PeerFailed, false);
        }
        let peers: Vec<NodeId> = self.active.keys().copied().collect();
        for p in peers {
            ctx.send(p, PlumtreeMsg::Heartbeat);
        }
        if self.active.len() < self.cfg.active_view {
            if let Some(cand) = self.passive.sample(ctx.rng()) {
                if cand != self.id && !self.active.contains_key(&cand) {
                    // Spend the candidate: if it is alive and rejects, the
                    // NeighborReject puts it back; if it is dead, it stays
                    // out of the reservoir.
                    self.passive.remove(cand);
                    ctx.send(
                        cand,
                        PlumtreeMsg::NeighborRequest {
                            high: self.active.is_empty(),
                        },
                    );
                }
            }
        }
    }

    fn on_shuffle_tick(&mut self, ctx: &mut Ctx<'_, Self>) {
        let targets: Vec<NodeId> = self.active.keys().copied().collect();
        let Some(target) = self.choose(ctx, &targets) else {
            return;
        };
        let mut members = vec![self.id];
        members.extend(
            self.passive
                .sample_k(self.cfg.shuffle_len.saturating_sub(1), ctx.rng()),
        );
        ctx.send(
            target,
            PlumtreeMsg::Shuffle {
                origin: self.id,
                ttl: self.cfg.shuffle_ttl,
                members,
            },
        );
    }
}

impl Stack for PlumtreeNode {
    const NAME: &'static str = "plumtree";

    /// Plumtree grafts only messages it does not hold, so the
    /// no-pull-after-delivery invariant applies. HyParView keeps the
    /// active view *near* its bound but join/forward-join acceptance can
    /// transiently exceed it before eviction settles, and GoCast's
    /// random/nearby degree split does not exist, so degree bounds are
    /// not checkable. There is no per-node parent pointer (the "tree" is
    /// per-message), so tree checks are off.
    fn capabilities() -> StackCaps {
        StackCaps {
            degree_bounds: false,
            pull_after_delivery: true,
            tree: false,
        }
    }

    fn joined(&self) -> bool {
        self.joined
    }

    fn attached(&self) -> bool {
        self.joined && !self.active.is_empty()
    }

    fn overlay_degree(&self) -> usize {
        self.active.len()
    }

    fn member_count(&self) -> usize {
        self.active.len() + self.passive.len()
    }

    fn delivered_count(&self) -> u64 {
        self.delivered
    }

    fn holds(&self, origin: NodeId, seq: u32) -> bool {
        self.has_message(MsgId::new(origin, seq))
    }

    fn cmd_multicast() -> GoCastCommand {
        GoCastCommand::Multicast
    }

    fn cmd_join(contact: NodeId) -> GoCastCommand {
        GoCastCommand::Join { contact }
    }

    fn cmd_leave() -> GoCastCommand {
        GoCastCommand::Leave
    }

    fn cmd_freeze() -> Option<GoCastCommand> {
        Some(GoCastCommand::FreezeMaintenance)
    }
}

impl Protocol for PlumtreeNode {
    type Msg = PlumtreeMsg;
    type Command = GoCastCommand;
    type Event = GoCastEvent;

    fn on_start(&mut self, ctx: &mut Ctx<'_, Self>) {
        self.joined = true;
        let members = std::mem::take(&mut self.initial_members);
        for m in members {
            if m != self.id {
                self.passive.insert(m, ctx.rng());
            }
        }
        let links = std::mem::take(&mut self.initial_links);
        for p in links {
            self.add_active(ctx, p, true);
        }
        if self.active.is_empty() {
            let contacts = self.passive.to_vec();
            if let Some(contact) = self.choose(ctx, &contacts) {
                self.add_active(ctx, contact, true);
                ctx.send(contact, PlumtreeMsg::Join { ttl: self.cfg.arwl });
            }
        }
        // Deterministic per-node jitter desynchronizes the periodic work.
        let maint_us = self.cfg.maintenance_period.as_micros() as u64;
        let maint_jitter = ctx.rng().gen_range(0..maint_us.max(1));
        ctx.set_timer(
            Duration::from_micros(maint_jitter),
            Timer::of_kind(timers::MAINT),
        );
        let shuffle_jitter = ctx.rng().gen_range(0..maint_us.max(1));
        ctx.set_timer(
            self.cfg.shuffle_period + Duration::from_micros(shuffle_jitter),
            Timer::of_kind(timers::SHUFFLE),
        );
        let gc_jitter = ctx.rng().gen_range(0..1_000_000);
        ctx.set_timer(
            Duration::from_secs(5) + Duration::from_micros(gc_jitter),
            Timer::of_kind(timers::GC),
        );
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Self>, from: NodeId, msg: PlumtreeMsg) {
        if !self.joined {
            // A departed node stays silent; whoever still lists it will
            // time it out.
            return;
        }
        match msg {
            PlumtreeMsg::Join { ttl } => {
                self.add_active(ctx, from, true);
                ctx.send(from, PlumtreeMsg::NeighborAccept);
                let others: Vec<NodeId> =
                    self.active.keys().copied().filter(|&p| p != from).collect();
                for p in others {
                    ctx.send(p, PlumtreeMsg::ForwardJoin { joiner: from, ttl });
                }
            }
            PlumtreeMsg::ForwardJoin { joiner, ttl } => {
                self.note_alive(ctx, from);
                if joiner == self.id {
                    return;
                }
                if ttl == 0 || self.active.len() <= 1 {
                    self.accept_neighbor(ctx, joiner);
                    return;
                }
                if ttl == self.cfg.prwl {
                    self.passive.insert(joiner, ctx.rng());
                }
                let candidates: Vec<NodeId> = self
                    .active
                    .keys()
                    .copied()
                    .filter(|&p| p != from && p != joiner)
                    .collect();
                match self.choose(ctx, &candidates) {
                    Some(next) => ctx.send(
                        next,
                        PlumtreeMsg::ForwardJoin {
                            joiner,
                            ttl: ttl - 1,
                        },
                    ),
                    None => self.accept_neighbor(ctx, joiner),
                }
            }
            PlumtreeMsg::NeighborRequest { high } => {
                if high || self.active.len() < self.cfg.active_view {
                    self.accept_neighbor(ctx, from);
                } else {
                    ctx.send(from, PlumtreeMsg::NeighborReject);
                }
            }
            PlumtreeMsg::NeighborAccept => {
                self.add_active(ctx, from, true);
            }
            PlumtreeMsg::NeighborReject => {
                self.passive.insert(from, ctx.rng());
            }
            PlumtreeMsg::Disconnect => {
                self.remove_active(ctx, from, DropReason::PeerRequest, true);
            }
            PlumtreeMsg::Shuffle {
                origin,
                ttl,
                members,
            } => {
                self.note_alive(ctx, from);
                if ttl > 0 {
                    let candidates: Vec<NodeId> = self
                        .active
                        .keys()
                        .copied()
                        .filter(|&p| p != from && p != origin)
                        .collect();
                    if let Some(next) = self.choose(ctx, &candidates) {
                        ctx.send(
                            next,
                            PlumtreeMsg::Shuffle {
                                origin,
                                ttl: ttl - 1,
                                members,
                            },
                        );
                        return;
                    }
                }
                let reply = self
                    .passive
                    .sample_k(members.len().min(self.cfg.shuffle_len), ctx.rng());
                if origin != self.id {
                    ctx.send(origin, PlumtreeMsg::ShuffleReply { members: reply });
                }
                self.integrate(ctx, &members);
            }
            PlumtreeMsg::ShuffleReply { members } => {
                self.note_alive(ctx, from);
                self.integrate(ctx, &members);
            }
            PlumtreeMsg::Heartbeat => {
                self.note_alive(ctx, from);
            }
            PlumtreeMsg::Prune => {
                self.note_alive(ctx, from);
                if let Some(p) = self.active.get_mut(&from) {
                    p.eager = false;
                }
            }
            PlumtreeMsg::Gossip { id, hop, size } => {
                self.on_gossip(ctx, from, id, hop, size);
            }
            PlumtreeMsg::IHave { entries } => {
                self.on_ihave(ctx, from, entries);
            }
            PlumtreeMsg::Graft { id } => {
                self.note_alive(ctx, from);
                if self.active.contains_key(&from) {
                    if let Some(p) = self.active.get_mut(&from) {
                        p.eager = true;
                    }
                } else {
                    self.add_active(ctx, from, true);
                }
                if let Some(s) = self.store.get(&id) {
                    let (hop, size) = (s.hop + 1, s.size);
                    ctx.emit(GoCastEvent::PullServed { id, to: from, hop });
                    ctx.send(from, PlumtreeMsg::Gossip { id, hop, size });
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Self>, timer: Timer) {
        match timer.kind {
            timers::MAINT => {
                ctx.set_timer(self.cfg.maintenance_period, Timer::of_kind(timers::MAINT));
                if self.joined && !self.frozen {
                    self.on_maintenance(ctx);
                }
            }
            timers::SHUFFLE => {
                ctx.set_timer(self.cfg.shuffle_period, Timer::of_kind(timers::SHUFFLE));
                if self.joined && !self.frozen {
                    self.on_shuffle_tick(ctx);
                }
            }
            timers::MISSING => {
                let id = MsgId::new(NodeId::new(timer.a), timer.b as u32);
                self.on_missing_deadline(ctx, id);
            }
            timers::GC => {
                ctx.set_timer(Duration::from_secs(5), Timer::of_kind(timers::GC));
                let now = ctx.now();
                while let Some(&(at, id)) = self.recent.front() {
                    if now.saturating_since(at) <= self.cfg.gc_wait {
                        break;
                    }
                    self.recent.pop_front();
                    self.store.remove(&id);
                }
            }
            _ => debug_assert!(false, "unknown timer {}", timer.kind),
        }
    }

    fn on_command(&mut self, ctx: &mut Ctx<'_, Self>, cmd: GoCastCommand) {
        match cmd {
            GoCastCommand::Multicast => {
                if !self.joined {
                    return;
                }
                let id = MsgId::new(self.id, self.next_seq);
                self.next_seq += 1;
                let size = self.cfg.payload_size;
                self.admit(ctx, id, 0, size);
                ctx.emit(GoCastEvent::Injected { id });
                self.forward(ctx, id, 1, size, None);
            }
            GoCastCommand::Join { contact } => {
                self.joined = true;
                self.frozen = false;
                self.add_active(ctx, contact, true);
                ctx.send(contact, PlumtreeMsg::Join { ttl: self.cfg.arwl });
            }
            GoCastCommand::Leave => {
                if !self.joined {
                    return;
                }
                // Flip `joined` first so the per-link removals below do not
                // report an orphan spell for the departed node.
                self.joined = false;
                let peers: Vec<NodeId> = self.active.keys().copied().collect();
                for p in peers {
                    ctx.send(p, PlumtreeMsg::Disconnect);
                    ctx.emit(GoCastEvent::LinkDropped {
                        peer: p,
                        kind: LinkKind::Random,
                        reason: DropReason::Surplus,
                    });
                }
                self.active.clear();
                // The store is kept: stragglers received after a rejoin
                // count as redundant, never as duplicate deliveries.
                self.missing.clear();
            }
            GoCastCommand::FreezeMaintenance => {
                self.frozen = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gocast::bootstrap_random_graph;
    use gocast_sim::{FixedLatency, SimBuilder, SimTime, VecRecorder};

    fn build(
        n: usize,
        seed: u64,
        cfg: PlumtreeConfig,
    ) -> gocast_sim::Sim<PlumtreeNode, VecRecorder<GoCastEvent>> {
        let mut boot = bootstrap_random_graph(n, 3, seed ^ 0xB007);
        let net = FixedLatency::new(n, Duration::from_millis(20));
        SimBuilder::new(net)
            .seed(seed)
            .build_with(VecRecorder::<GoCastEvent>::new(), |id| {
                let (links, members) = boot(id);
                PlumtreeNode::with_initial_links(id, cfg.clone(), links, members)
            })
    }

    fn deliveries(rec: &VecRecorder<GoCastEvent>) -> Vec<(NodeId, MsgId)> {
        rec.events
            .iter()
            .filter_map(|(_, n, e)| match e {
                GoCastEvent::Delivered { id, .. } => Some((*n, *id)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn multicast_reaches_every_node() {
        let n = 64;
        let mut sim = build(n, 7, PlumtreeConfig::default());
        sim.run_until(SimTime::from_secs(5));
        sim.command_now(NodeId::new(0), GoCastCommand::Multicast);
        sim.run_until(SimTime::from_secs(15));
        let got = deliveries(sim.recorder());
        assert_eq!(got.len(), n - 1, "all non-origin nodes deliver");
        let mut seen = std::collections::HashSet::new();
        for pair in &got {
            assert!(seen.insert(*pair), "duplicate delivery {pair:?}");
        }
    }

    #[test]
    fn repeated_multicasts_prune_redundant_edges() {
        let n = 32;
        let mut sim = build(n, 11, PlumtreeConfig::default());
        sim.run_until(SimTime::from_secs(5));
        for i in 0..8 {
            sim.command_now(NodeId::new(0), GoCastCommand::Multicast);
            sim.run_until(SimTime::from_secs(7 + 2 * i));
        }
        let (mut eager, mut active) = (0usize, 0usize);
        for (_, node) in sim.iter_nodes() {
            eager += node.eager_degree();
            active += node.active_degree();
        }
        assert!(
            eager < active,
            "pruning should demote some edges to lazy: eager {eager} of {active}"
        );
        let ihaves = sim
            .recorder()
            .events
            .iter()
            .filter(|(_, _, e)| matches!(e, GoCastEvent::IHaveSent { .. }))
            .count();
        assert!(ihaves > 0, "lazy edges should announce via IHAVE");
    }

    #[test]
    fn graft_recovers_deliveries_after_crashes() {
        let n = 48;
        let mut sim = build(n, 3, PlumtreeConfig::default());
        sim.run_until(SimTime::from_secs(6));
        // Warm the tree so pruning creates lazy edges, then crash a slice
        // of nodes and multicast: survivors behind dead eager edges must
        // recover via graft.
        for i in 0..4 {
            sim.command_now(NodeId::new(1), GoCastCommand::Multicast);
            sim.run_until(SimTime::from_secs(8 + 2 * i));
        }
        for dead in [2u32, 9, 17, 23, 31, 40] {
            sim.fail_node(NodeId::new(dead));
        }
        let before = deliveries(sim.recorder()).len();
        sim.command_now(NodeId::new(1), GoCastCommand::Multicast);
        sim.run_until(SimTime::from_secs(40));
        let after: Vec<_> = deliveries(sim.recorder())
            .into_iter()
            .skip(before)
            .collect();
        assert_eq!(after.len(), n - 1 - 6, "all survivors deliver");
    }

    #[test]
    fn leave_and_rejoin_never_duplicates_deliveries() {
        let n = 24;
        let mut sim = build(n, 5, PlumtreeConfig::default());
        sim.run_until(SimTime::from_secs(5));
        sim.command_now(NodeId::new(0), GoCastCommand::Multicast);
        sim.run_until(SimTime::from_secs(8));
        sim.command_now(NodeId::new(3), GoCastCommand::Leave);
        sim.run_until(SimTime::from_secs(10));
        sim.command_now(
            NodeId::new(3),
            GoCastCommand::Join {
                contact: NodeId::new(0),
            },
        );
        sim.run_until(SimTime::from_secs(14));
        sim.command_now(NodeId::new(0), GoCastCommand::Multicast);
        sim.run_until(SimTime::from_secs(25));
        let got = deliveries(sim.recorder());
        let mut seen = std::collections::HashSet::new();
        for pair in &got {
            assert!(seen.insert(*pair), "duplicate delivery {pair:?}");
        }
        assert!(
            sim.node(NodeId::new(3)).is_joined(),
            "node 3 rejoined the overlay"
        );
    }

    #[test]
    fn runs_replay_byte_identically() {
        let summarize = |seed| {
            let mut sim = build(40, seed, PlumtreeConfig::default());
            sim.run_until(SimTime::from_secs(4));
            for src in [0u32, 5, 9] {
                sim.command_now(NodeId::new(src), GoCastCommand::Multicast);
            }
            sim.run_until(SimTime::from_secs(20));
            format!("{:?}", sim.recorder().events)
        };
        assert_eq!(summarize(42), summarize(42), "same seed, same trace");
        assert_ne!(summarize(42), summarize(43), "different seed differs");
    }

    #[test]
    fn stack_surface_reports_state() {
        let n = 16;
        let mut sim = build(n, 2, PlumtreeConfig::default());
        sim.run_until(SimTime::from_secs(5));
        sim.command_now(NodeId::new(1), GoCastCommand::Multicast);
        sim.run_until(SimTime::from_secs(10));
        let node = sim.node(NodeId::new(4));
        assert!(node.joined() && node.attached());
        assert!(node.overlay_degree() > 0);
        assert!(node.member_count() >= node.overlay_degree());
        assert_eq!(node.delivered_count(), 1);
        assert!(node.holds(NodeId::new(1), 0));
        let caps = PlumtreeNode::capabilities();
        assert!(!caps.degree_bounds && caps.pull_after_delivery && !caps.tree);
        assert_eq!(PlumtreeNode::NAME, "plumtree");
    }
}
