//! # gocast-plumtree — a rival protocol stack on the shared kernel
//!
//! An independent implementation of **Plumtree** (epidemic broadcast
//! trees; Leitão, Pereira, Rodrigues — SRDS 2007) running over
//! **HyParView** partial membership (same authors, DSN 2007), built as a
//! second [`gocast_sim::Stack`] so GoCast can be compared head-to-head
//! against the closest prior art on identical simulated networks, fault
//! scenarios, and seeds.
//!
//! ## How the two designs differ
//!
//! GoCast maintains an *explicit* low-latency overlay (random + nearby
//! links with degree balancing) and runs a DVMRP-style routing tree on
//! top; gossip is a *repair* channel. Plumtree inverts this: the "tree"
//! is implicit — the set of links on which full payloads travelled — and
//! is carved out of HyParView's random active view by demoting redundant
//! edges to lazy IHAVE announcements (PRUNE) and promoting them back when
//! a payload goes missing (GRAFT). There is no latency awareness and no
//! global root.
//!
//! ## Mapping onto the shared observability surface
//!
//! The node emits [`gocast::GoCastEvent`] with the same semantics the
//! analysis layer already understands:
//!
//! | Plumtree action              | Event                                   |
//! |------------------------------|-----------------------------------------|
//! | eager payload push           | `PushSent` / `Delivered{via: tree}`     |
//! | lazy IHAVE announcement      | `IHaveSent`                             |
//! | graft request                | `PullRequested`                         |
//! | graft served / recovery      | `PullServed` / `Delivered{via: pull}`   |
//! | active-view add/remove       | `LinkAdded` / `LinkDropped` (random)    |
//! | first link gained/lost       | `ParentChanged{Some/None}`              |
//!
//! See `DESIGN.md` ("Protocol stack interface") for the capability flags
//! this stack advertises and which oracle checks apply to it.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod node;

pub use config::PlumtreeConfig;
pub use node::{PlumtreeMsg, PlumtreeNode};
