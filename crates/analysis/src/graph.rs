//! Graph analysis: connected components, diameters, path lengths.
//!
//! Operates on plain adjacency lists (`Vec<Vec<u32>>`) as produced by
//! `gocast::Snapshot`, with an optional liveness mask so post-failure
//! analysis can ignore dead nodes.

use std::collections::VecDeque;

/// Sizes of all connected components among nodes where `alive` is true,
/// descending.
pub fn component_sizes(adj: &[Vec<u32>], alive: &[bool]) -> Vec<usize> {
    let n = adj.len();
    assert_eq!(alive.len(), n, "mask length mismatch");
    let mut seen = vec![false; n];
    let mut sizes = Vec::new();
    for start in 0..n {
        if seen[start] || !alive[start] {
            continue;
        }
        let mut size = 0;
        let mut queue = VecDeque::from([start as u32]);
        seen[start] = true;
        while let Some(u) = queue.pop_front() {
            size += 1;
            for &w in &adj[u as usize] {
                if alive[w as usize] && !seen[w as usize] {
                    seen[w as usize] = true;
                    queue.push_back(w);
                }
            }
        }
        sizes.push(size);
    }
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    sizes
}

/// The fraction `q` of live nodes inside the largest connected component
/// (the paper's Figure 6 metric; `q = 1` means the overlay survived).
pub fn largest_component_fraction(adj: &[Vec<u32>], alive: &[bool]) -> f64 {
    let live = alive.iter().filter(|&&a| a).count();
    if live == 0 {
        return 0.0;
    }
    let sizes = component_sizes(adj, alive);
    sizes.first().copied().unwrap_or(0) as f64 / live as f64
}

/// BFS hop distances from `start` (`u32::MAX` = unreachable).
pub fn bfs_distances(adj: &[Vec<u32>], alive: &[bool], start: u32) -> Vec<u32> {
    let n = adj.len();
    let mut dist = vec![u32::MAX; n];
    if !alive[start as usize] {
        return dist;
    }
    dist[start as usize] = 0;
    let mut queue = VecDeque::from([start]);
    while let Some(u) = queue.pop_front() {
        for &w in &adj[u as usize] {
            if alive[w as usize] && dist[w as usize] == u32::MAX {
                dist[w as usize] = dist[u as usize] + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

/// Exact hop diameter of the graph restricted to live nodes (the longest
/// shortest path within the largest component). `0` for empty graphs.
///
/// Runs BFS from every live node — fine up to ~10k nodes with degree ~6.
pub fn diameter(adj: &[Vec<u32>], alive: &[bool]) -> u32 {
    let mut best = 0;
    for start in 0..adj.len() as u32 {
        if !alive[start as usize] {
            continue;
        }
        let d = bfs_distances(adj, alive, start);
        for &v in &d {
            if v != u32::MAX {
                best = best.max(v);
            }
        }
    }
    best
}

/// Average shortest-path hop count over reachable live pairs.
pub fn mean_path_length(adj: &[Vec<u32>], alive: &[bool]) -> f64 {
    let mut sum = 0u64;
    let mut count = 0u64;
    for start in 0..adj.len() as u32 {
        if !alive[start as usize] {
            continue;
        }
        for &v in &bfs_distances(adj, alive, start) {
            if v != u32::MAX && v > 0 {
                sum += v as u64;
                count += 1;
            }
        }
    }
    if count == 0 {
        0.0
    } else {
        sum as f64 / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0-1-2 path plus isolated 3, dead 4 bridging 2-5.
    fn fixture() -> (Vec<Vec<u32>>, Vec<bool>) {
        let adj = vec![vec![1], vec![0, 2], vec![1, 4], vec![], vec![2, 5], vec![4]];
        let alive = vec![true, true, true, true, false, true];
        (adj, alive)
    }

    #[test]
    fn components_respect_liveness() {
        let (adj, alive) = fixture();
        // Dead node 4 splits {0,1,2} from {5}; 3 is isolated.
        assert_eq!(component_sizes(&adj, &alive), vec![3, 1, 1]);
        let all = vec![true; 6];
        assert_eq!(component_sizes(&adj, &all), vec![5, 1]);
    }

    #[test]
    fn largest_fraction() {
        let (adj, alive) = fixture();
        // 5 live nodes, largest live component 3.
        assert!((largest_component_fraction(&adj, &alive) - 0.6).abs() < 1e-12);
        assert_eq!(largest_component_fraction(&[], &[]), 0.0);
    }

    #[test]
    fn bfs_and_diameter() {
        let (adj, alive) = fixture();
        let d = bfs_distances(&adj, &alive, 0);
        assert_eq!(d[0], 0);
        assert_eq!(d[2], 2);
        assert_eq!(d[5], u32::MAX, "path crosses a dead node");
        assert_eq!(diameter(&adj, &alive), 2);
        let all = vec![true; 6];
        assert_eq!(diameter(&adj, &all), 4, "0-1-2-4-5");
    }

    #[test]
    fn mean_path_length_on_triangle() {
        let adj = vec![vec![1, 2], vec![0, 2], vec![0, 1]];
        let alive = vec![true; 3];
        assert!((mean_path_length(&adj, &alive) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ring_diameter() {
        let n = 16u32;
        let adj: Vec<Vec<u32>> = (0..n).map(|i| vec![(i + 1) % n, (i + n - 1) % n]).collect();
        let alive = vec![true; n as usize];
        assert_eq!(diameter(&adj, &alive), n / 2);
    }
}
