//! Result tables: aligned terminal output plus CSV files, with no
//! dependency beyond the standard library.

use std::fmt;
use std::io::Write;
use std::path::Path;

/// A simple rectangular result table.
///
/// ```
/// use gocast_analysis::Table;
///
/// let mut t = Table::new(["fanout", "p(all hear)"]);
/// t.row(["5", "0.016"]);
/// t.row(["15", "0.73"]);
/// let text = t.to_string();
/// assert!(text.contains("fanout"));
/// assert_eq!(t.rows(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(headers: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn rows(&self) -> usize {
        self.rows.len()
    }

    /// Writes the table as CSV (header row first). Cells containing commas
    /// or quotes are quoted.
    ///
    /// # Errors
    ///
    /// Propagates IO errors from creating or writing the file.
    pub fn write_csv<P: AsRef<Path>>(&self, path: P) -> std::io::Result<()> {
        self.write_csv_with_comment(path, None)
    }

    /// Like [`Table::write_csv`], with an optional `#`-prefixed comment
    /// line (e.g. a run-provenance manifest) written before the header.
    ///
    /// # Errors
    ///
    /// Propagates IO errors from creating or writing the file.
    pub fn write_csv_with_comment<P: AsRef<Path>>(
        &self,
        path: P,
        comment: Option<&str>,
    ) -> std::io::Result<()> {
        if let Some(dir) = path.as_ref().parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut f = std::fs::File::create(path)?;
        if let Some(c) = comment {
            debug_assert!(c.starts_with('#'), "CSV comments start with #");
            writeln!(f, "{c}")?;
        }
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_owned()
            }
        };
        writeln!(
            f,
            "{}",
            self.headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        )?;
        for row in &self.rows {
            writeln!(
                f,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            )?;
        }
        Ok(())
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut parts = Vec::with_capacity(cells.len());
            for (c, w) in cells.iter().zip(&widths) {
                parts.push(format!("{c:>w$}"));
            }
            writeln!(f, "  {}", parts.join("  "))
        };
        line(f, &self.headers)?;
        let total = widths.iter().sum::<usize>() + 2 * widths.len() + 2;
        writeln!(f, "  {}", "-".repeat(total.saturating_sub(4)))?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

/// Formats a duration as fractional seconds with millisecond precision.
pub fn fmt_secs(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Formats a duration as fractional milliseconds.
pub fn fmt_ms(d: std::time::Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn display_aligns_columns() {
        let mut t = Table::new(["a", "long_header"]);
        t.row(["1", "2"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("long_header"));
        assert!(lines[2].trim().starts_with('1'));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    fn csv_roundtrip_with_escaping() {
        let dir = std::env::temp_dir().join("gocast-analysis-test");
        let path = dir.join("t.csv");
        let mut t = Table::new(["x", "note"]);
        t.row(["1", "plain"]);
        t.row(["2", "has,comma"]);
        t.row(["3", "has\"quote"]);
        t.write_csv(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("x,note\n"));
        assert!(text.contains("\"has,comma\""));
        assert!(text.contains("\"has\"\"quote\""));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_secs(Duration::from_millis(1234)), "1.234");
        assert_eq!(fmt_ms(Duration::from_micros(15500)), "15.50");
    }
}
