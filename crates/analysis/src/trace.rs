//! Causal trace analysis: JSONL parsing, per-message dissemination-tree
//! reconstruction, and the online invariant oracle.
//!
//! The input is the event stream a [`gocast_sim::TraceRecorder`] writes —
//! one flat JSON object per line, schema defined by `GoCastEvent`'s
//! `TraceEvent` impl in `gocast-core`. This module turns that stream back
//! into structure:
//!
//! - [`parse_line`] / [`scan_trace`] — a dependency-free parser for the
//!   flat JSONL schema (the vendored serde is a stub, so this is the real
//!   decoder);
//! - [`TraceAnalysis`] — reconstructs every message's dissemination tree
//!   from the `from`/`hop` causal metadata on deliveries, and computes
//!   hop-count histograms, a per-hop latency breakdown, and the
//!   tree-vs-pull recovery fraction (the paper's core dependability
//!   claim);
//! - [`InvariantOracle`] — checks protocol invariants either online (it
//!   is a [`Recorder`] over `GoCastEvent`) or offline over parsed
//!   records, collecting [`Violation`]s instead of panicking so tests and
//!   the `trace` experiment subcommand can fail loudly with context.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use std::io::BufRead;

use gocast::{DeliveryPath, DropReason, GoCastConfig, GoCastEvent, LinkKind};
use gocast_sim::{NodeId, Recorder, SimTime, StackCaps};

// ---------------------------------------------------------------------
// Records.
// ---------------------------------------------------------------------

/// Which stack produced a trace record — the `"proto"` JSONL field.
///
/// PR-2-era traces predate the tag; [`parse_line`] / [`scan_trace`]
/// default records without it to [`ProtoTag::GoCast`], so old traces
/// still parse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProtoTag {
    /// The GoCast stack (also the default for untagged records).
    #[default]
    GoCast,
    /// The Plumtree/HyParView rival stack.
    Plumtree,
    /// The push-gossip baseline.
    PushGossip,
}

impl ProtoTag {
    /// Parses the stable JSONL value (`gocast`, `plumtree`,
    /// `push-gossip`). Returns `None` for anything else.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "gocast" => ProtoTag::GoCast,
            "plumtree" => ProtoTag::Plumtree,
            "push-gossip" => ProtoTag::PushGossip,
            _ => return None,
        })
    }

    /// The stable JSONL value.
    pub fn name(self) -> &'static str {
        match self {
            ProtoTag::GoCast => "gocast",
            ProtoTag::Plumtree => "plumtree",
            ProtoTag::PushGossip => "push-gossip",
        }
    }
}

impl fmt::Display for ProtoTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One parsed trace line: when, where, what.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Simulation time in microseconds.
    pub t_us: u64,
    /// The node that emitted the event.
    pub node: u32,
    /// The stack that produced the record (defaulted to
    /// [`ProtoTag::GoCast`] when the line carries no `proto` field).
    pub proto: ProtoTag,
    /// The event itself.
    pub ev: TraceEv,
}

/// A decoded trace event (the JSONL mirror of `GoCastEvent`, with ids
/// flattened to `(origin, seq)` pairs).
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEv {
    /// `{"ev":"injected",...}` — a node originated a message.
    Injected {
        /// Message origin node.
        origin: u32,
        /// Origin-local sequence number.
        seq: u32,
    },
    /// `{"ev":"delivered",...}` — first reception of a message.
    Delivered {
        /// Message origin node.
        origin: u32,
        /// Origin-local sequence number.
        seq: u32,
        /// The causal parent: the neighbor the payload came from.
        from: u32,
        /// Causal hop count from the origin (0 = unknown).
        hop: u32,
        /// Tree push or pull recovery.
        via: DeliveryPath,
    },
    /// `{"ev":"redundant_data",...}` — a duplicate full payload arrived.
    RedundantData {
        /// Message origin node.
        origin: u32,
        /// Origin-local sequence number.
        seq: u32,
        /// Sender of the duplicate.
        from: u32,
    },
    /// `{"ev":"push_sent",...}` — a payload was pushed along a tree link.
    PushSent {
        /// Message origin node.
        origin: u32,
        /// Origin-local sequence number.
        seq: u32,
        /// Push target.
        to: u32,
        /// Hop count stamped on the outgoing copy.
        hop: u32,
    },
    /// `{"ev":"ihave_sent",...}` — a message id was gossiped.
    IHaveSent {
        /// Message origin node.
        origin: u32,
        /// Origin-local sequence number.
        seq: u32,
        /// Gossip target.
        to: u32,
    },
    /// `{"ev":"pull_requested",...}` — a missing payload was requested.
    PullRequested {
        /// Message origin node.
        origin: u32,
        /// Origin-local sequence number.
        seq: u32,
        /// The neighbor asked.
        to: u32,
    },
    /// `{"ev":"pull_served",...}` — a pull was answered with the payload.
    PullServed {
        /// Message origin node.
        origin: u32,
        /// Origin-local sequence number.
        seq: u32,
        /// The requester.
        to: u32,
        /// Hop count stamped on the outgoing copy.
        hop: u32,
    },
    /// `{"ev":"link_added",...}` — an overlay link came up.
    LinkAdded {
        /// The new neighbor.
        peer: u32,
        /// Random or nearby.
        kind: LinkKind,
    },
    /// `{"ev":"link_dropped",...}` — an overlay link went down.
    LinkDropped {
        /// The former neighbor.
        peer: u32,
        /// Random or nearby.
        kind: LinkKind,
        /// Why.
        reason: DropReason,
    },
    /// `{"ev":"parent_changed",...}` — the node picked a new tree parent.
    ParentChanged {
        /// The new parent (`None` = root or detached).
        parent: Option<u32>,
    },
    /// `{"ev":"became_root",...}` — the node started acting as root.
    BecameRoot {
        /// Root epoch.
        epoch: u32,
    },
}

impl TraceRecord {
    /// Builds the record a live `GoCastEvent` would parse back to — the
    /// bridge that lets the [`InvariantOracle`] run online as a recorder.
    /// The record is tagged [`ProtoTag::GoCast`]; use
    /// [`TraceRecord::from_event_for`] for another stack emitting the
    /// shared event vocabulary.
    pub fn from_event(now: SimTime, node: NodeId, ev: &GoCastEvent) -> TraceRecord {
        Self::from_event_for(ProtoTag::GoCast, now, node, ev)
    }

    /// [`TraceRecord::from_event`] with an explicit stack tag.
    pub fn from_event_for(
        proto: ProtoTag,
        now: SimTime,
        node: NodeId,
        ev: &GoCastEvent,
    ) -> TraceRecord {
        let t_us = now.as_nanos() / 1_000;
        let node = node.as_u32();
        let ev = match *ev {
            GoCastEvent::Injected { id } => TraceEv::Injected {
                origin: id.origin.as_u32(),
                seq: id.seq,
            },
            GoCastEvent::Delivered { id, via, from, hop } => TraceEv::Delivered {
                origin: id.origin.as_u32(),
                seq: id.seq,
                from: from.as_u32(),
                hop,
                via,
            },
            GoCastEvent::RedundantData { id, from } => TraceEv::RedundantData {
                origin: id.origin.as_u32(),
                seq: id.seq,
                from: from.as_u32(),
            },
            GoCastEvent::PushSent { id, to, hop } => TraceEv::PushSent {
                origin: id.origin.as_u32(),
                seq: id.seq,
                to: to.as_u32(),
                hop,
            },
            GoCastEvent::IHaveSent { id, to } => TraceEv::IHaveSent {
                origin: id.origin.as_u32(),
                seq: id.seq,
                to: to.as_u32(),
            },
            GoCastEvent::PullRequested { id, to } => TraceEv::PullRequested {
                origin: id.origin.as_u32(),
                seq: id.seq,
                to: to.as_u32(),
            },
            GoCastEvent::PullServed { id, to, hop } => TraceEv::PullServed {
                origin: id.origin.as_u32(),
                seq: id.seq,
                to: to.as_u32(),
                hop,
            },
            GoCastEvent::LinkAdded { peer, kind } => TraceEv::LinkAdded {
                peer: peer.as_u32(),
                kind,
            },
            GoCastEvent::LinkDropped { peer, kind, reason } => TraceEv::LinkDropped {
                peer: peer.as_u32(),
                kind,
                reason,
            },
            GoCastEvent::ParentChanged { parent } => TraceEv::ParentChanged {
                parent: parent.map(|p| p.as_u32()),
            },
            GoCastEvent::BecameRoot { epoch } => TraceEv::BecameRoot { epoch },
        };
        TraceRecord {
            t_us,
            node,
            proto,
            ev,
        }
    }
}

// ---------------------------------------------------------------------
// Parsing.
// ---------------------------------------------------------------------

/// A malformed trace line or an IO failure while scanning a trace.
#[derive(Debug)]
pub enum TraceError {
    /// Reading the underlying stream failed.
    Io(std::io::Error),
    /// A line did not match the schema.
    Parse {
        /// 1-based line number (0 when parsing a bare line).
        line: u64,
        /// What went wrong.
        msg: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace read error: {e}"),
            TraceError::Parse { line, msg } => write!(f, "trace line {line}: {msg}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Val<'a> {
    Num(u64),
    Str(&'a str),
    Null,
}

/// Tokenizes one flat JSON object (string values without escapes,
/// non-negative integers, null) into key/value pairs.
fn parse_object(line: &str) -> Result<Vec<(&str, Val<'_>)>, String> {
    let b = line.as_bytes();
    let mut i = 0usize;
    let skip_ws = |i: &mut usize| {
        while *i < b.len() && b[*i].is_ascii_whitespace() {
            *i += 1;
        }
    };
    let quoted = |i: &mut usize| -> Result<&str, String> {
        if *i >= b.len() || b[*i] != b'"' {
            return Err(format!("expected '\"' at byte {i}", i = *i));
        }
        *i += 1;
        let start = *i;
        while *i < b.len() && b[*i] != b'"' {
            if b[*i] == b'\\' {
                return Err("escapes are not part of the trace schema".into());
            }
            *i += 1;
        }
        if *i >= b.len() {
            return Err("unterminated string".into());
        }
        let s = &line[start..*i];
        *i += 1;
        Ok(s)
    };

    skip_ws(&mut i);
    if i >= b.len() || b[i] != b'{' {
        return Err("expected '{'".into());
    }
    i += 1;
    let mut out = Vec::with_capacity(8);
    skip_ws(&mut i);
    if i < b.len() && b[i] == b'}' {
        i += 1;
    } else {
        loop {
            skip_ws(&mut i);
            let key = quoted(&mut i)?;
            skip_ws(&mut i);
            if i >= b.len() || b[i] != b':' {
                return Err(format!("expected ':' after key {key:?}"));
            }
            i += 1;
            skip_ws(&mut i);
            let val = if i < b.len() && b[i] == b'"' {
                Val::Str(quoted(&mut i)?)
            } else if line[i..].starts_with("null") {
                i += 4;
                Val::Null
            } else {
                let start = i;
                while i < b.len() && b[i].is_ascii_digit() {
                    i += 1;
                }
                if i == start {
                    return Err(format!("expected a value for key {key:?}"));
                }
                let n: u64 = line[start..i]
                    .parse()
                    .map_err(|e| format!("bad number for key {key:?}: {e}"))?;
                Val::Num(n)
            };
            out.push((key, val));
            skip_ws(&mut i);
            match b.get(i) {
                Some(b',') => i += 1,
                Some(b'}') => {
                    i += 1;
                    break;
                }
                _ => return Err("expected ',' or '}'".into()),
            }
        }
    }
    skip_ws(&mut i);
    if i != b.len() {
        return Err(format!("trailing bytes after object: {:?}", &line[i..]));
    }
    Ok(out)
}

fn field<'a>(fields: &[(&str, Val<'a>)], key: &str) -> Result<Val<'a>, String> {
    fields
        .iter()
        .find(|(k, _)| *k == key)
        .map(|&(_, v)| v)
        .ok_or_else(|| format!("missing field {key:?}"))
}

fn num_u64(fields: &[(&str, Val<'_>)], key: &str) -> Result<u64, String> {
    match field(fields, key)? {
        Val::Num(n) => Ok(n),
        other => Err(format!("field {key:?} is not a number: {other:?}")),
    }
}

fn num(fields: &[(&str, Val<'_>)], key: &str) -> Result<u32, String> {
    u32::try_from(num_u64(fields, key)?).map_err(|_| format!("field {key:?} exceeds u32"))
}

fn string<'a>(fields: &[(&str, Val<'a>)], key: &str) -> Result<&'a str, String> {
    match field(fields, key)? {
        Val::Str(s) => Ok(s),
        other => Err(format!("field {key:?} is not a string: {other:?}")),
    }
}

/// Parses one JSONL trace line.
///
/// # Errors
///
/// Returns [`TraceError::Parse`] (with `line = 0`) when the line does not
/// match the schema; use [`scan_trace`] for numbered errors over a file.
pub fn parse_line(line: &str) -> Result<TraceRecord, TraceError> {
    parse_line_inner(line).map_err(|msg| TraceError::Parse { line: 0, msg })
}

fn parse_line_inner(line: &str) -> Result<TraceRecord, String> {
    let fields = parse_object(line)?;
    let t_us = num_u64(&fields, "t_us")?;
    let node = num(&fields, "node")?;
    // Optional stack tag; records from before the tag existed default to
    // GoCast (the only stack that could have written them).
    let proto = match field(&fields, "proto") {
        Err(_) => ProtoTag::GoCast,
        Ok(Val::Str(s)) => ProtoTag::parse(s).ok_or_else(|| format!("unknown proto {s:?}"))?,
        Ok(other) => return Err(format!("field \"proto\" is not a string: {other:?}")),
    };
    let ev_name = string(&fields, "ev")?;
    let msg = |fields: &[(&str, Val<'_>)]| -> Result<(u32, u32), String> {
        Ok((num(fields, "origin")?, num(fields, "seq")?))
    };
    let ev = match ev_name {
        "injected" => {
            let (origin, seq) = msg(&fields)?;
            TraceEv::Injected { origin, seq }
        }
        "delivered" => {
            let (origin, seq) = msg(&fields)?;
            let via = string(&fields, "via")?;
            TraceEv::Delivered {
                origin,
                seq,
                from: num(&fields, "from")?,
                hop: num(&fields, "hop")?,
                via: DeliveryPath::parse(via).ok_or_else(|| format!("unknown via {via:?}"))?,
            }
        }
        "redundant_data" => {
            let (origin, seq) = msg(&fields)?;
            TraceEv::RedundantData {
                origin,
                seq,
                from: num(&fields, "from")?,
            }
        }
        "push_sent" => {
            let (origin, seq) = msg(&fields)?;
            TraceEv::PushSent {
                origin,
                seq,
                to: num(&fields, "to")?,
                hop: num(&fields, "hop")?,
            }
        }
        "ihave_sent" => {
            let (origin, seq) = msg(&fields)?;
            TraceEv::IHaveSent {
                origin,
                seq,
                to: num(&fields, "to")?,
            }
        }
        "pull_requested" => {
            let (origin, seq) = msg(&fields)?;
            TraceEv::PullRequested {
                origin,
                seq,
                to: num(&fields, "to")?,
            }
        }
        "pull_served" => {
            let (origin, seq) = msg(&fields)?;
            TraceEv::PullServed {
                origin,
                seq,
                to: num(&fields, "to")?,
                hop: num(&fields, "hop")?,
            }
        }
        "link_added" => {
            let kind = string(&fields, "kind")?;
            TraceEv::LinkAdded {
                peer: num(&fields, "peer")?,
                kind: LinkKind::parse(kind).ok_or_else(|| format!("unknown kind {kind:?}"))?,
            }
        }
        "link_dropped" => {
            let kind = string(&fields, "kind")?;
            let reason = string(&fields, "reason")?;
            TraceEv::LinkDropped {
                peer: num(&fields, "peer")?,
                kind: LinkKind::parse(kind).ok_or_else(|| format!("unknown kind {kind:?}"))?,
                reason: DropReason::parse(reason)
                    .ok_or_else(|| format!("unknown reason {reason:?}"))?,
            }
        }
        "parent_changed" => TraceEv::ParentChanged {
            parent: match field(&fields, "parent")? {
                Val::Null => None,
                Val::Num(n) => {
                    Some(u32::try_from(n).map_err(|_| "parent exceeds u32".to_string())?)
                }
                other => return Err(format!("field \"parent\" is not a number: {other:?}")),
            },
        },
        "became_root" => TraceEv::BecameRoot {
            epoch: num(&fields, "epoch")?,
        },
        other => return Err(format!("unknown event kind {other:?}")),
    };
    Ok(TraceRecord {
        t_us,
        node,
        proto,
        ev,
    })
}

/// Streams a JSONL trace from `reader`, invoking `f` per record.
///
/// Empty lines are skipped. O(1) memory in the trace length.
///
/// # Errors
///
/// Returns the first IO or parse error ([`TraceError::Parse`] carries the
/// 1-based line number).
pub fn scan_trace<R: BufRead>(
    reader: R,
    mut f: impl FnMut(TraceRecord),
) -> Result<u64, TraceError> {
    let mut count = 0u64;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        // Run-manifest header lines stamp provenance on the artifact; they
        // carry no trace record.
        if line.starts_with("{\"manifest\":") {
            continue;
        }
        let rec = parse_line_inner(&line).map_err(|msg| TraceError::Parse {
            line: idx as u64 + 1,
            msg,
        })?;
        count += 1;
        f(rec);
    }
    Ok(count)
}

// ---------------------------------------------------------------------
// Dissemination-tree reconstruction.
// ---------------------------------------------------------------------

/// One delivery inside a message's dissemination tree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Delivery {
    /// When the node delivered, µs.
    pub t_us: u64,
    /// Causal parent (who sent the payload).
    pub from: u32,
    /// Causal hop count from the origin.
    pub hop: u32,
    /// Tree push or pull recovery.
    pub via: DeliveryPath,
}

#[derive(Debug, Clone, Default)]
struct MsgTrace {
    injected_at: Option<u64>,
    origin: u32,
    /// node -> first delivery (later duplicates are the oracle's problem).
    deliveries: BTreeMap<u32, Delivery>,
}

/// Streaming reconstruction of per-message dissemination trees.
///
/// Feed parsed records (or use it as the target of [`scan_trace`]), then
/// call [`TraceAnalysis::report`]. Memory is O(messages × receivers) — the
/// trees themselves — and independent of gossip/push/pull event volume.
#[derive(Debug, Default)]
pub struct TraceAnalysis {
    msgs: BTreeMap<(u32, u32), MsgTrace>,
    records: u64,
}

impl TraceAnalysis {
    /// Creates an empty analysis.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one record in.
    pub fn feed(&mut self, rec: &TraceRecord) {
        self.records += 1;
        match rec.ev {
            TraceEv::Injected { origin, seq } => {
                let m = self.msgs.entry((origin, seq)).or_default();
                m.origin = origin;
                m.injected_at = Some(match m.injected_at {
                    Some(t) => t.min(rec.t_us),
                    None => rec.t_us,
                });
            }
            TraceEv::Delivered {
                origin,
                seq,
                from,
                hop,
                via,
            } => {
                let m = self.msgs.entry((origin, seq)).or_default();
                m.origin = origin;
                m.deliveries.entry(rec.node).or_insert(Delivery {
                    t_us: rec.t_us,
                    from,
                    hop,
                    via,
                });
            }
            _ => {}
        }
    }

    /// Messages seen so far.
    pub fn message_count(&self) -> usize {
        self.msgs.len()
    }

    /// Computes the report over everything fed so far.
    pub fn report(&self) -> TraceReport {
        let mut r = TraceReport {
            messages: self.msgs.len(),
            records: self.records,
            ..TraceReport::default()
        };
        let mut hop_lat_sum_us: Vec<u64> = Vec::new();
        let mut hop_lat_n: Vec<u64> = Vec::new();
        for m in self.msgs.values() {
            let mut ok = m.injected_at.is_some();
            for (&node, d) in &m.deliveries {
                r.deliveries += 1;
                match d.via {
                    DeliveryPath::Pull => r.pull_deliveries += 1,
                    _ => r.tree_deliveries += 1,
                }
                let hop = d.hop as usize;
                if r.hop_histogram.len() <= hop {
                    r.hop_histogram.resize(hop + 1, 0);
                }
                r.hop_histogram[hop] += 1;

                // Validate the causal edge and collect the per-hop latency
                // (delivery time minus the parent's delivery time; hop 1
                // measures against the injection).
                let parent_t = if d.hop <= 1 {
                    if d.from == m.origin {
                        m.injected_at
                    } else {
                        None
                    }
                } else {
                    m.deliveries
                        .get(&d.from)
                        .filter(|p| p.hop + 1 == d.hop)
                        .map(|p| p.t_us)
                };
                match parent_t {
                    Some(t0) if t0 <= d.t_us && d.hop >= 1 => {
                        let hop = d.hop as usize;
                        if hop_lat_sum_us.len() <= hop {
                            hop_lat_sum_us.resize(hop + 1, 0);
                            hop_lat_n.resize(hop + 1, 0);
                        }
                        hop_lat_sum_us[hop] += d.t_us - t0;
                        hop_lat_n[hop] += 1;
                    }
                    _ => {
                        ok = false;
                        let _ = node;
                    }
                }
            }
            if ok {
                r.trees_reconstructed += 1;
            }
        }
        r.per_hop_latency = hop_lat_sum_us
            .iter()
            .zip(hop_lat_n.iter())
            .enumerate()
            .filter(|&(_, (_, &n))| n > 0)
            .map(|(hop, (&sum, &n))| PerHopLatency {
                hop: hop as u32,
                mean_ms: sum as f64 / n as f64 / 1_000.0,
                samples: n,
            })
            .collect();
        r
    }
}

/// Mean link latency at one causal depth of the dissemination trees.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerHopLatency {
    /// Causal hop (1 = the origin's own sends).
    pub hop: u32,
    /// Mean time spent crossing into this hop, milliseconds.
    pub mean_ms: f64,
    /// Number of deliveries at this hop that had a valid causal parent.
    pub samples: u64,
}

/// What [`TraceAnalysis::report`] computed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceReport {
    /// Distinct messages in the trace.
    pub messages: usize,
    /// Total records fed.
    pub records: u64,
    /// Total first deliveries.
    pub deliveries: u64,
    /// Deliveries via tree push.
    pub tree_deliveries: u64,
    /// Deliveries via gossip-triggered pull recovery.
    pub pull_deliveries: u64,
    /// Messages whose every delivery chains back to the injection through
    /// valid `(from, hop)` causal edges.
    pub trees_reconstructed: usize,
    /// Delivery count by causal hop (index = hop).
    pub hop_histogram: Vec<u64>,
    /// Per-hop latency breakdown.
    pub per_hop_latency: Vec<PerHopLatency>,
}

impl TraceReport {
    /// Fraction of deliveries that needed gossip/pull recovery rather than
    /// the tree push — the paper's tree-vs-gossip recovery split.
    pub fn recovery_fraction(&self) -> f64 {
        if self.deliveries == 0 {
            0.0
        } else {
            self.pull_deliveries as f64 / self.deliveries as f64
        }
    }

    /// Whether every message's dissemination tree reconstructed fully.
    pub fn all_trees_reconstructed(&self) -> bool {
        self.trees_reconstructed == self.messages
    }

    /// Mean causal hop count over all deliveries.
    pub fn mean_hops(&self) -> f64 {
        let total: u64 = self.hop_histogram.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let weighted: u64 = self
            .hop_histogram
            .iter()
            .enumerate()
            .map(|(hop, &n)| hop as u64 * n)
            .sum();
        weighted as f64 / total as f64
    }

    /// Largest causal hop observed.
    pub fn max_hop(&self) -> u32 {
        (self.hop_histogram.len().saturating_sub(1)) as u32
    }
}

// ---------------------------------------------------------------------
// Invariant oracle.
// ---------------------------------------------------------------------

/// Which invariant a [`Violation`] breaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// A node delivered a message before (or without) the origin's
    /// injection appearing in the trace.
    DeliveryBeforeSend,
    /// A node delivered the same message twice.
    DuplicateDelivery,
    /// A link addition pushed a degree past its bound.
    DegreeBound,
    /// A node pulled a message it already held.
    PullAfterDelivery,
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ViolationKind::DeliveryBeforeSend => "delivery_before_send",
            ViolationKind::DuplicateDelivery => "duplicate_delivery",
            ViolationKind::DegreeBound => "degree_bound",
            ViolationKind::PullAfterDelivery => "pull_after_delivery",
        })
    }
}

/// One detected invariant violation.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// When, µs.
    pub t_us: u64,
    /// The offending node.
    pub node: u32,
    /// The invariant broken.
    pub kind: ViolationKind,
    /// Human-readable context.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[t={}µs n{}] {}: {}",
            self.t_us, self.node, self.kind, self.detail
        )
    }
}

/// Bounds, grace settings, and the per-stack capability switches for the
/// [`InvariantOracle`].
///
/// The universal invariants (no delivery before send, no duplicate
/// delivery) are always enforced. The stack-specific checks — degree
/// bounds and pull-after-delivery — are enabled per stack through
/// [`OracleConfig::with_caps`], so the oracle cleanly *skips* a check a
/// stack's design never promised instead of mis-firing on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OracleConfig {
    /// Maximum random degree after any link addition
    /// (`C_rand + degree_slack`).
    pub max_rand: usize,
    /// Maximum nearby degree after any link addition
    /// (`C_near + degree_slack`).
    pub max_near: usize,
    /// Ignore degree-bound checks at or before this time (µs). The
    /// bootstrap graph installs links of arbitrary degree at t=0; the
    /// degree rules only bound *protocol* additions.
    pub degree_check_after_us: u64,
    /// Enforce the degree bounds (GoCast's accept-rule ceiling). Off for
    /// stacks whose views are unbounded or evict reactively.
    pub check_degree_bounds: bool,
    /// Enforce "never pull/graft a message the node already holds".
    pub check_pull_after_delivery: bool,
}

impl OracleConfig {
    /// Derives the bounds from a GoCast protocol configuration, with
    /// every check enabled.
    pub fn for_protocol(cfg: &GoCastConfig) -> Self {
        OracleConfig {
            max_rand: cfg.c_rand + cfg.degree_slack,
            max_near: cfg.c_near + cfg.degree_slack,
            degree_check_after_us: 1,
            check_degree_bounds: true,
            check_pull_after_delivery: true,
        }
    }

    /// Only the universal checks: no stack-specific invariant enforced.
    pub fn universal() -> Self {
        OracleConfig {
            max_rand: usize::MAX,
            max_near: usize::MAX,
            degree_check_after_us: 0,
            check_degree_bounds: false,
            check_pull_after_delivery: false,
        }
    }

    /// Restricts the enabled checks to what `caps` promises (builder
    /// style). Never *enables* a check the config had off.
    pub fn with_caps(mut self, caps: &StackCaps) -> Self {
        self.check_degree_bounds &= caps.degree_bounds;
        self.check_pull_after_delivery &= caps.pull_after_delivery;
        self
    }
}

impl Default for OracleConfig {
    fn default() -> Self {
        Self::for_protocol(&GoCastConfig::default())
    }
}

/// Checks protocol invariants over a trace, online or offline.
///
/// Invariants (from the paper's protocol description):
///
/// 1. **No delivery before origin send** — every delivery's message was
///    injected earlier in the trace.
/// 2. **At most one delivery per node per message** (assumes the trace is
///    shorter than the GC waiting period `b`, so the store never forgets a
///    live message).
/// 3. **Degree bounds at every completed overlay change** — after any
///    protocol link addition, `D_rand ≤ C_rand + slack` and
///    `D_near ≤ C_near + slack` (the accept rules' ceiling; bootstrap
///    edges at t=0 are exempt). Make-before-break replacements add the
///    new link before dropping the victim *within one handler*, so an
///    overshoot is tolerated exactly until the node's clock advances: if
///    a matching drop at the same instant restores the bound, nothing is
///    flagged; otherwise the addition is reported. Call
///    [`InvariantOracle::finish`] after the last record so an overshoot
///    at the very end of the trace is not silently forgiven.
/// 4. **No pull for a message already held** (delivered or self-injected).
///
/// Violations are collected, not panicked — callers assert
/// [`InvariantOracle::is_clean`] (tests) or print and exit nonzero (the
/// `trace` subcommand).
///
/// It implements [`Recorder`] over `GoCastEvent`, so a simulation can run
/// with the oracle attached and zero extra plumbing.
#[derive(Debug, Default)]
pub struct InvariantOracle {
    cfg: OracleConfig,
    injected: HashMap<(u32, u32), u64>,
    delivered: HashSet<(u32, u32, u32)>,
    /// (node, origin, seq) for anything the node holds (delivery or own
    /// injection) — the pull-after-delivery check.
    held: HashSet<(u32, u32, u32)>,
    /// node -> [d_rand, d_near] reconstructed from link events.
    degrees: HashMap<u32, [u32; 2]>,
    /// (node, kind index) -> violation pending from a degree overshoot,
    /// forgiven only if a drop at the same instant restores the bound.
    overshoots: BTreeMap<(u32, u8), Violation>,
    violations: Vec<Violation>,
    records: u64,
}

impl InvariantOracle {
    /// Creates an oracle with explicit bounds.
    pub fn new(cfg: OracleConfig) -> Self {
        InvariantOracle {
            cfg,
            ..Default::default()
        }
    }

    /// Creates an oracle whose degree bounds match `cfg`.
    pub fn for_protocol(cfg: &GoCastConfig) -> Self {
        Self::new(OracleConfig::for_protocol(cfg))
    }

    /// The violations found so far.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Whether no invariant has been violated.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Records checked.
    pub fn records_checked(&self) -> u64 {
        self.records
    }

    fn violate(&mut self, rec: &TraceRecord, kind: ViolationKind, detail: String) {
        self.violations.push(Violation {
            t_us: rec.t_us,
            node: rec.node,
            kind,
            detail,
        });
    }

    /// Promotes pending degree overshoots that the trace's clock has moved
    /// past: no same-instant drop can arrive for them any more.
    fn flush_overshoots(&mut self, now_us: u64) {
        while let Some((&key, v)) = self.overshoots.iter().find(|(_, v)| v.t_us < now_us) {
            let v = v.clone();
            self.overshoots.remove(&key);
            self.violations.push(v);
        }
    }

    /// Declares the trace over: any still-pending degree overshoot becomes
    /// a violation. Call after the last record, before reading
    /// [`InvariantOracle::violations`] / [`InvariantOracle::is_clean`].
    pub fn finish(&mut self) {
        self.flush_overshoots(u64::MAX);
    }

    /// Checks one record.
    pub fn check(&mut self, rec: &TraceRecord) {
        self.records += 1;
        self.flush_overshoots(rec.t_us);
        match rec.ev {
            TraceEv::Injected { origin, seq } => {
                let t = self.injected.entry((origin, seq)).or_insert(rec.t_us);
                *t = (*t).min(rec.t_us);
                self.held.insert((rec.node, origin, seq));
            }
            TraceEv::Delivered { origin, seq, .. } => {
                match self.injected.get(&(origin, seq)) {
                    None => self.violate(
                        rec,
                        ViolationKind::DeliveryBeforeSend,
                        format!("delivered n{origin}#{seq} with no prior injection in the trace"),
                    ),
                    Some(&t0) if rec.t_us < t0 => self.violate(
                        rec,
                        ViolationKind::DeliveryBeforeSend,
                        format!(
                            "delivered n{origin}#{seq} at {}µs, injected at {t0}µs",
                            rec.t_us
                        ),
                    ),
                    _ => {}
                }
                if !self.delivered.insert((rec.node, origin, seq)) {
                    self.violate(
                        rec,
                        ViolationKind::DuplicateDelivery,
                        format!("second delivery of n{origin}#{seq}"),
                    );
                }
                self.held.insert((rec.node, origin, seq));
            }
            TraceEv::PullRequested { origin, seq, to }
                if self.cfg.check_pull_after_delivery
                    && self.held.contains(&(rec.node, origin, seq)) =>
            {
                self.violate(
                    rec,
                    ViolationKind::PullAfterDelivery,
                    format!("pulled n{origin}#{seq} from n{to} but already holds it"),
                );
            }
            TraceEv::LinkAdded { peer, kind } => {
                let d = self.degrees.entry(rec.node).or_insert([0, 0]);
                let idx = match kind {
                    LinkKind::Random => 0,
                    LinkKind::Nearby => 1,
                };
                d[idx] += 1;
                let bound = match kind {
                    LinkKind::Random => self.cfg.max_rand,
                    LinkKind::Nearby => self.cfg.max_near,
                } as u32;
                if self.cfg.check_degree_bounds
                    && rec.t_us > self.cfg.degree_check_after_us
                    && d[idx] > bound
                {
                    // Pend, don't flag: a make-before-break replacement
                    // drops the victim at this same instant.
                    let count = d[idx];
                    self.overshoots
                        .entry((rec.node, idx as u8))
                        .or_insert(Violation {
                            t_us: rec.t_us,
                            node: rec.node,
                            kind: ViolationKind::DegreeBound,
                            detail: format!(
                                "{kind} link to n{peer} raises degree to {count} > bound {bound} \
                                 with no same-instant drop restoring it"
                            ),
                        });
                }
            }
            TraceEv::LinkDropped { kind, .. } => {
                let d = self.degrees.entry(rec.node).or_insert([0, 0]);
                let idx = match kind {
                    LinkKind::Random => 0,
                    LinkKind::Nearby => 1,
                };
                d[idx] = d[idx].saturating_sub(1);
                let bound = match kind {
                    LinkKind::Random => self.cfg.max_rand,
                    LinkKind::Nearby => self.cfg.max_near,
                } as u32;
                if d[idx] <= bound {
                    self.overshoots.remove(&(rec.node, idx as u8));
                }
            }
            _ => {}
        }
    }
}

impl Recorder<GoCastEvent> for InvariantOracle {
    fn record(&mut self, now: SimTime, node: NodeId, event: GoCastEvent) {
        let rec = TraceRecord::from_event(now, node, &event);
        self.check(&rec);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gocast::MsgId;

    fn rec(t_us: u64, node: u32, ev: TraceEv) -> TraceRecord {
        TraceRecord {
            t_us,
            node,
            proto: ProtoTag::default(),
            ev,
        }
    }

    #[test]
    fn jsonl_round_trips_through_trace_recorder() {
        use gocast_sim::TraceRecorder;
        let events = vec![
            (
                SimTime::from_millis(1),
                NodeId::new(0),
                GoCastEvent::Injected {
                    id: MsgId::new(NodeId::new(0), 7),
                },
            ),
            (
                SimTime::from_millis(12),
                NodeId::new(3),
                GoCastEvent::Delivered {
                    id: MsgId::new(NodeId::new(0), 7),
                    via: DeliveryPath::Tree,
                    from: NodeId::new(0),
                    hop: 1,
                },
            ),
            (
                SimTime::from_millis(13),
                NodeId::new(3),
                GoCastEvent::PushSent {
                    id: MsgId::new(NodeId::new(0), 7),
                    to: NodeId::new(9),
                    hop: 2,
                },
            ),
            (
                SimTime::from_millis(14),
                NodeId::new(3),
                GoCastEvent::IHaveSent {
                    id: MsgId::new(NodeId::new(0), 7),
                    to: NodeId::new(4),
                },
            ),
            (
                SimTime::from_millis(15),
                NodeId::new(4),
                GoCastEvent::PullRequested {
                    id: MsgId::new(NodeId::new(0), 7),
                    to: NodeId::new(3),
                },
            ),
            (
                SimTime::from_millis(16),
                NodeId::new(3),
                GoCastEvent::PullServed {
                    id: MsgId::new(NodeId::new(0), 7),
                    to: NodeId::new(4),
                    hop: 2,
                },
            ),
            (
                SimTime::from_millis(17),
                NodeId::new(4),
                GoCastEvent::RedundantData {
                    id: MsgId::new(NodeId::new(0), 7),
                    from: NodeId::new(8),
                },
            ),
            (
                SimTime::from_millis(18),
                NodeId::new(5),
                GoCastEvent::LinkAdded {
                    peer: NodeId::new(6),
                    kind: LinkKind::Random,
                },
            ),
            (
                SimTime::from_millis(19),
                NodeId::new(5),
                GoCastEvent::LinkDropped {
                    peer: NodeId::new(6),
                    kind: LinkKind::Nearby,
                    reason: DropReason::Rebalanced,
                },
            ),
            (
                SimTime::from_millis(20),
                NodeId::new(5),
                GoCastEvent::ParentChanged {
                    parent: Some(NodeId::new(1)),
                },
            ),
            (
                SimTime::from_millis(21),
                NodeId::new(5),
                GoCastEvent::ParentChanged { parent: None },
            ),
            (
                SimTime::from_millis(22),
                NodeId::new(5),
                GoCastEvent::BecameRoot { epoch: 3 },
            ),
        ];
        let mut w = TraceRecorder::new(Vec::new());
        for (t, n, ev) in &events {
            w.record(*t, *n, ev.clone());
        }
        let text = String::from_utf8(w.finish().unwrap()).unwrap();
        let mut parsed = Vec::new();
        scan_trace(text.as_bytes(), |r| parsed.push(r)).unwrap();
        let expected: Vec<TraceRecord> = events
            .iter()
            .map(|(t, n, ev)| TraceRecord::from_event(*t, *n, ev))
            .collect();
        assert_eq!(parsed, expected);
    }

    #[test]
    fn proto_tag_parses_and_defaults_to_gocast() {
        // PR-2-era line without a proto field: defaults to gocast.
        let old = parse_line("{\"t_us\":1,\"node\":0,\"ev\":\"injected\",\"origin\":0,\"seq\":0}")
            .unwrap();
        assert_eq!(old.proto, ProtoTag::GoCast);
        // Tagged line round-trips the tag.
        let tagged = parse_line(
            "{\"t_us\":1,\"node\":0,\"proto\":\"plumtree\",\"ev\":\"injected\",\
             \"origin\":0,\"seq\":0}",
        )
        .unwrap();
        assert_eq!(tagged.proto, ProtoTag::Plumtree);
        assert_eq!(ProtoTag::parse(tagged.proto.name()), Some(tagged.proto));
        // Unknown tags are a schema error, not a silent default.
        assert!(parse_line(
            "{\"t_us\":1,\"node\":0,\"proto\":\"carrier-pigeon\",\"ev\":\"injected\",\
             \"origin\":0,\"seq\":0}"
        )
        .is_err());
    }

    #[test]
    fn universal_oracle_skips_stack_specific_checks() {
        let mut o = InvariantOracle::new(OracleConfig::universal());
        // A pull of a held message: GoCast-specific, skipped here.
        o.check(&rec(5, 0, TraceEv::Injected { origin: 0, seq: 0 }));
        o.check(&rec(
            9,
            0,
            TraceEv::PullRequested {
                origin: 0,
                seq: 0,
                to: 1,
            },
        ));
        // Degree churn past any plausible bound: also skipped.
        for peer in 0..50 {
            o.check(&rec(
                20,
                0,
                TraceEv::LinkAdded {
                    peer,
                    kind: LinkKind::Random,
                },
            ));
        }
        o.finish();
        assert!(o.is_clean(), "{:?}", o.violations());
        // The universal checks still fire.
        o.check(&rec(
            30,
            1,
            TraceEv::Delivered {
                origin: 9,
                seq: 9,
                from: 0,
                hop: 1,
                via: DeliveryPath::Tree,
            },
        ));
        assert_eq!(o.violations().len(), 1);
        assert_eq!(o.violations()[0].kind, ViolationKind::DeliveryBeforeSend);
    }

    #[test]
    fn with_caps_restricts_but_never_enables() {
        use gocast_sim::StackCaps;
        let base = OracleConfig::default();
        let capped = base.with_caps(&StackCaps {
            degree_bounds: false,
            pull_after_delivery: true,
            tree: false,
        });
        assert!(!capped.check_degree_bounds);
        assert!(capped.check_pull_after_delivery);
        let u = OracleConfig::universal().with_caps(&StackCaps::all());
        assert!(!u.check_degree_bounds && !u.check_pull_after_delivery);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse_line("not json").is_err());
        assert!(parse_line("{\"t_us\":1}").is_err()); // missing node/ev
        assert!(parse_line("{\"t_us\":1,\"node\":0,\"ev\":\"nope\"}").is_err());
        assert!(parse_line(
            "{\"t_us\":1,\"node\":0,\"ev\":\"delivered\",\"origin\":0,\"seq\":0,\
             \"from\":0,\"hop\":1,\"via\":\"teleport\"}"
        )
        .is_err());
        // Trailing garbage after the object.
        assert!(parse_line("{\"t_us\":1,\"node\":0,\"ev\":\"became_root\",\"epoch\":0}x").is_err());
    }

    #[test]
    fn reconstructs_a_simple_tree() {
        let mut a = TraceAnalysis::new();
        let m = (0u32, 0u32);
        a.feed(&rec(
            1_000,
            0,
            TraceEv::Injected {
                origin: m.0,
                seq: m.1,
            },
        ));
        a.feed(&rec(
            11_000,
            1,
            TraceEv::Delivered {
                origin: m.0,
                seq: m.1,
                from: 0,
                hop: 1,
                via: DeliveryPath::Tree,
            },
        ));
        a.feed(&rec(
            26_000,
            2,
            TraceEv::Delivered {
                origin: m.0,
                seq: m.1,
                from: 1,
                hop: 2,
                via: DeliveryPath::Tree,
            },
        ));
        a.feed(&rec(
            500_000,
            3,
            TraceEv::Delivered {
                origin: m.0,
                seq: m.1,
                from: 1,
                hop: 2,
                via: DeliveryPath::Pull,
            },
        ));
        let r = a.report();
        assert_eq!(r.messages, 1);
        assert_eq!(r.deliveries, 3);
        assert_eq!(r.tree_deliveries, 2);
        assert_eq!(r.pull_deliveries, 1);
        assert!(r.all_trees_reconstructed());
        assert_eq!(r.hop_histogram, vec![0, 1, 2]);
        assert!((r.recovery_fraction() - 1.0 / 3.0).abs() < 1e-12);
        assert!((r.mean_hops() - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(r.max_hop(), 2);
        // hop 1: 10ms; hop 2: (15ms + 489s... no: 26-11=15ms, 500-11=489ms)
        let h1 = r.per_hop_latency.iter().find(|p| p.hop == 1).unwrap();
        assert!((h1.mean_ms - 10.0).abs() < 1e-9);
        let h2 = r.per_hop_latency.iter().find(|p| p.hop == 2).unwrap();
        assert_eq!(h2.samples, 2);
        assert!((h2.mean_ms - (15.0 + 489.0) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn broken_causal_chain_is_not_reconstructed() {
        let mut a = TraceAnalysis::new();
        a.feed(&rec(0, 0, TraceEv::Injected { origin: 0, seq: 0 }));
        // Parent 7 never delivered.
        a.feed(&rec(
            10,
            1,
            TraceEv::Delivered {
                origin: 0,
                seq: 0,
                from: 7,
                hop: 2,
                via: DeliveryPath::Tree,
            },
        ));
        let r = a.report();
        assert_eq!(r.trees_reconstructed, 0);
        assert!(!r.all_trees_reconstructed());
    }

    #[test]
    fn oracle_accepts_a_clean_sequence() {
        let mut o = InvariantOracle::new(OracleConfig::default());
        o.check(&rec(5, 0, TraceEv::Injected { origin: 0, seq: 0 }));
        o.check(&rec(
            10,
            1,
            TraceEv::Delivered {
                origin: 0,
                seq: 0,
                from: 0,
                hop: 1,
                via: DeliveryPath::Tree,
            },
        ));
        o.check(&rec(
            12,
            2,
            TraceEv::PullRequested {
                origin: 0,
                seq: 0,
                to: 1,
            },
        ));
        assert!(o.is_clean(), "{:?}", o.violations());
        assert_eq!(o.records_checked(), 3);
    }

    #[test]
    fn oracle_flags_duplicate_and_early_delivery_and_bad_pull() {
        let mut o = InvariantOracle::new(OracleConfig::default());
        // Delivery before any injection.
        o.check(&rec(
            1,
            1,
            TraceEv::Delivered {
                origin: 0,
                seq: 0,
                from: 0,
                hop: 1,
                via: DeliveryPath::Tree,
            },
        ));
        o.check(&rec(5, 0, TraceEv::Injected { origin: 0, seq: 0 }));
        // Duplicate delivery.
        o.check(&rec(
            9,
            1,
            TraceEv::Delivered {
                origin: 0,
                seq: 0,
                from: 0,
                hop: 1,
                via: DeliveryPath::Pull,
            },
        ));
        // Pull for a message the node already holds.
        o.check(&rec(
            11,
            1,
            TraceEv::PullRequested {
                origin: 0,
                seq: 0,
                to: 0,
            },
        ));
        let kinds: Vec<ViolationKind> = o.violations().iter().map(|v| v.kind).collect();
        assert_eq!(
            kinds,
            vec![
                ViolationKind::DeliveryBeforeSend,
                ViolationKind::DuplicateDelivery,
                ViolationKind::PullAfterDelivery,
            ]
        );
    }

    #[test]
    fn oracle_enforces_degree_bounds_after_grace() {
        let cfg = OracleConfig {
            max_rand: 1,
            max_near: 2,
            degree_check_after_us: 10,
            ..OracleConfig::default()
        };
        let mut o = InvariantOracle::new(cfg);
        // Bootstrap links at t=0 may exceed the bound freely.
        for peer in 0..5 {
            o.check(&rec(
                0,
                1,
                TraceEv::LinkAdded {
                    peer,
                    kind: LinkKind::Nearby,
                },
            ));
        }
        assert!(o.is_clean());
        // Drops bring the degree back under the bound.
        for peer in 0..4 {
            o.check(&rec(
                20,
                1,
                TraceEv::LinkDropped {
                    peer,
                    kind: LinkKind::Nearby,
                    reason: DropReason::Surplus,
                },
            ));
        }
        // One more add is fine (2 ≤ 2) ...
        o.check(&rec(
            30,
            1,
            TraceEv::LinkAdded {
                peer: 9,
                kind: LinkKind::Nearby,
            },
        ));
        assert!(o.is_clean(), "{:?}", o.violations());
        // ... the next breaks the bound; it is only pending until the
        // clock moves past the instant (or the trace ends) with no
        // restoring drop.
        o.check(&rec(
            31,
            1,
            TraceEv::LinkAdded {
                peer: 10,
                kind: LinkKind::Nearby,
            },
        ));
        assert!(o.is_clean(), "same-instant drop could still arrive");
        o.finish();
        assert_eq!(o.violations().len(), 1);
        assert_eq!(o.violations()[0].kind, ViolationKind::DegreeBound);
        assert_eq!(o.violations()[0].t_us, 31);
    }

    #[test]
    fn make_before_break_replacement_is_not_a_violation() {
        let cfg = OracleConfig {
            max_rand: 1,
            max_near: 2,
            degree_check_after_us: 1,
            ..OracleConfig::default()
        };
        let mut o = InvariantOracle::new(cfg);
        for peer in 0..2 {
            o.check(&rec(
                10,
                1,
                TraceEv::LinkAdded {
                    peer,
                    kind: LinkKind::Nearby,
                },
            ));
        }
        // Replacement: the new link lands before the victim is dropped,
        // both at the same instant — the protocol's on_link_accept path.
        o.check(&rec(
            20,
            1,
            TraceEv::LinkAdded {
                peer: 5,
                kind: LinkKind::Nearby,
            },
        ));
        o.check(&rec(
            20,
            1,
            TraceEv::LinkDropped {
                peer: 0,
                kind: LinkKind::Nearby,
                reason: DropReason::Replaced,
            },
        ));
        // Later activity moves the clock forward; nothing should flush.
        o.check(&rec(99, 2, TraceEv::Injected { origin: 2, seq: 0 }));
        o.finish();
        assert!(o.is_clean(), "{:?}", o.violations());
        // A drop *after* the instant does not forgive: overshoot at 30,
        // drop only at 40.
        o.check(&rec(
            30,
            1,
            TraceEv::LinkAdded {
                peer: 6,
                kind: LinkKind::Nearby,
            },
        ));
        o.check(&rec(
            40,
            1,
            TraceEv::LinkDropped {
                peer: 6,
                kind: LinkKind::Nearby,
                reason: DropReason::Surplus,
            },
        ));
        o.finish();
        assert_eq!(o.violations().len(), 1);
        assert_eq!(o.violations()[0].kind, ViolationKind::DegreeBound);
        assert_eq!(o.violations()[0].t_us, 30);
    }
}
