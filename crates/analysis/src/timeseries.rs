//! Windowed event-rate time series.
//!
//! [`TimeSeriesRecorder`] is a streaming [`Recorder`] that counts the
//! events a predicate selects, bucketed by fixed windows of simulation
//! time. Memory is O(elapsed sim time / window) — independent of event
//! volume — which makes it the right tool for link-churn and traffic-rate
//! plots over long runs (the paper's Figure 5 series).

use std::time::Duration;

use gocast_sim::{NodeId, Recorder, SimTime};

/// Counts selected events per fixed window of simulation time.
///
/// ```
/// use gocast_analysis::TimeSeriesRecorder;
/// use gocast_sim::{NodeId, Recorder, SimTime};
/// use std::time::Duration;
///
/// // Count odd-valued events in 1-second windows.
/// let mut ts = TimeSeriesRecorder::new(Duration::from_secs(1), |_, _, v: &u32| v % 2 == 1);
/// ts.record(SimTime::from_millis(100), NodeId::new(0), 1u32);
/// ts.record(SimTime::from_millis(200), NodeId::new(0), 2); // filtered out
/// ts.record(SimTime::from_millis(1500), NodeId::new(1), 3);
/// assert_eq!(ts.series(), &[1, 1]);
/// ```
#[derive(Debug, Clone)]
pub struct TimeSeriesRecorder<F> {
    window_nanos: u64,
    buckets: Vec<u64>,
    select: F,
}

impl<F> TimeSeriesRecorder<F> {
    /// Creates a recorder counting events selected by `select` in windows
    /// of length `window`.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: Duration, select: F) -> Self {
        let window_nanos = window.as_nanos().min(u64::MAX as u128) as u64;
        assert!(window_nanos > 0, "window must be non-zero");
        TimeSeriesRecorder {
            window_nanos,
            buckets: Vec::new(),
            select,
        }
    }

    /// The window length.
    pub fn window(&self) -> Duration {
        Duration::from_nanos(self.window_nanos)
    }

    /// Event counts per window, from sim time zero. Trailing windows with
    /// no selected events are absent, not zero.
    pub fn series(&self) -> &[u64] {
        &self.buckets
    }

    /// Per-second rates for each window (`count / window_secs`).
    pub fn rates(&self) -> Vec<f64> {
        let secs = Duration::from_nanos(self.window_nanos).as_secs_f64();
        self.buckets.iter().map(|&c| c as f64 / secs).collect()
    }

    /// Total selected events across all windows.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }
}

impl<E, F: FnMut(SimTime, NodeId, &E) -> bool> Recorder<E> for TimeSeriesRecorder<F> {
    fn record(&mut self, now: SimTime, node: NodeId, event: E) {
        if (self.select)(now, node, &event) {
            let idx = (now.as_nanos() / self.window_nanos) as usize;
            if self.buckets.len() <= idx {
                self.buckets.resize(idx + 1, 0);
            }
            self.buckets[idx] += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_by_window_and_filters() {
        let mut ts = TimeSeriesRecorder::new(Duration::from_millis(500), |_, _, v: &u32| *v > 10);
        ts.record(SimTime::from_millis(0), NodeId::new(0), 99u32);
        ts.record(SimTime::from_millis(499), NodeId::new(0), 11);
        ts.record(SimTime::from_millis(499), NodeId::new(0), 5); // filtered
        ts.record(SimTime::from_millis(1400), NodeId::new(0), 50);
        assert_eq!(ts.series(), &[2, 0, 1]);
        assert_eq!(ts.total(), 3);
        assert_eq!(ts.rates(), vec![4.0, 0.0, 2.0]);
        assert_eq!(ts.window(), Duration::from_millis(500));
    }

    #[test]
    fn empty_series_until_first_selected_event() {
        let mut ts = TimeSeriesRecorder::new(Duration::from_secs(1), |_, _, _: &u8| false);
        ts.record(SimTime::from_secs(10), NodeId::new(0), 1u8);
        assert!(ts.series().is_empty());
        assert_eq!(ts.total(), 0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_window_panics() {
        let _ = TimeSeriesRecorder::new(Duration::ZERO, |_: SimTime, _: NodeId, _: &u8| true);
    }
}
