//! Streaming delivery metrics.
//!
//! Two layers, both implementing [`Recorder<GoCastEvent>`] and both
//! memory-bounded:
//!
//! - [`DeliveryTracker`] folds delivery events into per-node latency
//!   aggregates, an all-delays [`DelayHistogram`], and redundancy / pull
//!   counters as the simulation runs. State is O(nodes + messages)
//!   (messages only for injection timestamps), never O(deliveries).
//! - [`MetricsRecorder`] composes a `DeliveryTracker` with a 1-second
//!   [`TimeSeriesRecorder`] for link churn — everything the paper's
//!   figures need from one run, in one recorder.
//!
//! They produce exactly the quantities the paper's figures plot:
//!
//! - per-(node, message) delivery delays and their distribution
//!   (Figures 3, 4);
//! - per-node *average* delay and completeness (nodes that missed a
//!   message are reported separately — the reason the paper's gossip
//!   curves saturate below 1.0);
//! - redundancy (§2.1's 1.02 factor) and pull counts;
//! - link-churn and parent-change time series (Figure 5, §3 summary (1)).
//!
//! ## Migration from buffered recording
//!
//! `MetricsRecorder` used to keep every (node, message) delay in a
//! `Vec<Duration>` to serve `delay_cdf()` — O(deliveries) memory, ~67 MB
//! for the paper's 8,192-node x 1,000-message configuration. That method
//! is replaced by [`MetricsRecorder::delay_histogram`], which answers the
//! same percentile / mean / max queries from a fixed-size log-scale
//! histogram (exact mean/min/max, ≈3% percentile error). The per-node
//! averages behind the figure CSVs were always exact O(nodes) math and
//! are unchanged — figure output is byte-identical. If a test needs the
//! raw event stream, record into a `VecRecorder` (optionally `.tee(..)`'d
//! with a tracker) — see `gocast_sim::recorder`.

use std::collections::HashMap;
use std::time::Duration;

use gocast::{GoCastEvent, MsgId};
use gocast_sim::{NodeId, Recorder, SimTime};

use crate::stats::{Cdf, DelayHistogram};
use crate::timeseries::TimeSeriesRecorder;

#[derive(Debug, Clone, Copy, Default)]
struct NodeAgg {
    delay_sum: Duration,
    received: u64,
    /// Messages this node originated (it trivially "has" them at delay 0).
    originated: u64,
    max_delay: Duration,
}

/// Streaming per-node delivery aggregation.
///
/// Holds O(nodes + messages) state regardless of how many deliveries the
/// run produces; every statistic is folded in online via
/// [`Recorder::record`].
#[derive(Debug, Default)]
pub struct DeliveryTracker {
    inject_time: HashMap<MsgId, SimTime>,
    per_node: Vec<NodeAgg>,
    delays: DelayHistogram,
    injected: u64,
    delivered: u64,
    redundant: u64,
    pulls: u64,
    delivered_via_tree: u64,
    parent_changes: u64,
    root_takeovers: u64,
}

impl DeliveryTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        DeliveryTracker::default()
    }

    fn node_mut(&mut self, node: NodeId) -> &mut NodeAgg {
        let i = node.index();
        if self.per_node.len() <= i {
            self.per_node.resize(i + 1, NodeAgg::default());
        }
        &mut self.per_node[i]
    }

    /// Number of messages injected.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Total first deliveries across nodes.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Redundant full-payload receptions.
    pub fn redundant(&self) -> u64 {
        self.redundant
    }

    /// Average number of times a node received each message
    /// (`1 + redundant/delivered`; the paper reports 1.02).
    pub fn redundancy_factor(&self) -> f64 {
        if self.delivered == 0 {
            return 0.0;
        }
        1.0 + self.redundant as f64 / self.delivered as f64
    }

    /// Fraction of deliveries that arrived over a tree link.
    pub fn tree_fraction(&self) -> f64 {
        if self.delivered == 0 {
            return 0.0;
        }
        self.delivered_via_tree as f64 / self.delivered as f64
    }

    /// Pull requests issued.
    pub fn pulls(&self) -> u64 {
        self.pulls
    }

    /// Tree parent changes observed.
    pub fn parent_changes(&self) -> u64 {
        self.parent_changes
    }

    /// Root takeovers observed (failovers; the initial root counts once).
    pub fn root_takeovers(&self) -> u64 {
        self.root_takeovers
    }

    /// Streaming distribution over every (node, message) delivery delay.
    ///
    /// Exact `len`/`mean`/`min`/`max`; percentiles within ≈3% (see
    /// [`DelayHistogram`]).
    pub fn delay_histogram(&self) -> &DelayHistogram {
        &self.delays
    }

    /// Per-node average delivery delay (the paper's Figure 3 metric).
    ///
    /// Every node that received at least one message contributes the
    /// average delay over the messages it *did* receive; the second return
    /// value counts nodes that missed at least one of the `expected`
    /// messages (self-originated messages count as obtained) — the reason
    /// the paper's gossip curves saturate below 1.0.
    ///
    /// This is exact O(nodes) math on streamed sums, so the figure CSVs
    /// built from it are byte-identical to post-hoc computation.
    pub fn per_node_average_delays(&self, expected: u64, nodes: &[NodeId]) -> (Cdf, usize) {
        let mut avgs = Vec::new();
        let mut incomplete = 0;
        for &id in nodes {
            let agg = self.per_node.get(id.index()).copied().unwrap_or_default();
            if agg.received + agg.originated < expected || expected == 0 {
                incomplete += 1;
            }
            if agg.received > 0 {
                avgs.push(agg.delay_sum / agg.received as u32);
            }
        }
        (Cdf::from_durations(avgs), incomplete)
    }

    /// Messages received by `node`.
    pub fn received_by(&self, node: NodeId) -> u64 {
        self.per_node
            .get(node.index())
            .map(|a| a.received)
            .unwrap_or(0)
    }
}

impl Recorder<GoCastEvent> for DeliveryTracker {
    fn record(&mut self, now: SimTime, node: NodeId, event: GoCastEvent) {
        match event {
            GoCastEvent::Injected { id } => {
                self.injected += 1;
                self.inject_time.insert(id, now);
                self.node_mut(node).originated += 1;
            }
            GoCastEvent::Delivered { id, via, .. } => {
                self.delivered += 1;
                if via == gocast::DeliveryPath::Tree {
                    self.delivered_via_tree += 1;
                }
                if let Some(&t0) = self.inject_time.get(&id) {
                    let delay = now.saturating_since(t0);
                    self.delays.add(delay);
                    let agg = self.node_mut(node);
                    agg.delay_sum += delay;
                    agg.received += 1;
                    agg.max_delay = agg.max_delay.max(delay);
                }
            }
            GoCastEvent::RedundantData { .. } => self.redundant += 1,
            GoCastEvent::PullRequested { .. } => self.pulls += 1,
            GoCastEvent::ParentChanged { .. } => self.parent_changes += 1,
            GoCastEvent::BecameRoot { .. } => self.root_takeovers += 1,
            GoCastEvent::LinkAdded { .. }
            | GoCastEvent::LinkDropped { .. }
            | GoCastEvent::PushSent { .. }
            | GoCastEvent::IHaveSent { .. }
            | GoCastEvent::PullServed { .. } => {}
        }
    }
}

fn is_link_change(_now: SimTime, _node: NodeId, event: &GoCastEvent) -> bool {
    matches!(
        event,
        GoCastEvent::LinkAdded { .. } | GoCastEvent::LinkDropped { .. }
    )
}

/// The selector type behind [`MetricsRecorder`]'s link-churn series.
pub type LinkChurnSelect = fn(SimTime, NodeId, &GoCastEvent) -> bool;

/// Everything the paper's figures need from one run: a
/// [`DeliveryTracker`] composed with a 1-second link-churn
/// [`TimeSeriesRecorder`].
///
/// Peak recorder state is O(nodes + messages + seconds of sim time).
#[derive(Debug)]
pub struct MetricsRecorder {
    delivery: DeliveryTracker,
    link_churn: TimeSeriesRecorder<LinkChurnSelect>,
}

impl Default for MetricsRecorder {
    fn default() -> Self {
        MetricsRecorder {
            delivery: DeliveryTracker::new(),
            link_churn: TimeSeriesRecorder::new(Duration::from_secs(1), is_link_change),
        }
    }
}

impl MetricsRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        MetricsRecorder::default()
    }

    /// The delivery-side aggregates.
    pub fn delivery(&self) -> &DeliveryTracker {
        &self.delivery
    }

    /// The link-churn time series (1-second windows).
    pub fn link_churn(&self) -> &TimeSeriesRecorder<LinkChurnSelect> {
        &self.link_churn
    }

    /// Number of messages injected.
    pub fn injected(&self) -> u64 {
        self.delivery.injected()
    }

    /// Total first deliveries across nodes.
    pub fn delivered(&self) -> u64 {
        self.delivery.delivered()
    }

    /// Redundant full-payload receptions.
    pub fn redundant(&self) -> u64 {
        self.delivery.redundant()
    }

    /// Average number of times a node received each message
    /// (`1 + redundant/delivered`; the paper reports 1.02).
    pub fn redundancy_factor(&self) -> f64 {
        self.delivery.redundancy_factor()
    }

    /// Fraction of deliveries that arrived over a tree link.
    pub fn tree_fraction(&self) -> f64 {
        self.delivery.tree_fraction()
    }

    /// Pull requests issued.
    pub fn pulls(&self) -> u64 {
        self.delivery.pulls()
    }

    /// Tree parent changes observed.
    pub fn parent_changes(&self) -> u64 {
        self.delivery.parent_changes()
    }

    /// Root takeovers observed (failovers; the initial root counts once).
    pub fn root_takeovers(&self) -> u64 {
        self.delivery.root_takeovers()
    }

    /// Streaming distribution over every (node, message) delivery delay
    /// (replaces the former `delay_cdf()` — see the "migration from
    /// buffered recording" notes at the top of this source file).
    pub fn delay_histogram(&self) -> &DelayHistogram {
        self.delivery.delay_histogram()
    }

    /// Per-node average delivery delay — see
    /// [`DeliveryTracker::per_node_average_delays`].
    pub fn per_node_average_delays(&self, expected: u64, nodes: &[NodeId]) -> (Cdf, usize) {
        self.delivery.per_node_average_delays(expected, nodes)
    }

    /// Messages received by `node`.
    pub fn received_by(&self, node: NodeId) -> u64 {
        self.delivery.received_by(node)
    }

    /// Link changes (adds + drops, summed over nodes — each endpoint
    /// counts) bucketed per second.
    pub fn link_changes_per_sec(&self) -> &[u64] {
        self.link_churn.series()
    }
}

impl Recorder<GoCastEvent> for MetricsRecorder {
    fn record(&mut self, now: SimTime, node: NodeId, event: GoCastEvent) {
        self.link_churn.record(now, node, event.clone());
        self.delivery.record(now, node, event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gocast::DeliveryPath;

    fn id(seq: u32) -> MsgId {
        MsgId::new(NodeId::new(0), seq)
    }

    #[test]
    fn tracks_delays_and_redundancy() {
        let mut m = MetricsRecorder::new();
        m.record(
            SimTime::from_millis(0),
            NodeId::new(0),
            GoCastEvent::Injected { id: id(1) },
        );
        m.record(
            SimTime::from_millis(50),
            NodeId::new(1),
            GoCastEvent::Delivered {
                id: id(1),
                via: DeliveryPath::Tree,
                from: NodeId::new(0),
                hop: 1,
            },
        );
        m.record(
            SimTime::from_millis(150),
            NodeId::new(2),
            GoCastEvent::Delivered {
                id: id(1),
                via: DeliveryPath::Pull,
                from: NodeId::new(1),
                hop: 2,
            },
        );
        m.record(
            SimTime::from_millis(160),
            NodeId::new(2),
            GoCastEvent::RedundantData {
                id: id(1),
                from: NodeId::new(0),
            },
        );
        assert_eq!(m.injected(), 1);
        assert_eq!(m.delivered(), 2);
        assert_eq!(m.redundant(), 1);
        assert!((m.redundancy_factor() - 1.5).abs() < 1e-12);
        assert!((m.tree_fraction() - 0.5).abs() < 1e-12);
        let h = m.delay_histogram();
        assert_eq!(h.len(), 2);
        assert_eq!(h.max(), Duration::from_millis(150));
    }

    #[test]
    fn per_node_average_and_completeness() {
        let mut m = MetricsRecorder::new();
        for seq in 0..2 {
            m.record(
                SimTime::ZERO,
                NodeId::new(0),
                GoCastEvent::Injected { id: id(seq) },
            );
        }
        // Node 1 receives both; node 2 only one.
        for (seq, ms) in [(0, 10u64), (1, 30)] {
            m.record(
                SimTime::from_millis(ms),
                NodeId::new(1),
                GoCastEvent::Delivered {
                    id: id(seq),
                    via: DeliveryPath::Tree,
                    from: NodeId::new(0),
                    hop: 1,
                },
            );
        }
        m.record(
            SimTime::from_millis(40),
            NodeId::new(2),
            GoCastEvent::Delivered {
                id: id(0),
                via: DeliveryPath::Tree,
                from: NodeId::new(0),
                hop: 1,
            },
        );
        let nodes = [NodeId::new(1), NodeId::new(2)];
        let (cdf, incomplete) = m.per_node_average_delays(2, &nodes);
        assert_eq!(incomplete, 1, "node 2 missed one message");
        assert_eq!(cdf.len(), 2, "both nodes contribute an average");
        assert_eq!(cdf.min(), Duration::from_millis(20)); // node 1: (10+30)/2
        assert_eq!(cdf.max(), Duration::from_millis(40)); // node 2: 40/1
        assert_eq!(m.received_by(NodeId::new(2)), 1);
    }

    #[test]
    fn link_churn_buckets_by_second() {
        let mut m = MetricsRecorder::new();
        for t in [0u64, 300, 1700] {
            m.record(
                SimTime::from_millis(t),
                NodeId::new(0),
                GoCastEvent::LinkAdded {
                    peer: NodeId::new(1),
                    kind: gocast::LinkKind::Random,
                },
            );
        }
        assert_eq!(m.link_changes_per_sec(), &[2, 1]);
        assert_eq!(m.link_churn().total(), 3);
        // Link events don't leak into the delivery tracker.
        assert_eq!(m.delivery().injected(), 0);
    }

    #[test]
    fn empty_recorder_is_sane() {
        let m = MetricsRecorder::new();
        assert_eq!(m.redundancy_factor(), 0.0);
        assert_eq!(m.tree_fraction(), 0.0);
        assert!(m.delay_histogram().is_empty());
    }

    #[test]
    fn standalone_tracker_matches_composite() {
        let mut t = DeliveryTracker::new();
        let mut m = MetricsRecorder::new();
        let events = [
            (0u64, 0u32, GoCastEvent::Injected { id: id(0) }),
            (
                25,
                1,
                GoCastEvent::Delivered {
                    id: id(0),
                    via: DeliveryPath::Tree,
                    from: NodeId::new(0),
                    hop: 1,
                },
            ),
            (
                30,
                2,
                GoCastEvent::Delivered {
                    id: id(0),
                    via: DeliveryPath::Pull,
                    from: NodeId::new(1),
                    hop: 2,
                },
            ),
        ];
        for (ms, node, ev) in events {
            t.record(SimTime::from_millis(ms), NodeId::new(node), ev.clone());
            m.record(SimTime::from_millis(ms), NodeId::new(node), ev);
        }
        assert_eq!(t.delivered(), m.delivered());
        assert_eq!(t.delay_histogram().mean(), m.delay_histogram().mean());
        assert_eq!(t.tree_fraction(), m.tree_fraction());
    }
}
