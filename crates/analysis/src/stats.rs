//! Distribution statistics: percentiles, means, CDF sampling.

use std::time::Duration;

/// An empirical distribution over durations (delivery delays, link
/// latencies, ...).
///
/// ```
/// use gocast_analysis::Cdf;
/// use std::time::Duration;
///
/// let cdf = Cdf::from_durations((1..=100).map(Duration::from_millis));
/// assert_eq!(cdf.percentile(0.5), Duration::from_millis(50));
/// assert_eq!(cdf.max(), Duration::from_millis(100));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Cdf {
    sorted: Vec<Duration>,
}

impl Cdf {
    /// Builds from any collection of durations.
    pub fn from_durations<I: IntoIterator<Item = Duration>>(values: I) -> Self {
        let mut sorted: Vec<Duration> = values.into_iter().collect();
        sorted.sort_unstable();
        Cdf { sorted }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether there are no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The `p`-quantile (`0.0 ..= 1.0`), nearest-rank.
    ///
    /// # Panics
    ///
    /// Panics if the distribution is empty or `p` is outside `[0, 1]`.
    pub fn percentile(&self, p: f64) -> Duration {
        assert!(!self.sorted.is_empty(), "empty distribution");
        assert!((0.0..=1.0).contains(&p), "quantile out of range");
        let idx = ((self.sorted.len() as f64 * p).ceil() as usize)
            .saturating_sub(1)
            .min(self.sorted.len() - 1);
        self.sorted[idx]
    }

    /// Arithmetic mean.
    ///
    /// # Panics
    ///
    /// Panics if empty.
    pub fn mean(&self) -> Duration {
        assert!(!self.sorted.is_empty(), "empty distribution");
        let sum: Duration = self.sorted.iter().sum();
        sum / self.sorted.len() as u32
    }

    /// Largest sample.
    ///
    /// # Panics
    ///
    /// Panics if empty.
    pub fn max(&self) -> Duration {
        *self.sorted.last().expect("empty distribution")
    }

    /// Smallest sample.
    ///
    /// # Panics
    ///
    /// Panics if empty.
    pub fn min(&self) -> Duration {
        *self.sorted.first().expect("empty distribution")
    }

    /// The fraction of samples `<= x`.
    pub fn fraction_below(&self, x: Duration) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Samples `k` evenly spaced `(value, cumulative fraction)` points —
    /// the series a CDF figure plots.
    pub fn curve(&self, k: usize) -> Vec<(Duration, f64)> {
        if self.sorted.is_empty() || k == 0 {
            return Vec::new();
        }
        let n = self.sorted.len();
        (1..=k)
            .map(|i| {
                let idx = (n * i / k).saturating_sub(1).min(n - 1);
                (self.sorted[idx], (idx + 1) as f64 / n as f64)
            })
            .collect()
    }
}

/// Summary statistics over scalar samples (used by multi-seed sweeps).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n-1 denominator; 0 for a single sample).
    pub std: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Number of samples.
    pub n: usize,
}

impl Summary {
    /// Computes summary statistics.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn from_values(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "empty sample set");
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        Summary {
            mean,
            std: var.sqrt(),
            min: values.iter().copied().fold(f64::INFINITY, f64::min),
            max: values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            n,
        }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.4} ± {:.4} (min {:.4}, max {:.4}, n = {})",
            self.mean, self.std, self.min, self.max, self.n
        )
    }
}

/// A histogram over small integer values (node degrees).
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Builds from integer samples.
    pub fn from_values<I: IntoIterator<Item = usize>>(values: I) -> Self {
        let mut h = Histogram::default();
        for v in values {
            if h.counts.len() <= v {
                h.counts.resize(v + 1, 0);
            }
            h.counts[v] += 1;
            h.total += 1;
        }
        h
    }

    /// Number of samples equal to `v`.
    pub fn count(&self, v: usize) -> u64 {
        self.counts.get(v).copied().unwrap_or(0)
    }

    /// Fraction of samples equal to `v`.
    pub fn fraction(&self, v: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.count(v) as f64 / self.total as f64
        }
    }

    /// Fraction of samples `<= v` (the CDF the paper's Figure 5(a) plots).
    pub fn cumulative_fraction(&self, v: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let c: u64 = self.counts.iter().take(v + 1).sum();
        c as f64 / self.total as f64
    }

    /// Total samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Mean value.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let sum: u64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(v, &c)| v as u64 * c)
            .sum();
        sum as f64 / self.total as f64
    }

    /// Largest observed value.
    pub fn max_value(&self) -> usize {
        self.counts.len().saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn percentiles_nearest_rank() {
        let c = Cdf::from_durations([ms(10), ms(20), ms(30), ms(40)]);
        assert_eq!(c.percentile(0.0), ms(10));
        assert_eq!(c.percentile(0.25), ms(10));
        assert_eq!(c.percentile(0.5), ms(20));
        assert_eq!(c.percentile(0.75), ms(30));
        assert_eq!(c.percentile(1.0), ms(40));
        assert_eq!(c.min(), ms(10));
        assert_eq!(c.max(), ms(40));
        assert_eq!(c.mean(), ms(25));
    }

    #[test]
    fn fraction_below_counts_inclusive() {
        let c = Cdf::from_durations([ms(10), ms(20), ms(30)]);
        assert_eq!(c.fraction_below(ms(5)), 0.0);
        assert!((c.fraction_below(ms(10)) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(c.fraction_below(ms(30)), 1.0);
    }

    #[test]
    fn curve_is_monotone_and_ends_at_one() {
        let c = Cdf::from_durations((1..=57).map(ms));
        let pts = c.curve(10);
        assert_eq!(pts.len(), 10);
        for w in pts.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        assert!((pts.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_cdf_behaviour() {
        let c = Cdf::default();
        assert!(c.is_empty());
        assert_eq!(c.fraction_below(ms(1)), 0.0);
        assert!(c.curve(5).is_empty());
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_percentile_panics() {
        let _ = Cdf::default().percentile(0.5);
    }

    #[test]
    fn summary_statistics() {
        let s = Summary::from_values(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.mean, 2.5);
        assert!((s.std - 1.2909944).abs() < 1e-6);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.n, 4);
        let single = Summary::from_values(&[7.0]);
        assert_eq!(single.std, 0.0);
        assert!(single.to_string().contains("n = 1"));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn summary_rejects_empty() {
        let _ = Summary::from_values(&[]);
    }

    #[test]
    fn histogram_fractions() {
        let h = Histogram::from_values([6, 6, 6, 7, 5, 6]);
        assert_eq!(h.total(), 6);
        assert_eq!(h.count(6), 4);
        assert!((h.fraction(6) - 4.0 / 6.0).abs() < 1e-12);
        assert!((h.cumulative_fraction(6) - 5.0 / 6.0).abs() < 1e-12);
        assert!((h.mean() - 36.0 / 6.0).abs() < 1e-12);
        assert_eq!(h.max_value(), 7);
        assert_eq!(h.count(99), 0);
    }
}
