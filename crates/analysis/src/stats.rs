//! Distribution statistics: percentiles, means, CDF sampling.

use std::time::Duration;

/// An empirical distribution over durations (delivery delays, link
/// latencies, ...).
///
/// ```
/// use gocast_analysis::Cdf;
/// use std::time::Duration;
///
/// let cdf = Cdf::from_durations((1..=100).map(Duration::from_millis));
/// assert_eq!(cdf.percentile(0.5), Duration::from_millis(50));
/// assert_eq!(cdf.max(), Duration::from_millis(100));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Cdf {
    sorted: Vec<Duration>,
}

impl Cdf {
    /// Builds from any collection of durations.
    pub fn from_durations<I: IntoIterator<Item = Duration>>(values: I) -> Self {
        let mut sorted: Vec<Duration> = values.into_iter().collect();
        sorted.sort_unstable();
        Cdf { sorted }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether there are no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The `p`-quantile (`0.0 ..= 1.0`), nearest-rank.
    ///
    /// # Panics
    ///
    /// Panics if the distribution is empty or `p` is outside `[0, 1]`.
    pub fn percentile(&self, p: f64) -> Duration {
        assert!(!self.sorted.is_empty(), "empty distribution");
        assert!((0.0..=1.0).contains(&p), "quantile out of range");
        let idx = ((self.sorted.len() as f64 * p).ceil() as usize)
            .saturating_sub(1)
            .min(self.sorted.len() - 1);
        self.sorted[idx]
    }

    /// Arithmetic mean.
    ///
    /// # Panics
    ///
    /// Panics if empty.
    pub fn mean(&self) -> Duration {
        assert!(!self.sorted.is_empty(), "empty distribution");
        let sum: Duration = self.sorted.iter().sum();
        sum / self.sorted.len() as u32
    }

    /// Largest sample.
    ///
    /// # Panics
    ///
    /// Panics if empty.
    pub fn max(&self) -> Duration {
        *self.sorted.last().expect("empty distribution")
    }

    /// Smallest sample.
    ///
    /// # Panics
    ///
    /// Panics if empty.
    pub fn min(&self) -> Duration {
        *self.sorted.first().expect("empty distribution")
    }

    /// The fraction of samples `<= x`.
    pub fn fraction_below(&self, x: Duration) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Samples `k` evenly spaced `(value, cumulative fraction)` points —
    /// the series a CDF figure plots.
    pub fn curve(&self, k: usize) -> Vec<(Duration, f64)> {
        if self.sorted.is_empty() || k == 0 {
            return Vec::new();
        }
        let n = self.sorted.len();
        (1..=k)
            .map(|i| {
                let idx = (n * i / k).saturating_sub(1).min(n - 1);
                (self.sorted[idx], (idx + 1) as f64 / n as f64)
            })
            .collect()
    }
}

/// A streaming duration distribution with bounded memory.
///
/// Replaces "collect every delay into a [`Cdf`]" for experiment-scale
/// runs: instead of O(samples) storage it keeps exact count / sum / min /
/// max plus a fixed-size log-scale histogram (32 sub-buckets per octave,
/// at most 1,920 buckets total — a few KiB regardless of run length).
///
/// Exactness contract:
///
/// - [`len`](Self::len), [`mean`](Self::mean), [`min`](Self::min) and
///   [`max`](Self::max) are **exact** (mean uses the same `sum / n`
///   rounding as [`Cdf::mean`]);
/// - [`percentile`](Self::percentile) is nearest-rank over the histogram:
///   values below 64 ns are exact, larger values are off by at most one
///   sub-bucket (≈ 3% relative error), and the result is clamped to the
///   exact `[min, max]` range so `percentile(0.0)` / `percentile(1.0)`
///   are exact.
///
/// ```
/// use gocast_analysis::DelayHistogram;
/// use std::time::Duration;
///
/// let mut h = DelayHistogram::new();
/// for ms in 1..=100u64 {
///     h.add(Duration::from_millis(ms));
/// }
/// assert_eq!(h.len(), 100);
/// assert_eq!(h.max(), Duration::from_millis(100));
/// let p50 = h.percentile(0.5).as_secs_f64();
/// assert!((p50 - 0.050).abs() / 0.050 < 0.04);
/// ```
#[derive(Debug, Clone, Default)]
pub struct DelayHistogram {
    counts: Vec<u64>,
    len: u64,
    sum: Duration,
    min: Duration,
    max: Duration,
}

/// Sub-bucket resolution: 2^5 = 32 buckets per octave.
const SUB_BITS: u32 = 5;

fn bucket_of(nanos: u64) -> usize {
    if nanos < (1 << (SUB_BITS + 1)) {
        return nanos as usize; // exact below 64 ns
    }
    let exp = 63 - nanos.leading_zeros();
    let sub = ((nanos >> (exp - SUB_BITS)) & ((1 << SUB_BITS) - 1)) as usize;
    (((exp - SUB_BITS + 1) as usize) << SUB_BITS) | sub
}

fn bucket_midpoint(bucket: usize) -> u64 {
    if bucket < (1 << (SUB_BITS + 1)) {
        return bucket as u64;
    }
    let block = (bucket >> SUB_BITS) as u32;
    let sub = (bucket & ((1 << SUB_BITS) - 1)) as u64;
    let exp = block + SUB_BITS - 1;
    let lo = (1u64 << exp) | (sub << (exp - SUB_BITS));
    lo + (1u64 << (exp - SUB_BITS)) / 2
}

impl DelayHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        DelayHistogram::default()
    }

    /// Folds one sample in. O(1); never allocates beyond the fixed bucket
    /// table.
    pub fn add(&mut self, d: Duration) {
        let bucket = bucket_of(d.as_nanos().min(u64::MAX as u128) as u64);
        if self.counts.len() <= bucket {
            self.counts.resize(bucket + 1, 0);
        }
        self.counts[bucket] += 1;
        self.sum += d;
        if self.len == 0 {
            self.min = d;
            self.max = d;
        } else {
            self.min = self.min.min(d);
            self.max = self.max.max(d);
        }
        self.len += 1;
    }

    /// Number of samples folded in.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether no samples were folded in.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Exact arithmetic mean (same rounding as [`Cdf::mean`]).
    ///
    /// # Panics
    ///
    /// Panics if empty.
    pub fn mean(&self) -> Duration {
        assert!(self.len > 0, "empty distribution");
        self.sum / self.len as u32
    }

    /// Exact largest sample.
    ///
    /// # Panics
    ///
    /// Panics if empty.
    pub fn max(&self) -> Duration {
        assert!(self.len > 0, "empty distribution");
        self.max
    }

    /// Exact smallest sample.
    ///
    /// # Panics
    ///
    /// Panics if empty.
    pub fn min(&self) -> Duration {
        assert!(self.len > 0, "empty distribution");
        self.min
    }

    /// The `p`-quantile (`0.0 ..= 1.0`), nearest-rank over the histogram
    /// buckets (≈ 3% relative error; see the type docs).
    ///
    /// # Panics
    ///
    /// Panics if the distribution is empty or `p` is outside `[0, 1]`.
    pub fn percentile(&self, p: f64) -> Duration {
        assert!(self.len > 0, "empty distribution");
        assert!((0.0..=1.0).contains(&p), "quantile out of range");
        if p == 0.0 {
            return self.min;
        }
        if p == 1.0 {
            return self.max;
        }
        let target = ((self.len as f64 * p).ceil() as u64).clamp(1, self.len);
        let mut cum = 0u64;
        for (bucket, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                let approx = Duration::from_nanos(bucket_midpoint(bucket));
                return approx.clamp(self.min, self.max);
            }
        }
        self.max
    }
}

/// Summary statistics over scalar samples (used by multi-seed sweeps).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n-1 denominator; 0 for a single sample).
    pub std: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Number of samples.
    pub n: usize,
}

impl Summary {
    /// Computes summary statistics.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn from_values(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "empty sample set");
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        Summary {
            mean,
            std: var.sqrt(),
            min: values.iter().copied().fold(f64::INFINITY, f64::min),
            max: values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            n,
        }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.4} ± {:.4} (min {:.4}, max {:.4}, n = {})",
            self.mean, self.std, self.min, self.max, self.n
        )
    }
}

/// A histogram over small integer values (node degrees).
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Builds from integer samples.
    pub fn from_values<I: IntoIterator<Item = usize>>(values: I) -> Self {
        let mut h = Histogram::default();
        for v in values {
            if h.counts.len() <= v {
                h.counts.resize(v + 1, 0);
            }
            h.counts[v] += 1;
            h.total += 1;
        }
        h
    }

    /// Number of samples equal to `v`.
    pub fn count(&self, v: usize) -> u64 {
        self.counts.get(v).copied().unwrap_or(0)
    }

    /// Fraction of samples equal to `v`.
    pub fn fraction(&self, v: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.count(v) as f64 / self.total as f64
        }
    }

    /// Fraction of samples `<= v` (the CDF the paper's Figure 5(a) plots).
    pub fn cumulative_fraction(&self, v: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let c: u64 = self.counts.iter().take(v + 1).sum();
        c as f64 / self.total as f64
    }

    /// Total samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Mean value.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let sum: u64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(v, &c)| v as u64 * c)
            .sum();
        sum as f64 / self.total as f64
    }

    /// Largest observed value.
    pub fn max_value(&self) -> usize {
        self.counts.len().saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn percentiles_nearest_rank() {
        let c = Cdf::from_durations([ms(10), ms(20), ms(30), ms(40)]);
        assert_eq!(c.percentile(0.0), ms(10));
        assert_eq!(c.percentile(0.25), ms(10));
        assert_eq!(c.percentile(0.5), ms(20));
        assert_eq!(c.percentile(0.75), ms(30));
        assert_eq!(c.percentile(1.0), ms(40));
        assert_eq!(c.min(), ms(10));
        assert_eq!(c.max(), ms(40));
        assert_eq!(c.mean(), ms(25));
    }

    #[test]
    fn fraction_below_counts_inclusive() {
        let c = Cdf::from_durations([ms(10), ms(20), ms(30)]);
        assert_eq!(c.fraction_below(ms(5)), 0.0);
        assert!((c.fraction_below(ms(10)) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(c.fraction_below(ms(30)), 1.0);
    }

    #[test]
    fn curve_is_monotone_and_ends_at_one() {
        let c = Cdf::from_durations((1..=57).map(ms));
        let pts = c.curve(10);
        assert_eq!(pts.len(), 10);
        for w in pts.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        assert!((pts.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_cdf_behaviour() {
        let c = Cdf::default();
        assert!(c.is_empty());
        assert_eq!(c.fraction_below(ms(1)), 0.0);
        assert!(c.curve(5).is_empty());
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_percentile_panics() {
        let _ = Cdf::default().percentile(0.5);
    }

    #[test]
    fn summary_statistics() {
        let s = Summary::from_values(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.mean, 2.5);
        assert!((s.std - 1.2909944).abs() < 1e-6);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.n, 4);
        let single = Summary::from_values(&[7.0]);
        assert_eq!(single.std, 0.0);
        assert!(single.to_string().contains("n = 1"));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn summary_rejects_empty() {
        let _ = Summary::from_values(&[]);
    }

    #[test]
    fn delay_histogram_tracks_exact_moments() {
        let mut h = DelayHistogram::new();
        assert!(h.is_empty());
        for v in [ms(10), ms(20), ms(30), ms(40)] {
            h.add(v);
        }
        assert_eq!(h.len(), 4);
        assert_eq!(h.mean(), ms(25));
        assert_eq!(h.min(), ms(10));
        assert_eq!(h.max(), ms(40));
        assert_eq!(h.percentile(0.0), ms(10));
        assert_eq!(h.percentile(1.0), ms(40));
    }

    #[test]
    fn delay_histogram_percentiles_match_cdf_within_bucket_error() {
        let vals: Vec<Duration> = (0..10_000u64).map(|i| ms(i * 13 % 997 + 1)).collect();
        let cdf = Cdf::from_durations(vals.iter().copied());
        let mut h = DelayHistogram::new();
        for &v in &vals {
            h.add(v);
        }
        assert_eq!(h.mean(), cdf.mean());
        assert_eq!(h.max(), cdf.max());
        assert_eq!(h.min(), cdf.min());
        for p in [0.1, 0.5, 0.9, 0.99] {
            let exact = cdf.percentile(p).as_secs_f64();
            let approx = h.percentile(p).as_secs_f64();
            assert!(
                (approx - exact).abs() / exact < 0.04,
                "p{p}: approx {approx} vs exact {exact}"
            );
        }
    }

    #[test]
    fn delay_histogram_small_values_are_exact() {
        let mut h = DelayHistogram::new();
        for n in 0..64u64 {
            h.add(Duration::from_nanos(n));
        }
        for p in [0.25, 0.5, 0.75, 1.0] {
            let exact = Cdf::from_durations((0..64).map(Duration::from_nanos)).percentile(p);
            assert_eq!(h.percentile(p), exact, "p = {p}");
        }
    }

    #[test]
    fn delay_histogram_memory_is_bounded() {
        let mut h = DelayHistogram::new();
        h.add(Duration::from_secs(3600)); // one huge sample
        assert!(h.counts.len() <= 1920, "bucket table stays fixed-size");
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn delay_histogram_empty_percentile_panics() {
        let _ = DelayHistogram::new().percentile(0.5);
    }

    #[test]
    fn histogram_fractions() {
        let h = Histogram::from_values([6, 6, 6, 7, 5, 6]);
        assert_eq!(h.total(), 6);
        assert_eq!(h.count(6), 4);
        assert!((h.fraction(6) - 4.0 / 6.0).abs() < 1e-12);
        assert!((h.cumulative_fraction(6) - 5.0 / 6.0).abs() < 1e-12);
        assert!((h.mean() - 36.0 / 6.0).abs() < 1e-12);
        assert_eq!(h.max_value(), 7);
        assert_eq!(h.count(99), 0);
    }
}
