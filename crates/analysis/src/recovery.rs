//! Recovery metrics for fault-scenario (chaos) runs.
//!
//! The paper's dependability results (§4–§5) are about how dissemination
//! *degrades and recovers* around faults, which the steady-state trackers
//! in [`crate::DeliveryTracker`] do not expose. Two more streaming
//! recorders fill the gap, both O(small) in memory and composable with
//! every other recorder via tuples / `tee`:
//!
//! - [`RecoveryTracker`] — per-message injection times and delivery
//!   counts, folded into *sliding-window delivery ratios*: for each
//!   window of injection time, the fraction of expected deliveries that
//!   actually happened. Expected counts are supplied post-run (they
//!   depend on which nodes were present, which the scenario plan knows).
//! - [`OrphanTracker`] — how long nodes spend *orphaned* (detached from
//!   the dissemination tree) after faults: spell count, total, mean and
//!   max duration.

use std::collections::HashMap;
use std::time::Duration;

use gocast::{GoCastEvent, MsgId};
use gocast_sim::{NodeId, Recorder, SimTime};

/// One injection-time window of delivery-ratio accounting (see
/// [`RecoveryTracker::windowed_ratios`]).
#[derive(Debug, Clone, PartialEq)]
pub struct WindowRatio {
    /// Window start (absolute simulation time).
    pub start: SimTime,
    /// Messages injected in this window.
    pub injected: u64,
    /// Deliveries expected for those messages (caller-supplied).
    pub expected: u64,
    /// Deliveries observed for those messages.
    pub delivered: u64,
}

impl WindowRatio {
    /// Observed / expected deliveries (1.0 when nothing was expected).
    pub fn ratio(&self) -> f64 {
        if self.expected == 0 {
            1.0
        } else {
            self.delivered as f64 / self.expected as f64
        }
    }
}

/// Streaming per-message delivery counting for windowed delivery ratios.
///
/// Records `Injected` and `Delivered` events; memory is O(messages).
/// After the run, [`RecoveryTracker::windowed_ratios`] buckets messages
/// by injection time and divides observed deliveries by an
/// expected-delivery count the caller derives per message (typically from
/// a scenario plan's presence timeline).
///
/// ```
/// use gocast_analysis::RecoveryTracker;
/// use std::time::Duration;
///
/// let tracker = RecoveryTracker::new(Duration::from_secs(5));
/// assert_eq!(tracker.injected_count(), 0);
/// ```
#[derive(Debug)]
pub struct RecoveryTracker {
    window: Duration,
    index: HashMap<MsgId, usize>,
    /// Per message, in injection order: `(id, injected_at, deliveries)`.
    msgs: Vec<(MsgId, SimTime, u64)>,
}

impl RecoveryTracker {
    /// A tracker bucketing injections into windows of width `window`.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: Duration) -> Self {
        assert!(window > Duration::ZERO, "window must be positive");
        RecoveryTracker {
            window,
            index: HashMap::new(),
            msgs: Vec::new(),
        }
    }

    /// Number of injections observed.
    pub fn injected_count(&self) -> u64 {
        self.msgs.len() as u64
    }

    /// `(id, injection time)` for every observed injection, in order.
    pub fn injections(&self) -> impl Iterator<Item = (MsgId, SimTime)> + '_ {
        self.msgs.iter().map(|&(id, at, _)| (id, at))
    }

    /// Observed delivery count for `id` (0 if unknown).
    pub fn deliveries_of(&self, id: MsgId) -> u64 {
        self.index.get(&id).map_or(0, |&i| self.msgs[i].2)
    }

    /// Buckets messages into injection-time windows and returns one
    /// [`WindowRatio`] per non-empty span, in time order. `expected`
    /// supplies the number of deliveries each message *should* have seen
    /// (e.g. nodes present at injection and until the end of the run,
    /// minus the origin).
    pub fn windowed_ratios(
        &self,
        mut expected: impl FnMut(MsgId, SimTime) -> u64,
    ) -> Vec<WindowRatio> {
        let Some(&(_, first, _)) = self.msgs.first() else {
            return Vec::new();
        };
        let mut out: Vec<WindowRatio> = Vec::new();
        for &(id, at, delivered) in &self.msgs {
            let bucket = (at.saturating_since(first).as_nanos() / self.window.as_nanos()) as u64;
            let start = first + self.window * bucket as u32;
            if out.last().map(|w| w.start) != Some(start) {
                out.push(WindowRatio {
                    start,
                    injected: 0,
                    expected: 0,
                    delivered: 0,
                });
            }
            let w = out.last_mut().expect("window pushed above");
            w.injected += 1;
            w.expected += expected(id, at);
            w.delivered += delivered;
        }
        out
    }

    /// Overall delivery ratio across every message (see
    /// [`RecoveryTracker::windowed_ratios`] for the `expected` contract).
    pub fn overall_ratio(&self, mut expected: impl FnMut(MsgId, SimTime) -> u64) -> f64 {
        let mut exp = 0u64;
        let mut got = 0u64;
        for &(id, at, delivered) in &self.msgs {
            exp += expected(id, at);
            got += delivered;
        }
        if exp == 0 {
            1.0
        } else {
            got as f64 / exp as f64
        }
    }
}

impl Recorder<GoCastEvent> for RecoveryTracker {
    fn record(&mut self, now: SimTime, _node: NodeId, event: GoCastEvent) {
        match event {
            GoCastEvent::Injected { id } => {
                self.index.entry(id).or_insert_with(|| {
                    self.msgs.push((id, now, 0));
                    self.msgs.len() - 1
                });
            }
            GoCastEvent::Delivered { id, .. } => {
                if let Some(&i) = self.index.get(&id) {
                    self.msgs[i].2 += 1;
                }
            }
            _ => {}
        }
    }
}

/// Streaming orphaned-node accounting: how long nodes spend detached from
/// the dissemination tree.
///
/// A spell opens when a node reports `ParentChanged { parent: None }`
/// (detached) and closes when it adopts a parent or becomes root. Spells
/// still open at the end of a run are closed by [`OrphanTracker::finish`].
/// Memory is O(nodes).
#[derive(Debug, Default)]
pub struct OrphanTracker {
    /// Per node: when the current orphan spell began, if any.
    since: Vec<Option<SimTime>>,
    spells: u64,
    total: Duration,
    max_spell: Duration,
}

impl OrphanTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    fn close(&mut self, node: usize, now: SimTime) {
        if let Some(start) = self.since[node].take() {
            let d = now.saturating_since(start);
            self.spells += 1;
            self.total += d;
            self.max_spell = self.max_spell.max(d);
        }
    }

    /// Closes every still-open orphan spell at `now`. Call once when the
    /// run ends, before reading the aggregates.
    pub fn finish(&mut self, now: SimTime) {
        for i in 0..self.since.len() {
            self.close(i, now);
        }
    }

    /// Number of orphan spells observed (closed spells only; call
    /// [`OrphanTracker::finish`] first for end-of-run totals).
    pub fn spells(&self) -> u64 {
        self.spells
    }

    /// Sum of all closed spell durations.
    pub fn total_orphan_time(&self) -> Duration {
        self.total
    }

    /// Longest closed spell.
    pub fn max_spell(&self) -> Duration {
        self.max_spell
    }

    /// Mean closed spell duration (zero when no spells closed).
    pub fn mean_spell(&self) -> Duration {
        if self.spells == 0 {
            Duration::ZERO
        } else {
            self.total / self.spells as u32
        }
    }

    /// Nodes currently inside an orphan spell.
    pub fn open_orphans(&self) -> usize {
        self.since.iter().filter(|s| s.is_some()).count()
    }
}

impl Recorder<GoCastEvent> for OrphanTracker {
    fn record(&mut self, now: SimTime, node: NodeId, event: GoCastEvent) {
        let i = node.index();
        match event {
            GoCastEvent::ParentChanged { parent: None } => {
                if self.since.len() <= i {
                    self.since.resize(i + 1, None);
                }
                if self.since[i].is_none() {
                    self.since[i] = Some(now);
                }
            }
            GoCastEvent::ParentChanged { parent: Some(_) } | GoCastEvent::BecameRoot { .. }
                if i < self.since.len() =>
            {
                self.close(i, now);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gocast::DeliveryPath;

    fn inject(t: &mut RecoveryTracker, now_s: u64, origin: u32, seq: u32) -> MsgId {
        let id = MsgId::new(NodeId::new(origin), seq);
        t.record(
            SimTime::from_secs(now_s),
            NodeId::new(origin),
            GoCastEvent::Injected { id },
        );
        id
    }

    fn deliver(t: &mut RecoveryTracker, now_s: u64, node: u32, id: MsgId) {
        t.record(
            SimTime::from_secs(now_s),
            NodeId::new(node),
            GoCastEvent::Delivered {
                id,
                via: DeliveryPath::Tree,
                from: id.origin,
                hop: 1,
            },
        );
    }

    #[test]
    fn windows_bucket_by_injection_time() {
        let mut t = RecoveryTracker::new(Duration::from_secs(10));
        let a = inject(&mut t, 0, 0, 0);
        let b = inject(&mut t, 3, 1, 0);
        let c = inject(&mut t, 15, 2, 0);
        for n in 1..4 {
            deliver(&mut t, 1, n, a);
        }
        deliver(&mut t, 4, 0, b);
        deliver(&mut t, 16, 0, c);
        deliver(&mut t, 16, 1, c);
        assert_eq!(t.injected_count(), 3);
        assert_eq!(t.deliveries_of(a), 3);
        let windows = t.windowed_ratios(|_, _| 3);
        assert_eq!(windows.len(), 2);
        assert_eq!(windows[0].start, SimTime::from_secs(0));
        assert_eq!(windows[0].injected, 2);
        assert_eq!(windows[0].expected, 6);
        assert_eq!(windows[0].delivered, 4);
        assert_eq!(windows[1].start, SimTime::from_secs(10));
        assert_eq!(windows[1].delivered, 2);
        assert!((windows[0].ratio() - 4.0 / 6.0).abs() < 1e-12);
        assert!((t.overall_ratio(|_, _| 3) - 6.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn unknown_deliveries_and_empty_tracker_are_harmless() {
        let mut t = RecoveryTracker::new(Duration::from_secs(1));
        deliver(&mut t, 1, 0, MsgId::new(NodeId::new(9), 9));
        assert_eq!(t.injected_count(), 0);
        assert!(t.windowed_ratios(|_, _| 1).is_empty());
        assert_eq!(t.overall_ratio(|_, _| 1), 1.0);
    }

    #[test]
    fn orphan_spells_open_and_close() {
        let mut t = OrphanTracker::new();
        let n = NodeId::new(4);
        let detach = |t: &mut OrphanTracker, s| {
            t.record(
                SimTime::from_secs(s),
                n,
                GoCastEvent::ParentChanged { parent: None },
            )
        };
        let attach = |t: &mut OrphanTracker, s| {
            t.record(
                SimTime::from_secs(s),
                n,
                GoCastEvent::ParentChanged {
                    parent: Some(NodeId::new(0)),
                },
            )
        };
        detach(&mut t, 10);
        detach(&mut t, 12); // redundant detach does not restart the spell
        assert_eq!(t.open_orphans(), 1);
        attach(&mut t, 15);
        assert_eq!(t.spells(), 1);
        assert_eq!(t.total_orphan_time(), Duration::from_secs(5));
        detach(&mut t, 20);
        t.record(
            SimTime::from_secs(21),
            n,
            GoCastEvent::BecameRoot { epoch: 1 },
        );
        assert_eq!(t.spells(), 2);
        assert_eq!(t.max_spell(), Duration::from_secs(5));
        assert_eq!(t.mean_spell(), Duration::from_secs(3));
        // finish() closes open spells.
        detach(&mut t, 30);
        t.finish(SimTime::from_secs(40));
        assert_eq!(t.spells(), 3);
        assert_eq!(t.max_spell(), Duration::from_secs(10));
        assert_eq!(t.open_orphans(), 0);
    }
}
