//! # gocast-analysis — offline analysis for GoCast experiments
//!
//! Turns raw simulation output into the quantities the paper's figures
//! plot:
//!
//! - [`DeliveryTracker`] — a streaming [`gocast_sim::Recorder`] folding
//!   delivery delays, redundancy and pulls into O(nodes) aggregates while
//!   the simulation runs (no event buffering at paper scale);
//! - [`TimeSeriesRecorder`] — windowed event rates (link churn, traffic)
//!   in O(sim seconds / window) memory;
//! - [`MetricsRecorder`] — the composite of the two that every experiment
//!   runner uses;
//! - [`RecoveryTracker`] / [`OrphanTracker`] — sliding-window delivery
//!   ratios and orphaned-node durations for fault-scenario (chaos) runs;
//! - [`Cdf`] / [`DelayHistogram`] / [`Histogram`] — distribution
//!   statistics (delay CDFs of Figures 3–4, degree distributions of
//!   Figure 5(a)); `DelayHistogram` is the bounded-memory streaming
//!   counterpart of `Cdf`;
//! - graph analysis ([`largest_component_fraction`], [`diameter`],
//!   [`component_sizes`], [`mean_path_length`]) for the resilience and
//!   scalability results (Figure 6, §3 summaries);
//! - [`Table`] — aligned terminal tables plus CSV output for every
//!   experiment;
//! - the [`mod@trace`] module — JSONL causal-trace parsing
//!   ([`scan_trace`]), per-message dissemination-tree reconstruction
//!   ([`TraceAnalysis`]), and the online [`InvariantOracle`] protocol
//!   checker.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod delivery;
mod graph;
mod recovery;
mod stats;
mod table;
mod timeseries;
pub mod trace;

pub use delivery::{DeliveryTracker, LinkChurnSelect, MetricsRecorder};
pub use graph::{
    bfs_distances, component_sizes, diameter, largest_component_fraction, mean_path_length,
};
pub use recovery::{OrphanTracker, RecoveryTracker, WindowRatio};
pub use stats::{Cdf, DelayHistogram, Histogram, Summary};
pub use table::{fmt_ms, fmt_secs, Table};
pub use timeseries::TimeSeriesRecorder;
pub use trace::{
    parse_line, scan_trace, InvariantOracle, OracleConfig, ProtoTag, TraceAnalysis, TraceError,
    TraceRecord, TraceReport, Violation, ViolationKind,
};
