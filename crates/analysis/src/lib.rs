//! # gocast-analysis — offline analysis for GoCast experiments
//!
//! Turns raw simulation output into the quantities the paper's figures
//! plot:
//!
//! - [`MetricsRecorder`] — a streaming [`gocast_sim::Recorder`] that
//!   aggregates delivery delays, redundancy, pulls and link churn while
//!   the simulation runs (no event buffering at paper scale);
//! - [`Cdf`] / [`Histogram`] — distribution statistics (delay CDFs of
//!   Figures 3–4, degree distributions of Figure 5(a));
//! - graph analysis ([`largest_component_fraction`], [`diameter`],
//!   [`component_sizes`], [`mean_path_length`]) for the resilience and
//!   scalability results (Figure 6, §3 summaries);
//! - [`Table`] — aligned terminal tables plus CSV output for every
//!   experiment.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod delivery;
mod graph;
mod stats;
mod table;

pub use delivery::MetricsRecorder;
pub use graph::{
    bfs_distances, component_sizes, diameter, largest_component_fraction, mean_path_length,
};
pub use stats::{Cdf, Histogram, Summary};
pub use table::{fmt_ms, fmt_secs, Table};
