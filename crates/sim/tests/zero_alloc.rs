//! Proof that the steady-state schedule/pop/deliver path performs zero
//! heap allocations.
//!
//! A counting global allocator tallies every allocation made by this
//! thread. After a warm-up phase grows the event queue's backing vectors
//! to their high-water mark, driving a message-and-timer workload through
//! the kernel must not allocate at all: heap entries and payload slots
//! are recycled through the queue's slab free list, the failed-link set
//! is an (empty) vector probed by a length check, and traffic accounting
//! writes fixed-size counters.
//!
//! This file is its own test binary (one test, run on one thread) so the
//! counter sees only the workload under measurement.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::time::Duration;

use gocast_sim::{
    Ctx, FixedLatency, NodeId, Protocol, SimBuilder, SimTime, Timer, TrafficClass, Wire,
};

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

struct CountingAlloc;

// SAFETY: defers to `System` for all operations; only bumps a plain
// thread-local counter (no allocation, no drop glue) on the way through.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCS.with(|c| c.get())
}

/// A steady-state workload shaped like the simulator's hot path: every
/// node runs a periodic timer and forwards a fixed-size message around a
/// ring on each tick, so every step is a schedule + pop + deliver (or
/// timer fire) with `Copy` payloads — exactly what protocol steady state
/// looks like from the kernel's perspective.
struct Ticker {
    id: NodeId,
    n: u32,
    received: u64,
}

#[derive(Debug, Clone, Copy)]
struct Token(u64);

impl Wire for Token {
    fn wire_size(&self) -> u32 {
        16
    }
    fn class(&self) -> TrafficClass {
        TrafficClass::Data
    }
}

const TICK: Duration = Duration::from_millis(10);

impl Protocol for Ticker {
    type Msg = Token;
    type Command = ();
    type Event = ();

    fn on_start(&mut self, ctx: &mut Ctx<'_, Self>) {
        ctx.set_timer(TICK, Timer::of_kind(0));
    }

    fn on_message(&mut self, _ctx: &mut Ctx<'_, Self>, _from: NodeId, msg: Token) {
        self.received += msg.0;
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Self>, _timer: Timer) {
        let next = NodeId::new((self.id.as_u32() + 1) % self.n);
        ctx.send(next, Token(1));
        ctx.set_timer(TICK, Timer::of_kind(0));
    }
}

#[test]
fn steady_state_kernel_path_does_not_allocate() {
    let n = 64u32;
    let mut sim = SimBuilder::new(FixedLatency::new(n as usize, Duration::from_millis(3)))
        .seed(7)
        .build(|id| Ticker { id, n, received: 0 });

    // Warm up: queue and slab grow to their steady-state high-water mark.
    sim.run_until(SimTime::from_secs(2));

    let events_before = sim.kernel_stats().events_processed;
    let allocs_before = allocations();
    sim.run_until(SimTime::from_secs(12));
    let allocs = allocations() - allocs_before;
    let events = sim.kernel_stats().events_processed - events_before;

    assert!(events > 100_000, "workload too small: {events} events");
    assert_eq!(
        allocs, 0,
        "steady-state kernel path allocated {allocs} times over {events} events"
    );
    // The workload actually delivered messages (the ring is live).
    let received: u64 = sim.iter_nodes().map(|(_, p)| p.received).sum();
    assert!(received > 0);
}

#[test]
fn telemetry_enabled_kernel_path_does_not_allocate() {
    // Same workload, with deep telemetry on: the queue-depth histogram
    // observe per event and the sampled dispatch timings are fixed-array
    // updates, so the zero-allocation guarantee must hold unchanged.
    let n = 64u32;
    let mut sim = SimBuilder::new(FixedLatency::new(n as usize, Duration::from_millis(3)))
        .seed(7)
        .telemetry()
        .build(|id| Ticker { id, n, received: 0 });

    sim.run_until(SimTime::from_secs(2));

    let events_before = sim.kernel_stats().events_processed;
    let allocs_before = allocations();
    sim.run_until(SimTime::from_secs(12));
    let allocs = allocations() - allocs_before;
    let events = sim.kernel_stats().events_processed - events_before;

    assert!(events > 100_000, "workload too small: {events} events");
    assert_eq!(
        allocs, 0,
        "telemetry-enabled kernel path allocated {allocs} times over {events} events"
    );
    // Telemetry actually observed the run.
    let snap = sim.metrics_snapshot();
    let depth = snap
        .entries()
        .iter()
        .find(|e| e.name == "kernel_queue_depth")
        .expect("queue-depth histogram present");
    match &depth.value {
        gocast_metrics::MetricValue::Histogram(h) => {
            assert_eq!(h.count, sim.kernel_stats().events_processed)
        }
        other => panic!("unexpected value {other:?}"),
    }
}
