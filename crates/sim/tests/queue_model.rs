//! Model-based property test for [`gocast_sim::EventQueue`].
//!
//! The production queue is a 4-ary indexed heap with a payload slab; the
//! model below is the simple `BinaryHeap<Reverse<(at, seq, payload)>>`
//! the simulator originally shipped with. Under randomized interleavings
//! of schedules and pops — including bursts of equal timestamps, which
//! must pop in insertion order — the two must agree on every observable:
//! pop results (time, sequence, payload), `peek_time`, `len`, and
//! `scheduled_total`.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use std::time::Duration;

use gocast_sim::{EventQueue, SimTime};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

/// Reference implementation: ordered exactly like the original
/// `BinaryHeap<Scheduled<T>>` (min on `(at, seq)`).
#[derive(Default)]
struct ModelQueue {
    heap: BinaryHeap<Reverse<(SimTime, u64, u64)>>,
    next_seq: u64,
}

impl ModelQueue {
    fn schedule(&mut self, at: SimTime, payload: u64) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse((at, seq, payload)));
    }

    fn pop(&mut self) -> Option<(SimTime, u64, u64)> {
        self.heap.pop().map(|Reverse(e)| e)
    }

    fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse((at, _, _))| *at)
    }
}

proptest! {
    #[test]
    fn queue_matches_binary_heap_model(seed in 0u64..1_000_000, ops in 50usize..400) {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let mut q = EventQueue::new();
        let mut model = ModelQueue::default();
        // A monotone lower bound mimicking simulated time, so schedules
        // cluster realistically; bursts share one timestamp to stress the
        // FIFO tie-break.
        let mut now = SimTime::ZERO;
        let mut payload = 0u64;
        for _ in 0..ops {
            if rng.gen_bool(0.6) {
                // Schedule a burst of 1..4 events, often at equal times.
                let at = now + Duration::from_nanos(rng.gen_range(0..50));
                for _ in 0..rng.gen_range(1..4usize) {
                    q.schedule(at, payload);
                    model.schedule(at, payload);
                    payload += 1;
                }
            } else {
                let got = q.pop().map(|s| (s.at, s.seq, s.payload));
                let want = model.pop();
                prop_assert_eq!(got, want, "pop diverged from model");
                if let Some((at, _, _)) = want {
                    now = now.max(at);
                }
            }
            prop_assert_eq!(q.peek_time(), model.peek_time());
            prop_assert_eq!(q.len(), model.heap.len());
            prop_assert_eq!(q.scheduled_total(), model.next_seq);
        }
        // Drain: the full remaining order must match, including FIFO
        // runs of equal timestamps.
        loop {
            let got = q.pop().map(|s| (s.at, s.seq, s.payload));
            let want = model.pop();
            prop_assert_eq!(got, want, "drain diverged from model");
            if want.is_none() {
                break;
            }
        }
        prop_assert!(q.is_empty());
    }
}
