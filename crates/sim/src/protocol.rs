//! The sans-IO protocol interface.
//!
//! A protocol is a deterministic state machine. The kernel calls its
//! handlers with a [`Ctx`] through which the protocol sends messages, arms
//! timers, draws randomness, and emits metric events. Protocol code never
//! performs IO and never reads wall-clock time, which makes every run
//! reproducible and every state machine trivially unit-testable.

use std::time::Duration;

use rand::rngs::SmallRng;
use rand::Rng;

use crate::id::NodeId;
use crate::kernel::NetFaults;
use crate::latency::LatencyModel;
use crate::queue::EventQueue;
use crate::recorder::Recorder;
use crate::stats::{TrafficClass, TrafficStats};
use crate::time::SimTime;

/// Wire metadata for a message type: its serialized size and traffic class.
///
/// The simulator does not serialize messages; it only needs their size for
/// traffic accounting (the paper's simulator works the same way).
pub trait Wire {
    /// Serialized size in bytes (approximate is fine; used for accounting).
    fn wire_size(&self) -> u32;

    /// Traffic class for accounting.
    fn class(&self) -> TrafficClass;
}

/// A timer token. `kind` discriminates timer purposes within a protocol;
/// `a` and `b` carry small payloads (e.g. a message sequence number), which
/// avoids heap allocation on the very hot timer path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Timer {
    /// Protocol-defined discriminant.
    pub kind: u32,
    /// First payload word.
    pub a: u32,
    /// Second payload word.
    pub b: u64,
}

impl Timer {
    /// A timer with no payload.
    pub const fn of_kind(kind: u32) -> Self {
        Timer { kind, a: 0, b: 0 }
    }

    /// A timer with payload words `a` and `b`.
    pub const fn with_payload(kind: u32, a: u32, b: u64) -> Self {
        Timer { kind, a, b }
    }
}

/// A protocol instance: one per simulated node.
///
/// Handlers run to completion; reentrancy is impossible by construction.
pub trait Protocol: Sized {
    /// Wire message type exchanged between nodes.
    type Msg: Wire;
    /// Out-of-band control input (e.g. "start a multicast", "freeze
    /// maintenance"). Injected by the experiment harness, not by peers.
    type Command;
    /// Metric/event record type consumed by a [`Recorder`].
    type Event;

    /// Called once when the node boots (simulation start).
    fn on_start(&mut self, ctx: &mut Ctx<'_, Self>);

    /// Called when a unicast message from `from` arrives.
    fn on_message(&mut self, ctx: &mut Ctx<'_, Self>, from: NodeId, msg: Self::Msg);

    /// Called when a previously armed timer fires. Timers cannot be
    /// cancelled; handlers must check state and ignore stale timers.
    fn on_timer(&mut self, ctx: &mut Ctx<'_, Self>, timer: Timer);

    /// Called when the harness injects a command. Default: ignored.
    fn on_command(&mut self, ctx: &mut Ctx<'_, Self>, cmd: Self::Command) {
        let _ = (ctx, cmd);
    }
}

/// Kernel-internal event representation.
#[derive(Debug)]
pub(crate) enum KernelEvent<M, C> {
    /// A message in flight arrives at `to`.
    Deliver { from: NodeId, to: NodeId, msg: M },
    /// A protocol timer fires at `node`.
    Fire { node: NodeId, timer: Timer },
    /// The harness injects a command into `node`.
    Command { node: NodeId, cmd: C },
    /// The kernel marks `node` as crashed.
    Fail { node: NodeId },
    /// The kernel changes the state of the link between two nodes.
    SetLink { a: NodeId, b: NodeId, up: bool },
    /// The kernel changes the injected message-loss probability (ppm).
    SetLoss { ppm: u32 },
    /// The kernel changes the injected latency jitter (max extra ns).
    SetJitter { nanos: u64 },
    /// The kernel installs (`Some`) or removes (`None`) a partition.
    SetPartition { sides: Option<Vec<u32>> },
}

/// The world a protocol instance talks to when it is *not* running inside
/// the simulation kernel — a deployment host (e.g. the UDP host in
/// `gocast-udp`). The host supplies real message transport, real timers,
/// and an event sink; the protocol state machine cannot tell the
/// difference.
pub trait HostBackend<P: Protocol> {
    /// Transmit `msg` to `to`.
    fn send(&mut self, to: NodeId, msg: P::Msg);
    /// Arm a one-shot timer.
    fn set_timer(&mut self, delay: Duration, timer: Timer);
    /// Record a protocol event.
    fn emit(&mut self, event: P::Event);
    /// Number of nodes in the deployment.
    fn node_count(&self) -> usize;
}

/// How a [`Ctx`] reaches the outside world: the simulation kernel, or an
/// external deployment host.
enum CtxInner<'a, P: Protocol> {
    Sim {
        queue: &'a mut EventQueue<KernelEvent<P::Msg, P::Command>>,
        net: &'a dyn LatencyModel,
        recorder: &'a mut dyn Recorder<P::Event>,
        stats: &'a mut TrafficStats,
        faults: &'a mut NetFaults,
    },
    Host(&'a mut dyn HostBackend<P>),
}

/// Handler-side view of the world: the only way a protocol interacts with
/// anything outside its own state.
pub struct Ctx<'a, P: Protocol> {
    pub(crate) id: NodeId,
    pub(crate) now: SimTime,
    pub(crate) rng: &'a mut SmallRng,
    inner: CtxInner<'a, P>,
}

impl<'a, P: Protocol> std::fmt::Debug for Ctx<'a, P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ctx")
            .field("id", &self.id)
            .field("now", &self.now)
            .finish_non_exhaustive()
    }
}

impl<'a, P: Protocol> Ctx<'a, P> {
    /// Builds a context for the simulation kernel (crate internal).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn for_sim(
        id: NodeId,
        now: SimTime,
        rng: &'a mut SmallRng,
        queue: &'a mut EventQueue<KernelEvent<P::Msg, P::Command>>,
        net: &'a dyn LatencyModel,
        recorder: &'a mut dyn Recorder<P::Event>,
        stats: &'a mut TrafficStats,
        faults: &'a mut NetFaults,
    ) -> Self {
        Ctx {
            id,
            now,
            rng,
            inner: CtxInner::Sim {
                queue,
                net,
                recorder,
                stats,
                faults,
            },
        }
    }

    /// Builds a context backed by an external deployment host. `now` is
    /// the host's monotonic clock expressed as time since host start.
    pub fn for_host(
        id: NodeId,
        now: SimTime,
        rng: &'a mut SmallRng,
        backend: &'a mut dyn HostBackend<P>,
    ) -> Self {
        Ctx {
            id,
            now,
            rng,
            inner: CtxInner::Host(backend),
        }
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Current time (simulated, or host-monotonic since start).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of nodes in the system (the protocol may use this the way
    /// a deployment would use a configured cluster size; GoCast itself only
    /// uses it for bootstrap membership and landmark placement).
    pub fn node_count(&self) -> usize {
        match &self.inner {
            CtxInner::Sim { net, .. } => net.len(),
            CtxInner::Host(b) => b.node_count(),
        }
    }

    /// Deterministic per-node randomness source.
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }

    /// Sends `msg` to `to`. Under the kernel, delivery is scheduled after
    /// the network model's one-way latency (plus any injected jitter) and
    /// dropped if `to` has failed by then or the injected loss probability
    /// fires; under a host, the message goes out on the real transport.
    ///
    /// Sending to self delivers after zero latency (still asynchronously)
    /// and is exempt from loss/jitter injection: only the network between
    /// distinct nodes is faulty.
    pub fn send(&mut self, to: NodeId, msg: P::Msg) {
        match &mut self.inner {
            CtxInner::Sim {
                queue,
                net,
                stats,
                faults,
                ..
            } => {
                let mut latency = net.one_way(self.id, to);
                stats.record(self.id, to, msg.wire_size(), msg.class());
                if faults.active() && to != self.id {
                    if faults.loss_ppm > 0
                        && faults.rng.gen_range(0..1_000_000u32) < faults.loss_ppm
                    {
                        faults.losses += 1;
                        return;
                    }
                    if faults.jitter_ns > 0 {
                        latency += Duration::from_nanos(faults.rng.gen_range(0..=faults.jitter_ns));
                    }
                }
                queue.schedule(
                    self.now + latency,
                    KernelEvent::Deliver {
                        from: self.id,
                        to,
                        msg,
                    },
                );
            }
            CtxInner::Host(b) => b.send(to, msg),
        }
    }

    /// Arms `timer` to fire after `delay`. Timers are one-shot and cannot be
    /// cancelled; re-arm from the handler for periodic behaviour.
    pub fn set_timer(&mut self, delay: Duration, timer: Timer) {
        match &mut self.inner {
            CtxInner::Sim { queue, .. } => {
                queue.schedule(
                    self.now + delay,
                    KernelEvent::Fire {
                        node: self.id,
                        timer,
                    },
                );
            }
            CtxInner::Host(b) => b.set_timer(delay, timer),
        }
    }

    /// Emits a metric event to the recorder / host sink.
    pub fn emit(&mut self, event: P::Event) {
        match &mut self.inner {
            CtxInner::Sim { recorder, .. } => recorder.record(self.now, self.id, event),
            CtxInner::Host(b) => b.emit(event),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_constructors() {
        let t = Timer::of_kind(3);
        assert_eq!(
            t,
            Timer {
                kind: 3,
                a: 0,
                b: 0
            }
        );
        let t = Timer::with_payload(1, 2, 3);
        assert_eq!(t.kind, 1);
        assert_eq!(t.a, 2);
        assert_eq!(t.b, 3);
    }
}
