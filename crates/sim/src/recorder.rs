//! Event recording: streaming-first, composable.
//!
//! Protocols emit structured events (message delivered, link added, ...)
//! through [`crate::Ctx::emit`]. A [`Recorder`] receives them as they
//! happen; analysis code folds them into aggregates **online**, so a run
//! never needs to buffer its full event stream.
//!
//! # Composing recorders
//!
//! Recorders are values, and they compose like iterator adapters:
//!
//! - [`Recorder::tee`] / [`TeeRecorder`] fan one event stream out to two
//!   consumers (events are cloned once per extra consumer);
//! - tuples `(A, B)` of recorders are themselves recorders, for ad-hoc
//!   fan-out without naming a type;
//! - [`Recorder::filter`] / [`FilterRecorder`] keep only the events a
//!   predicate selects, so a downstream aggregator sees a pre-narrowed
//!   stream;
//! - [`FnRecorder`] lifts any closure into a recorder.
//!
//! ```
//! use gocast_sim::{FnRecorder, NodeId, Recorder, SimTime, VecRecorder};
//!
//! let mut count = 0u32;
//! {
//!     // Keep even events in a buffer AND count every event, in one pass.
//!     let buffered = VecRecorder::new().filter(|_, _, e: &u32| e % 2 == 0);
//!     let mut r = buffered.tee(FnRecorder(|_, _, _e: u32| count += 1));
//!     for v in 0..4u32 {
//!         r.record(SimTime::ZERO, NodeId::new(0), v);
//!     }
//!     assert_eq!(r.first.inner.events.len(), 2); // 0 and 2
//! }
//! assert_eq!(count, 4);
//! ```
//!
//! # Migrating from buffer-everything recording
//!
//! Early versions of this crate had one idiom: record everything into a
//! [`VecRecorder`], then post-process `recorder().events` after the run.
//! That is O(total events) memory — at experiment scale (thousands of
//! nodes, thousands of messages) the buffer dwarfs the simulation state
//! itself. The streaming API replaces the pattern without removing
//! anything; `VecRecorder` remains available and is still the right tool
//! for small tests that assert on exact event sequences.
//!
//! | before (post-hoc) | after (streaming) |
//! |---|---|
//! | `build_with(VecRecorder::new(), ..)` then scan `.events` for one variant | `build_with(VecRecorder::new().filter(..), ..)` — buffer only that variant |
//! | `VecRecorder` + hand-rolled fold over `.events` | `FnRecorder(..)` folding online, or a purpose-built aggregator implementing [`Recorder`] |
//! | two analysis passes over one buffered run | one aggregator`.tee(`other`)` (or a `(A, B)` tuple) |
//!
//! Aggregating recorders for delivery metrics live in `gocast-analysis`
//! (`DeliveryTracker`, `TimeSeriesRecorder`, `MetricsRecorder`), which
//! hold O(nodes + windows) state regardless of run length.

use crate::id::NodeId;
use crate::time::SimTime;

/// Receives protocol events as the simulation executes.
///
/// The event type `E` is chosen by the protocol ([`crate::Protocol::Event`]).
/// See the [module docs](self) for how recorders compose.
pub trait Recorder<E> {
    /// Called once per emitted event, in simulation order.
    fn record(&mut self, now: SimTime, node: NodeId, event: E);

    /// Fans events out to `self` and `other`.
    ///
    /// Each event is delivered to both recorders (cloned once); `self`
    /// sees it first.
    fn tee<R2>(self, other: R2) -> TeeRecorder<Self, R2>
    where
        Self: Sized,
        R2: Recorder<E>,
        E: Clone,
    {
        TeeRecorder {
            first: self,
            second: other,
        }
    }

    /// Forwards only the events for which `pred` returns `true`.
    fn filter<F>(self, pred: F) -> FilterRecorder<Self, F>
    where
        Self: Sized,
        F: FnMut(SimTime, NodeId, &E) -> bool,
    {
        FilterRecorder { inner: self, pred }
    }
}

/// Discards all events. The default recorder.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullRecorder;

impl<E> Recorder<E> for NullRecorder {
    fn record(&mut self, _now: SimTime, _node: NodeId, _event: E) {}
}

/// Buffers every event in memory.
///
/// O(total events) memory: fine for unit tests asserting on exact event
/// sequences, wrong for experiment-scale runs — see the
/// [module docs](self#migrating-from-buffer-everything-recording) for the
/// streaming alternatives.
///
/// ```
/// use gocast_sim::{NodeId, Recorder, SimTime, VecRecorder};
///
/// let mut r = VecRecorder::new();
/// r.record(SimTime::ZERO, NodeId::new(1), "hello");
/// assert_eq!(r.events.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct VecRecorder<E> {
    /// The recorded `(time, node, event)` triples, in emission order.
    pub events: Vec<(SimTime, NodeId, E)>,
}

impl<E> VecRecorder<E> {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        VecRecorder { events: Vec::new() }
    }
}

impl<E> Default for VecRecorder<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Recorder<E> for VecRecorder<E> {
    fn record(&mut self, now: SimTime, node: NodeId, event: E) {
        self.events.push((now, node, event));
    }
}

/// Applies a closure to each event, for streaming aggregation without
/// buffering.
#[derive(Debug)]
pub struct FnRecorder<F>(pub F);

impl<E, F: FnMut(SimTime, NodeId, E)> Recorder<E> for FnRecorder<F> {
    fn record(&mut self, now: SimTime, node: NodeId, event: E) {
        (self.0)(now, node, event);
    }
}

/// Fans one event stream out to two recorders (see [`Recorder::tee`]).
///
/// Both halves are public so aggregates can be read back after the run;
/// [`TeeRecorder::into_parts`] recovers ownership.
#[derive(Debug, Clone, Copy, Default)]
pub struct TeeRecorder<A, B> {
    /// Receives each event first.
    pub first: A,
    /// Receives each event second.
    pub second: B,
}

impl<A, B> TeeRecorder<A, B> {
    /// Builds the fan-out explicitly (equivalent to `a.tee(b)`).
    pub fn new(first: A, second: B) -> Self {
        TeeRecorder { first, second }
    }

    /// Consumes the tee, returning both recorders.
    pub fn into_parts(self) -> (A, B) {
        (self.first, self.second)
    }
}

impl<E: Clone, A: Recorder<E>, B: Recorder<E>> Recorder<E> for TeeRecorder<A, B> {
    fn record(&mut self, now: SimTime, node: NodeId, event: E) {
        self.first.record(now, node, event.clone());
        self.second.record(now, node, event);
    }
}

/// Ad-hoc fan-out: a tuple of recorders is a recorder.
///
/// Equivalent to [`TeeRecorder`] but keeps tuple ergonomics
/// (`sim.recorder().0`, destructuring via `into_recorder()`).
impl<E: Clone, A: Recorder<E>, B: Recorder<E>> Recorder<E> for (A, B) {
    fn record(&mut self, now: SimTime, node: NodeId, event: E) {
        self.0.record(now, node, event.clone());
        self.1.record(now, node, event);
    }
}

/// Forwards only events selected by a predicate (see [`Recorder::filter`]).
#[derive(Debug, Clone, Copy)]
pub struct FilterRecorder<R, F> {
    /// The downstream recorder; public so aggregates can be read back.
    pub inner: R,
    pred: F,
}

impl<R, F> FilterRecorder<R, F> {
    /// Consumes the filter, returning the downstream recorder.
    pub fn into_inner(self) -> R {
        self.inner
    }
}

impl<E, R, F> Recorder<E> for FilterRecorder<R, F>
where
    R: Recorder<E>,
    F: FnMut(SimTime, NodeId, &E) -> bool,
{
    fn record(&mut self, now: SimTime, node: NodeId, event: E) {
        if (self.pred)(now, node, &event) {
            self.inner.record(now, node, event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_recorder_buffers_in_order() {
        let mut r = VecRecorder::new();
        r.record(SimTime::from_nanos(1), NodeId::new(0), 10u32);
        r.record(SimTime::from_nanos(2), NodeId::new(1), 20);
        assert_eq!(
            r.events,
            vec![
                (SimTime::from_nanos(1), NodeId::new(0), 10),
                (SimTime::from_nanos(2), NodeId::new(1), 20)
            ]
        );
    }

    #[test]
    fn null_recorder_accepts_anything() {
        let mut r = NullRecorder;
        Recorder::<&str>::record(&mut r, SimTime::ZERO, NodeId::new(0), "x");
    }

    #[test]
    fn fn_recorder_streams() {
        let mut count = 0u32;
        {
            let mut r = FnRecorder(|_, _, v: u32| count += v);
            r.record(SimTime::ZERO, NodeId::new(0), 2);
            r.record(SimTime::ZERO, NodeId::new(0), 3);
        }
        assert_eq!(count, 5);
    }

    #[test]
    fn tee_delivers_to_both_in_order() {
        let mut r = VecRecorder::new().tee(VecRecorder::new());
        r.record(SimTime::from_nanos(1), NodeId::new(0), 7u32);
        r.record(SimTime::from_nanos(2), NodeId::new(1), 8);
        let (a, b) = r.into_parts();
        assert_eq!(a.events, b.events);
        assert_eq!(a.events.len(), 2);
    }

    #[test]
    fn tuple_of_recorders_is_a_recorder() {
        let mut r = (VecRecorder::new(), VecRecorder::new());
        r.record(SimTime::ZERO, NodeId::new(0), 1u8);
        assert_eq!(r.0.events, r.1.events);
        assert_eq!(r.0.events.len(), 1);
    }

    #[test]
    fn filter_narrows_the_stream() {
        let mut r =
            VecRecorder::new().filter(|_, node: NodeId, v: &u32| node == NodeId::new(1) && *v > 10);
        r.record(SimTime::ZERO, NodeId::new(0), 99u32); // wrong node
        r.record(SimTime::ZERO, NodeId::new(1), 5); // too small
        r.record(SimTime::ZERO, NodeId::new(1), 42);
        assert_eq!(r.inner.events, vec![(SimTime::ZERO, NodeId::new(1), 42)]);
        assert_eq!(r.into_inner().events.len(), 1);
    }

    #[test]
    fn combinators_nest() {
        let mut total = 0u32;
        let mut kept = 0u32;
        {
            let count_all = FnRecorder(|_, _, _: u32| total += 1);
            let count_big = FnRecorder(|_, _, _: u32| kept += 1).filter(|_, _, v: &u32| *v >= 5);
            let mut r = count_all.tee(count_big);
            for v in 0..10u32 {
                r.record(SimTime::ZERO, NodeId::new(0), v);
            }
        }
        assert_eq!(total, 10);
        assert_eq!(kept, 5);
    }
}
