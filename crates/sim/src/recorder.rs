//! Event recording.
//!
//! Protocols emit structured events (message delivered, link added, ...)
//! through [`crate::Ctx::emit`]. A [`Recorder`] receives them as they happen;
//! offline analysis then consumes the recorded stream.

use crate::id::NodeId;
use crate::time::SimTime;

/// Receives protocol events as the simulation executes.
///
/// The event type `E` is chosen by the protocol ([`crate::Protocol::Event`]).
pub trait Recorder<E> {
    /// Called once per emitted event, in simulation order.
    fn record(&mut self, now: SimTime, node: NodeId, event: E);
}

/// Discards all events. The default recorder.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullRecorder;

impl<E> Recorder<E> for NullRecorder {
    fn record(&mut self, _now: SimTime, _node: NodeId, _event: E) {}
}

/// Buffers every event in memory.
///
/// ```
/// use gocast_sim::{NodeId, Recorder, SimTime, VecRecorder};
///
/// let mut r = VecRecorder::new();
/// r.record(SimTime::ZERO, NodeId::new(1), "hello");
/// assert_eq!(r.events.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct VecRecorder<E> {
    /// The recorded `(time, node, event)` triples, in emission order.
    pub events: Vec<(SimTime, NodeId, E)>,
}

impl<E> VecRecorder<E> {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        VecRecorder { events: Vec::new() }
    }
}

impl<E> Default for VecRecorder<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Recorder<E> for VecRecorder<E> {
    fn record(&mut self, now: SimTime, node: NodeId, event: E) {
        self.events.push((now, node, event));
    }
}

/// Applies a closure to each event, for streaming aggregation without
/// buffering.
#[derive(Debug)]
pub struct FnRecorder<F>(pub F);

impl<E, F: FnMut(SimTime, NodeId, E)> Recorder<E> for FnRecorder<F> {
    fn record(&mut self, now: SimTime, node: NodeId, event: E) {
        (self.0)(now, node, event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_recorder_buffers_in_order() {
        let mut r = VecRecorder::new();
        r.record(SimTime::from_nanos(1), NodeId::new(0), 10u32);
        r.record(SimTime::from_nanos(2), NodeId::new(1), 20);
        assert_eq!(
            r.events,
            vec![
                (SimTime::from_nanos(1), NodeId::new(0), 10),
                (SimTime::from_nanos(2), NodeId::new(1), 20)
            ]
        );
    }

    #[test]
    fn null_recorder_accepts_anything() {
        let mut r = NullRecorder;
        Recorder::<&str>::record(&mut r, SimTime::ZERO, NodeId::new(0), "x");
    }

    #[test]
    fn fn_recorder_streams() {
        let mut count = 0u32;
        {
            let mut r = FnRecorder(|_, _, v: u32| count += v);
            r.record(SimTime::ZERO, NodeId::new(0), 2);
            r.record(SimTime::ZERO, NodeId::new(0), 3);
        }
        assert_eq!(count, 5);
    }
}
