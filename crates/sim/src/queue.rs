//! The pending-event queue.
//!
//! A binary min-heap keyed on `(time, sequence)`. The monotonically
//! increasing sequence number breaks ties between events scheduled for the
//! same instant in insertion order, which makes simulation runs fully
//! deterministic for a given seed.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A scheduled entry: fires `payload` at `at`.
#[derive(Debug, Clone)]
pub struct Scheduled<T> {
    /// When the event fires.
    pub at: SimTime,
    /// Insertion order, used to break ties deterministically.
    pub seq: u64,
    /// The event itself.
    pub payload: T,
}

impl<T> PartialEq for Scheduled<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<T> Eq for Scheduled<T> {}

impl<T> PartialOrd for Scheduled<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Scheduled<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A deterministic future-event list.
///
/// ```
/// use gocast_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_millis(20), "late");
/// q.schedule(SimTime::from_millis(10), "early");
/// q.schedule(SimTime::from_millis(10), "early-but-second");
///
/// assert_eq!(q.pop().unwrap().payload, "early");
/// assert_eq!(q.pop().unwrap().payload, "early-but-second");
/// assert_eq!(q.pop().unwrap().payload, "late");
/// assert!(q.is_empty());
/// ```
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Scheduled<T>>,
    next_seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` to fire at `at`.
    ///
    /// Events scheduled for the same instant fire in insertion order.
    pub fn schedule(&mut self, at: SimTime, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, payload });
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<Scheduled<T>> {
        self.heap.pop()
    }

    /// The firing time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled on this queue.
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(5), 5u32);
        q.schedule(SimTime::from_nanos(1), 1);
        q.schedule(SimTime::from_nanos(3), 3);
        let got: Vec<u32> = std::iter::from_fn(|| q.pop().map(|s| s.payload)).collect();
        assert_eq!(got, vec![1, 3, 5]);
    }

    #[test]
    fn ties_break_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100u32 {
            q.schedule(SimTime::from_nanos(7), i);
        }
        let got: Vec<u32> = std::iter::from_fn(|| q.pop().map(|s| s.payload)).collect();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_time_reports_earliest() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_nanos(9), ());
        q.schedule(SimTime::from_nanos(2), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(2)));
    }

    #[test]
    fn counters() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::ZERO, ());
        q.schedule(SimTime::ZERO, ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled_total(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert_eq!(q.scheduled_total(), 2);
    }
}
