//! The pending-event queue.
//!
//! A 4-ary min-heap keyed on `(time, sequence)`. The monotonically
//! increasing sequence number breaks ties between events scheduled for the
//! same instant in insertion order, which makes simulation runs fully
//! deterministic for a given seed.
//!
//! ## Why not `BinaryHeap<Scheduled<T>>`?
//!
//! This queue is the simulator's single hottest data structure: every
//! message, timer, and command passes through one `schedule` and one `pop`.
//! Two properties of the previous `BinaryHeap` implementation cost real
//! throughput at that call rate:
//!
//! - **Payloads moved during sifting.** Kernel events embed whole protocol
//!   messages (often close to a cache line each); a binary heap moves them
//!   `O(log n)` times per operation. Here the heap orders small 24-byte
//!   `(time, seq, slot)` entries and payloads sit still in a slab.
//! - **Binary heaps are tall.** A 4-ary layout halves the tree height, and
//!   the four children of a node share at most two cache lines, so the
//!   extra comparisons per level are cheaper than the levels they save.
//!
//! The slab recycles vacated slots through a free list, so once the
//! backing vectors have grown to the steady-state high-water mark,
//! scheduling and popping perform **zero heap allocations** (asserted by
//! the `zero_alloc` integration test).

use crate::time::SimTime;

/// A scheduled entry: fires `payload` at `at`.
///
/// `seq` is the queue-assigned insertion number; equal-`at` entries pop in
/// increasing `seq` order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scheduled<T> {
    /// When the event fires.
    pub at: SimTime,
    /// Insertion order, used to break ties deterministically.
    pub seq: u64,
    /// The event itself.
    pub payload: T,
}

/// Heap arity. Four keeps sibling scans within two cache lines while
/// halving the tree height of a binary heap.
const ARITY: usize = 4;

/// A heap entry: the ordering key plus the slab slot holding the payload.
#[derive(Debug, Clone, Copy)]
struct Entry {
    at: SimTime,
    seq: u64,
    slot: u32,
}

impl Entry {
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.at, self.seq)
    }
}

/// A deterministic future-event list.
///
/// ```
/// use gocast_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_millis(20), "late");
/// q.schedule(SimTime::from_millis(10), "early");
/// q.schedule(SimTime::from_millis(10), "early-but-second");
///
/// assert_eq!(q.pop().unwrap().payload, "early");
/// assert_eq!(q.pop().unwrap().payload, "early-but-second");
/// assert_eq!(q.pop().unwrap().payload, "late");
/// assert!(q.is_empty());
/// ```
#[derive(Debug)]
pub struct EventQueue<T> {
    /// 4-ary min-heap of small fixed-size entries.
    heap: Vec<Entry>,
    /// Payload storage; `heap` entries index into it. `None` = vacant.
    slab: Vec<Option<T>>,
    /// Vacant slab slots available for reuse.
    free: Vec<u32>,
    next_seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: Vec::new(),
            slab: Vec::new(),
            free: Vec::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue with room for `cap` pending events before
    /// any backing vector reallocates.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: Vec::with_capacity(cap),
            slab: Vec::with_capacity(cap),
            free: Vec::with_capacity(cap),
            next_seq: 0,
        }
    }

    /// Schedules `payload` to fire at `at`.
    ///
    /// Events scheduled for the same instant fire in insertion order.
    #[inline]
    pub fn schedule(&mut self, at: SimTime, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(s) => {
                self.slab[s as usize] = Some(payload);
                s
            }
            None => {
                let s = self.slab.len() as u32;
                self.slab.push(Some(payload));
                s
            }
        };
        self.heap.push(Entry { at, seq, slot });
        self.sift_up(self.heap.len() - 1);
    }

    /// Removes and returns the earliest event, or `None` if empty.
    #[inline]
    pub fn pop(&mut self) -> Option<Scheduled<T>> {
        let top = *self.heap.first()?;
        let last = self.heap.pop().expect("non-empty heap");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.sift_down(0);
        }
        let payload = self.slab[top.slot as usize]
            .take()
            .expect("heap entry points at occupied slot");
        self.free.push(top.slot);
        Some(Scheduled {
            at: top.at,
            seq: top.seq,
            payload,
        })
    }

    /// Pops the earliest event only if it fires at or before `deadline`.
    ///
    /// Equivalent to checking [`EventQueue::peek_time`] and then calling
    /// [`EventQueue::pop`], but probes the heap top once — this is the
    /// kernel run loop's per-event fast path.
    #[inline]
    pub fn pop_at_or_before(&mut self, deadline: SimTime) -> Option<Scheduled<T>> {
        if self.heap.first()?.at > deadline {
            return None;
        }
        self.pop()
    }

    /// The firing time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.first().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled on this queue.
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }

    /// Pending-event capacity currently reserved (diagnostics: once this
    /// stops growing, steady-state scheduling no longer allocates).
    pub fn capacity(&self) -> usize {
        self.heap.capacity().min(self.slab.capacity())
    }

    /// Payload slots ever created — the high-water mark of concurrently
    /// pending events (occupied slots plus the recycled free list).
    pub fn slab_slots(&self) -> usize {
        self.slab.len()
    }

    /// Vacant payload slots currently awaiting reuse.
    pub fn free_slots(&self) -> usize {
        self.free.len()
    }

    /// Bytes of backing storage currently reserved by the queue: the heap
    /// entries, the payload slab, and the free list. Self-reported memory
    /// accounting for the scaling experiments — no `ps` required.
    pub fn mem_bytes(&self) -> u64 {
        (self.heap.capacity() * std::mem::size_of::<Entry>()
            + self.slab.capacity() * std::mem::size_of::<Option<T>>()
            + self.free.capacity() * std::mem::size_of::<u32>()) as u64
    }

    fn sift_up(&mut self, mut i: usize) {
        let moved = self.heap[i];
        while i > 0 {
            let parent = (i - 1) / ARITY;
            if self.heap[parent].key() <= moved.key() {
                break;
            }
            self.heap[i] = self.heap[parent];
            i = parent;
        }
        self.heap[i] = moved;
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.heap.len();
        let moved = self.heap[i];
        let moved_key = moved.key();
        loop {
            let first_child = i * ARITY + 1;
            if first_child >= n {
                break;
            }
            // Scanning the children as a subslice lets the compiler hoist
            // the bounds check out of the loop.
            let end = (first_child + ARITY).min(n);
            let mut best = first_child;
            let mut best_key = self.heap[first_child].key();
            for (off, e) in self.heap[first_child..end].iter().enumerate().skip(1) {
                let k = e.key();
                if k < best_key {
                    best = first_child + off;
                    best_key = k;
                }
            }
            if best_key >= moved_key {
                break;
            }
            self.heap[i] = self.heap[best];
            i = best;
        }
        self.heap[i] = moved;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(5), 5u32);
        q.schedule(SimTime::from_nanos(1), 1);
        q.schedule(SimTime::from_nanos(3), 3);
        let got: Vec<u32> = std::iter::from_fn(|| q.pop().map(|s| s.payload)).collect();
        assert_eq!(got, vec![1, 3, 5]);
    }

    #[test]
    fn ties_break_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100u32 {
            q.schedule(SimTime::from_nanos(7), i);
        }
        let got: Vec<u32> = std::iter::from_fn(|| q.pop().map(|s| s.payload)).collect();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn ties_break_in_insertion_order_with_interleaved_pops() {
        // Same-timestamp FIFO must survive pops reshaping the heap.
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(7);
        for i in 0..10u32 {
            q.schedule(t, i);
        }
        assert_eq!(q.pop().unwrap().payload, 0);
        for i in 10..20u32 {
            q.schedule(t, i);
        }
        let got: Vec<u32> = std::iter::from_fn(|| q.pop().map(|s| s.payload)).collect();
        assert_eq!(got, (1..20).collect::<Vec<_>>());
    }

    #[test]
    fn peek_time_reports_earliest() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_nanos(9), ());
        q.schedule(SimTime::from_nanos(2), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(2)));
    }

    #[test]
    fn counters() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::ZERO, ());
        q.schedule(SimTime::ZERO, ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled_total(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert_eq!(q.scheduled_total(), 2);
    }

    #[test]
    fn slab_slots_are_recycled() {
        let mut q = EventQueue::with_capacity(4);
        for round in 0..100u64 {
            q.schedule(SimTime::from_nanos(round), round);
            q.schedule(SimTime::from_nanos(round), round + 1);
            assert_eq!(q.pop().unwrap().payload, round);
            assert_eq!(q.pop().unwrap().payload, round + 1);
        }
        // Two live events at a time: the slab never needs more than the
        // initial capacity, so no backing vector has grown.
        assert!(q.capacity() >= 4);
        assert!(q.slab.len() <= 4, "slab grew to {}", q.slab.len());
    }

    #[test]
    fn large_random_workload_sorts() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(11);
        let mut q = EventQueue::new();
        for i in 0..10_000u64 {
            q.schedule(SimTime::from_nanos(rng.gen_range(0..1_000)), i);
        }
        let mut prev: Option<(SimTime, u64)> = None;
        while let Some(s) = q.pop() {
            if let Some(p) = prev {
                assert!((s.at, s.seq) > p, "order violated: {:?} after {:?}", s, p);
            }
            prev = Some((s.at, s.seq));
        }
    }
}
