//! The protocol-agnostic stack interface.
//!
//! [`Protocol`] is the minimal contract the kernel needs to *drive* a
//! state machine; it says nothing about what the machine is doing. The
//! experiment, chaos, and conformance layers need more: they inject
//! workload commands, audit message stores at the end of a run, sample
//! overlay attachment for repair metrics, and decide which safety
//! invariants an oracle may enforce. [`Stack`] is that surface — the
//! capabilities a *dissemination stack* (GoCast, Plumtree/HyParView, the
//! gossip baselines, ...) exposes so the upper layers can stay generic
//! instead of hard-wiring one protocol's accessors.
//!
//! A stack must answer cheap snapshot queries (`joined`, `attached`,
//! `overlay_degree`, `holds`, ...) and construct the harness commands of
//! its own command type (`cmd_multicast`, `cmd_join`, ...). It also
//! declares [`StackCaps`]: which optional invariants its design actually
//! promises, so checkers skip the rest instead of mis-firing.

use crate::id::NodeId;
use crate::protocol::Protocol;

/// Which optional safety invariants a stack's design promises.
///
/// The *universal* multicast invariants — no delivery before the origin's
/// injection, at most one delivery per node per message — are not listed
/// here: every stack must satisfy them and checkers always enforce them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StackCaps {
    /// Overlay degrees stay within configured bounds after every protocol
    /// link change (GoCast's accept rules). Stacks with unbounded or
    /// reactive views (HyParView evicts *after* adding) leave this off.
    pub degree_bounds: bool,
    /// The stack never requests a payload it already holds (GoCast's pull
    /// rule; Plumtree's graft-only-when-missing rule).
    pub pull_after_delivery: bool,
    /// The stack maintains an explicit dissemination tree with
    /// parent/orphan semantics, so `ParentChanged`-style events and
    /// orphan-spell metrics are meaningful.
    pub tree: bool,
}

impl StackCaps {
    /// Only the universal invariants: nothing optional is promised.
    pub const fn universal() -> Self {
        StackCaps {
            degree_bounds: false,
            pull_after_delivery: false,
            tree: false,
        }
    }

    /// Every optional invariant is promised (GoCast).
    pub const fn all() -> Self {
        StackCaps {
            degree_bounds: true,
            pull_after_delivery: true,
            tree: true,
        }
    }
}

/// A pluggable dissemination stack: a [`Protocol`] plus the snapshot and
/// command surface the experiment machinery needs.
///
/// What a new stack **must** provide: a stable [`Stack::NAME`] (used as
/// the `proto` tag in JSONL traces and CSV rows), honest [`StackCaps`],
/// the snapshot queries, and the `Multicast`/`Join`/`Leave` command
/// constructors. What it **need not** provide: a freeze command
/// ([`Stack::cmd_freeze`] defaults to `None`), a tree (report
/// `attached()` as whatever "connected to the dissemination structure"
/// means for the design), or a partial membership view
/// ([`Stack::member_count`] is 0 for full-membership stacks).
pub trait Stack: Protocol {
    /// Stable lowercase stack name (`"gocast"`, `"plumtree"`, ...). Tags
    /// trace records and experiment output rows.
    const NAME: &'static str;

    /// Which optional invariants this stack's design promises.
    fn capabilities() -> StackCaps;

    /// Whether the node currently considers itself a group member (false
    /// after a graceful leave, true again after a rejoin completes).
    fn joined(&self) -> bool;

    /// Whether the node is attached to the dissemination structure: for a
    /// tree stack, it has a parent or is the root; for a mesh stack, it
    /// has at least one live overlay neighbor. Drives repair metrics.
    fn attached(&self) -> bool;

    /// Current overlay neighbor count (0 for overlay-less stacks).
    fn overlay_degree(&self) -> usize;

    /// Size of the node's partial membership view (0 when the stack
    /// assumes full membership).
    fn member_count(&self) -> usize;

    /// Messages delivered to this node so far.
    fn delivered_count(&self) -> u64;

    /// Whether the node's store holds the message `(origin, seq)` — the
    /// end-of-run delivery audit, independent of the event stream.
    fn holds(&self, origin: NodeId, seq: u32) -> bool;

    /// The command that starts a multicast from the receiving node.
    fn cmd_multicast() -> Self::Command;

    /// The command that (re)joins the group through `contact`.
    fn cmd_join(contact: NodeId) -> Self::Command;

    /// The command that gracefully leaves the group.
    fn cmd_leave() -> Self::Command;

    /// The command that freezes background maintenance (`None` when the
    /// stack has no such switch; harnesses then simply skip the freeze).
    fn cmd_freeze() -> Option<Self::Command> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caps_presets() {
        let u = StackCaps::universal();
        assert!(!u.degree_bounds && !u.pull_after_delivery && !u.tree);
        let a = StackCaps::all();
        assert!(a.degree_bounds && a.pull_after_delivery && a.tree);
    }
}
