//! Node identifiers.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifies a node in the simulation.
///
/// In the paper each node is identified by its IP address; in the simulator a
/// dense index plays that role (it doubles as the index into kernel tables).
///
/// ```
/// use gocast_sim::NodeId;
///
/// let a = NodeId::new(3);
/// assert_eq!(a.index(), 3);
/// assert_eq!(a.to_string(), "n3");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a dense index.
    pub const fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// The dense index backing this id.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw `u32` value.
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let id = NodeId::new(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id.as_u32(), 42);
        assert_eq!(NodeId::from(42u32), id);
    }

    #[test]
    fn ordering_is_by_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
    }

    #[test]
    fn display() {
        assert_eq!(NodeId::new(7).to_string(), "n7");
    }
}
