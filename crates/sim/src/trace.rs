//! Streaming JSONL trace sink.
//!
//! [`TraceRecorder`] is a [`Recorder`] that serializes every event as one
//! JSON object per line and writes it to any [`io::Write`] sink. It is the
//! causal-trace counterpart of the aggregating recorders: where those fold
//! events into O(nodes) summaries, a trace preserves the full per-event
//! `(time, node, event)` stream for offline tree reconstruction and
//! invariant checking — at O(1) *memory* per event (a bounded reuse
//! buffer), with the stream itself living on disk.
//!
//! The event type opts in by implementing [`TraceEvent`], appending its
//! own fields to the line. The schema is flat JSON with stable snake_case
//! keys:
//!
//! ```text
//! {"t_us":1200300,"node":17,"ev":"delivered","origin":3,"seq":9,"from":5,"hop":2,"via":"tree"}
//! ```
//!
//! Tracing is strictly opt-in: simulations built without a
//! `TraceRecorder` (the default [`NullRecorder`](crate::NullRecorder)
//! path, or any aggregate-only recorder) pay nothing.

use std::fmt::Write as _;
use std::fs::File;
use std::io;
use std::path::Path;

use crate::id::NodeId;
use crate::recorder::Recorder;
use crate::time::SimTime;

/// Flush the internal string buffer to the sink once it exceeds this many
/// bytes. Keeps memory bounded while amortizing `write` syscalls.
const FLUSH_THRESHOLD: usize = 64 * 1024;

/// An event that can append itself to a JSONL trace line.
///
/// Implementations append `"ev":"<kind>"` plus their own fields (each
/// preceded by a comma) to `out`; the recorder supplies the `t_us` and
/// `node` fields and the surrounding braces. Keys and enum values must be
/// stable snake_case — they are a schema other tools parse.
pub trait TraceEvent {
    /// Appends `"ev":"...",...` (no surrounding braces, no leading comma)
    /// to `out`.
    fn trace_fields(&self, out: &mut String);
}

/// Streams events as JSON Lines into an [`io::Write`] sink.
///
/// Buffers formatted lines in a reused `String` and flushes whenever the
/// buffer passes a fixed threshold, on [`TraceRecorder::flush`], and on
/// drop (best-effort). Write errors are sticky: the first one is kept and
/// returned by [`TraceRecorder::finish`]; subsequent events are dropped
/// rather than panicking mid-simulation.
///
/// ```
/// use gocast_sim::{NodeId, Recorder, SimTime, TraceEvent, TraceRecorder};
///
/// struct Tick;
/// impl TraceEvent for Tick {
///     fn trace_fields(&self, out: &mut String) {
///         out.push_str("\"ev\":\"tick\"");
///     }
/// }
///
/// let mut rec = TraceRecorder::new(Vec::new());
/// rec.record(SimTime::from_secs(1), NodeId::new(7), Tick);
/// let bytes = rec.finish().unwrap();
/// assert_eq!(
///     String::from_utf8(bytes).unwrap(),
///     "{\"t_us\":1000000,\"node\":7,\"ev\":\"tick\"}\n"
/// );
/// ```
#[derive(Debug)]
pub struct TraceRecorder<W: io::Write> {
    /// `None` only after `finish()` has taken the sink out.
    sink: Option<W>,
    buf: String,
    lines: u64,
    error: Option<io::Error>,
    /// Stack name stamped as a `"proto"` field on every line (`None` =
    /// untagged; readers default untagged lines to `gocast`).
    proto: Option<&'static str>,
}

impl TraceRecorder<io::BufWriter<File>> {
    /// Opens (truncating) `path` and returns a recorder writing to it.
    ///
    /// # Errors
    ///
    /// Returns the error from [`File::create`].
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        Ok(TraceRecorder::new(io::BufWriter::new(File::create(path)?)))
    }
}

impl<W: io::Write> TraceRecorder<W> {
    /// Wraps a sink.
    pub fn new(sink: W) -> Self {
        TraceRecorder {
            sink: Some(sink),
            buf: String::with_capacity(FLUSH_THRESHOLD + 256),
            lines: 0,
            error: None,
            proto: None,
        }
    }

    /// Tags every subsequent line with `"proto":"<name>"` (builder
    /// style). Use the stack's stable name; readers treat untagged lines
    /// as `gocast`, so GoCast traces may stay untagged for backward
    /// compatibility.
    ///
    /// ```
    /// use gocast_sim::{NodeId, Recorder, SimTime, TraceEvent, TraceRecorder};
    ///
    /// struct Tick;
    /// impl TraceEvent for Tick {
    ///     fn trace_fields(&self, out: &mut String) {
    ///         out.push_str("\"ev\":\"tick\"");
    ///     }
    /// }
    ///
    /// let mut rec = TraceRecorder::new(Vec::new()).with_proto("plumtree");
    /// rec.record(SimTime::from_secs(1), NodeId::new(7), Tick);
    /// let bytes = rec.finish().unwrap();
    /// assert_eq!(
    ///     String::from_utf8(bytes).unwrap(),
    ///     "{\"t_us\":1000000,\"node\":7,\"proto\":\"plumtree\",\"ev\":\"tick\"}\n"
    /// );
    /// ```
    pub fn with_proto(mut self, proto: &'static str) -> Self {
        self.proto = Some(proto);
        self
    }

    /// Lines written (including any still in the buffer).
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Writes the buffered lines through to the sink.
    ///
    /// # Errors
    ///
    /// Returns the first write error (current or previously recorded).
    pub fn flush(&mut self) -> io::Result<()> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        let Some(sink) = self.sink.as_mut() else {
            return Ok(());
        };
        if !self.buf.is_empty() {
            sink.write_all(self.buf.as_bytes())?;
            self.buf.clear();
        }
        sink.flush()
    }

    /// Flushes and returns the sink.
    ///
    /// # Errors
    ///
    /// Returns the first write error (current or previously recorded).
    pub fn finish(mut self) -> io::Result<W> {
        self.flush()?;
        Ok(self.sink.take().expect("finish called once"))
    }

    fn flush_buffer(&mut self) {
        let Some(sink) = self.sink.as_mut() else {
            self.buf.clear();
            return;
        };
        if self.error.is_some() {
            self.buf.clear();
            return;
        }
        if let Err(e) = sink.write_all(self.buf.as_bytes()) {
            self.error = Some(e);
        }
        self.buf.clear();
    }
}

/// Metric snapshots stream into the same JSONL traces as protocol events:
/// `{"t_us":...,"node":0,"ev":"metrics","kernel_events":...,...}`. Only the
/// deterministic entries are written (wall-clock histograms are excluded),
/// so a metrics-bearing trace stays byte-identical for a given seed.
impl TraceEvent for gocast_metrics::Snapshot {
    fn trace_fields(&self, out: &mut String) {
        out.push_str("\"ev\":\"metrics\"");
        let mut fields = String::new();
        self.write_json_fields(&mut fields, true);
        if !fields.is_empty() {
            out.push(',');
            out.push_str(&fields);
        }
    }
}

impl<W: io::Write, E: TraceEvent> Recorder<E> for TraceRecorder<W> {
    fn record(&mut self, now: SimTime, node: NodeId, event: E) {
        let t_us = now.as_nanos() / 1_000;
        let _ = write!(self.buf, "{{\"t_us\":{},\"node\":{},", t_us, node.as_u32());
        if let Some(proto) = self.proto {
            let _ = write!(self.buf, "\"proto\":\"{proto}\",");
        }
        event.trace_fields(&mut self.buf);
        self.buf.push_str("}\n");
        self.lines += 1;
        if self.buf.len() >= FLUSH_THRESHOLD {
            self.flush_buffer();
        }
    }
}

impl<W: io::Write> Drop for TraceRecorder<W> {
    fn drop(&mut self) {
        self.flush_buffer();
        if let Some(sink) = self.sink.as_mut() {
            let _ = sink.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Ev(u32);

    impl TraceEvent for Ev {
        fn trace_fields(&self, out: &mut String) {
            let _ = write!(out, "\"ev\":\"ev\",\"v\":{}", self.0);
        }
    }

    #[test]
    fn lines_are_flat_json() {
        let mut rec = TraceRecorder::new(Vec::new());
        rec.record(SimTime::from_nanos(1_500), NodeId::new(3), Ev(9));
        rec.record(SimTime::from_secs(2), NodeId::new(0), Ev(1));
        assert_eq!(rec.lines(), 2);
        let out = String::from_utf8(rec.finish().unwrap()).unwrap();
        assert_eq!(
            out,
            "{\"t_us\":1,\"node\":3,\"ev\":\"ev\",\"v\":9}\n\
             {\"t_us\":2000000,\"node\":0,\"ev\":\"ev\",\"v\":1}\n"
        );
    }

    #[test]
    fn proto_tag_lands_between_node_and_event_fields() {
        let mut rec = TraceRecorder::new(Vec::new()).with_proto("plumtree");
        rec.record(SimTime::from_nanos(2_000), NodeId::new(1), Ev(4));
        let out = String::from_utf8(rec.finish().unwrap()).unwrap();
        assert_eq!(
            out,
            "{\"t_us\":2,\"node\":1,\"proto\":\"plumtree\",\"ev\":\"ev\",\"v\":4}\n"
        );
    }

    #[test]
    fn buffer_flushes_at_threshold_not_per_event() {
        // Shared sink that counts write calls.
        use std::cell::RefCell;
        use std::rc::Rc;

        #[derive(Clone, Default)]
        struct CountingSink(Rc<RefCell<(usize, usize)>>); // (writes, bytes)
        impl io::Write for CountingSink {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                let mut s = self.0.borrow_mut();
                s.0 += 1;
                s.1 += buf.len();
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let sink = CountingSink::default();
        let stats = Rc::clone(&sink.0);
        let mut rec = TraceRecorder::new(sink);
        for i in 0..1000 {
            rec.record(SimTime::from_nanos(i), NodeId::new(0), Ev(i as u32));
        }
        let writes_before_finish = stats.borrow().0;
        assert!(
            writes_before_finish < 10,
            "expected coarse flushes, got {writes_before_finish} writes"
        );
        rec.finish().unwrap();
        assert!(stats.borrow().1 > 1000 * 30, "all bytes reached the sink");
    }

    #[test]
    fn drop_flushes_best_effort() {
        use std::cell::RefCell;
        use std::rc::Rc;

        #[derive(Clone, Default)]
        struct SharedSink(Rc<RefCell<Vec<u8>>>);
        impl io::Write for SharedSink {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.0.borrow_mut().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let sink = SharedSink::default();
        let bytes = Rc::clone(&sink.0);
        {
            let mut rec = TraceRecorder::new(sink);
            rec.record(SimTime::ZERO, NodeId::new(1), Ev(5));
        } // dropped without finish()
        assert!(!bytes.borrow().is_empty());
    }

    #[test]
    fn write_errors_are_sticky_and_reported() {
        struct FailingSink;
        impl io::Write for FailingSink {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("disk full"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let mut rec = TraceRecorder::new(FailingSink);
        // Enough events to cross the flush threshold and hit the error.
        for i in 0..3000 {
            rec.record(SimTime::from_nanos(i), NodeId::new(0), Ev(0));
        }
        assert!(rec.finish().is_err());
    }
}
