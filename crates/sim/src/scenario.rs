//! Declarative, deterministic fault scenarios (the chaos engine).
//!
//! A [`Scenario`] is a *description* of faults: timed one-shot events
//! (crashes, link cuts, partitions, loss/jitter changes) plus stochastic
//! processes (Poisson churn, flash crowds, mass departures, correlated
//! site crashes). Compiling it against a [`ScenarioEnv`] expands every
//! stochastic process into a concrete, time-sorted [`ScenarioPlan`] of
//! [`Fault`]s — using a dedicated RNG stream derived from the scenario
//! seed, never the kernel's per-node streams — so:
//!
//! - the same `(scenario, env)` pair always compiles to the *same* plan,
//!   and replaying it through the same simulation reproduces results
//!   byte-for-byte;
//! - compiling a scenario cannot perturb protocol behaviour: nodes draw
//!   from their own streams exactly as they would without chaos.
//!
//! The plan is protocol-agnostic. Crashes, link state, partitions, loss,
//! and jitter map directly onto kernel controls; graceful *leave* and
//! *join* are expressed as protocol commands supplied by the caller when
//! scheduling the plan (see [`ScenarioPlan::schedule_into`]).
//!
//! ```
//! use gocast_sim::{Scenario, ScenarioEnv, Split};
//! use std::time::Duration;
//!
//! // 20 s of Poisson churn (≈0.5 leaves/s and joins/s), a half/half
//! // partition at t=5 s healing at t=10 s, and 1% message loss from t=0.
//! let scenario = Scenario::new()
//!     .churn(
//!         Duration::ZERO,
//!         Duration::from_secs(20),
//!         0.5,
//!         0.5,
//!     )
//!     .partition_at(Duration::from_secs(5), Duration::from_secs(10), Split::Halves)
//!     .loss_at(Duration::ZERO, 0.01);
//!
//! let env = ScenarioEnv::new(64, 7);
//! let plan = scenario.compile(&env);
//! assert_eq!(plan, scenario.compile(&env), "compilation is deterministic");
//! assert!(!plan.is_empty());
//! ```

use std::time::Duration;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::id::NodeId;
use crate::kernel::Sim;
use crate::protocol::Protocol;
use crate::recorder::Recorder;
use crate::time::SimTime;

/// How a partition divides the node population.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Split {
    /// Node ids `0..n/2` on one side, the rest on the other.
    Halves,
    /// The given group (site/cluster id, see [`ScenarioEnv::with_groups`])
    /// isolated from everyone else.
    IsolateGroup(u32),
    /// An explicit side label per node (length must equal the node count).
    Custom(Vec<u32>),
}

/// One concrete fault action in a compiled [`ScenarioPlan`].
#[derive(Debug, Clone, PartialEq)]
pub enum Fault {
    /// Crash a node permanently (kernel-level: it stops executing).
    Crash(NodeId),
    /// Gracefully leave the overlay (protocol command).
    Leave(NodeId),
    /// (Re)join the overlay through `contact` (protocol command).
    Join {
        /// The node joining.
        node: NodeId,
        /// A node expected to be in the overlay at that time.
        contact: NodeId,
    },
    /// Cut the network path between two nodes.
    CutLink(NodeId, NodeId),
    /// Restore a previously cut path.
    HealLink(NodeId, NodeId),
    /// Install a partition (side label per node).
    Partition(Vec<u32>),
    /// Remove the active partition.
    HealPartition,
    /// Set the per-message loss probability.
    SetLoss(f64),
    /// Set the maximum per-message latency jitter.
    SetJitter(Duration),
}

/// A [`Fault`] with its absolute firing time.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedFault {
    /// When the fault fires.
    pub at: SimTime,
    /// What happens.
    pub fault: Fault,
}

/// The population a scenario compiles against: node count, scenario seed,
/// optional group (site/cluster) assignment for correlated faults, and
/// the absolute time the scenario's `t = 0` maps to.
#[derive(Debug, Clone)]
pub struct ScenarioEnv<'a> {
    nodes: usize,
    seed: u64,
    groups: Option<&'a [u32]>,
    start: SimTime,
}

impl<'a> ScenarioEnv<'a> {
    /// An environment of `nodes` nodes compiled with `seed`. Scenario
    /// offsets are relative to simulation time zero; shift them with
    /// [`ScenarioEnv::starting_at`].
    pub fn new(nodes: usize, seed: u64) -> Self {
        ScenarioEnv {
            nodes,
            seed,
            groups: None,
            start: SimTime::ZERO,
        }
    }

    /// Supplies a group (site/cluster) id per node, enabling
    /// [`Scenario::crash_group_at`] and [`Split::IsolateGroup`].
    ///
    /// # Panics
    ///
    /// Panics if `groups.len()` differs from the node count.
    pub fn with_groups(mut self, groups: &'a [u32]) -> Self {
        assert_eq!(groups.len(), self.nodes, "one group id per node");
        self.groups = Some(groups);
        self
    }

    /// Maps the scenario's `t = 0` to the absolute time `start` (typically
    /// the end of an experiment's warm-up phase).
    pub fn starting_at(mut self, start: SimTime) -> Self {
        self.start = start;
        self
    }

    /// The node count.
    pub fn nodes(&self) -> usize {
        self.nodes
    }
}

/// A scenario step, before compilation. Stochastic steps (`Churn`,
/// `MassLeave`, `FlashCrowd`, group crashes) expand to concrete faults at
/// compile time.
#[derive(Debug, Clone)]
enum Step {
    Crash {
        at: Duration,
        node: u32,
    },
    CrashGroup {
        at: Duration,
        group: u32,
    },
    CrashGroupOf {
        at: Duration,
        node: u32,
    },
    CutLink {
        at: Duration,
        a: u32,
        b: u32,
    },
    HealLink {
        at: Duration,
        a: u32,
        b: u32,
    },
    Loss {
        at: Duration,
        p: f64,
    },
    Jitter {
        at: Duration,
        jitter: Duration,
    },
    Partition {
        at: Duration,
        heal_at: Duration,
        split: Split,
    },
    Churn {
        start: Duration,
        end: Duration,
        leave_rate: f64,
        join_rate: f64,
    },
    MassLeave {
        at: Duration,
        count: usize,
    },
    FlashCrowd {
        at: Duration,
        count: usize,
    },
}

/// A declarative fault schedule: build one with the chained methods, then
/// [`Scenario::compile`] it against a [`ScenarioEnv`] into a concrete
/// [`ScenarioPlan`].
///
/// All times are offsets from the environment's start time. See the
/// [module docs](crate::scenario) for an end-to-end example.
#[derive(Debug, Clone)]
pub struct Scenario {
    steps: Vec<Step>,
    protected: Vec<u32>,
    min_present: usize,
}

impl Default for Scenario {
    fn default() -> Self {
        Self::new()
    }
}

impl Scenario {
    /// An empty scenario (no faults).
    pub fn new() -> Self {
        Scenario {
            steps: Vec::new(),
            protected: Vec::new(),
            min_present: 2,
        }
    }

    /// Crashes `node` at `at` (permanent: crashed nodes never return).
    pub fn crash_at(mut self, at: Duration, node: NodeId) -> Self {
        self.steps.push(Step::Crash {
            at,
            node: node.as_u32(),
        });
        self
    }

    /// Crashes every present node of `group` at `at` — a correlated
    /// site/AS-level failure. Requires [`ScenarioEnv::with_groups`].
    pub fn crash_group_at(mut self, at: Duration, group: u32) -> Self {
        self.steps.push(Step::CrashGroup { at, group });
        self
    }

    /// Crashes every present node in the same group as `node` at `at`.
    /// Requires [`ScenarioEnv::with_groups`].
    pub fn crash_group_of_at(mut self, at: Duration, node: NodeId) -> Self {
        self.steps.push(Step::CrashGroupOf {
            at,
            node: node.as_u32(),
        });
        self
    }

    /// Cuts the network path between `a` and `b` at `at`.
    pub fn cut_link_at(mut self, at: Duration, a: NodeId, b: NodeId) -> Self {
        self.steps.push(Step::CutLink {
            at,
            a: a.as_u32(),
            b: b.as_u32(),
        });
        self
    }

    /// Restores the path between `a` and `b` at `at`.
    pub fn heal_link_at(mut self, at: Duration, a: NodeId, b: NodeId) -> Self {
        self.steps.push(Step::HealLink {
            at,
            a: a.as_u32(),
            b: b.as_u32(),
        });
        self
    }

    /// Sets the per-message loss probability to `p` from `at` onward.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `0.0..=1.0`.
    pub fn loss_at(mut self, at: Duration, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "loss probability {p} not in 0..=1"
        );
        self.steps.push(Step::Loss { at, p });
        self
    }

    /// Sets the maximum per-message latency jitter from `at` onward.
    pub fn jitter_at(mut self, at: Duration, jitter: Duration) -> Self {
        self.steps.push(Step::Jitter { at, jitter });
        self
    }

    /// Partitions the network at `at` and heals it at `heal_at`.
    ///
    /// # Panics
    ///
    /// Panics if `heal_at < at`.
    pub fn partition_at(mut self, at: Duration, heal_at: Duration, split: Split) -> Self {
        assert!(heal_at >= at, "partition must heal after it forms");
        self.steps.push(Step::Partition { at, heal_at, split });
        self
    }

    /// Runs a Poisson churn process over `[start, end)`: graceful leaves
    /// arrive at `leave_rate` per second and rejoins of previously departed
    /// nodes at `join_rate` per second. Leave victims are drawn uniformly
    /// from present, unprotected nodes; joiners contact a uniformly drawn
    /// present node.
    ///
    /// # Panics
    ///
    /// Panics if `end < start` or either rate is negative or non-finite.
    pub fn churn(
        mut self,
        start: Duration,
        end: Duration,
        leave_rate: f64,
        join_rate: f64,
    ) -> Self {
        assert!(end >= start, "churn window must not be inverted");
        assert!(
            leave_rate >= 0.0 && leave_rate.is_finite(),
            "leave rate must be finite and non-negative"
        );
        assert!(
            join_rate >= 0.0 && join_rate.is_finite(),
            "join rate must be finite and non-negative"
        );
        self.steps.push(Step::Churn {
            start,
            end,
            leave_rate,
            join_rate,
        });
        self
    }

    /// `count` simultaneous graceful leaves at `at` (drawn uniformly from
    /// present, unprotected nodes).
    pub fn mass_leave_at(mut self, at: Duration, count: usize) -> Self {
        self.steps.push(Step::MassLeave { at, count });
        self
    }

    /// A flash crowd: `count` previously departed nodes rejoin
    /// simultaneously at `at` (each through a random present contact).
    /// Rejoins only ever revive *departed* nodes, so schedule departures
    /// first.
    pub fn flash_crowd_at(mut self, at: Duration, count: usize) -> Self {
        self.steps.push(Step::FlashCrowd { at, count });
        self
    }

    /// Exempts `node` from stochastic leave/crash selection (timed
    /// [`Scenario::crash_at`] steps still apply). Useful to keep a
    /// designated root or measurement vantage alive.
    pub fn protect(mut self, node: NodeId) -> Self {
        self.protected.push(node.as_u32());
        self
    }

    /// Stochastic departures never shrink the present population below
    /// `floor` nodes (default 2).
    pub fn min_present(mut self, floor: usize) -> Self {
        self.min_present = floor;
        self
    }

    /// Number of steps described (stochastic steps count once, however
    /// many faults they expand to).
    pub fn step_count(&self) -> usize {
        self.steps.len()
    }

    /// Expands every stochastic process into concrete faults and returns
    /// the time-sorted plan. Deterministic: the same scenario and
    /// environment always produce the same plan.
    ///
    /// # Panics
    ///
    /// Panics if a step requires group information the environment does
    /// not carry, references a node id outside `0..env.nodes()`, or a
    /// [`Split::Custom`] label vector has the wrong length.
    pub fn compile(&self, env: &ScenarioEnv<'_>) -> ScenarioPlan {
        Compiler::new(self, env).run()
    }
}

/// Membership-affecting operation, resolved in time order at compile time.
#[derive(Debug)]
enum MemOp {
    ChurnLeave,
    ChurnJoin,
    MassLeave(usize),
    Flash(usize),
    Crash(u32),
    CrashGroup(u32),
    CrashGroupOf(u32),
}

struct Compiler<'s, 'e> {
    scenario: &'s Scenario,
    env: &'e ScenarioEnv<'e>,
    rng: SmallRng,
    present: Vec<bool>,
    /// Nodes that left gracefully and may rejoin.
    out_pool: Vec<u32>,
    events: Vec<PlannedFault>,
    bursts: Vec<(SimTime, String)>,
}

impl<'s, 'e> Compiler<'s, 'e> {
    fn new(scenario: &'s Scenario, env: &'e ScenarioEnv<'e>) -> Self {
        Compiler {
            scenario,
            env,
            // A stream distinct from both the kernel's per-node streams
            // (seed * GOLDEN ^ node_index) and its chaos stream.
            rng: SmallRng::seed_from_u64(
                env.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x5CE7_A110_CA05_0B5E,
            ),
            present: vec![true; env.nodes],
            out_pool: Vec::new(),
            events: Vec::new(),
            bursts: Vec::new(),
        }
    }

    fn at(&self, offset: Duration) -> SimTime {
        self.env.start + offset
    }

    fn groups(&self) -> &[u32] {
        self.env
            .groups
            .expect("scenario uses group-correlated faults but the environment has no groups")
    }

    fn check_node(&self, node: u32) {
        assert!(
            (node as usize) < self.env.nodes,
            "scenario references node {node} but the environment has {} nodes",
            self.env.nodes
        );
    }

    fn run(mut self) -> ScenarioPlan {
        // Phase 1: collect membership-affecting operations with stable
        // ordering keys, expanding Poisson processes into arrivals.
        let mut ops: Vec<(Duration, u64, MemOp)> = Vec::new();
        let mut order = 0u64;
        let mut push = |ops: &mut Vec<(Duration, u64, MemOp)>, at: Duration, op: MemOp| {
            ops.push((at, order, op));
            order += 1;
        };
        for step in &self.scenario.steps {
            match step {
                Step::Churn {
                    start,
                    end,
                    leave_rate,
                    join_rate,
                } => {
                    for t in poisson_arrivals(&mut self.rng, *start, *end, *leave_rate) {
                        push(&mut ops, t, MemOp::ChurnLeave);
                    }
                    for t in poisson_arrivals(&mut self.rng, *start, *end, *join_rate) {
                        push(&mut ops, t, MemOp::ChurnJoin);
                    }
                }
                Step::MassLeave { at, count } => push(&mut ops, *at, MemOp::MassLeave(*count)),
                Step::FlashCrowd { at, count } => push(&mut ops, *at, MemOp::Flash(*count)),
                Step::Crash { at, node } => {
                    self.check_node(*node);
                    push(&mut ops, *at, MemOp::Crash(*node));
                }
                Step::CrashGroup { at, group } => push(&mut ops, *at, MemOp::CrashGroup(*group)),
                Step::CrashGroupOf { at, node } => {
                    self.check_node(*node);
                    push(&mut ops, *at, MemOp::CrashGroupOf(*node));
                }
                _ => {}
            }
        }
        ops.sort_by_key(|(at, order, _)| (*at, *order));

        // Phase 2: resolve them in time order against the evolving
        // membership bookkeeping.
        for (at, _, op) in ops {
            let at = self.at(at);
            match op {
                MemOp::ChurnLeave => self.resolve_leaves(at, 1, "churn-leave"),
                MemOp::ChurnJoin => self.resolve_joins(at, 1),
                MemOp::MassLeave(k) => {
                    self.bursts.push((at, format!("mass-leave({k})")));
                    self.resolve_leaves(at, k, "mass-leave");
                }
                MemOp::Flash(k) => {
                    self.bursts.push((at, format!("flash-crowd({k})")));
                    self.resolve_joins(at, k);
                }
                MemOp::Crash(node) => self.resolve_crash(at, node),
                MemOp::CrashGroup(g) => self.resolve_group_crash(at, g),
                MemOp::CrashGroupOf(node) => {
                    let g = self.groups()[node as usize];
                    self.resolve_group_crash(at, g);
                }
            }
        }

        // Phase 3: membership-independent steps map to faults directly.
        for step in &self.scenario.steps {
            match step {
                Step::CutLink { at, a, b } => {
                    self.check_node(*a);
                    self.check_node(*b);
                    let f = Fault::CutLink(NodeId::new(*a), NodeId::new(*b));
                    self.emit(self.at(*at), f);
                }
                Step::HealLink { at, a, b } => {
                    self.check_node(*a);
                    self.check_node(*b);
                    let f = Fault::HealLink(NodeId::new(*a), NodeId::new(*b));
                    self.emit(self.at(*at), f);
                }
                Step::Loss { at, p } => self.emit(self.at(*at), Fault::SetLoss(*p)),
                Step::Jitter { at, jitter } => self.emit(self.at(*at), Fault::SetJitter(*jitter)),
                Step::Partition { at, heal_at, split } => {
                    let sides = self.resolve_split(split);
                    let at = self.at(*at);
                    let heal = self.at(*heal_at);
                    self.bursts.push((at, "partition".to_string()));
                    self.bursts.push((heal, "partition-heal".to_string()));
                    self.emit(at, Fault::Partition(sides));
                    self.emit(heal, Fault::HealPartition);
                }
                _ => {}
            }
        }

        self.events.sort_by_key(|e| e.at);
        self.bursts.sort_by_key(|b| b.0);
        ScenarioPlan {
            nodes: self.env.nodes,
            events: self.events,
            bursts: self.bursts,
        }
    }

    fn emit(&mut self, at: SimTime, fault: Fault) {
        self.events.push(PlannedFault { at, fault });
    }

    fn present_count(&self) -> usize {
        self.present.iter().filter(|p| **p).count()
    }

    /// Picks the `k`-th present node satisfying `pred`, uniformly.
    fn pick_present(&mut self, exclude_protected: bool) -> Option<u32> {
        let protected = &self.scenario.protected;
        let eligible: Vec<u32> = self
            .present
            .iter()
            .enumerate()
            .filter(|(i, p)| **p && !(exclude_protected && protected.contains(&(*i as u32))))
            .map(|(i, _)| i as u32)
            .collect();
        if eligible.is_empty() {
            return None;
        }
        let i = self.rng.gen_range(0..eligible.len());
        Some(eligible[i])
    }

    fn resolve_leaves(&mut self, at: SimTime, count: usize, _label: &str) {
        for _ in 0..count {
            if self.present_count() <= self.scenario.min_present.max(2) {
                return;
            }
            let Some(victim) = self.pick_present(true) else {
                return;
            };
            self.present[victim as usize] = false;
            self.out_pool.push(victim);
            self.emit(at, Fault::Leave(NodeId::new(victim)));
        }
    }

    fn resolve_joins(&mut self, at: SimTime, count: usize) {
        for _ in 0..count {
            if self.out_pool.is_empty() {
                return;
            }
            let i = self.rng.gen_range(0..self.out_pool.len());
            let node = self.out_pool.swap_remove(i);
            let Some(contact) = self.pick_present(false) else {
                self.out_pool.push(node);
                return;
            };
            self.present[node as usize] = true;
            self.emit(
                at,
                Fault::Join {
                    node: NodeId::new(node),
                    contact: NodeId::new(contact),
                },
            );
        }
    }

    fn resolve_crash(&mut self, at: SimTime, node: u32) {
        if self.present[node as usize] {
            self.present[node as usize] = false;
            // Crashed nodes never rejoin: not added to the out-pool.
            self.emit(at, Fault::Crash(NodeId::new(node)));
        }
    }

    fn resolve_group_crash(&mut self, at: SimTime, group: u32) {
        let victims: Vec<u32> = self
            .groups()
            .iter()
            .enumerate()
            .filter(|(i, g)| **g == group && self.present[*i])
            .map(|(i, _)| i as u32)
            .collect();
        if victims.is_empty() {
            return;
        }
        self.bursts
            .push((at, format!("crash-group({group}):{}", victims.len())));
        for v in victims {
            self.resolve_crash(at, v);
        }
    }

    fn resolve_split(&self, split: &Split) -> Vec<u32> {
        let n = self.env.nodes;
        match split {
            Split::Halves => (0..n).map(|i| u32::from(i >= n / 2)).collect(),
            Split::IsolateGroup(g) => self.groups().iter().map(|x| u32::from(x == g)).collect(),
            Split::Custom(sides) => {
                assert_eq!(sides.len(), n, "custom split must label every node");
                sides.clone()
            }
        }
    }
}

/// Exponentially distributed Poisson arrival offsets within `[start, end)`.
fn poisson_arrivals(
    rng: &mut SmallRng,
    start: Duration,
    end: Duration,
    rate: f64,
) -> Vec<Duration> {
    let mut out = Vec::new();
    if rate <= 0.0 {
        return out;
    }
    let mut t = start.as_secs_f64();
    let end = end.as_secs_f64();
    loop {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        t += -u.ln() / rate;
        if t >= end {
            return out;
        }
        out.push(Duration::from_secs_f64(t));
    }
}

/// A compiled, time-sorted fault schedule. Obtained from
/// [`Scenario::compile`]; apply it with [`ScenarioPlan::schedule_into`].
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioPlan {
    nodes: usize,
    events: Vec<PlannedFault>,
    /// Labelled fault *bursts* (mass events, group crashes, partitions)
    /// worth measuring recovery after.
    bursts: Vec<(SimTime, String)>,
}

impl ScenarioPlan {
    /// The concrete faults, sorted by firing time.
    pub fn events(&self) -> &[PlannedFault] {
        &self.events
    }

    /// Labelled fault bursts (mass leaves, flash crowds, group crashes,
    /// partition form/heal instants) in time order — the instants a
    /// recovery analysis should measure repair time from.
    pub fn bursts(&self) -> &[(SimTime, String)] {
        &self.bursts
    }

    /// Number of planned faults.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan contains no faults.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The firing time of the last fault, if any.
    pub fn end(&self) -> Option<SimTime> {
        self.events.last().map(|e| e.at)
    }

    /// The node count the plan was compiled for.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Per-node presence over time as implied by the plan (leaves and
    /// crashes make a node absent; joins make it present again).
    pub fn presence(&self) -> PresenceTimeline {
        let mut per_node: Vec<Vec<(SimTime, bool)>> = vec![Vec::new(); self.nodes];
        for ev in &self.events {
            match &ev.fault {
                Fault::Crash(n) | Fault::Leave(n) => per_node[n.index()].push((ev.at, false)),
                Fault::Join { node, .. } => per_node[node.index()].push((ev.at, true)),
                _ => {}
            }
        }
        PresenceTimeline { per_node }
    }

    /// Schedules every planned fault onto `sim`. Kernel faults (crashes,
    /// link state, partitions, loss, jitter) are applied directly;
    /// [`Fault::Leave`] and [`Fault::Join`] become protocol commands built
    /// by `leave` / `join` (`join` receives the contact node).
    ///
    /// # Panics
    ///
    /// Panics if `sim` has a different node count than the plan was
    /// compiled for, or if any fault time is already in the past.
    pub fn schedule_into<P, R>(
        &self,
        sim: &mut Sim<P, R>,
        join: impl FnMut(NodeId) -> P::Command,
        leave: impl FnMut() -> P::Command,
    ) where
        P: Protocol,
        R: Recorder<P::Event>,
    {
        self.schedule_into_sink(sim, join, leave);
    }

    /// Schedules every planned fault onto any [`FaultSink`] — the
    /// single-threaded kernel or the sharded one — so experiment harnesses
    /// can be generic over both. Semantics match
    /// [`ScenarioPlan::schedule_into`].
    ///
    /// # Panics
    ///
    /// Panics if `sink` has a different node count than the plan was
    /// compiled for, or if any fault time is already in the past.
    pub fn schedule_into_sink<C, S>(
        &self,
        sink: &mut S,
        mut join: impl FnMut(NodeId) -> C,
        mut leave: impl FnMut() -> C,
    ) where
        S: FaultSink<C>,
    {
        assert_eq!(
            sink.sink_node_count(),
            self.nodes,
            "plan was compiled for a different node count"
        );
        for ev in &self.events {
            match &ev.fault {
                Fault::Crash(n) => sink.sink_fail_node_at(ev.at, *n),
                Fault::Leave(n) => sink.sink_schedule_command(ev.at, *n, leave()),
                Fault::Join { node, contact } => {
                    sink.sink_schedule_command(ev.at, *node, join(*contact));
                }
                Fault::CutLink(a, b) => sink.sink_fail_link_at(ev.at, *a, *b),
                Fault::HealLink(a, b) => sink.sink_heal_link_at(ev.at, *a, *b),
                Fault::Partition(sides) => sink.sink_partition_at(ev.at, sides.clone()),
                Fault::HealPartition => sink.sink_heal_partition_at(ev.at),
                Fault::SetLoss(p) => sink.sink_set_loss_at(ev.at, *p),
                Fault::SetJitter(j) => sink.sink_set_jitter_at(ev.at, *j),
            }
        }
    }
}

/// Anything a [`ScenarioPlan`] can be scheduled onto: a simulation that
/// accepts timed commands and kernel-level faults. Implemented by both
/// [`Sim`] and [`ShardedSim`](crate::ShardedSim), letting
/// harness code apply one compiled plan to either kernel.
///
/// `C` is the protocol command type (for graceful leave/join). Method
/// names carry a `sink_` prefix so the blanket implementations can call
/// the kernels' identically-named inherent methods without recursing.
pub trait FaultSink<C> {
    /// Node count the sink simulates (plans validate against it).
    fn sink_node_count(&self) -> usize;
    /// Schedules a node crash at `at`.
    fn sink_fail_node_at(&mut self, at: SimTime, node: NodeId);
    /// Schedules a protocol command for `node` at `at`.
    fn sink_schedule_command(&mut self, at: SimTime, node: NodeId, cmd: C);
    /// Schedules a link cut at `at`.
    fn sink_fail_link_at(&mut self, at: SimTime, a: NodeId, b: NodeId);
    /// Schedules a link restore at `at`.
    fn sink_heal_link_at(&mut self, at: SimTime, a: NodeId, b: NodeId);
    /// Schedules a partition (side label per node) at `at`.
    fn sink_partition_at(&mut self, at: SimTime, sides: Vec<u32>);
    /// Schedules the removal of any active partition at `at`.
    fn sink_heal_partition_at(&mut self, at: SimTime);
    /// Schedules a loss-probability change at `at`.
    fn sink_set_loss_at(&mut self, at: SimTime, p: f64);
    /// Schedules a jitter change at `at`.
    fn sink_set_jitter_at(&mut self, at: SimTime, jitter: Duration);
}

impl<P: Protocol, R: Recorder<P::Event>> FaultSink<P::Command> for Sim<P, R> {
    fn sink_node_count(&self) -> usize {
        self.len()
    }

    fn sink_fail_node_at(&mut self, at: SimTime, node: NodeId) {
        self.fail_node_at(at, node);
    }

    fn sink_schedule_command(&mut self, at: SimTime, node: NodeId, cmd: P::Command) {
        self.schedule_command(at, node, cmd);
    }

    fn sink_fail_link_at(&mut self, at: SimTime, a: NodeId, b: NodeId) {
        self.fail_link_at(at, a, b);
    }

    fn sink_heal_link_at(&mut self, at: SimTime, a: NodeId, b: NodeId) {
        self.heal_link_at(at, a, b);
    }

    fn sink_partition_at(&mut self, at: SimTime, sides: Vec<u32>) {
        self.partition_at(at, sides);
    }

    fn sink_heal_partition_at(&mut self, at: SimTime) {
        self.heal_partition_at(at);
    }

    fn sink_set_loss_at(&mut self, at: SimTime, p: f64) {
        self.set_loss_at(at, p);
    }

    fn sink_set_jitter_at(&mut self, at: SimTime, jitter: Duration) {
        self.set_jitter_at(at, jitter);
    }
}

/// Per-node presence over time, derived from a [`ScenarioPlan`]. Every
/// node starts present; graceful leaves and crashes make it absent, joins
/// make it present again.
#[derive(Debug, Clone)]
pub struct PresenceTimeline {
    /// Per node: `(time, present)` transitions in time order.
    per_node: Vec<Vec<(SimTime, bool)>>,
}

impl PresenceTimeline {
    /// Whether `node` is present at time `at` (transitions take effect at
    /// their own timestamp).
    pub fn present(&self, node: NodeId, at: SimTime) -> bool {
        let mut state = true;
        for &(t, p) in &self.per_node[node.index()] {
            if t > at {
                break;
            }
            state = p;
        }
        state
    }

    /// Whether `node` is present at `at` and never departs afterwards —
    /// the eligibility test for end-of-run delivery audits.
    pub fn present_from(&self, node: NodeId, at: SimTime) -> bool {
        if !self.present(node, at) {
            return false;
        }
        !self.per_node[node.index()]
            .iter()
            .any(|&(t, p)| t > at && !p)
    }

    /// Number of nodes present at `at`.
    pub fn count_present(&self, at: SimTime) -> usize {
        (0..self.per_node.len())
            .filter(|&i| self.present(NodeId::new(i as u32), at))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::SimBuilder;
    use crate::latency::FixedLatency;
    use crate::protocol::{Ctx, Timer, Wire};
    use crate::stats::TrafficClass;

    /// A protocol that does nothing (scenario tests drive the kernel).
    struct Quiet;

    #[derive(Debug)]
    struct Never;

    impl Wire for Never {
        fn wire_size(&self) -> u32 {
            0
        }
        fn class(&self) -> TrafficClass {
            TrafficClass::Data
        }
    }

    impl Protocol for Quiet {
        type Msg = Never;
        type Command = QuietCmd;
        type Event = ();

        fn on_start(&mut self, _: &mut Ctx<'_, Self>) {}
        fn on_message(&mut self, _: &mut Ctx<'_, Self>, _: NodeId, _: Never) {}
        fn on_timer(&mut self, _: &mut Ctx<'_, Self>, _: Timer) {}
    }

    #[derive(Debug, Clone, Copy, PartialEq)]
    enum QuietCmd {
        Join(NodeId),
        Leave,
    }

    fn env_with_seed(nodes: usize, seed: u64) -> ScenarioEnv<'static> {
        ScenarioEnv::new(nodes, seed)
    }

    #[test]
    fn compile_is_deterministic_and_seed_sensitive() {
        let s = Scenario::new().churn(Duration::ZERO, Duration::from_secs(60), 0.5, 0.5);
        let a = s.compile(&env_with_seed(64, 1));
        let b = s.compile(&env_with_seed(64, 1));
        assert_eq!(a, b);
        let c = s.compile(&env_with_seed(64, 2));
        assert_ne!(a, c, "different seed, different plan");
        assert!(!a.is_empty(), "expected ~30 leaves and ~30 joins");
    }

    #[test]
    fn churn_alternates_within_population_bounds() {
        let s = Scenario::new()
            .churn(Duration::ZERO, Duration::from_secs(200), 1.0, 1.0)
            .min_present(8);
        let plan = s.compile(&env_with_seed(16, 3));
        // Replay the membership bookkeeping and check the floor.
        let mut present = [true; 16];
        for ev in plan.events() {
            match &ev.fault {
                Fault::Leave(n) => {
                    assert!(present[n.index()], "leave of an absent node");
                    present[n.index()] = false;
                }
                Fault::Join { node, contact } => {
                    assert!(!present[node.index()], "join of a present node");
                    assert!(present[contact.index()], "contact must be present");
                    assert_ne!(node, contact);
                    present[node.index()] = true;
                }
                f => panic!("unexpected fault {f:?}"),
            }
            assert!(present.iter().filter(|p| **p).count() >= 8);
        }
    }

    #[test]
    fn protected_nodes_never_leave() {
        let s = Scenario::new()
            .churn(Duration::ZERO, Duration::from_secs(500), 2.0, 0.5)
            .protect(NodeId::new(0));
        let plan = s.compile(&env_with_seed(8, 5));
        for ev in plan.events() {
            if let Fault::Leave(n) = &ev.fault {
                assert_ne!(*n, NodeId::new(0), "protected node left");
            }
        }
    }

    #[test]
    fn group_crash_kills_whole_site_once() {
        let groups = [0u32, 0, 1, 1, 1, 2, 2, 2];
        let s = Scenario::new()
            .crash_group_at(Duration::from_secs(5), 1)
            .crash_group_of_at(Duration::from_secs(9), NodeId::new(0));
        let env = ScenarioEnv::new(8, 1).with_groups(&groups);
        let plan = s.compile(&env);
        let crashed: Vec<u32> = plan
            .events()
            .iter()
            .filter_map(|e| match &e.fault {
                Fault::Crash(n) => Some(n.as_u32()),
                _ => None,
            })
            .collect();
        assert_eq!(crashed, vec![2, 3, 4, 0, 1]);
        assert_eq!(plan.bursts().len(), 2);
    }

    #[test]
    fn flash_crowd_revives_departed_nodes() {
        let s = Scenario::new()
            .mass_leave_at(Duration::from_secs(1), 5)
            .flash_crowd_at(Duration::from_secs(10), 5)
            .min_present(2);
        let plan = s.compile(&env_with_seed(16, 7));
        let leaves: Vec<NodeId> = plan
            .events()
            .iter()
            .filter_map(|e| match &e.fault {
                Fault::Leave(n) => Some(*n),
                _ => None,
            })
            .collect();
        let joins: Vec<NodeId> = plan
            .events()
            .iter()
            .filter_map(|e| match &e.fault {
                Fault::Join { node, .. } => Some(*node),
                _ => None,
            })
            .collect();
        assert_eq!(leaves.len(), 5);
        let mut l = leaves.clone();
        let mut j = joins.clone();
        l.sort();
        j.sort();
        assert_eq!(l, j, "exactly the departed nodes return");
        // Presence timeline agrees.
        let presence = plan.presence();
        for &n in &leaves {
            assert!(presence.present(n, SimTime::ZERO));
            assert!(!presence.present(n, SimTime::from_secs(5)));
            assert!(presence.present(n, SimTime::from_secs(11)));
            assert!(!presence.present_from(n, SimTime::ZERO));
            assert!(presence.present_from(n, SimTime::from_secs(10)));
        }
        assert_eq!(presence.count_present(SimTime::from_secs(5)), 11);
        assert_eq!(presence.count_present(SimTime::from_secs(10)), 16);
    }

    #[test]
    fn split_resolution() {
        let groups = [0u32, 1, 1, 0];
        let env = ScenarioEnv::new(4, 1).with_groups(&groups);
        let halves = Scenario::new()
            .partition_at(Duration::ZERO, Duration::from_secs(1), Split::Halves)
            .compile(&env);
        let isolate = Scenario::new()
            .partition_at(
                Duration::ZERO,
                Duration::from_secs(1),
                Split::IsolateGroup(1),
            )
            .compile(&env);
        let sides = |plan: &ScenarioPlan| match &plan.events()[0].fault {
            Fault::Partition(s) => s.clone(),
            f => panic!("expected partition, got {f:?}"),
        };
        assert_eq!(sides(&halves), vec![0, 0, 1, 1]);
        assert_eq!(sides(&isolate), vec![0, 1, 1, 0]);
        assert!(matches!(halves.events()[1].fault, Fault::HealPartition));
    }

    #[test]
    fn starting_at_shifts_all_times() {
        let s = Scenario::new().crash_at(Duration::from_secs(3), NodeId::new(1));
        let base = SimTime::from_secs(100);
        let plan = s.compile(&ScenarioEnv::new(4, 1).starting_at(base));
        assert_eq!(plan.events()[0].at, SimTime::from_secs(103));
        assert_eq!(plan.end(), Some(SimTime::from_secs(103)));
    }

    #[test]
    fn schedule_into_applies_kernel_and_command_faults() {
        let s = Scenario::new()
            .crash_at(Duration::from_secs(1), NodeId::new(5))
            .mass_leave_at(Duration::from_secs(2), 2)
            .flash_crowd_at(Duration::from_secs(3), 2)
            .partition_at(
                Duration::from_secs(4),
                Duration::from_secs(6),
                Split::Halves,
            )
            .loss_at(Duration::from_secs(5), 0.25)
            .jitter_at(Duration::from_secs(5), Duration::from_millis(7))
            .cut_link_at(Duration::from_secs(1), NodeId::new(0), NodeId::new(1));
        let plan = s.compile(&env_with_seed(8, 11));
        let mut sim =
            SimBuilder::new(FixedLatency::new(8, Duration::from_millis(1))).build(|_| Quiet);
        plan.schedule_into(&mut sim, QuietCmd::Join, || QuietCmd::Leave);
        sim.run_until(SimTime::from_secs(5) + Duration::from_millis(1));
        assert!(!sim.is_alive(NodeId::new(5)));
        assert!(sim.is_partitioned());
        assert!(sim.is_link_failed(NodeId::new(0), NodeId::new(1)));
        assert_eq!(sim.loss(), 0.25);
        assert_eq!(sim.jitter(), Duration::from_millis(7));
        sim.run_until(SimTime::from_secs(7));
        assert!(!sim.is_partitioned(), "partition healed on schedule");
        // 1 crash + 2 leaves + 2 joins + cut + partition + heal + loss + jitter.
        assert_eq!(plan.len(), 10);
        let k = sim.kernel_stats();
        assert_eq!(k.commands, 4, "two leaves and two joins dispatched");
    }
}
