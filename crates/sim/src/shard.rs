//! The sharded simulation kernel: conservative parallel discrete-event
//! execution over fixed node *lanes*.
//!
//! [`Sim`](crate::Sim) is single-threaded; at 10⁵–10⁶ nodes one event loop
//! becomes the wall-clock bottleneck long before memory does. [`ShardedSim`]
//! splits the node population into a **fixed number of lanes** (node `g`
//! lives in lane `g % lanes`), each with its own event queue, per-node RNG
//! streams, traffic counters, and fault-state replicas, and executes them
//! under the classic conservative-lookahead scheme:
//!
//! 1. The latency model promises a positive lower bound Δ on cross-node
//!    latency ([`LatencyModel::lookahead`]). A message sent at any time
//!    `t` inside a window `[w, w + Δ)` arrives at `t + latency ≥ w + Δ`,
//!    i.e. **never inside the window** at another lane.
//! 2. Each lane therefore processes its local events for one window with
//!    no synchronization at all; sends to other lanes buffer in a
//!    per-lane outbox.
//! 3. At the window barrier the coordinator merges all outboxes in a
//!    canonical order — `(arrival time, source lane, send order)` — and
//!    schedules them into the destination lanes, then drains every lane's
//!    buffered recorder events into the single global recorder, sorted by
//!    `(time, lane, emission order)`.
//!
//! ## Determinism contract
//!
//! The *lane count* is part of the simulation's semantics: it decides the
//! cross-lane merge order, so two runs agree byte-for-byte iff they use
//! the same seed and lane count. The *thread count*
//! ([`ShardedSimBuilder::threads`], the CLI's `--sim-shards`) is pure
//! execution policy: lanes are data-independent within a window, so any
//! thread count produces identical output by construction — the property
//! the cross-shard determinism tests assert. This mirrors the testnet
//! fabric's shard-merge proof (`gocast-testnet::shard`): sharded loops,
//! stable time-sorted merge, canonical manifest.
//!
//! RNG streams are preserved exactly from the single-threaded kernel:
//! node `g` draws from `seed * GOLDEN ^ g` regardless of which lane owns
//! it. Only the chaos (loss/jitter) stream differs — each lane gets its
//! own derived stream, so sharded chaos runs are internally deterministic
//! but not byte-identical to `Sim` runs (no experiment requires that).
//!
//! ## What a lane replicates
//!
//! Link cuts, the loss/jitter fault state, and the partition labelling
//! are *global* facts applied at delivery (or send) time, so each lane
//! holds a replica, updated by broadcasting the corresponding control
//! event into every lane's queue; the partition side vector is shared
//! behind an [`Arc`]. Delivery-time checks are thus lane-local and the
//! hot path takes no cross-lane locks.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::Duration;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::id::NodeId;
use crate::kernel::{link_key, KernelStats, LinkSet, NetFaults, PastScheduleError};
use crate::latency::LatencyModel;
use crate::protocol::{Ctx, HostBackend, Protocol, Timer, Wire};
use crate::queue::EventQueue;
use crate::recorder::Recorder;
use crate::scenario::FaultSink;
use crate::stats::TrafficStats;
use crate::time::SimTime;

/// Lane-local event representation. Mirrors the single-threaded kernel's
/// event set, with the partition sides shared instead of cloned per lane.
#[derive(Debug)]
enum LaneEvent<M, C> {
    Deliver { from: NodeId, to: NodeId, msg: M },
    Fire { node: NodeId, timer: Timer },
    Command { node: NodeId, cmd: C },
    Fail { node: NodeId },
    SetLink { a: NodeId, b: NodeId, up: bool },
    SetLoss { ppm: u32 },
    SetJitter { nanos: u64 },
    SetPartition { sides: Option<Arc<Vec<u32>>> },
}

/// A message crossing lanes, buffered until the window barrier.
struct CrossLaneMsg<M> {
    at: SimTime,
    from: NodeId,
    to: NodeId,
    msg: M,
}

/// One lane: a self-contained slice of the node population.
struct Lane<P: Protocol> {
    /// This lane's index in `0..lanes`.
    index: u32,
    /// Total lane count (for ownership tests on the send path).
    lanes: u32,
    /// Protocol state for owned nodes, dense by local index
    /// (`global = local * lanes + index`).
    nodes: Vec<P>,
    alive: Vec<bool>,
    rngs: Vec<SmallRng>,
    queue: EventQueue<LaneEvent<P::Msg, P::Command>>,
    stats: TrafficStats,
    kernel: KernelStats,
    faults: NetFaults,
    failed_links: LinkSet,
    partition: Option<Arc<Vec<u32>>>,
    /// Cross-lane sends made this window, in send order.
    outbox: Vec<CrossLaneMsg<P::Msg>>,
    /// Recorder events emitted this window, in emission order.
    events_out: Vec<(SimTime, NodeId, P::Event)>,
}

impl<P: Protocol> Lane<P> {
    #[inline]
    fn local(&self, node: NodeId) -> usize {
        (node.as_u32() / self.lanes) as usize
    }

    #[inline]
    fn partition_blocks(&self, a: NodeId, b: NodeId) -> bool {
        match &self.partition {
            None => false,
            Some(sides) => sides[a.index()] != sides[b.index()],
        }
    }

    /// Runs every local event with `at <= end_inclusive`, buffering
    /// cross-lane sends and recorder events.
    fn run_window(&mut self, end_inclusive: SimTime, net: &dyn LatencyModel) {
        loop {
            let depth = self.queue.len();
            if depth > self.kernel.queue_high_water {
                self.kernel.queue_high_water = depth;
            }
            let Some(ev) = self.queue.pop_at_or_before(end_inclusive) else {
                break;
            };
            self.kernel.events_processed += 1;
            self.dispatch(ev.at, ev.payload, net);
        }
    }

    fn dispatch(&mut self, at: SimTime, ev: LaneEvent<P::Msg, P::Command>, net: &dyn LatencyModel) {
        match ev {
            LaneEvent::Deliver { from, to, msg } => {
                if !self.alive[self.local(to)] || self.failed_links.contains(link_key(from, to)) {
                    self.kernel.messages_dropped += 1;
                    self.stats.record_drop_to_dead();
                } else if self.partition_blocks(from, to) {
                    self.kernel.messages_dropped += 1;
                    self.kernel.partition_drops += 1;
                    self.stats.record_drop_to_dead();
                } else {
                    self.kernel.deliveries += 1;
                    self.with_ctx(at, to, net, |p, ctx| p.on_message(ctx, from, msg));
                }
            }
            LaneEvent::Fire { node, timer } => {
                if self.alive[self.local(node)] {
                    self.kernel.timers_fired += 1;
                    self.with_ctx(at, node, net, |p, ctx| p.on_timer(ctx, timer));
                }
            }
            LaneEvent::Command { node, cmd } => {
                if self.alive[self.local(node)] {
                    self.kernel.commands += 1;
                    self.with_ctx(at, node, net, |p, ctx| p.on_command(ctx, cmd));
                }
            }
            LaneEvent::Fail { node } => {
                self.kernel.control_events += 1;
                let l = self.local(node);
                self.alive[l] = false;
            }
            LaneEvent::SetLink { a, b, up } => {
                self.kernel.control_events += 1;
                if up {
                    self.failed_links.remove(link_key(a, b));
                } else {
                    self.failed_links.insert(link_key(a, b));
                }
            }
            LaneEvent::SetLoss { ppm } => {
                self.kernel.control_events += 1;
                self.faults.loss_ppm = ppm;
            }
            LaneEvent::SetJitter { nanos } => {
                self.kernel.control_events += 1;
                self.faults.jitter_ns = nanos;
            }
            LaneEvent::SetPartition { sides } => {
                self.kernel.control_events += 1;
                self.partition = sides;
            }
        }
    }

    fn with_ctx<F: FnOnce(&mut P, &mut Ctx<'_, P>)>(
        &mut self,
        at: SimTime,
        node: NodeId,
        net: &dyn LatencyModel,
        f: F,
    ) {
        let l = (node.as_u32() / self.lanes) as usize;
        let p = &mut self.nodes[l];
        let mut backend = LaneBackend::<P> {
            lane_index: self.index,
            lanes: self.lanes,
            from: node,
            now: at,
            net,
            queue: &mut self.queue,
            stats: &mut self.stats,
            faults: &mut self.faults,
            outbox: &mut self.outbox,
            events_out: &mut self.events_out,
        };
        let mut ctx = Ctx::for_host(node, at, &mut self.rngs[l], &mut backend);
        f(p, &mut ctx);
    }

    fn dispatch_start(&mut self, node: NodeId, net: &dyn LatencyModel) {
        self.with_ctx(SimTime::ZERO, node, net, |p, ctx| p.on_start(ctx));
    }

    fn kernel_stats(&self) -> KernelStats {
        let mut k = self.kernel;
        k.queue_len = self.queue.len();
        k.events_scheduled = self.queue.scheduled_total();
        k.chaos_losses = self.faults.losses;
        k.slab_slots = self.queue.slab_slots();
        k.queue_mem_bytes = self.queue.mem_bytes();
        k
    }
}

/// The [`HostBackend`] a lane presents to its protocol instances. The
/// state machines run unchanged: they cannot tell a lane from the
/// single-threaded kernel or from a real deployment host.
struct LaneBackend<'a, P: Protocol> {
    lane_index: u32,
    lanes: u32,
    from: NodeId,
    now: SimTime,
    net: &'a dyn LatencyModel,
    queue: &'a mut EventQueue<LaneEvent<P::Msg, P::Command>>,
    stats: &'a mut TrafficStats,
    faults: &'a mut NetFaults,
    outbox: &'a mut Vec<CrossLaneMsg<P::Msg>>,
    events_out: &'a mut Vec<(SimTime, NodeId, P::Event)>,
}

impl<P: Protocol> HostBackend<P> for LaneBackend<'_, P> {
    fn send(&mut self, to: NodeId, msg: P::Msg) {
        // Same send-path order as the single-threaded kernel: count the
        // send, then the loss draw, then jitter.
        let mut latency = self.net.one_way(self.from, to);
        self.stats
            .record(self.from, to, msg.wire_size(), msg.class());
        if self.faults.active() && to != self.from {
            if self.faults.loss_ppm > 0
                && self.faults.rng.gen_range(0..1_000_000u32) < self.faults.loss_ppm
            {
                self.faults.losses += 1;
                return;
            }
            if self.faults.jitter_ns > 0 {
                latency +=
                    Duration::from_nanos(self.faults.rng.gen_range(0..=self.faults.jitter_ns));
            }
        }
        let at = self.now + latency;
        if to.as_u32() % self.lanes == self.lane_index {
            self.queue.schedule(
                at,
                LaneEvent::Deliver {
                    from: self.from,
                    to,
                    msg,
                },
            );
        } else {
            self.outbox.push(CrossLaneMsg {
                at,
                from: self.from,
                to,
                msg,
            });
        }
    }

    fn set_timer(&mut self, delay: Duration, timer: Timer) {
        self.queue.schedule(
            self.now + delay,
            LaneEvent::Fire {
                node: self.from,
                timer,
            },
        );
    }

    fn emit(&mut self, event: P::Event) {
        self.events_out.push((self.now, self.from, event));
    }

    fn node_count(&self) -> usize {
        self.net.len()
    }
}

/// Configures and constructs a [`ShardedSim`].
///
/// ```
/// use gocast_sim::{FixedLatency, ShardedSimBuilder};
/// use std::time::Duration;
///
/// let builder = ShardedSimBuilder::new(FixedLatency::new(256, Duration::from_millis(10)))
///     .seed(42)
///     .lanes(16)
///     .threads(2);
/// # let _ = builder;
/// ```
pub struct ShardedSimBuilder {
    net: Arc<dyn LatencyModel + Send + Sync>,
    seed: u64,
    lanes: usize,
    threads: usize,
}

impl std::fmt::Debug for ShardedSimBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedSimBuilder")
            .field("nodes", &self.net.len())
            .field("seed", &self.seed)
            .field("lanes", &self.lanes)
            .field("threads", &self.threads)
            .finish()
    }
}

/// Default lane count: enough lanes that any plausible `--sim-shards`
/// divides the population usefully, few enough that per-window barrier
/// bookkeeping stays negligible.
pub const DEFAULT_LANES: usize = 64;

impl ShardedSimBuilder {
    /// Starts a builder over `net`, whose node count determines the
    /// simulation's node count. The model must promise a positive
    /// [`LatencyModel::lookahead`]; [`ShardedSimBuilder::build_with`]
    /// panics otherwise.
    pub fn new(net: impl LatencyModel + Send + Sync + 'static) -> Self {
        ShardedSimBuilder {
            net: Arc::new(net),
            seed: 0,
            lanes: DEFAULT_LANES,
            threads: 1,
        }
    }

    /// Sets the master seed. Per-node RNG streams derive from it exactly
    /// as in the single-threaded kernel.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the lane count — a **semantic** parameter (see the module
    /// docs). Clamped to at least 1.
    pub fn lanes(mut self, lanes: usize) -> Self {
        self.lanes = lanes.max(1);
        self
    }

    /// Sets the worker-thread count — pure execution policy; output is
    /// byte-identical at any value. Clamped to at least 1.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Builds the sharded simulation, constructing one protocol instance
    /// per node with `make` (called in global id order) and recording
    /// merged events with `recorder`.
    ///
    /// # Panics
    ///
    /// Panics if the latency model does not promise a positive lookahead.
    pub fn build_with<P, R, F>(self, recorder: R, mut make: F) -> ShardedSim<P, R>
    where
        P: Protocol,
        R: Recorder<P::Event>,
        F: FnMut(NodeId) -> P,
    {
        let n = self.net.len();
        let lookahead = self
            .net
            .lookahead()
            .filter(|d| *d > Duration::ZERO)
            .expect("ShardedSim requires a latency model with positive lookahead");
        let lanes_n = self.lanes.min(n.max(1));
        let mut lanes: Vec<Lane<P>> = (0..lanes_n)
            .map(|li| Lane {
                index: li as u32,
                lanes: lanes_n as u32,
                nodes: Vec::new(),
                alive: Vec::new(),
                rngs: Vec::new(),
                queue: EventQueue::new(),
                stats: TrafficStats::new(),
                kernel: KernelStats::default(),
                // Distinct chaos stream per lane, derived from the master
                // seed and the lane index (stable across thread counts).
                faults: NetFaults::new(
                    self.seed
                        .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(li as u64 + 1)),
                ),
                failed_links: LinkSet::default(),
                partition: None,
                outbox: Vec::new(),
                events_out: Vec::new(),
            })
            .collect();
        // Global id order keeps `make` side effects (bootstrap graph
        // draws) identical to the single-threaded builder.
        for g in 0..n {
            let id = NodeId::new(g as u32);
            let lane = &mut lanes[g % lanes_n];
            lane.nodes.push(make(id));
            lane.alive.push(true);
            lane.rngs.push(SmallRng::seed_from_u64(
                self.seed.wrapping_mul(0x9e3779b97f4a7c15) ^ g as u64,
            ));
        }
        ShardedSim {
            now: SimTime::ZERO,
            lanes,
            net: self.net,
            recorder,
            lookahead,
            threads: self.threads,
            wall_time: Duration::ZERO,
            started: false,
            scratch_msgs: Vec::new(),
            scratch_events: Vec::new(),
        }
    }
}

/// A deterministic sharded discrete-event simulation (see the module docs
/// for the execution and determinism model).
///
/// The public surface mirrors [`Sim`](crate::Sim) where experiments need
/// it: scheduling, fault injection, stats/metrics snapshots, and node
/// access. Deep kernel telemetry (dispatch-time histograms) is not
/// available in sharded runs.
pub struct ShardedSim<P: Protocol, R: Recorder<P::Event>> {
    now: SimTime,
    lanes: Vec<Lane<P>>,
    net: Arc<dyn LatencyModel + Send + Sync>,
    recorder: R,
    lookahead: Duration,
    threads: usize,
    wall_time: Duration,
    started: bool,
    /// Barrier-merge scratch, reused across windows: `(lane, pos, msg)`.
    scratch_msgs: Vec<(u32, u32, CrossLaneMsg<P::Msg>)>,
    /// Recorder-merge scratch: `(at, lane, pos, node, event)`.
    scratch_events: Vec<(SimTime, u32, u32, NodeId, P::Event)>,
}

impl<P: Protocol, R: Recorder<P::Event>> std::fmt::Debug for ShardedSim<P, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedSim")
            .field("now", &self.now)
            .field("nodes", &self.len())
            .field("lanes", &self.lanes.len())
            .field("threads", &self.threads)
            .finish()
    }
}

impl<P: Protocol, R: Recorder<P::Event>> ShardedSim<P, R> {
    /// Number of nodes (alive or failed).
    pub fn len(&self) -> usize {
        self.lanes.iter().map(|l| l.nodes.len()).sum()
    }

    /// Whether the simulation has zero nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current simulated time (the frontier every lane has reached).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The lane count (semantic; see the module docs).
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// The worker-thread count (execution policy only).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The conservative lookahead window Δ the latency model promised.
    pub fn lookahead(&self) -> Duration {
        self.lookahead
    }

    /// The latency model driving this simulation.
    pub fn latency_model(&self) -> &dyn LatencyModel {
        &*self.net
    }

    #[inline]
    fn owner(&self, node: NodeId) -> usize {
        node.index() % self.lanes.len()
    }

    #[inline]
    fn lane_of(&mut self, node: NodeId) -> &mut Lane<P> {
        let o = self.owner(node);
        &mut self.lanes[o]
    }

    /// Whether `node` is currently alive.
    pub fn is_alive(&self, node: NodeId) -> bool {
        let lane = &self.lanes[self.owner(node)];
        lane.alive[lane.local(node)]
    }

    /// Ids of all currently alive nodes, in increasing id order.
    pub fn alive_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        let lanes = self.lanes.len() as u32;
        (0..self.len() as u32).map(NodeId::new).filter(move |id| {
            let lane = &self.lanes[(id.as_u32() % lanes) as usize];
            lane.alive[(id.as_u32() / lanes) as usize]
        })
    }

    /// Immutable access to a node's protocol state.
    pub fn node(&self, node: NodeId) -> &P {
        let lane = &self.lanes[self.owner(node)];
        &lane.nodes[lane.local(node)]
    }

    /// Mutable access to a node's protocol state (test/harness use).
    pub fn node_mut(&mut self, node: NodeId) -> &mut P {
        let o = self.owner(node);
        let lane = &mut self.lanes[o];
        let l = lane.local(node);
        &mut lane.nodes[l]
    }

    /// Iterates over `(id, state)` for every node in increasing id order.
    pub fn iter_nodes(&self) -> impl Iterator<Item = (NodeId, &P)> {
        let lanes = self.lanes.len() as u32;
        (0..self.len() as u32).map(move |g| {
            let lane = &self.lanes[(g % lanes) as usize];
            (NodeId::new(g), &lane.nodes[(g / lanes) as usize])
        })
    }

    /// The recorder (merged event stream).
    pub fn recorder(&self) -> &R {
        &self.recorder
    }

    /// Mutable access to the recorder.
    pub fn recorder_mut(&mut self) -> &mut R {
        &mut self.recorder
    }

    /// Consumes the simulation, returning the recorder.
    pub fn into_recorder(self) -> R {
        self.recorder
    }

    /// Aggregate traffic counters over all lanes.
    pub fn stats(&self) -> TrafficStats {
        let mut total = TrafficStats::new();
        for lane in &self.lanes {
            total.absorb(&lane.stats);
        }
        total
    }

    /// Aggregate kernel counters over all lanes. Broadcast control events
    /// (link cuts, loss/jitter/partition changes) count once **per lane**;
    /// `queue_high_water` is the deepest single lane, not a global
    /// instant; `wall_time` is the coordinator's run-loop time.
    pub fn kernel_stats(&self) -> KernelStats {
        let mut total = KernelStats::default();
        for lane in &self.lanes {
            total.absorb(&lane.kernel_stats());
        }
        total.wall_time = self.wall_time;
        total
    }

    /// A named metrics [`Snapshot`](gocast_metrics::Snapshot) under the
    /// same stable `kernel_*` names as the single-threaded kernel, plus
    /// `kernel_lanes`.
    pub fn metrics_snapshot(&self) -> gocast_metrics::Snapshot {
        let k = self.kernel_stats();
        let mut s = gocast_metrics::Snapshot::new();
        s.record_counter("kernel_events", k.events_processed);
        s.record_counter("kernel_scheduled", k.events_scheduled);
        s.record_counter("kernel_deliveries", k.deliveries);
        s.record_counter("kernel_drops", k.messages_dropped);
        s.record_counter("kernel_partition_drops", k.partition_drops);
        s.record_counter("kernel_chaos_losses", k.chaos_losses);
        s.record_counter("kernel_timers", k.timers_fired);
        s.record_counter("kernel_commands", k.commands);
        s.record_counter("kernel_control", k.control_events);
        s.record_level(
            "kernel_queue_len",
            k.queue_len as i64,
            k.queue_high_water as i64,
        );
        let occupied: usize = self
            .lanes
            .iter()
            .map(|l| l.queue.slab_slots() - l.queue.free_slots())
            .sum();
        s.record_level("kernel_slab_occupied", occupied as i64, k.slab_slots as i64);
        s.record_counter("kernel_queue_mem_bytes", k.queue_mem_bytes);
        s.record_counter("kernel_lanes", self.lanes.len() as u64);
        s
    }

    fn check_future(&self, at: SimTime) -> Result<(), PastScheduleError> {
        if at < self.now {
            Err(PastScheduleError { at, now: self.now })
        } else {
            Ok(())
        }
    }

    /// Schedules command `cmd` for `node` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn schedule_command(&mut self, at: SimTime, node: NodeId, cmd: P::Command) {
        self.check_future(at).unwrap_or_else(|e| panic!("{e}"));
        self.lane_of(node)
            .queue
            .schedule(at, LaneEvent::Command { node, cmd });
    }

    /// Injects a command for `node` at the current time.
    pub fn command_now(&mut self, node: NodeId, cmd: P::Command) {
        let now = self.now;
        self.lane_of(node)
            .queue
            .schedule(now, LaneEvent::Command { node, cmd });
    }

    /// Crashes `node` immediately.
    pub fn fail_node(&mut self, node: NodeId) {
        let lane = self.lane_of(node);
        let l = lane.local(node);
        lane.alive[l] = false;
    }

    /// Schedules a crash of `node` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn fail_node_at(&mut self, at: SimTime, node: NodeId) {
        self.check_future(at).unwrap_or_else(|e| panic!("{e}"));
        self.lane_of(node)
            .queue
            .schedule(at, LaneEvent::Fail { node });
    }

    /// Broadcasts a control event into every lane's queue at `at`.
    fn broadcast(&mut self, at: SimTime, make: impl Fn() -> LaneEvent<P::Msg, P::Command>) {
        self.check_future(at).unwrap_or_else(|e| panic!("{e}"));
        for lane in &mut self.lanes {
            lane.queue.schedule(at, make());
        }
    }

    /// Schedules a (bidirectional) link cut at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn fail_link_at(&mut self, at: SimTime, a: NodeId, b: NodeId) {
        self.broadcast(at, || LaneEvent::SetLink { a, b, up: false });
    }

    /// Schedules a link restore at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn heal_link_at(&mut self, at: SimTime, a: NodeId, b: NodeId) {
        self.broadcast(at, || LaneEvent::SetLink { a, b, up: true });
    }

    /// Sets the per-message loss probability immediately (see
    /// [`Sim::set_loss`](crate::Sim::set_loss)).
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `0.0..=1.0`.
    pub fn set_loss(&mut self, p: f64) {
        assert!(
            (0.0..=1.0).contains(&p),
            "loss probability {p} not in 0..=1"
        );
        let ppm = (p * 1_000_000.0).round() as u32;
        for lane in &mut self.lanes {
            lane.faults.loss_ppm = ppm;
        }
    }

    /// Sets the maximum injected latency jitter immediately.
    pub fn set_jitter(&mut self, jitter: Duration) {
        let nanos = jitter.as_nanos().min(u64::MAX as u128) as u64;
        for lane in &mut self.lanes {
            lane.faults.jitter_ns = nanos;
        }
    }

    /// Schedules a loss-probability change at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past or `p` is not within `0.0..=1.0`.
    pub fn set_loss_at(&mut self, at: SimTime, p: f64) {
        assert!(
            (0.0..=1.0).contains(&p),
            "loss probability {p} not in 0..=1"
        );
        let ppm = (p * 1_000_000.0).round() as u32;
        self.broadcast(at, || LaneEvent::SetLoss { ppm });
    }

    /// Schedules a jitter change at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn set_jitter_at(&mut self, at: SimTime, jitter: Duration) {
        let nanos = jitter.as_nanos().min(u64::MAX as u128) as u64;
        self.broadcast(at, || LaneEvent::SetJitter { nanos });
    }

    /// Schedules a partition at absolute time `at`: `sides[g]` labels node
    /// `g`; messages between different labels are dropped in flight.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past or `sides.len()` differs from the
    /// node count.
    pub fn partition_at(&mut self, at: SimTime, sides: Vec<u32>) {
        assert_eq!(sides.len(), self.len(), "partition must label every node");
        let shared = Arc::new(sides);
        self.broadcast(at, || LaneEvent::SetPartition {
            sides: Some(Arc::clone(&shared)),
        });
    }

    /// Schedules the removal of any active partition at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn heal_partition_at(&mut self, at: SimTime) {
        self.broadcast(at, || LaneEvent::SetPartition { sides: None });
    }

    /// Calls `on_start` on every alive node, once, and merges the
    /// resulting cross-lane traffic. Run methods call this implicitly.
    pub fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for o in 0..self.lanes.len() {
            let net = Arc::clone(&self.net);
            let lane = &mut self.lanes[o];
            for l in 0..lane.nodes.len() {
                if lane.alive[l] {
                    let id = NodeId::new((l * lane.lanes as usize) as u32 + lane.index);
                    lane.dispatch_start(id, &*net);
                }
            }
        }
        self.merge_barrier();
    }

    /// The earliest pending event time across all lanes.
    fn next_event_time(&self) -> Option<SimTime> {
        self.lanes.iter().filter_map(|l| l.queue.peek_time()).min()
    }

    /// Drains every lane's outbox and recorder buffer in canonical order:
    /// cross-lane messages sort by `(arrival, source lane, send order)`
    /// and are scheduled into their destination lanes; recorder events
    /// sort by `(time, lane, emission order)` and feed the global
    /// recorder. Both orders are independent of the thread count.
    fn merge_barrier(&mut self) {
        let mut msgs = std::mem::take(&mut self.scratch_msgs);
        let mut events = std::mem::take(&mut self.scratch_events);
        for lane in &mut self.lanes {
            for (pos, m) in lane.outbox.drain(..).enumerate() {
                msgs.push((lane.index, pos as u32, m));
            }
            for (pos, (at, node, ev)) in lane.events_out.drain(..).enumerate() {
                events.push((at, lane.index, pos as u32, node, ev));
            }
        }
        msgs.sort_by_key(|(lane, pos, m)| (m.at, *lane, *pos));
        for (_, _, m) in msgs.drain(..) {
            let o = self.owner(m.to);
            self.lanes[o].queue.schedule(
                m.at,
                LaneEvent::Deliver {
                    from: m.from,
                    to: m.to,
                    msg: m.msg,
                },
            );
        }
        events.sort_by_key(|(at, lane, pos, _, _)| (*at, *lane, *pos));
        for (at, _, _, node, ev) in events.drain(..) {
            self.recorder.record(at, node, ev);
        }
        self.scratch_msgs = msgs;
        self.scratch_events = events;
    }

    /// Serial window loop (the `threads == 1` path).
    fn run_windows_serial(&mut self, deadline: SimTime) {
        let delta = self.lookahead.as_nanos().min(u64::MAX as u128) as u64;
        while let Some(next) = self.next_event_time() {
            if next > deadline {
                break;
            }
            let end = SimTime::from_nanos(
                next.as_nanos()
                    .saturating_add(delta - 1)
                    .min(deadline.as_nanos()),
            );
            let net = Arc::clone(&self.net);
            for lane in &mut self.lanes {
                lane.run_window(end, &*net);
            }
            self.merge_barrier();
            self.now = end;
        }
        self.now = deadline;
    }
}

impl<P, R> ShardedSim<P, R>
where
    P: Protocol + Send,
    P::Msg: Send,
    P::Command: Send,
    P::Event: Send,
    R: Recorder<P::Event>,
{
    /// Processes all events scheduled at or before `deadline`, then
    /// advances the clock to `deadline`. Windows of length Δ execute
    /// lane-parallel across the configured worker threads; output is
    /// byte-identical at any thread count.
    pub fn run_until(&mut self, deadline: SimTime) {
        let t0 = std::time::Instant::now();
        self.start();
        if self.threads <= 1 || self.lanes.len() <= 1 {
            self.run_windows_serial(deadline);
        } else {
            self.run_windows_threaded(deadline);
        }
        self.wall_time += t0.elapsed();
    }

    /// Runs for `d` more simulated time.
    pub fn run_for(&mut self, d: Duration) {
        self.run_until(self.now + d);
    }

    /// Threaded window loop: persistent workers, two barrier waits per
    /// window (start work / work done), coordinator merges in between.
    fn run_windows_threaded(&mut self, deadline: SimTime) {
        let delta = self.lookahead.as_nanos().min(u64::MAX as u128) as u64;
        let workers = self.threads.min(self.lanes.len());
        let barrier = Barrier::new(workers + 1);
        // Window end, as nanos; u64::MAX doubles as the shutdown signal.
        let window_end = AtomicU64::new(0);
        let next_lane = AtomicUsize::new(0);
        let net = Arc::clone(&self.net);
        // Split-borrow: workers take the lanes (behind per-lane mutexes,
        // claimed by atomic index so each lane has exactly one owner per
        // window); the coordinator keeps recorder + scratch.
        let lane_cells: Vec<Mutex<&mut Lane<P>>> = self.lanes.iter_mut().map(Mutex::new).collect();
        let recorder = &mut self.recorder;
        let scratch_msgs = &mut self.scratch_msgs;
        let scratch_events = &mut self.scratch_events;
        let mut now = self.now;
        std::thread::scope(|s| {
            let barrier = &barrier;
            let window_end = &window_end;
            let next_lane = &next_lane;
            let lane_cells = &lane_cells;
            for _ in 0..workers {
                let net = Arc::clone(&net);
                s.spawn(move || loop {
                    barrier.wait();
                    let end = window_end.load(Ordering::Acquire);
                    if end == u64::MAX {
                        break;
                    }
                    let end = SimTime::from_nanos(end);
                    loop {
                        let i = next_lane.fetch_add(1, Ordering::Relaxed);
                        if i >= lane_cells.len() {
                            break;
                        }
                        let mut lane = lane_cells[i].lock().expect("lane lock");
                        lane.run_window(end, &*net);
                    }
                    barrier.wait();
                });
            }
            loop {
                let next = lane_cells
                    .iter()
                    .filter_map(|c| c.lock().expect("lane lock").queue.peek_time())
                    .min();
                let Some(next) = next.filter(|t| *t <= deadline) else {
                    window_end.store(u64::MAX, Ordering::Release);
                    barrier.wait();
                    break;
                };
                let end = next
                    .as_nanos()
                    .saturating_add(delta - 1)
                    .min(deadline.as_nanos());
                window_end.store(end, Ordering::Release);
                next_lane.store(0, Ordering::Relaxed);
                barrier.wait(); // workers start
                barrier.wait(); // workers done
                                // Canonical merge, identical to the serial path.
                for cell in lane_cells {
                    let mut lane = cell.lock().expect("lane lock");
                    let idx = lane.index;
                    for (pos, m) in lane.outbox.drain(..).enumerate() {
                        scratch_msgs.push((idx, pos as u32, m));
                    }
                    for (pos, (at, node, ev)) in lane.events_out.drain(..).enumerate() {
                        scratch_events.push((at, idx, pos as u32, node, ev));
                    }
                }
                scratch_msgs.sort_by_key(|(lane, pos, m)| (m.at, *lane, *pos));
                let lanes_n = lane_cells.len() as u32;
                for (_, _, m) in scratch_msgs.drain(..) {
                    let o = (m.to.as_u32() % lanes_n) as usize;
                    lane_cells[o].lock().expect("lane lock").queue.schedule(
                        m.at,
                        LaneEvent::Deliver {
                            from: m.from,
                            to: m.to,
                            msg: m.msg,
                        },
                    );
                }
                scratch_events.sort_by_key(|(at, lane, pos, _, _)| (*at, *lane, *pos));
                for (at, _, _, node, ev) in scratch_events.drain(..) {
                    recorder.record(at, node, ev);
                }
                now = SimTime::from_nanos(end);
            }
        });
        let _ = now;
        self.now = deadline;
    }
}

impl<P: Protocol, R: Recorder<P::Event>> FaultSink<P::Command> for ShardedSim<P, R> {
    fn sink_node_count(&self) -> usize {
        self.len()
    }

    fn sink_fail_node_at(&mut self, at: SimTime, node: NodeId) {
        self.fail_node_at(at, node);
    }

    fn sink_schedule_command(&mut self, at: SimTime, node: NodeId, cmd: P::Command) {
        self.schedule_command(at, node, cmd);
    }

    fn sink_fail_link_at(&mut self, at: SimTime, a: NodeId, b: NodeId) {
        self.fail_link_at(at, a, b);
    }

    fn sink_heal_link_at(&mut self, at: SimTime, a: NodeId, b: NodeId) {
        self.heal_link_at(at, a, b);
    }

    fn sink_partition_at(&mut self, at: SimTime, sides: Vec<u32>) {
        self.partition_at(at, sides);
    }

    fn sink_heal_partition_at(&mut self, at: SimTime) {
        self.heal_partition_at(at);
    }

    fn sink_set_loss_at(&mut self, at: SimTime, p: f64) {
        self.set_loss_at(at, p);
    }

    fn sink_set_jitter_at(&mut self, at: SimTime, jitter: Duration) {
        self.set_jitter_at(at, jitter);
    }
}

/// Applies `f` to every item, fanning work across at most `jobs` worker
/// threads, and returns the results **in item order** regardless of which
/// worker finished when.
///
/// `f` receives `(index, item)` and must be deterministic per item for
/// output to be independent of `jobs`. With `jobs <= 1` (or a single
/// item) everything runs inline on the caller's thread — the fully serial
/// path, with no thread machinery at all.
///
/// Workers pull items from a shared queue, so long and short runs load-
/// balance; there is no per-item thread spawn. Lives in `gocast-sim` so
/// both the per-seed experiment fan-out and any kernel-level parallelism
/// share one audited implementation.
///
/// # Panics
///
/// Panics if a worker panics (the panic is propagated).
pub fn parallel_map<I, T, F>(jobs: usize, items: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(usize, I) -> T + Sync,
{
    let workers = jobs.max(1).min(items.len());
    if workers <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }
    let n_items = items.len();
    let queue: Mutex<std::collections::VecDeque<(usize, I)>> =
        Mutex::new(items.into_iter().enumerate().collect());
    let mut indexed: Vec<(usize, T)> = Vec::with_capacity(n_items);
    std::thread::scope(|scope| {
        let queue = &queue;
        let f = &f;
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let next = queue.lock().expect("queue lock").pop_front();
                        match next {
                            Some((i, item)) => out.push((i, f(i, item))),
                            None => break,
                        }
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            indexed.extend(h.join().expect("parallel_map worker panicked"));
        }
    });
    indexed.sort_by_key(|(i, _)| *i);
    indexed.into_iter().map(|(_, v)| v).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::FixedLatency;
    use crate::recorder::VecRecorder;
    use crate::stats::TrafficClass;

    /// The kernel test module's ring protocol, re-declared here: floods a
    /// token around a ring, one hop per message.
    struct Ring {
        id: NodeId,
        n: u32,
        hops_seen: u32,
    }

    #[derive(Debug, Clone)]
    struct Hop(u32);

    impl Wire for Hop {
        fn wire_size(&self) -> u32 {
            8
        }
        fn class(&self) -> TrafficClass {
            TrafficClass::Data
        }
    }

    impl Protocol for Ring {
        type Msg = Hop;
        type Command = ();
        type Event = (SimTime, u32);

        fn on_start(&mut self, ctx: &mut Ctx<'_, Self>) {
            if self.id == NodeId::new(0) {
                let next = NodeId::new((self.id.as_u32() + 1) % self.n);
                ctx.send(next, Hop(0));
            }
        }

        fn on_message(&mut self, ctx: &mut Ctx<'_, Self>, _from: NodeId, msg: Hop) {
            self.hops_seen += 1;
            ctx.emit((ctx.now(), msg.0));
            if msg.0 < 3 * self.n {
                let next = NodeId::new((self.id.as_u32() + 1) % self.n);
                ctx.send(next, Hop(msg.0 + 1));
            }
        }

        fn on_timer(&mut self, _ctx: &mut Ctx<'_, Self>, _timer: Timer) {}
    }

    fn ring(n: u32, lanes: usize, threads: usize) -> ShardedSim<Ring, VecRecorder<(SimTime, u32)>> {
        ShardedSimBuilder::new(FixedLatency::new(n as usize, Duration::from_millis(10)))
            .seed(1)
            .lanes(lanes)
            .threads(threads)
            .build_with(VecRecorder::new(), |id| Ring {
                id,
                n,
                hops_seen: 0,
            })
    }

    #[test]
    fn ring_circulates_across_lanes() {
        let mut sim = ring(4, 3, 1);
        sim.run_until(SimTime::from_secs(1));
        let total: u32 = sim.iter_nodes().map(|(_, p)| p.hops_seen).sum();
        assert_eq!(total, 13, "3n + 1 hops");
        assert_eq!(sim.recorder().events.len(), 13);
        let k = sim.kernel_stats();
        assert_eq!(k.deliveries, 13);
        assert_eq!(sim.stats().class(TrafficClass::Data).messages, 13);
    }

    #[test]
    fn output_identical_across_thread_counts() {
        let run = |threads| {
            let mut sim = ring(64, 8, threads);
            sim.run_until(SimTime::from_secs(30));
            (
                sim.recorder().events.clone(),
                sim.kernel_stats().deliveries,
                sim.now(),
            )
        };
        let serial = run(1);
        assert_eq!(serial, run(2));
        assert_eq!(serial, run(4));
    }

    #[test]
    fn matches_single_kernel_totals() {
        // Same ring on the single-threaded kernel: aggregate behaviour
        // (hops, deliveries, final time) must agree even though event
        // interleaving differs.
        let mut sharded = ring(12, 5, 2);
        sharded.run_until(SimTime::from_secs(2));
        let sharded_hops: u32 = sharded.iter_nodes().map(|(_, p)| p.hops_seen).sum();
        assert_eq!(sharded_hops, 3 * 12 + 1);
        assert_eq!(sharded.kernel_stats().deliveries, (3 * 12 + 1) as u64);
    }

    #[test]
    fn fail_node_drops_traffic() {
        let mut sim = ring(4, 2, 1);
        sim.fail_node_at(SimTime::from_millis(15), NodeId::new(2));
        sim.run_until(SimTime::from_secs(1));
        let total: u32 = sim.iter_nodes().map(|(_, p)| p.hops_seen).sum();
        assert_eq!(total, 1, "ring dies at the failed node");
        assert!(!sim.is_alive(NodeId::new(2)));
        assert_eq!(sim.alive_nodes().count(), 3);
        assert_eq!(sim.kernel_stats().messages_dropped, 1);
    }

    #[test]
    fn link_cut_and_partition_replicate_to_lanes() {
        let mut sim = ring(4, 4, 1);
        sim.fail_link_at(SimTime::from_millis(25), NodeId::new(2), NodeId::new(3));
        sim.run_until(SimTime::from_secs(1));
        let total: u32 = sim.iter_nodes().map(|(_, p)| p.hops_seen).sum();
        assert_eq!(total, 2, "token dies on the cut link");

        let mut sim = ring(4, 4, 1);
        sim.partition_at(SimTime::from_millis(25), vec![0, 0, 1, 1]);
        sim.run_until(SimTime::from_secs(1));
        let k = sim.kernel_stats();
        assert_eq!(k.partition_drops, 1);
    }

    #[test]
    fn total_loss_kills_all_traffic() {
        let mut sim = ring(4, 2, 1);
        sim.set_loss(1.0);
        sim.run_until(SimTime::from_secs(1));
        let total: u32 = sim.iter_nodes().map(|(_, p)| p.hops_seen).sum();
        assert_eq!(total, 0);
        assert_eq!(sim.kernel_stats().chaos_losses, 1);
    }

    #[test]
    fn commands_and_scheduling_validate_time() {
        let mut sim = ring(4, 2, 1);
        sim.run_until(SimTime::from_millis(50));
        assert_eq!(sim.now(), SimTime::from_millis(50));
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sim.schedule_command(SimTime::from_millis(10), NodeId::new(0), ());
        }));
        assert!(err.is_err(), "past scheduling must panic");
    }

    #[test]
    fn builder_requires_lookahead() {
        struct NoBound;
        impl LatencyModel for NoBound {
            fn one_way(&self, _: NodeId, _: NodeId) -> Duration {
                Duration::ZERO
            }
            fn len(&self) -> usize {
                4
            }
        }
        let r = std::panic::catch_unwind(|| {
            ShardedSimBuilder::new(NoBound).build_with(VecRecorder::<(SimTime, u32)>::new(), |_| {
                Ring {
                    id: NodeId::new(0),
                    n: 4,
                    hops_seen: 0,
                }
            })
        });
        assert!(r.is_err(), "zero-lookahead model must be rejected");
    }

    #[test]
    fn parallel_map_preserves_item_order() {
        let items: Vec<u64> = (0..32).collect();
        for jobs in [1, 2, 4, 7] {
            let out = parallel_map(jobs, items.clone(), |i, v| {
                assert_eq!(i as u64, v);
                v * 10
            });
            assert_eq!(out, (0..32).map(|v| v * 10).collect::<Vec<_>>());
        }
    }
}
