//! Traffic accounting.
//!
//! The kernel classifies every unicast send and tallies message and byte
//! counts per [`TrafficClass`]. Optionally it also tracks per-endpoint-pair
//! message counts, which the link-stress experiment maps onto physical
//! network paths.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::id::NodeId;

/// Coarse classification of protocol traffic, used for accounting only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TrafficClass {
    /// Full multicast payloads (tree pushes and gossip-pull responses).
    Data,
    /// Periodic message-ID summaries.
    Gossip,
    /// Pull requests for missing messages.
    Request,
    /// Overlay maintenance control traffic (link add/drop, rebalance).
    Control,
    /// RTT measurement probes.
    Probe,
    /// Tree heartbeats and route updates.
    Tree,
    /// Membership exchange.
    Membership,
}

impl TrafficClass {
    /// All classes, in a stable order (useful for table output).
    pub const ALL: [TrafficClass; 7] = [
        TrafficClass::Data,
        TrafficClass::Gossip,
        TrafficClass::Request,
        TrafficClass::Control,
        TrafficClass::Probe,
        TrafficClass::Tree,
        TrafficClass::Membership,
    ];

    /// Stable dense index of this class in [`TrafficClass::ALL`].
    pub fn index(self) -> usize {
        match self {
            TrafficClass::Data => 0,
            TrafficClass::Gossip => 1,
            TrafficClass::Request => 2,
            TrafficClass::Control => 3,
            TrafficClass::Probe => 4,
            TrafficClass::Tree => 5,
            TrafficClass::Membership => 6,
        }
    }
}

/// Message/byte counters for one traffic class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassCounters {
    /// Number of unicast messages sent.
    pub messages: u64,
    /// Total bytes sent.
    pub bytes: u64,
}

/// Aggregate traffic statistics for a simulation run.
///
/// ```
/// use gocast_sim::{NodeId, TrafficClass, TrafficStats};
///
/// let mut s = TrafficStats::new();
/// s.record(NodeId::new(0), NodeId::new(1), 100, TrafficClass::Data);
/// assert_eq!(s.class(TrafficClass::Data).messages, 1);
/// assert_eq!(s.total().bytes, 100);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TrafficStats {
    per_class: [ClassCounters; 7],
    pair_counts: Option<HashMap<(NodeId, NodeId), u64>>,
    dropped_to_dead: u64,
}

impl TrafficStats {
    /// Creates empty statistics with pair tracking disabled.
    pub fn new() -> Self {
        TrafficStats::default()
    }

    /// Enables per-(source, destination) byte counting.
    ///
    /// Pairs are stored unordered (the smaller id first) because physical
    /// link stress does not care about direction.
    pub fn enable_pair_counts(&mut self) {
        if self.pair_counts.is_none() {
            self.pair_counts = Some(HashMap::new());
        }
    }

    /// Records one unicast message.
    pub fn record(&mut self, from: NodeId, to: NodeId, bytes: u32, class: TrafficClass) {
        let c = &mut self.per_class[class.index()];
        c.messages += 1;
        c.bytes += bytes as u64;
        if let Some(pairs) = &mut self.pair_counts {
            let key = if from <= to { (from, to) } else { (to, from) };
            *pairs.entry(key).or_insert(0) += bytes as u64;
        }
    }

    /// Records a message that arrived at a failed node and was dropped.
    pub fn record_drop_to_dead(&mut self) {
        self.dropped_to_dead += 1;
    }

    /// Counters for one traffic class.
    pub fn class(&self, class: TrafficClass) -> ClassCounters {
        self.per_class[class.index()]
    }

    /// Counters summed over all classes.
    pub fn total(&self) -> ClassCounters {
        let mut t = ClassCounters::default();
        for c in &self.per_class {
            t.messages += c.messages;
            t.bytes += c.bytes;
        }
        t
    }

    /// Number of messages dropped because the destination had failed.
    pub fn dropped_to_dead(&self) -> u64 {
        self.dropped_to_dead
    }

    /// Per-unordered-pair byte counts, if enabled.
    pub fn pair_counts(&self) -> Option<&HashMap<(NodeId, NodeId), u64>> {
        self.pair_counts.as_ref()
    }

    /// Folds another run's counters into this one — the sharded kernel's
    /// per-lane aggregation. Pair counts merge when both sides track them.
    pub fn absorb(&mut self, other: &TrafficStats) {
        for (mine, theirs) in self.per_class.iter_mut().zip(&other.per_class) {
            mine.messages += theirs.messages;
            mine.bytes += theirs.bytes;
        }
        self.dropped_to_dead += other.dropped_to_dead;
        if let (Some(mine), Some(theirs)) = (&mut self.pair_counts, &other.pair_counts) {
            for (k, v) in theirs {
                *mine.entry(*k).or_insert(0) += v;
            }
        }
    }

    /// Resets all counters (pair tracking stays enabled if it was).
    pub fn reset(&mut self) {
        self.per_class = Default::default();
        self.dropped_to_dead = 0;
        if let Some(p) = &mut self.pair_counts {
            p.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_indices_match_all() {
        for (i, c) in TrafficClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn records_per_class_and_total() {
        let mut s = TrafficStats::new();
        s.record(NodeId::new(0), NodeId::new(1), 10, TrafficClass::Data);
        s.record(NodeId::new(1), NodeId::new(0), 20, TrafficClass::Data);
        s.record(NodeId::new(2), NodeId::new(3), 5, TrafficClass::Gossip);
        assert_eq!(s.class(TrafficClass::Data).messages, 2);
        assert_eq!(s.class(TrafficClass::Data).bytes, 30);
        assert_eq!(s.class(TrafficClass::Gossip).messages, 1);
        assert_eq!(s.total().messages, 3);
        assert_eq!(s.total().bytes, 35);
    }

    #[test]
    fn pair_counts_are_unordered() {
        let mut s = TrafficStats::new();
        s.enable_pair_counts();
        s.record(NodeId::new(5), NodeId::new(2), 10, TrafficClass::Data);
        s.record(NodeId::new(2), NodeId::new(5), 7, TrafficClass::Gossip);
        let pairs = s.pair_counts().unwrap();
        assert_eq!(pairs.len(), 1);
        assert_eq!(
            pairs[&(NodeId::new(2), NodeId::new(5))],
            17,
            "bytes, both directions"
        );
    }

    #[test]
    fn pair_counts_disabled_by_default() {
        let mut s = TrafficStats::new();
        s.record(NodeId::new(0), NodeId::new(1), 1, TrafficClass::Data);
        assert!(s.pair_counts().is_none());
    }

    #[test]
    fn reset_clears_counts() {
        let mut s = TrafficStats::new();
        s.enable_pair_counts();
        s.record(NodeId::new(0), NodeId::new(1), 1, TrafficClass::Data);
        s.record_drop_to_dead();
        s.reset();
        assert_eq!(s.total().messages, 0);
        assert_eq!(s.dropped_to_dead(), 0);
        assert_eq!(s.pair_counts().unwrap().len(), 0);
    }
}
