//! # gocast-sim — deterministic discrete-event simulation kernel
//!
//! The execution substrate for the GoCast reproduction. Protocols are
//! written **sans-IO** against the [`Protocol`] trait and driven by one
//! of two kernels over a pluggable [`LatencyModel`]:
//!
//! - [`Sim`] — the single-threaded, fully deterministic discrete-event
//!   loop every experiment historically ran on.
//! - [`ShardedSim`] — the scale kernel: the node population is split
//!   into fixed *lanes* ([`DEFAULT_LANES`]), events execute in
//!   conservative lookahead windows, and the lanes fan across worker
//!   threads. Thread count is pure execution policy — output is
//!   byte-identical at any `threads` value, so 10⁵–10⁶-node runs can
//!   use every core without giving up replay.
//!
//! The paper evaluates GoCast with exactly this style of simulator ("We
//! built an event-driven simulator ... We do not simulate the network-level
//! packet details"); this crate is that simulator, generalized so the same
//! protocol state machines could be rehosted on a real transport.
//!
//! ## Quick example
//!
//! ```
//! use gocast_sim::{
//!     Ctx, FixedLatency, NodeId, Protocol, SimBuilder, Timer, TrafficClass, Wire,
//! };
//! use std::time::Duration;
//!
//! /// Node 0 pings everyone; everyone counts pings.
//! struct Pinger { received: u32 }
//!
//! #[derive(Debug)]
//! struct Ping;
//!
//! impl Wire for Ping {
//!     fn wire_size(&self) -> u32 { 16 }
//!     fn class(&self) -> TrafficClass { TrafficClass::Probe }
//! }
//!
//! impl Protocol for Pinger {
//!     type Msg = Ping;
//!     type Command = ();
//!     type Event = ();
//!
//!     fn on_start(&mut self, ctx: &mut Ctx<'_, Self>) {
//!         if ctx.id() == NodeId::new(0) {
//!             for i in 1..ctx.node_count() as u32 {
//!                 ctx.send(NodeId::new(i), Ping);
//!             }
//!         }
//!     }
//!
//!     fn on_message(&mut self, _ctx: &mut Ctx<'_, Self>, _from: NodeId, _msg: Ping) {
//!         self.received += 1;
//!     }
//!
//!     fn on_timer(&mut self, _ctx: &mut Ctx<'_, Self>, _timer: Timer) {}
//! }
//!
//! let mut sim = SimBuilder::new(FixedLatency::new(4, Duration::from_millis(20)))
//!     .seed(1)
//!     .build(|_| Pinger { received: 0 });
//! sim.run_until_idle();
//! let total: u32 = sim.iter_nodes().map(|(_, p)| p.received).sum();
//! assert_eq!(total, 3);
//! ```
//!
//! ## Determinism
//!
//! - Events at equal timestamps fire in scheduling order ([`EventQueue`]).
//! - Each node draws randomness from its own RNG, seeded from the master
//!   seed and the node id, so a node's behaviour does not depend on how many
//!   random draws *other* nodes made.
//! - Protocol code has no access to wall-clock time or IO.
//! - On [`ShardedSim`], node → lane assignment is a pure function of the
//!   node id and the lane count (never the thread count), and lanes merge
//!   cross-lane messages at window barriers in a canonical sort order —
//!   so parallelism cannot reorder anything observable.
//!
//! Two runs with the same seed and topology produce byte-identical event
//! traces; integration tests assert this (including sharded runs at
//! different thread counts).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod hash;
mod id;
mod kernel;
mod latency;
mod protocol;
mod queue;
pub mod recorder;
pub mod scenario;
mod shard;
mod stack;
mod stats;
mod time;
mod trace;

pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use id::NodeId;
pub use kernel::{EventClass, KernelStats, PastScheduleError, Sim, SimBuilder};
pub use latency::{FixedLatency, HashedLatency, LatencyModel};
pub use protocol::{Ctx, HostBackend, Protocol, Timer, Wire};
pub use queue::{EventQueue, Scheduled};
pub use recorder::{FilterRecorder, FnRecorder, NullRecorder, Recorder, TeeRecorder, VecRecorder};
pub use scenario::{
    Fault, FaultSink, PlannedFault, PresenceTimeline, Scenario, ScenarioEnv, ScenarioPlan, Split,
};
pub use shard::{parallel_map, ShardedSim, ShardedSimBuilder, DEFAULT_LANES};
pub use stack::{Stack, StackCaps};
pub use stats::{ClassCounters, TrafficClass, TrafficStats};
pub use time::SimTime;
pub use trace::{TraceEvent, TraceRecorder};
