//! Pluggable network latency models.
//!
//! The kernel asks the model for a one-way latency every time a message is
//! sent. Realistic models (clustered "King-like" matrices, AS topologies)
//! live in the `gocast-net` crate; this module defines the trait plus two
//! trivial models that are handy in tests.

use std::time::Duration;

use crate::id::NodeId;

/// Provides one-way network latency between pairs of nodes.
///
/// Implementations must be symmetric (`one_way(a, b) == one_way(b, a)`) and
/// return zero for `a == b`. The GoCast protocol measures RTTs by pinging, so
/// `rtt` has a default implementation as twice the one-way latency.
pub trait LatencyModel {
    /// One-way latency from `a` to `b`.
    fn one_way(&self, a: NodeId, b: NodeId) -> Duration;

    /// Round-trip latency between `a` and `b` (default: `2 * one_way`).
    fn rtt(&self, a: NodeId, b: NodeId) -> Duration {
        self.one_way(a, b) * 2
    }

    /// Number of nodes this model covers.
    fn len(&self) -> usize;

    /// Whether the model covers zero nodes.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A lower bound on the one-way latency between any two *distinct*
    /// nodes, or `None` when the model cannot promise a positive bound.
    ///
    /// This is the conservative-parallel-simulation lookahead: the sharded
    /// kernel ([`crate::ShardedSim`]) processes each lane independently for
    /// a window of this length, because a message sent inside the window
    /// cannot arrive at another lane before the window ends. Injected
    /// jitter only *adds* latency, so the bound survives chaos. Models
    /// that cannot promise a positive bound return `None` (the default)
    /// and cannot drive the sharded kernel.
    fn lookahead(&self) -> Option<Duration> {
        None
    }
}

/// Every pair of distinct nodes is separated by the same latency.
///
/// ```
/// use gocast_sim::{FixedLatency, LatencyModel, NodeId};
/// use std::time::Duration;
///
/// let m = FixedLatency::new(16, Duration::from_millis(50));
/// assert_eq!(m.one_way(NodeId::new(0), NodeId::new(1)), Duration::from_millis(50));
/// assert_eq!(m.one_way(NodeId::new(3), NodeId::new(3)), Duration::ZERO);
/// ```
#[derive(Debug, Clone)]
pub struct FixedLatency {
    nodes: usize,
    latency: Duration,
}

impl FixedLatency {
    /// A model over `nodes` nodes with constant pairwise `latency`.
    pub fn new(nodes: usize, latency: Duration) -> Self {
        FixedLatency { nodes, latency }
    }
}

impl LatencyModel for FixedLatency {
    fn one_way(&self, a: NodeId, b: NodeId) -> Duration {
        if a == b {
            Duration::ZERO
        } else {
            self.latency
        }
    }

    fn len(&self) -> usize {
        self.nodes
    }

    fn lookahead(&self) -> Option<Duration> {
        (self.latency > Duration::ZERO).then_some(self.latency)
    }
}

/// Deterministic pseudo-random pairwise latencies in `[min, max)`.
///
/// The latency of a pair is a hash of the unordered pair, so it is symmetric
/// and stable across calls without storing an `n x n` matrix.
#[derive(Debug, Clone)]
pub struct HashedLatency {
    nodes: usize,
    min_nanos: u64,
    span_nanos: u64,
    seed: u64,
}

impl HashedLatency {
    /// A model over `nodes` nodes with latencies uniform-ish in `[min, max)`.
    ///
    /// # Panics
    ///
    /// Panics if `max <= min`.
    pub fn new(nodes: usize, min: Duration, max: Duration, seed: u64) -> Self {
        assert!(max > min, "HashedLatency requires max > min");
        HashedLatency {
            nodes,
            min_nanos: min.as_nanos() as u64,
            span_nanos: (max - min).as_nanos() as u64,
            seed,
        }
    }
}

/// A small fast mixing function (splitmix64 finalizer).
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58476d1ce4e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

impl LatencyModel for HashedLatency {
    fn one_way(&self, a: NodeId, b: NodeId) -> Duration {
        if a == b {
            return Duration::ZERO;
        }
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let h = mix(self.seed ^ ((lo.as_u32() as u64) << 32 | hi.as_u32() as u64));
        Duration::from_nanos(self.min_nanos + h % self.span_nanos)
    }

    fn len(&self) -> usize {
        self.nodes
    }

    fn lookahead(&self) -> Option<Duration> {
        (self.min_nanos > 0).then(|| Duration::from_nanos(self.min_nanos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_is_symmetric_and_zero_on_diagonal() {
        let m = FixedLatency::new(4, Duration::from_millis(10));
        let (a, b) = (NodeId::new(1), NodeId::new(2));
        assert_eq!(m.one_way(a, b), m.one_way(b, a));
        assert_eq!(m.one_way(a, a), Duration::ZERO);
        assert_eq!(m.rtt(a, b), Duration::from_millis(20));
        assert_eq!(m.len(), 4);
        assert!(!m.is_empty());
    }

    #[test]
    fn hashed_is_symmetric_in_range_and_stable() {
        let m = HashedLatency::new(64, Duration::from_millis(5), Duration::from_millis(200), 9);
        for i in 0..64u32 {
            for j in (i + 1)..64 {
                let (a, b) = (NodeId::new(i), NodeId::new(j));
                let l = m.one_way(a, b);
                assert_eq!(l, m.one_way(b, a));
                assert!(l >= Duration::from_millis(5) && l < Duration::from_millis(200));
                assert_eq!(l, m.one_way(a, b), "stable across calls");
            }
        }
    }

    #[test]
    fn hashed_varies_with_seed() {
        let a = HashedLatency::new(8, Duration::ZERO, Duration::from_secs(1), 1);
        let b = HashedLatency::new(8, Duration::ZERO, Duration::from_secs(1), 2);
        let differs = (0..8u32)
            .flat_map(|i| (0..8u32).map(move |j| (i, j)))
            .any(|(i, j)| {
                i != j
                    && a.one_way(NodeId::new(i), NodeId::new(j))
                        != b.one_way(NodeId::new(i), NodeId::new(j))
            });
        assert!(differs);
    }

    #[test]
    #[should_panic(expected = "max > min")]
    fn hashed_rejects_empty_range() {
        let _ = HashedLatency::new(2, Duration::from_millis(5), Duration::from_millis(5), 0);
    }
}
