//! The discrete-event simulation kernel.
//!
//! [`Sim`] owns the protocol instances, the event queue, the latency model,
//! per-node RNGs, the traffic counters, and the event recorder. Execution is
//! single-threaded and fully deterministic for a given seed: events at equal
//! timestamps fire in scheduling order.

use gocast_metrics::{Log2Histogram, Snapshot};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::id::NodeId;
use crate::latency::LatencyModel;
use crate::protocol::{Ctx, KernelEvent, Protocol, Timer};
use crate::queue::EventQueue;
use crate::recorder::{NullRecorder, Recorder};
use crate::stats::TrafficStats;
use crate::time::SimTime;

/// Kernel-level execution counters, snapshot via [`Sim::kernel_stats`].
///
/// These measure the *kernel itself* — how many events it processed and
/// how fast — as opposed to [`TrafficStats`], which measures the
/// protocol's traffic. All counters are cumulative since construction.
///
/// Wall-clock time is accrued by the run loops ([`Sim::run_until`],
/// [`Sim::run_until_idle`], [`Sim::run_for`]); stepping manually with
/// [`Sim::step`] advances the event counters but not `wall_time`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KernelStats {
    /// Total events popped from the queue and executed.
    pub events_processed: u64,
    /// Message deliveries dispatched to a protocol handler.
    pub deliveries: u64,
    /// Messages dropped in flight (dead destination, failed link, or
    /// partition).
    pub messages_dropped: u64,
    /// Messages dropped in flight because the endpoints were on opposite
    /// sides of a network partition (a subset of `messages_dropped`).
    pub partition_drops: u64,
    /// Messages dropped at send time by the probabilistic-loss fault
    /// injector ([`Sim::set_loss`]). Disjoint from `messages_dropped`.
    pub chaos_losses: u64,
    /// Timer firings dispatched.
    pub timers_fired: u64,
    /// Commands dispatched.
    pub commands: u64,
    /// Kernel control events executed (node failures, link up/down).
    pub control_events: u64,
    /// Total events ever scheduled (including still-pending ones).
    pub events_scheduled: u64,
    /// Events pending at snapshot time.
    pub queue_len: usize,
    /// Highest queue depth observed at any step.
    pub queue_high_water: usize,
    /// Payload slots ever created in the event-queue slab — the
    /// high-water mark of *concurrently pending* events (occupied plus the
    /// recycled free list). Once this stops growing, steady-state
    /// scheduling no longer allocates.
    pub slab_slots: usize,
    /// Bytes of backing storage the event queue currently reserves (heap
    /// entries + payload slab + free list). Self-reported, so scaling
    /// tables need no external process inspection.
    pub queue_mem_bytes: u64,
    /// Wall-clock time spent inside the run loops.
    pub wall_time: std::time::Duration,
}

impl KernelStats {
    /// Messages handed to the network layer (delivered + dropped in
    /// flight + lost to injected message loss).
    pub fn messages_sent(&self) -> u64 {
        self.deliveries + self.messages_dropped + self.chaos_losses
    }

    /// Kernel throughput: events processed per wall-clock second.
    /// Zero until a run loop has accrued measurable wall time.
    pub fn events_per_sec(&self) -> f64 {
        let secs = self.wall_time.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.events_processed as f64 / secs
        }
    }

    /// Folds another kernel's counters into this one — the sharded
    /// kernel's per-lane aggregation. Monotonic counters and memory sizes
    /// add; the high-water marks take the per-lane maximum (a lane-local
    /// depth, not a global instant); wall time takes the maximum because
    /// lanes run concurrently.
    pub fn absorb(&mut self, other: &KernelStats) {
        self.events_processed += other.events_processed;
        self.deliveries += other.deliveries;
        self.messages_dropped += other.messages_dropped;
        self.partition_drops += other.partition_drops;
        self.chaos_losses += other.chaos_losses;
        self.timers_fired += other.timers_fired;
        self.commands += other.commands;
        self.control_events += other.control_events;
        self.events_scheduled += other.events_scheduled;
        self.queue_len += other.queue_len;
        self.queue_high_water = self.queue_high_water.max(other.queue_high_water);
        self.slab_slots += other.slab_slots;
        self.queue_mem_bytes += other.queue_mem_bytes;
        self.wall_time = self.wall_time.max(other.wall_time);
    }
}

impl std::fmt::Display for KernelStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} events ({} delivered, {} dropped, {} timers) in {:.3?}, {:.0} events/sec, queue high-water {}",
            self.events_processed,
            self.deliveries,
            self.messages_dropped,
            self.timers_fired,
            self.wall_time,
            self.events_per_sec(),
            self.queue_high_water,
        )
    }
}

/// Kernel event classes, for per-class dispatch accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventClass {
    /// Message deliveries (including in-flight drops).
    Deliver,
    /// Protocol timer firings.
    Timer,
    /// Harness-injected commands.
    Command,
    /// Kernel control events (failures, link/loss/partition changes).
    Control,
}

impl EventClass {
    /// Every class, in dispatch-table order.
    pub const ALL: [EventClass; 4] = [
        EventClass::Deliver,
        EventClass::Timer,
        EventClass::Command,
        EventClass::Control,
    ];

    /// Stable lowercase name.
    pub const fn name(self) -> &'static str {
        match self {
            EventClass::Deliver => "deliver",
            EventClass::Timer => "timer",
            EventClass::Command => "command",
            EventClass::Control => "control",
        }
    }

    /// Dense index into per-class arrays.
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    const fn dispatch_metric_name(self) -> &'static str {
        match self {
            EventClass::Deliver => "kernel_dispatch_ns_deliver",
            EventClass::Timer => "kernel_dispatch_ns_timer",
            EventClass::Command => "kernel_dispatch_ns_command",
            EventClass::Control => "kernel_dispatch_ns_control",
        }
    }
}

/// Deep kernel instrumentation, off by default ([`Sim::enable_telemetry`]).
///
/// The always-on [`KernelStats`] counters cover event totals; this adds a
/// queue-depth histogram observed at every pop (sim-deterministic) and
/// per-class dispatch-time histograms sampled every
/// `TELEMETRY_SAMPLE`-th event (wall-clock, so marked non-deterministic
/// in snapshots). Sampling keeps the `Instant` reads off most events:
/// measured overhead stays within the ≤5% budget the wire-path work
/// requires (see DESIGN.md "Telemetry").
#[derive(Debug)]
struct KernelTelemetry {
    enabled: bool,
    queue_depth: Log2Histogram,
    dispatch_ns: [Log2Histogram; EventClass::ALL.len()],
}

/// Dispatch timing samples every 64th event: two `Instant` reads cost
/// tens of nanoseconds, which amortized over 64 events is well under a
/// nanosecond per event.
const TELEMETRY_SAMPLE: u64 = 64;

impl KernelTelemetry {
    fn new() -> Self {
        KernelTelemetry {
            enabled: false,
            queue_depth: Log2Histogram::new(),
            dispatch_ns: [Log2Histogram::new(); EventClass::ALL.len()],
        }
    }
}

fn event_class<M, C>(ev: &KernelEvent<M, C>) -> EventClass {
    match ev {
        KernelEvent::Deliver { .. } => EventClass::Deliver,
        KernelEvent::Fire { .. } => EventClass::Timer,
        KernelEvent::Command { .. } => EventClass::Command,
        KernelEvent::Fail { .. }
        | KernelEvent::SetLink { .. }
        | KernelEvent::SetLoss { .. }
        | KernelEvent::SetJitter { .. }
        | KernelEvent::SetPartition { .. } => EventClass::Control,
    }
}

/// Error returned by the `try_*` scheduling methods when the requested
/// firing time is earlier than the simulation clock.
///
/// The panicking variants ([`Sim::fail_node_at`], [`Sim::fail_link_at`],
/// [`Sim::schedule_command`], ...) panic with this error's message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PastScheduleError {
    /// The requested firing time.
    pub at: SimTime,
    /// The simulation clock at the time of the call.
    pub now: SimTime,
}

impl std::fmt::Display for PastScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cannot schedule an event at {:?} in the past (simulation time is {:?})",
            self.at, self.now
        )
    }
}

impl std::error::Error for PastScheduleError {}

/// Message-level fault injection state: probabilistic loss and latency
/// jitter, applied at send time.
///
/// Draws come from a dedicated RNG stream (derived from the master seed,
/// separate from every per-node stream), so enabling chaos never perturbs
/// protocol-level randomness, and a run without chaos makes zero draws —
/// byte-identical to a build without this feature.
#[derive(Debug)]
pub(crate) struct NetFaults {
    /// Per-message loss probability in parts per million (0 = off).
    pub(crate) loss_ppm: u32,
    /// Maximum extra one-way latency, drawn uniformly per message (0 = off).
    pub(crate) jitter_ns: u64,
    /// Dedicated chaos RNG stream.
    pub(crate) rng: SmallRng,
    /// Messages dropped by the loss injector.
    pub(crate) losses: u64,
}

impl NetFaults {
    pub(crate) fn new(seed: u64) -> Self {
        NetFaults {
            loss_ppm: 0,
            jitter_ns: 0,
            // Distinct stream: per-node RNGs use seed * GOLDEN ^ node_index,
            // so folding in a large constant cannot collide with any node.
            rng: SmallRng::seed_from_u64(
                seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0xC4A0_5FA7_17E5_0123,
            ),
            losses: 0,
        }
    }

    /// Whether any send-time fault is enabled (single branch on the
    /// no-chaos hot path).
    #[inline]
    pub(crate) fn active(&self) -> bool {
        self.loss_ppm > 0 || self.jitter_ns > 0
    }
}

/// Configures and constructs a [`Sim`].
///
/// ```
/// use gocast_sim::{FixedLatency, SimBuilder};
/// use std::time::Duration;
///
/// let builder = SimBuilder::new(FixedLatency::new(8, Duration::from_millis(10)))
///     .seed(42)
///     .track_pair_counts();
/// # let _ = builder;
/// ```
pub struct SimBuilder {
    net: Box<dyn LatencyModel>,
    seed: u64,
    pair_counts: bool,
    telemetry: bool,
}

impl std::fmt::Debug for SimBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimBuilder")
            .field("nodes", &self.net.len())
            .field("seed", &self.seed)
            .field("pair_counts", &self.pair_counts)
            .field("telemetry", &self.telemetry)
            .finish()
    }
}

impl SimBuilder {
    /// Starts a builder over the given latency model. The model's node count
    /// determines the simulation's node count.
    pub fn new(net: impl LatencyModel + 'static) -> Self {
        SimBuilder {
            net: Box::new(net),
            seed: 0,
            pair_counts: false,
            telemetry: false,
        }
    }

    /// Sets the master seed. All per-node RNGs derive from it.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables per-endpoint-pair traffic counting (used for link stress).
    pub fn track_pair_counts(mut self) -> Self {
        self.pair_counts = true;
        self
    }

    /// Enables deep kernel telemetry (queue-depth histogram plus sampled
    /// per-class dispatch timing; see [`Sim::metrics_snapshot`]).
    pub fn telemetry(mut self) -> Self {
        self.telemetry = true;
        self
    }

    /// Builds the simulation, constructing one protocol instance per node
    /// with `make`, and recording events with `recorder`.
    pub fn build_with<P, R, F>(self, recorder: R, mut make: F) -> Sim<P, R>
    where
        P: Protocol,
        R: Recorder<P::Event>,
        F: FnMut(NodeId) -> P,
    {
        let n = self.net.len();
        let nodes = (0..n).map(|i| make(NodeId::new(i as u32))).collect();
        let rngs = (0..n)
            .map(|i| SmallRng::seed_from_u64(self.seed.wrapping_mul(0x9e3779b97f4a7c15) ^ i as u64))
            .collect();
        let mut stats = TrafficStats::new();
        if self.pair_counts {
            stats.enable_pair_counts();
        }
        let mut telemetry = KernelTelemetry::new();
        telemetry.enabled = self.telemetry;
        Sim {
            now: SimTime::ZERO,
            nodes,
            alive: vec![true; n],
            rngs,
            queue: EventQueue::new(),
            net: self.net,
            recorder,
            stats,
            kernel: KernelStats::default(),
            telemetry,
            failed_links: LinkSet::default(),
            faults: NetFaults::new(self.seed),
            partition: None,
            started: false,
        }
    }

    /// Convenience: builds with a [`NullRecorder`].
    pub fn build<P, F>(self, make: F) -> Sim<P, NullRecorder>
    where
        P: Protocol,
        F: FnMut(NodeId) -> P,
    {
        self.build_with(NullRecorder, make)
    }
}

/// A deterministic discrete-event simulation of `n` protocol instances.
pub struct Sim<P: Protocol, R: Recorder<P::Event> = NullRecorder> {
    now: SimTime,
    /// Protocol state, arena-style: one dense slot per node, never moved
    /// after construction (dispatch split-borrows the slot in place).
    nodes: Vec<P>,
    alive: Vec<bool>,
    rngs: Vec<SmallRng>,
    queue: EventQueue<KernelEvent<P::Msg, P::Command>>,
    net: Box<dyn LatencyModel>,
    recorder: R,
    stats: TrafficStats,
    kernel: KernelStats,
    telemetry: KernelTelemetry,
    /// Currently failed links, as normalized `(min, max)` pairs.
    failed_links: LinkSet,
    /// Send-time fault injection (loss / jitter).
    faults: NetFaults,
    /// Active network partition: side label per node. Messages between
    /// nodes with different labels are dropped in flight.
    partition: Option<Vec<u32>>,
    started: bool,
}

pub(crate) fn link_key(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// The set of currently failed links, as normalized `(min, max)` pairs.
///
/// Failure scenarios cut at most a handful of links, but the *membership
/// check* sits on the per-delivery hot path, so the representation is a
/// sorted `Vec` probed by binary search instead of a `HashSet`: the empty
/// and tiny cases cost a length check plus at most a few comparisons, with
/// none of SipHash's per-lookup hashing, and iteration order (hence any
/// derived behaviour) is deterministic.
#[derive(Debug, Default)]
pub(crate) struct LinkSet(Vec<(NodeId, NodeId)>);

impl LinkSet {
    #[inline]
    pub(crate) fn contains(&self, key: (NodeId, NodeId)) -> bool {
        !self.0.is_empty() && self.0.binary_search(&key).is_ok()
    }

    pub(crate) fn insert(&mut self, key: (NodeId, NodeId)) {
        if let Err(i) = self.0.binary_search(&key) {
            self.0.insert(i, key);
        }
    }

    pub(crate) fn remove(&mut self, key: (NodeId, NodeId)) {
        if let Ok(i) = self.0.binary_search(&key) {
            self.0.remove(i);
        }
    }
}

impl<P: Protocol, R: Recorder<P::Event>> std::fmt::Debug for Sim<P, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sim")
            .field("now", &self.now)
            .field("nodes", &self.nodes.len())
            .field("pending_events", &self.queue.len())
            .finish()
    }
}

impl<P: Protocol, R: Recorder<P::Event>> Sim<P, R> {
    /// Number of nodes (alive or failed).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the simulation has zero nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Whether `node` is currently alive.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.alive[node.index()]
    }

    /// Ids of all currently alive nodes.
    pub fn alive_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.alive
            .iter()
            .enumerate()
            .filter(|(_, a)| **a)
            .map(|(i, _)| NodeId::new(i as u32))
    }

    /// Immutable access to a node's protocol state (available even after the
    /// node failed — useful for post-mortem analysis).
    pub fn node(&self, node: NodeId) -> &P {
        &self.nodes[node.index()]
    }

    /// Mutable access to a node's protocol state (test/ harness use).
    pub fn node_mut(&mut self, node: NodeId) -> &mut P {
        &mut self.nodes[node.index()]
    }

    /// Iterates over `(id, state)` for every node.
    pub fn iter_nodes(&self) -> impl Iterator<Item = (NodeId, &P)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId::new(i as u32), n))
    }

    /// The latency model driving this simulation.
    pub fn latency_model(&self) -> &dyn LatencyModel {
        self.net.as_ref()
    }

    /// Traffic counters accumulated so far.
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// Resets traffic counters (e.g. to exclude warm-up traffic).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Snapshot of the kernel execution counters (see [`KernelStats`]).
    pub fn kernel_stats(&self) -> KernelStats {
        let mut k = self.kernel;
        k.queue_len = self.queue.len();
        k.events_scheduled = self.queue.scheduled_total();
        k.chaos_losses = self.faults.losses;
        k.slab_slots = self.queue.slab_slots();
        k.queue_mem_bytes = self.queue.mem_bytes();
        k
    }

    /// Turns on deep kernel telemetry for an already-built simulation
    /// (equivalent to [`SimBuilder::telemetry`]).
    pub fn enable_telemetry(&mut self) {
        self.telemetry.enabled = true;
    }

    /// Whether deep kernel telemetry is on.
    pub fn telemetry_enabled(&self) -> bool {
        self.telemetry.enabled
    }

    /// A named [`Snapshot`] of every kernel metric under stable `kernel_*`
    /// names: the always-on [`KernelStats`] counters, event-queue and
    /// payload-slab occupancy, and — when telemetry is enabled — the
    /// queue-depth histogram (sim-deterministic) plus per-class dispatch
    /// timings (wall-clock, marked non-deterministic).
    pub fn metrics_snapshot(&self) -> Snapshot {
        let k = self.kernel_stats();
        let mut s = Snapshot::new();
        s.record_counter("kernel_events", k.events_processed);
        s.record_counter("kernel_scheduled", k.events_scheduled);
        s.record_counter("kernel_deliveries", k.deliveries);
        s.record_counter("kernel_drops", k.messages_dropped);
        s.record_counter("kernel_partition_drops", k.partition_drops);
        s.record_counter("kernel_chaos_losses", k.chaos_losses);
        s.record_counter("kernel_timers", k.timers_fired);
        s.record_counter("kernel_commands", k.commands);
        s.record_counter("kernel_control", k.control_events);
        s.record_level(
            "kernel_queue_len",
            k.queue_len as i64,
            k.queue_high_water as i64,
        );
        // Slab length is itself a high-water mark of concurrently pending
        // events; occupied = total minus the recycled free list.
        let slots = self.queue.slab_slots();
        let occupied = slots - self.queue.free_slots();
        s.record_level("kernel_slab_occupied", occupied as i64, slots as i64);
        s.record_counter("kernel_queue_mem_bytes", self.queue.mem_bytes());
        if self.telemetry.enabled {
            s.record_histogram("kernel_queue_depth", &self.telemetry.queue_depth);
            for class in EventClass::ALL {
                s.record_wall_histogram(
                    class.dispatch_metric_name(),
                    &self.telemetry.dispatch_ns[class.index()],
                );
            }
        }
        s
    }

    /// The recorder.
    pub fn recorder(&self) -> &R {
        &self.recorder
    }

    /// Mutable access to the recorder.
    pub fn recorder_mut(&mut self) -> &mut R {
        &mut self.recorder
    }

    /// Consumes the simulation, returning the recorder.
    pub fn into_recorder(self) -> R {
        self.recorder
    }

    /// Checks that `at` has not already passed.
    fn check_future(&self, at: SimTime) -> Result<(), PastScheduleError> {
        if at < self.now {
            Err(PastScheduleError { at, now: self.now })
        } else {
            Ok(())
        }
    }

    /// Schedules command `cmd` for `node` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past; use [`Sim::try_schedule_command`]
    /// for a fallible variant.
    pub fn schedule_command(&mut self, at: SimTime, node: NodeId, cmd: P::Command) {
        self.try_schedule_command(at, node, cmd)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Schedules command `cmd` for `node` at absolute time `at`, or
    /// returns a [`PastScheduleError`] if `at` has already passed.
    pub fn try_schedule_command(
        &mut self,
        at: SimTime,
        node: NodeId,
        cmd: P::Command,
    ) -> Result<(), PastScheduleError> {
        self.check_future(at)?;
        self.queue.schedule(at, KernelEvent::Command { node, cmd });
        Ok(())
    }

    /// Injects a command for `node` at the current time.
    pub fn command_now(&mut self, node: NodeId, cmd: P::Command) {
        self.queue
            .schedule(self.now, KernelEvent::Command { node, cmd });
    }

    /// Schedules a crash of `node` at absolute time `at`. From that instant
    /// the node stops executing handlers and all traffic to it is dropped.
    ///
    /// ```
    /// use gocast_sim::{Ctx, FixedLatency, NodeId, Protocol, SimBuilder, SimTime, Timer};
    /// # use gocast_sim::{TrafficClass, Wire};
    /// use std::time::Duration;
    ///
    /// # struct Quiet;
    /// # #[derive(Debug)]
    /// # struct Never;
    /// # impl Wire for Never {
    /// #     fn wire_size(&self) -> u32 { 0 }
    /// #     fn class(&self) -> TrafficClass { TrafficClass::Data }
    /// # }
    /// # impl Protocol for Quiet {
    /// #     type Msg = Never;
    /// #     type Command = ();
    /// #     type Event = ();
    /// #     fn on_start(&mut self, _: &mut Ctx<'_, Self>) {}
    /// #     fn on_message(&mut self, _: &mut Ctx<'_, Self>, _: NodeId, _: Never) {}
    /// #     fn on_timer(&mut self, _: &mut Ctx<'_, Self>, _: Timer) {}
    /// # }
    /// let mut sim = SimBuilder::new(FixedLatency::new(4, Duration::from_millis(5)))
    ///     .build(|_| Quiet);
    /// sim.fail_node_at(SimTime::from_secs(1), NodeId::new(3));
    /// sim.run_until(SimTime::from_secs(2));
    /// assert!(!sim.is_alive(NodeId::new(3)));
    /// assert_eq!(sim.alive_nodes().count(), 3);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past; use [`Sim::try_fail_node_at`] for a
    /// fallible variant.
    pub fn fail_node_at(&mut self, at: SimTime, node: NodeId) {
        self.try_fail_node_at(at, node)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Schedules a crash of `node` at absolute time `at`, or returns a
    /// [`PastScheduleError`] if `at` has already passed.
    pub fn try_fail_node_at(&mut self, at: SimTime, node: NodeId) -> Result<(), PastScheduleError> {
        self.check_future(at)?;
        self.queue.schedule(at, KernelEvent::Fail { node });
        Ok(())
    }

    /// Crashes `node` immediately.
    pub fn fail_node(&mut self, node: NodeId) {
        self.alive[node.index()] = false;
    }

    /// Cuts the (bidirectional) network path between `a` and `b`
    /// immediately: messages in either direction are silently dropped
    /// until [`Sim::heal_link`].
    pub fn fail_link(&mut self, a: NodeId, b: NodeId) {
        self.failed_links.insert(link_key(a, b));
    }

    /// Restores a previously failed link.
    pub fn heal_link(&mut self, a: NodeId, b: NodeId) {
        self.failed_links.remove(link_key(a, b));
    }

    /// Schedules a link cut at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past; use [`Sim::try_fail_link_at`] for a
    /// fallible variant.
    pub fn fail_link_at(&mut self, at: SimTime, a: NodeId, b: NodeId) {
        self.try_fail_link_at(at, a, b)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Schedules a link cut at absolute time `at`, or returns a
    /// [`PastScheduleError`] if `at` has already passed.
    pub fn try_fail_link_at(
        &mut self,
        at: SimTime,
        a: NodeId,
        b: NodeId,
    ) -> Result<(), PastScheduleError> {
        self.check_future(at)?;
        self.queue
            .schedule(at, KernelEvent::SetLink { a, b, up: false });
        Ok(())
    }

    /// Schedules a link restore at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past; use [`Sim::try_heal_link_at`] for a
    /// fallible variant.
    pub fn heal_link_at(&mut self, at: SimTime, a: NodeId, b: NodeId) {
        self.try_heal_link_at(at, a, b)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Schedules a link restore at absolute time `at`, or returns a
    /// [`PastScheduleError`] if `at` has already passed.
    pub fn try_heal_link_at(
        &mut self,
        at: SimTime,
        a: NodeId,
        b: NodeId,
    ) -> Result<(), PastScheduleError> {
        self.check_future(at)?;
        self.queue
            .schedule(at, KernelEvent::SetLink { a, b, up: true });
        Ok(())
    }

    /// Whether the path between `a` and `b` is currently cut.
    pub fn is_link_failed(&self, a: NodeId, b: NodeId) -> bool {
        self.failed_links.contains(link_key(a, b))
    }

    // ------------------------------------------------------------------
    // Message-level fault injection (chaos engine).
    // ------------------------------------------------------------------

    /// Sets the per-message loss probability (`0.0..=1.0`) applied to every
    /// subsequent send between distinct nodes. Lost messages count into
    /// [`KernelStats::chaos_losses`], not `messages_dropped`.
    ///
    /// Loss draws come from a dedicated chaos RNG stream, so runs with
    /// `p == 0.0` are byte-identical to runs on a kernel without fault
    /// injection.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `0.0..=1.0`.
    pub fn set_loss(&mut self, p: f64) {
        assert!(
            (0.0..=1.0).contains(&p),
            "loss probability {p} not in 0..=1"
        );
        self.faults.loss_ppm = (p * 1_000_000.0).round() as u32;
    }

    /// Current per-message loss probability.
    pub fn loss(&self) -> f64 {
        self.faults.loss_ppm as f64 / 1_000_000.0
    }

    /// Sets the maximum extra one-way latency added to every subsequent
    /// send between distinct nodes; each message draws uniformly from
    /// `[0, jitter]`. `Duration::ZERO` disables jitter.
    pub fn set_jitter(&mut self, jitter: std::time::Duration) {
        self.faults.jitter_ns = jitter.as_nanos().min(u64::MAX as u128) as u64;
    }

    /// Current maximum latency jitter.
    pub fn jitter(&self) -> std::time::Duration {
        std::time::Duration::from_nanos(self.faults.jitter_ns)
    }

    /// Schedules a loss-probability change at absolute time `at` (see
    /// [`Sim::set_loss`]).
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past or `p` is not within `0.0..=1.0`.
    pub fn set_loss_at(&mut self, at: SimTime, p: f64) {
        assert!(
            (0.0..=1.0).contains(&p),
            "loss probability {p} not in 0..=1"
        );
        self.check_future(at).unwrap_or_else(|e| panic!("{e}"));
        let ppm = (p * 1_000_000.0).round() as u32;
        self.queue.schedule(at, KernelEvent::SetLoss { ppm });
    }

    /// Schedules a jitter change at absolute time `at` (see
    /// [`Sim::set_jitter`]).
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn set_jitter_at(&mut self, at: SimTime, jitter: std::time::Duration) {
        self.check_future(at).unwrap_or_else(|e| panic!("{e}"));
        let nanos = jitter.as_nanos().min(u64::MAX as u128) as u64;
        self.queue.schedule(at, KernelEvent::SetJitter { nanos });
    }

    /// Installs a network partition immediately: `sides[i]` is node `i`'s
    /// side label, and messages between nodes with different labels are
    /// dropped in flight (counted in [`KernelStats::partition_drops`]).
    /// Messages already in flight across the cut are dropped on arrival.
    ///
    /// # Panics
    ///
    /// Panics if `sides.len()` differs from the node count.
    pub fn set_partition(&mut self, sides: Vec<u32>) {
        assert_eq!(
            sides.len(),
            self.nodes.len(),
            "partition must label every node"
        );
        self.partition = Some(sides);
    }

    /// Removes the active partition (no-op when none is active).
    pub fn clear_partition(&mut self) {
        self.partition = None;
    }

    /// Whether a partition is currently active.
    pub fn is_partitioned(&self) -> bool {
        self.partition.is_some()
    }

    /// Schedules a partition at absolute time `at` (see
    /// [`Sim::set_partition`]).
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past or `sides.len()` differs from the node
    /// count.
    pub fn partition_at(&mut self, at: SimTime, sides: Vec<u32>) {
        assert_eq!(
            sides.len(),
            self.nodes.len(),
            "partition must label every node"
        );
        self.check_future(at).unwrap_or_else(|e| panic!("{e}"));
        self.queue
            .schedule(at, KernelEvent::SetPartition { sides: Some(sides) });
    }

    /// Schedules the removal of any active partition at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn heal_partition_at(&mut self, at: SimTime) {
        self.check_future(at).unwrap_or_else(|e| panic!("{e}"));
        self.queue
            .schedule(at, KernelEvent::SetPartition { sides: None });
    }

    /// Whether the active partition separates `a` from `b`.
    #[inline]
    fn partition_blocks(&self, a: NodeId, b: NodeId) -> bool {
        match &self.partition {
            None => false,
            Some(sides) => sides[a.index()] != sides[b.index()],
        }
    }

    /// Calls `on_start` on every alive node, once. Run methods call this
    /// implicitly.
    pub fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.nodes.len() {
            if self.alive[i] {
                self.dispatch_start(NodeId::new(i as u32));
            }
        }
    }

    /// Processes events until the queue is exhausted.
    ///
    /// Periodic protocols never go idle; prefer [`Sim::run_until`] for them.
    pub fn run_until_idle(&mut self) {
        let t0 = std::time::Instant::now();
        self.start();
        while self.step() {}
        self.kernel.wall_time += t0.elapsed();
    }

    /// Processes all events scheduled at or before `deadline`, then advances
    /// the clock to `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        let t0 = std::time::Instant::now();
        self.start();
        loop {
            let depth = self.queue.len();
            if depth > self.kernel.queue_high_water {
                self.kernel.queue_high_water = depth;
            }
            // Deadline test and pop share a single heap-top probe.
            let Some(ev) = self.queue.pop_at_or_before(deadline) else {
                break;
            };
            self.execute(ev);
        }
        debug_assert!(self.now <= deadline);
        self.now = deadline;
        self.kernel.wall_time += t0.elapsed();
    }

    /// Runs for `d` more simulated time.
    pub fn run_for(&mut self, d: std::time::Duration) {
        self.run_until(self.now + d);
    }

    /// Processes a single event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let depth = self.queue.len();
        if depth > self.kernel.queue_high_water {
            self.kernel.queue_high_water = depth;
        }
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        self.execute(ev);
        true
    }

    /// Advances the clock to the event's timestamp and dispatches it.
    fn execute(&mut self, ev: crate::queue::Scheduled<KernelEvent<P::Msg, P::Command>>) {
        debug_assert!(ev.at >= self.now, "time went backwards");
        self.now = ev.at;
        self.kernel.events_processed += 1;
        if self.telemetry.enabled {
            self.telemetry.queue_depth.observe(self.queue.len() as u64);
            if self
                .kernel
                .events_processed
                .is_multiple_of(TELEMETRY_SAMPLE)
            {
                let class = event_class(&ev.payload);
                let t0 = std::time::Instant::now();
                self.dispatch_event(ev.payload);
                let ns = t0.elapsed().as_nanos() as u64;
                self.telemetry.dispatch_ns[class.index()].observe(ns);
                return;
            }
        }
        self.dispatch_event(ev.payload);
    }

    fn dispatch_event(&mut self, payload: KernelEvent<P::Msg, P::Command>) {
        match payload {
            KernelEvent::Deliver { from, to, msg } => {
                if !self.alive[to.index()] || self.failed_links.contains(link_key(from, to)) {
                    self.kernel.messages_dropped += 1;
                    self.stats.record_drop_to_dead();
                } else if self.partition_blocks(from, to) {
                    self.kernel.messages_dropped += 1;
                    self.kernel.partition_drops += 1;
                    self.stats.record_drop_to_dead();
                } else {
                    self.kernel.deliveries += 1;
                    self.dispatch_message(to, from, msg);
                }
            }
            KernelEvent::Fire { node, timer } => {
                if self.alive[node.index()] {
                    self.kernel.timers_fired += 1;
                    self.dispatch_timer(node, timer);
                }
            }
            KernelEvent::Command { node, cmd } => {
                if self.alive[node.index()] {
                    self.kernel.commands += 1;
                    self.dispatch_command(node, cmd);
                }
            }
            KernelEvent::Fail { node } => {
                self.kernel.control_events += 1;
                self.alive[node.index()] = false;
            }
            KernelEvent::SetLink { a, b, up } => {
                self.kernel.control_events += 1;
                if up {
                    self.heal_link(a, b);
                } else {
                    self.fail_link(a, b);
                }
            }
            KernelEvent::SetLoss { ppm } => {
                self.kernel.control_events += 1;
                self.faults.loss_ppm = ppm;
            }
            KernelEvent::SetJitter { nanos } => {
                self.kernel.control_events += 1;
                self.faults.jitter_ns = nanos;
            }
            KernelEvent::SetPartition { sides } => {
                self.kernel.control_events += 1;
                if let Some(s) = &sides {
                    debug_assert_eq!(s.len(), self.nodes.len());
                }
                self.partition = sides;
            }
        }
    }

    fn with_ctx<F: FnOnce(&mut P, &mut Ctx<'_, P>)>(&mut self, node: NodeId, f: F) {
        // Split borrows: the protocol instance and the context borrow
        // disjoint fields of `self`, so the node stays in place — no
        // whole-struct move in and out of the slot per dispatched event.
        let i = node.index();
        let p = &mut self.nodes[i];
        let mut ctx = Ctx::for_sim(
            node,
            self.now,
            &mut self.rngs[i],
            &mut self.queue,
            self.net.as_ref(),
            &mut self.recorder,
            &mut self.stats,
            &mut self.faults,
        );
        f(p, &mut ctx);
    }

    fn dispatch_start(&mut self, node: NodeId) {
        self.with_ctx(node, |p, ctx| p.on_start(ctx));
    }

    fn dispatch_message(&mut self, node: NodeId, from: NodeId, msg: P::Msg) {
        self.with_ctx(node, |p, ctx| p.on_message(ctx, from, msg));
    }

    fn dispatch_timer(&mut self, node: NodeId, timer: Timer) {
        self.with_ctx(node, |p, ctx| p.on_timer(ctx, timer));
    }

    fn dispatch_command(&mut self, node: NodeId, cmd: P::Command) {
        self.with_ctx(node, |p, ctx| p.on_command(ctx, cmd));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::FixedLatency;
    use crate::protocol::Wire;
    use crate::recorder::VecRecorder;
    use crate::stats::TrafficClass;
    use std::time::Duration;

    /// A toy protocol: floods a token around a ring, one hop per message.
    struct Ring {
        id: NodeId,
        n: u32,
        hops_seen: u32,
    }

    #[derive(Debug, Clone)]
    struct Hop(u32);

    impl Wire for Hop {
        fn wire_size(&self) -> u32 {
            8
        }
        fn class(&self) -> TrafficClass {
            TrafficClass::Data
        }
    }

    #[derive(Debug, PartialEq)]
    enum RingEvent {
        Received(u32),
    }

    impl Protocol for Ring {
        type Msg = Hop;
        type Command = ();
        type Event = RingEvent;

        fn on_start(&mut self, ctx: &mut Ctx<'_, Self>) {
            if self.id == NodeId::new(0) {
                let next = NodeId::new((self.id.as_u32() + 1) % self.n);
                ctx.send(next, Hop(0));
            }
        }

        fn on_message(&mut self, ctx: &mut Ctx<'_, Self>, _from: NodeId, msg: Hop) {
            self.hops_seen += 1;
            ctx.emit(RingEvent::Received(msg.0));
            if msg.0 < 3 * self.n {
                let next = NodeId::new((self.id.as_u32() + 1) % self.n);
                ctx.send(next, Hop(msg.0 + 1));
            }
        }

        fn on_timer(&mut self, _ctx: &mut Ctx<'_, Self>, _timer: Timer) {}
    }

    fn ring_sim(n: u32, seed: u64) -> Sim<Ring, VecRecorder<RingEvent>> {
        SimBuilder::new(FixedLatency::new(n as usize, Duration::from_millis(10)))
            .seed(seed)
            .build_with(VecRecorder::new(), |id| Ring {
                id,
                n,
                hops_seen: 0,
            })
    }

    #[test]
    fn token_circulates_and_time_advances() {
        let mut sim = ring_sim(4, 1);
        sim.run_until_idle();
        // 3n + 1 = 13 hops, each 10ms.
        assert_eq!(sim.now(), SimTime::from_millis(130));
        let total: u32 = sim.iter_nodes().map(|(_, p)| p.hops_seen).sum();
        assert_eq!(total, 13);
        assert_eq!(sim.recorder().events.len(), 13);
        assert_eq!(sim.stats().class(TrafficClass::Data).messages, 13);
        assert_eq!(sim.stats().class(TrafficClass::Data).bytes, 13 * 8);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim = ring_sim(4, 1);
        sim.run_until(SimTime::from_millis(35));
        assert_eq!(sim.now(), SimTime::from_millis(35));
        // Hops at 10, 20, 30 ms have fired.
        let total: u32 = sim.iter_nodes().map(|(_, p)| p.hops_seen).sum();
        assert_eq!(total, 3);
        sim.run_until_idle();
        let total: u32 = sim.iter_nodes().map(|(_, p)| p.hops_seen).sum();
        assert_eq!(total, 13);
    }

    #[test]
    fn failed_node_drops_traffic() {
        let mut sim = ring_sim(4, 1);
        sim.fail_node_at(SimTime::from_millis(15), NodeId::new(2));
        sim.run_until_idle();
        // Hop 0 reaches n1 at 10ms, hop 1 is in flight to n2, which dies at
        // 15ms; the message is dropped at 20ms and the ring stops.
        let total: u32 = sim.iter_nodes().map(|(_, p)| p.hops_seen).sum();
        assert_eq!(total, 1);
        assert_eq!(sim.stats().dropped_to_dead(), 1);
        assert!(!sim.is_alive(NodeId::new(2)));
        assert_eq!(sim.alive_nodes().count(), 3);
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let mut a = ring_sim(5, 7);
        let mut b = ring_sim(5, 7);
        a.run_until_idle();
        b.run_until_idle();
        assert_eq!(a.recorder().events, b.recorder().events);
        assert_eq!(a.now(), b.now());
    }

    #[test]
    fn node_state_remains_accessible_after_failure() {
        let mut sim = ring_sim(3, 1);
        sim.run_until(SimTime::from_millis(25));
        sim.fail_node(NodeId::new(1));
        assert!(sim.node(NodeId::new(1)).hops_seen > 0);
    }

    #[test]
    fn failed_link_drops_traffic_both_ways_until_healed() {
        let mut sim = ring_sim(4, 1);
        // Cut 1 -> 2 from the start; the token dies on that hop.
        sim.fail_link(NodeId::new(1), NodeId::new(2));
        assert!(
            sim.is_link_failed(NodeId::new(2), NodeId::new(1)),
            "undirected"
        );
        sim.run_until(SimTime::from_millis(100));
        let total: u32 = sim.iter_nodes().map(|(_, p)| p.hops_seen).sum();
        assert_eq!(total, 1, "only the first hop (0 -> 1) delivers");
        assert_eq!(sim.stats().dropped_to_dead(), 1);
        // Healing restores nothing retroactively (the message was lost),
        // but future traffic flows.
        sim.heal_link(NodeId::new(1), NodeId::new(2));
        assert!(!sim.is_link_failed(NodeId::new(1), NodeId::new(2)));
    }

    #[test]
    fn scheduled_link_failure_fires_at_time() {
        let mut sim = ring_sim(4, 1);
        // Cut 2 -> 3 at 25 ms: hops at 10 (0->1), 20 (1->2) deliver; the
        // 2->3 delivery at 30 ms is dropped.
        sim.fail_link_at(SimTime::from_millis(25), NodeId::new(2), NodeId::new(3));
        sim.run_until_idle();
        let total: u32 = sim.iter_nodes().map(|(_, p)| p.hops_seen).sum();
        assert_eq!(total, 2);
        // Heal scheduling works too.
        sim.heal_link_at(sim.now(), NodeId::new(2), NodeId::new(3));
        sim.run_until_idle();
        assert!(!sim.is_link_failed(NodeId::new(2), NodeId::new(3)));
    }

    #[test]
    fn kernel_stats_count_events_and_throughput() {
        let mut sim = ring_sim(4, 1);
        assert_eq!(sim.kernel_stats(), KernelStats::default());
        sim.fail_node_at(SimTime::from_millis(15), NodeId::new(2));
        sim.run_until_idle();
        let k = sim.kernel_stats();
        // Hop 0 delivers to n1 at 10ms; hop 1 drops at the dead n2; the
        // Fail control event fires in between.
        assert_eq!(k.deliveries, 1);
        assert_eq!(k.messages_dropped, 1);
        assert_eq!(k.control_events, 1);
        assert_eq!(k.events_processed, 3);
        assert_eq!(k.messages_sent(), 2);
        assert_eq!(k.events_scheduled, 3);
        assert_eq!(k.queue_len, 0);
        assert!(k.queue_high_water >= 1);
        assert!(k.wall_time > Duration::ZERO);
        assert!(k.events_per_sec() > 0.0);
        // Counters are cumulative across runs.
        sim.command_now(NodeId::new(0), ());
        sim.run_until_idle();
        let k2 = sim.kernel_stats();
        assert_eq!(k2.commands, 1);
        assert!(k2.events_processed > k.events_processed);
        assert!(k2.wall_time >= k.wall_time);
    }

    #[test]
    fn manual_stepping_counts_events_without_wall_time() {
        let mut sim = ring_sim(4, 1);
        sim.start();
        while sim.step() {}
        let k = sim.kernel_stats();
        assert_eq!(k.deliveries, 13);
        assert_eq!(k.wall_time, Duration::ZERO);
        assert_eq!(k.events_per_sec(), 0.0);
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        let mut sim = ring_sim(3, 1);
        sim.run_until(SimTime::from_millis(50));
        sim.schedule_command(SimTime::from_millis(10), NodeId::new(0), ());
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn fail_node_in_the_past_panics() {
        let mut sim = ring_sim(3, 1);
        sim.run_until(SimTime::from_millis(50));
        sim.fail_node_at(SimTime::from_millis(10), NodeId::new(0));
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn fail_link_in_the_past_panics() {
        let mut sim = ring_sim(3, 1);
        sim.run_until(SimTime::from_millis(50));
        sim.fail_link_at(SimTime::from_millis(10), NodeId::new(0), NodeId::new(1));
    }

    #[test]
    fn try_scheduling_reports_past_timestamps() {
        let mut sim = ring_sim(3, 1);
        sim.run_until(SimTime::from_millis(50));
        let err = sim
            .try_fail_node_at(SimTime::from_millis(10), NodeId::new(0))
            .unwrap_err();
        assert_eq!(err.at, SimTime::from_millis(10));
        assert_eq!(err.now, SimTime::from_millis(50));
        assert!(err.to_string().contains("in the past"));
        assert!(sim
            .try_fail_link_at(SimTime::from_millis(10), NodeId::new(0), NodeId::new(1))
            .is_err());
        assert!(sim
            .try_heal_link_at(SimTime::from_millis(10), NodeId::new(0), NodeId::new(1))
            .is_err());
        assert!(sim
            .try_schedule_command(SimTime::from_millis(10), NodeId::new(0), ())
            .is_err());
        // Present and future timestamps are fine.
        sim.try_fail_node_at(SimTime::from_millis(50), NodeId::new(2))
            .unwrap();
        sim.try_fail_link_at(SimTime::from_millis(60), NodeId::new(0), NodeId::new(1))
            .unwrap();
        sim.run_until(SimTime::from_millis(70));
        assert!(!sim.is_alive(NodeId::new(2)));
        assert!(sim.is_link_failed(NodeId::new(0), NodeId::new(1)));
    }

    #[test]
    fn total_loss_kills_all_traffic_and_is_counted() {
        let mut sim = ring_sim(4, 1);
        sim.set_loss(1.0);
        assert_eq!(sim.loss(), 1.0);
        sim.run_until_idle();
        let total: u32 = sim.iter_nodes().map(|(_, p)| p.hops_seen).sum();
        assert_eq!(total, 0, "every send is lost");
        let k = sim.kernel_stats();
        assert_eq!(k.chaos_losses, 1);
        assert_eq!(k.deliveries, 0);
        assert_eq!(k.messages_sent(), 1);
    }

    #[test]
    fn partial_loss_drops_a_plausible_fraction() {
        // The ring re-sends until hop 3n, so a run sees many sends; with
        // 30% loss the token dies early on most seeds, so instead count
        // across many independent seeds.
        let mut lost = 0u64;
        let mut sent = 0u64;
        for seed in 0..200 {
            let mut sim = ring_sim(3, seed);
            sim.set_loss(0.3);
            sim.run_until_idle();
            let k = sim.kernel_stats();
            lost += k.chaos_losses;
            sent += k.messages_sent();
        }
        let rate = lost as f64 / sent as f64;
        assert!((0.2..0.4).contains(&rate), "observed loss rate {rate}");
    }

    #[test]
    fn loss_is_deterministic_per_seed() {
        let run = |seed| {
            let mut sim = ring_sim(5, seed);
            sim.set_loss(0.2);
            sim.run_until_idle();
            (sim.kernel_stats().chaos_losses, sim.now())
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn jitter_delays_but_preserves_delivery() {
        let mut sim = ring_sim(4, 1);
        sim.set_jitter(Duration::from_millis(5));
        assert_eq!(sim.jitter(), Duration::from_millis(5));
        sim.run_until_idle();
        let total: u32 = sim.iter_nodes().map(|(_, p)| p.hops_seen).sum();
        assert_eq!(total, 13, "jitter loses nothing");
        // 13 hops of 10ms base latency plus per-hop jitter in [0, 5ms].
        assert!(sim.now() >= SimTime::from_millis(130));
        assert!(sim.now() <= SimTime::from_millis(130 + 13 * 5));
    }

    #[test]
    fn chaos_disabled_makes_no_rng_draws() {
        // A run with loss/jitter never enabled must be byte-identical to
        // one where they were enabled and disabled again before start.
        let mut plain = ring_sim(5, 3);
        let mut toggled = ring_sim(5, 3);
        toggled.set_loss(0.5);
        toggled.set_jitter(Duration::from_millis(2));
        toggled.set_loss(0.0);
        toggled.set_jitter(Duration::ZERO);
        plain.run_until_idle();
        toggled.run_until_idle();
        assert_eq!(plain.recorder().events, toggled.recorder().events);
        assert_eq!(plain.now(), toggled.now());
    }

    #[test]
    fn partition_blocks_cross_side_traffic_until_healed() {
        let mut sim = ring_sim(4, 1);
        // Nodes 0,1 vs 2,3: the token dies on the 1 -> 2 hop.
        sim.set_partition(vec![0, 0, 1, 1]);
        assert!(sim.is_partitioned());
        sim.run_until(SimTime::from_millis(100));
        let total: u32 = sim.iter_nodes().map(|(_, p)| p.hops_seen).sum();
        assert_eq!(total, 1);
        let k = sim.kernel_stats();
        assert_eq!(k.partition_drops, 1);
        assert_eq!(k.messages_dropped, 1);
        sim.clear_partition();
        assert!(!sim.is_partitioned());
    }

    #[test]
    fn scheduled_partition_and_heal_fire_at_time() {
        let mut sim = ring_sim(4, 1);
        sim.partition_at(SimTime::from_millis(25), vec![0, 0, 1, 1]);
        sim.heal_partition_at(SimTime::from_millis(45));
        sim.run_until(SimTime::from_millis(30));
        assert!(sim.is_partitioned());
        sim.run_until(SimTime::from_millis(50));
        assert!(!sim.is_partitioned());
        // Hops at 10 (0->1), 20 (1->2, pre-partition) and 30 (2->3,
        // same side) delivered; 3->0 at 40 was dropped across the cut.
        let total: u32 = sim.iter_nodes().map(|(_, p)| p.hops_seen).sum();
        assert_eq!(total, 3);
        assert_eq!(sim.kernel_stats().partition_drops, 1);
    }

    #[test]
    #[should_panic(expected = "label every node")]
    fn partition_must_cover_all_nodes() {
        let mut sim = ring_sim(4, 1);
        sim.set_partition(vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "not in 0..=1")]
    fn loss_probability_is_validated() {
        let mut sim = ring_sim(4, 1);
        sim.set_loss(1.5);
    }
}
