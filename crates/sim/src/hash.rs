//! A fast, deterministic hasher for simulation-internal maps.
//!
//! `std`'s default `HashMap` hasher (SipHash-1-3 with per-process random
//! keys) is built to resist hash-flooding from untrusted input. Nothing in
//! the simulator hashes untrusted input — keys are small fixed-width ids
//! the simulation itself minted — so every protocol-side lookup and insert
//! was paying for collision resistance it cannot need. [`FxHasher`] is the
//! Firefox/rustc multiply-rotate hash: a couple of arithmetic instructions
//! per word, no per-process state, and therefore the same table layout on
//! every run (determinism by construction rather than by avoiding
//! iteration).
//!
//! Use the [`FxHashMap`]/[`FxHashSet`] aliases for any map on a hot path
//! keyed by node ids, message ids, or other simulation-minted integers.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Firefox/rustc `FxHasher` (a 64-bit
/// golden-ratio-derived odd constant).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast non-cryptographic hasher for simulation-minted keys.
///
/// Not resistant to crafted collisions; never use it on attacker-chosen
/// keys.
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`]; stateless, so every map starts from the
/// same table layout on every run.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(0xdead_beef);
        b.write_u64(0xdead_beef);
        assert_eq!(a.finish(), b.finish());
        assert_ne!(a.finish(), 0);
    }

    #[test]
    fn distinct_keys_hash_differently() {
        let hash = |v: u64| {
            let mut h = FxHasher::default();
            h.write_u64(v);
            h.finish()
        };
        // Not a collision-resistance claim; just a sanity check that the
        // mix actually mixes over a small dense key range.
        let hashes: std::collections::HashSet<u64> = (0..10_000).map(hash).collect();
        assert_eq!(hashes.len(), 10_000);
    }

    #[test]
    fn byte_stream_matches_regardless_of_chunking() {
        // write() folds 8-byte words; a short tail must still contribute.
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 0]);
        // Zero-padded tails of different lengths are allowed to collide in
        // principle, but maps only ever hash fixed-width keys; this test
        // simply exercises the tail path.
        let _ = (a.finish(), b.finish());
    }

    #[test]
    fn map_alias_works() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        let mut s: FxHashSet<u32> = FxHashSet::default();
        s.insert(7);
        assert!(s.contains(&7));
    }
}
