//! Simulated time.
//!
//! The kernel measures time as nanoseconds since simulation start. Instants
//! are represented by [`SimTime`]; spans reuse [`std::time::Duration`], which
//! keeps protocol code looking like ordinary Rust networking code.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

use serde::{Deserialize, Serialize};

/// An instant on the simulated clock, measured from simulation start.
///
/// `SimTime` is a transparent wrapper over nanoseconds. It is totally
/// ordered, cheap to copy, and supports arithmetic with
/// [`std::time::Duration`]:
///
/// ```
/// use gocast_sim::SimTime;
/// use std::time::Duration;
///
/// let t = SimTime::ZERO + Duration::from_millis(250);
/// assert_eq!(t.as_secs_f64(), 0.25);
/// assert!(t > SimTime::ZERO);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable instant. Useful as a sentinel for
    /// "no deadline".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `nanos` nanoseconds after simulation start.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant `millis` milliseconds after simulation start.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000_000)
    }

    /// Creates an instant `secs` seconds after simulation start.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Creates an instant from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN, or too large to represent.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimTime::from_secs_f64 requires a finite non-negative value, got {secs}"
        );
        SimTime((secs * 1e9).round() as u64)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is in
    /// the future.
    pub fn saturating_since(self, earlier: SimTime) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }

    /// Adds `d`, saturating at [`SimTime::MAX`] instead of overflowing.
    pub fn saturating_add(self, d: Duration) -> SimTime {
        SimTime(self.0.saturating_add(duration_to_nanos(d)))
    }
}

/// Converts a `Duration` to simulated nanoseconds, saturating at `u64::MAX`.
fn duration_to_nanos(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

impl Add<Duration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: Duration) -> SimTime {
        SimTime(
            self.0
                .checked_add(duration_to_nanos(rhs))
                .expect("SimTime overflow"),
        )
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;

    /// # Panics
    ///
    /// Panics if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when that can happen.
    fn sub(self, rhs: SimTime) -> Duration {
        Duration::from_nanos(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_default() {
        assert_eq!(SimTime::default(), SimTime::ZERO);
        assert_eq!(SimTime::ZERO.as_nanos(), 0);
    }

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(3), SimTime::from_millis(3000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_nanos(1_000_000));
        assert_eq!(SimTime::from_secs_f64(0.5), SimTime::from_millis(500));
    }

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::from_secs(10);
        let later = t + Duration::from_millis(123);
        assert_eq!(later - t, Duration::from_millis(123));
        assert_eq!(later.saturating_since(t), Duration::from_millis(123));
        assert_eq!(t.saturating_since(later), Duration::ZERO);
    }

    #[test]
    fn ordering_follows_nanos() {
        assert!(SimTime::from_nanos(1) < SimTime::from_nanos(2));
        assert!(SimTime::MAX > SimTime::from_secs(1_000_000));
    }

    #[test]
    fn saturating_add_caps_at_max() {
        assert_eq!(
            SimTime::MAX.saturating_add(Duration::from_secs(1)),
            SimTime::MAX
        );
    }

    #[test]
    fn display_is_seconds() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500000s");
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_panics_on_underflow() {
        let _ = SimTime::ZERO - SimTime::from_nanos(1);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn from_secs_f64_rejects_negative() {
        let _ = SimTime::from_secs_f64(-1.0);
    }
}
