//! Deadline scheduling shared by every deployment host.
//!
//! A [`TimerWheel`] orders pending [`Timer`]s by monotonic-clock deadline
//! and adds the two facilities a real host needs that the simulation
//! kernel's event queue does not:
//!
//! - **dedup**: scheduling a timer whose identity `(kind, a, b)` already
//!   has a live entry *replaces* it — the superseded entry is invalidated
//!   by a per-identity generation counter and skipped when it surfaces.
//!   GoCast's timer contract already requires handlers to tolerate stale
//!   firings (timers are one-shot and uncancellable at the protocol
//!   level), and no GoCast timer relies on two concurrent in-flight
//!   instances of the same identity, so dedup is behaviour-preserving
//!   while keeping the heap from accumulating superseded periodic timers;
//! - **cancellation**: [`TimerWheel::cancel`] invalidates the live entry
//!   for an identity without a heap scan (the host uses this for its own
//!   bookkeeping timers, e.g. delayed-datagram release in the testnet
//!   fabric).
//!
//! Invalidated entries are removed lazily when they reach the top of the
//! heap; the per-identity generation table shrinks back to empty as
//! entries drain, so memory stays proportional to *pending* timers even
//! across long runs with per-message timer identities.
//!
//! ```
//! use gocast_sim::Timer;
//! use gocast_udp::TimerWheel;
//! use std::time::{Duration, Instant};
//!
//! let mut wheel = TimerWheel::new();
//! let t0 = Instant::now();
//! wheel.schedule(t0 + Duration::from_millis(20), Timer::of_kind(1));
//! wheel.schedule(t0 + Duration::from_millis(10), Timer::of_kind(2));
//! // Rescheduling kind 1 replaces the 20 ms entry.
//! wheel.schedule(t0 + Duration::from_millis(5), Timer::of_kind(1));
//! assert_eq!(wheel.len(), 2);
//! assert_eq!(wheel.next_deadline(), Some(t0 + Duration::from_millis(5)));
//! let fired = wheel.pop_due(t0 + Duration::from_millis(30)).unwrap();
//! assert_eq!(fired.kind, 1);
//! ```

use std::collections::BinaryHeap;
use std::time::Instant;

use gocast_sim::{FxHashMap, Timer};

/// A heap entry: deadline, FIFO tiebreak, and the generation it was
/// scheduled under (mismatching the identity's current generation marks
/// it stale).
#[derive(Debug)]
struct Entry {
    at: Instant,
    seq: u64,
    gen: u64,
    timer: Timer,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Per-identity state: the current generation and how many heap entries
/// (live or stale) still reference this identity.
#[derive(Debug, Default, Clone, Copy)]
struct Slot {
    gen: u64,
    in_heap: u32,
    live: bool,
}

/// A monotonic-clock timer queue with identity-based dedup and
/// cancellation. See the [module docs](self) for semantics.
#[derive(Debug, Default)]
pub struct TimerWheel {
    heap: BinaryHeap<Entry>,
    slots: FxHashMap<Timer, Slot>,
    seq: u64,
    live: usize,
}

impl TimerWheel {
    /// An empty wheel.
    pub fn new() -> Self {
        TimerWheel::default()
    }

    /// Number of live (not superseded, not cancelled) timers.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no live timers are pending.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Schedules `timer` to fire at `at`. If a live entry with the same
    /// identity is already pending it is superseded (dedup): only this
    /// newest schedule will fire.
    pub fn schedule(&mut self, at: Instant, timer: Timer) {
        let slot = self.slots.entry(timer).or_default();
        slot.gen += 1;
        slot.in_heap += 1;
        if !slot.live {
            slot.live = true;
            self.live += 1;
        }
        self.seq += 1;
        self.heap.push(Entry {
            at,
            seq: self.seq,
            gen: slot.gen,
            timer,
        });
    }

    /// Cancels the live entry for `timer`'s identity, if any. Returns
    /// whether a live entry was cancelled.
    pub fn cancel(&mut self, timer: Timer) -> bool {
        match self.slots.get_mut(&timer) {
            Some(slot) if slot.live => {
                slot.gen += 1;
                slot.live = false;
                self.live -= 1;
                true
            }
            _ => false,
        }
    }

    /// The deadline of the earliest live timer, draining stale entries
    /// off the top of the heap as a side effect.
    pub fn next_deadline(&mut self) -> Option<Instant> {
        loop {
            let head = self.heap.peek()?;
            if self.is_live(head) {
                return Some(head.at);
            }
            let entry = self.heap.pop().expect("peeked");
            self.release(entry.timer);
        }
    }

    /// Pops the earliest live timer whose deadline is at or before `now`.
    /// Returns `None` when nothing further is due.
    pub fn pop_due(&mut self, now: Instant) -> Option<Timer> {
        loop {
            let head = self.heap.peek()?;
            let live = self.is_live(head);
            if live && head.at > now {
                return None;
            }
            let entry = self.heap.pop().expect("peeked");
            self.release(entry.timer);
            if live {
                let slot = self.slots.entry(entry.timer).or_default();
                if slot.live {
                    slot.live = false;
                    self.live -= 1;
                }
                self.drop_empty(entry.timer);
                return Some(entry.timer);
            }
        }
    }

    fn is_live(&self, entry: &Entry) -> bool {
        self.slots
            .get(&entry.timer)
            .is_some_and(|s| s.live && s.gen == entry.gen)
    }

    /// Accounts for one heap entry of `timer`'s identity leaving the heap.
    fn release(&mut self, timer: Timer) {
        if let Some(slot) = self.slots.get_mut(&timer) {
            slot.in_heap = slot.in_heap.saturating_sub(1);
        }
        self.drop_empty(timer);
    }

    /// Removes the identity's slot once no heap entries reference it, so
    /// the table stays proportional to pending timers.
    fn drop_empty(&mut self, timer: Timer) {
        if let Some(slot) = self.slots.get(&timer) {
            if slot.in_heap == 0 && !slot.live {
                self.slots.remove(&timer);
            }
        }
    }
}

/// A deadline-ordered queue of arbitrary payloads (FIFO within a
/// deadline), the companion to [`TimerWheel`] for work that is *held*
/// rather than *scheduled* — e.g. jitter-delayed datagrams in the
/// testnet fabric.
///
/// An event loop that sleeps when idle must take its wake-up time from
/// **both** structures: `min(wheel.next_deadline(), queue.next_deadline())`.
/// Computing the sleep from the timer wheel head alone delivers held
/// items late under light load — the loop dozes past their release time
/// because nothing else is due. Keeping the held-item heap behind the
/// same `next_deadline`/`pop_due` API as the wheel makes that mistake
/// hard to write.
#[derive(Debug)]
pub struct DelayQueue<T> {
    heap: BinaryHeap<Held<T>>,
    seq: u64,
}

#[derive(Debug)]
struct Held<T> {
    at: Instant,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Held<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Held<T> {}
impl<T> PartialOrd for Held<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Held<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

impl<T> Default for DelayQueue<T> {
    fn default() -> Self {
        DelayQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }
}

impl<T> DelayQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        DelayQueue::default()
    }

    /// Number of held items.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no items are held.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Holds `item` until `at`.
    pub fn push(&mut self, at: Instant, item: T) {
        self.seq += 1;
        self.heap.push(Held {
            at,
            seq: self.seq,
            item,
        });
    }

    /// The release time of the earliest held item, if any. Feed this into
    /// the event loop's idle-sleep computation alongside
    /// [`TimerWheel::next_deadline`].
    pub fn next_deadline(&self) -> Option<Instant> {
        self.heap.peek().map(|h| h.at)
    }

    /// Pops the earliest item whose release time is at or before `now`.
    pub fn pop_due(&mut self, now: Instant) -> Option<T> {
        if self.heap.peek()?.at > now {
            return None;
        }
        Some(self.heap.pop().expect("peeked").item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn base() -> Instant {
        Instant::now()
    }

    #[test]
    fn fires_in_deadline_order() {
        let t0 = base();
        let mut w = TimerWheel::new();
        w.schedule(t0 + Duration::from_millis(30), Timer::of_kind(3));
        w.schedule(t0 + Duration::from_millis(10), Timer::of_kind(1));
        w.schedule(t0 + Duration::from_millis(20), Timer::of_kind(2));
        let now = t0 + Duration::from_millis(40);
        let fired: Vec<u32> = std::iter::from_fn(|| w.pop_due(now))
            .map(|t| t.kind)
            .collect();
        assert_eq!(fired, vec![1, 2, 3]);
        assert!(w.is_empty());
    }

    #[test]
    fn nothing_due_before_deadline() {
        let t0 = base();
        let mut w = TimerWheel::new();
        w.schedule(t0 + Duration::from_millis(10), Timer::of_kind(1));
        assert_eq!(w.pop_due(t0), None);
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn rescheduling_same_identity_replaces() {
        let t0 = base();
        let mut w = TimerWheel::new();
        let t = Timer::with_payload(7, 1, 2);
        w.schedule(t0 + Duration::from_millis(10), t);
        w.schedule(t0 + Duration::from_millis(50), t);
        assert_eq!(w.len(), 1);
        // Only the 50 ms instance is live: nothing fires at 20 ms.
        assert_eq!(w.pop_due(t0 + Duration::from_millis(20)), None);
        assert_eq!(w.pop_due(t0 + Duration::from_millis(60)), Some(t));
        assert_eq!(w.pop_due(t0 + Duration::from_millis(60)), None);
    }

    #[test]
    fn distinct_payloads_are_distinct_identities() {
        let t0 = base();
        let mut w = TimerWheel::new();
        w.schedule(t0 + Duration::from_millis(10), Timer::with_payload(5, 0, 1));
        w.schedule(t0 + Duration::from_millis(10), Timer::with_payload(5, 0, 2));
        assert_eq!(w.len(), 2);
        let now = t0 + Duration::from_millis(20);
        assert!(w.pop_due(now).is_some());
        assert!(w.pop_due(now).is_some());
        assert!(w.pop_due(now).is_none());
    }

    #[test]
    fn cancel_prevents_firing() {
        let t0 = base();
        let mut w = TimerWheel::new();
        let t = Timer::of_kind(9);
        w.schedule(t0 + Duration::from_millis(5), t);
        assert!(w.cancel(t));
        assert!(!w.cancel(t)); // already cancelled
        assert_eq!(w.pop_due(t0 + Duration::from_millis(10)), None);
        assert!(w.is_empty());
    }

    #[test]
    fn next_deadline_skips_stale_entries() {
        let t0 = base();
        let mut w = TimerWheel::new();
        let t = Timer::of_kind(1);
        w.schedule(t0 + Duration::from_millis(5), t);
        w.schedule(t0 + Duration::from_millis(50), t); // supersedes the 5 ms entry
        w.schedule(t0 + Duration::from_millis(20), Timer::of_kind(2));
        assert_eq!(w.next_deadline(), Some(t0 + Duration::from_millis(20)));
    }

    #[test]
    fn delay_queue_releases_in_order_and_exposes_deadline() {
        let t0 = base();
        let mut q = DelayQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.next_deadline(), None);
        q.push(t0 + Duration::from_millis(30), "late");
        q.push(t0 + Duration::from_millis(10), "early");
        q.push(t0 + Duration::from_millis(10), "early2"); // FIFO tie
        assert_eq!(q.len(), 3);
        assert_eq!(q.next_deadline(), Some(t0 + Duration::from_millis(10)));
        assert_eq!(q.pop_due(t0), None, "nothing due yet");
        let now = t0 + Duration::from_millis(20);
        assert_eq!(q.pop_due(now), Some("early"));
        assert_eq!(q.pop_due(now), Some("early2"));
        assert_eq!(q.pop_due(now), None, "30 ms item not due at 20 ms");
        assert_eq!(q.pop_due(t0 + Duration::from_millis(40)), Some("late"));
        assert!(q.is_empty());
    }

    /// Regression for the idle-sleep bug class: a loop that computes its
    /// sleep from the timer wheel alone would doze to 500 ms here and
    /// release the held item ~490 ms late. Taking the min over both
    /// structures wakes at 10 ms.
    #[test]
    fn combined_wakeup_respects_the_delay_queue_head() {
        let t0 = base();
        let mut wheel = TimerWheel::new();
        let mut held: DelayQueue<u32> = DelayQueue::new();
        wheel.schedule(t0 + Duration::from_millis(500), Timer::of_kind(1));
        held.push(t0 + Duration::from_millis(10), 7);
        let wake = match (wheel.next_deadline(), held.next_deadline()) {
            (Some(a), Some(b)) => a.min(b),
            (a, b) => a.or(b).unwrap(),
        };
        assert_eq!(wake, t0 + Duration::from_millis(10));
        assert_eq!(held.pop_due(wake), Some(7));
    }

    #[test]
    fn slot_table_drains_with_the_heap() {
        let t0 = base();
        let mut w = TimerWheel::new();
        for i in 0..100u64 {
            // Per-message identities, like GoCast's pull timers.
            w.schedule(t0, Timer::with_payload(6, 0, i));
        }
        // Reschedule half of them (creates stale entries too).
        for i in 0..50u64 {
            w.schedule(t0 + Duration::from_millis(1), Timer::with_payload(6, 0, i));
        }
        let now = t0 + Duration::from_millis(5);
        let mut fired = 0;
        while w.pop_due(now).is_some() {
            fired += 1;
        }
        assert_eq!(fired, 100);
        assert!(w.is_empty());
        assert!(w.slots.is_empty(), "identity table must drain to empty");
    }
}
