//! # gocast-udp — GoCast over real UDP sockets
//!
//! The protocol core ([`gocast::GoCastNode`]) is a sans-IO state machine;
//! the simulation kernel is only one way to drive it. This crate is the
//! other: a deployment host that runs one node per [`UdpHost`], exchanging
//! codec-encoded messages ([`gocast::encode`]/[`gocast::decode`]) over the
//! operating system's UDP stack, firing timers from a monotonic clock, and
//! accepting commands from other threads.
//!
//! The same binary state machine that the paper-scale simulations validate
//! is what goes on the wire here — no reimplementation, no divergence.
//!
//! Timer scheduling lives in [`TimerWheel`], which is shared with the
//! multi-node loopback fabric in `gocast-testnet`: deadline-ordered,
//! dedup-by-identity, cancellation-aware (see [`sched`]). The event loop
//! sleeps until the next timer deadline (or the run deadline) rather than
//! polling; cross-thread commands wake it immediately through a loopback
//! waker datagram.
//!
//! ```no_run
//! use gocast::{GoCastCommand, GoCastConfig, GoCastNode};
//! use gocast_sim::NodeId;
//! use gocast_udp::{AddressBook, UdpHost};
//! use std::time::Duration;
//!
//! # fn main() -> std::io::Result<()> {
//! // Two nodes on loopback.
//! let book = AddressBook::local(2, 9900);
//! let n0 = GoCastNode::with_initial_links(
//!     NodeId::new(0), GoCastConfig::default(), vec![NodeId::new(1)], vec![NodeId::new(1)]);
//! let mut h0 = UdpHost::bind(n0, book.clone(), 1)?;
//! let handle = h0.handle();
//! std::thread::spawn(move || h0.run_for(Duration::from_secs(3)));
//! handle.command(GoCastCommand::Multicast).unwrap();
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod sched;

use std::net::{Ipv4Addr, SocketAddr, UdpSocket};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use gocast::{decode, encode, GoCastCommand, GoCastEvent, GoCastMsg, GoCastNode};
use gocast_sim::{Ctx, HostBackend, NodeId, Protocol, SimTime, Timer};
use rand::rngs::SmallRng;
use rand::SeedableRng;

pub use sched::{DelayQueue, TimerWheel};

/// Maps [`NodeId`]s to socket addresses. In a deployment this would come
/// from configuration or a discovery service; the `gocast-testnet` fabric
/// replaces it entirely with seed-node bootstrap and dynamic discovery.
#[derive(Debug, Clone)]
pub struct AddressBook {
    addrs: Vec<SocketAddr>,
}

impl AddressBook {
    /// A book over explicit addresses; `NodeId(i)` maps to `addrs[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `addrs` is empty.
    pub fn new(addrs: Vec<SocketAddr>) -> Self {
        assert!(!addrs.is_empty(), "address book cannot be empty");
        AddressBook { addrs }
    }

    /// `n` consecutive loopback ports starting at `base_port`.
    pub fn local(n: usize, base_port: u16) -> Self {
        AddressBook::new(
            (0..n)
                .map(|i| SocketAddr::from((Ipv4Addr::LOCALHOST, base_port + i as u16)))
                .collect(),
        )
    }

    /// The address of `node`.
    pub fn addr(&self, node: NodeId) -> SocketAddr {
        self.addrs[node.index()]
    }

    /// Number of nodes in the deployment.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// Whether the book is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// Reverse lookup (linear; the books are small).
    pub fn node_of(&self, addr: SocketAddr) -> Option<NodeId> {
        self.addrs
            .iter()
            .position(|a| *a == addr)
            .map(|i| NodeId::new(i as u32))
    }
}

/// The world the state machine sees while a handler runs.
struct Io<'a> {
    socket: &'a UdpSocket,
    book: &'a AddressBook,
    start: Instant,
    timers: &'a mut TimerWheel,
    events: &'a mut Vec<(SimTime, GoCastEvent)>,
    sent: &'a mut u64,
}

impl HostBackend<GoCastNode> for Io<'_> {
    fn send(&mut self, to: NodeId, msg: GoCastMsg) {
        let bytes = encode(&msg);
        // Fire and forget — UDP semantics; the protocol tolerates loss.
        if self.socket.send_to(&bytes, self.book.addr(to)).is_ok() {
            *self.sent += 1;
        }
    }

    fn set_timer(&mut self, delay: Duration, timer: Timer) {
        self.timers.schedule(Instant::now() + delay, timer);
    }

    fn emit(&mut self, event: GoCastEvent) {
        let now = SimTime::from_nanos(self.start.elapsed().as_nanos() as u64);
        self.events.push((now, event));
    }

    fn node_count(&self) -> usize {
        self.book.len()
    }
}

/// A cloneable handle for injecting commands into a running host from
/// other threads. Each command is followed by a zero-length waker datagram
/// to the host's own socket, so a host sleeping until its next timer
/// deadline picks the command up immediately.
#[derive(Debug, Clone)]
pub struct HostHandle {
    tx: mpsc::Sender<GoCastCommand>,
    waker: Arc<UdpSocket>,
    host: SocketAddr,
}

impl HostHandle {
    /// Enqueues a command and wakes the host loop; the host processes it
    /// on its next iteration.
    ///
    /// # Errors
    ///
    /// Returns the command back if the host has shut down.
    pub fn command(&self, cmd: GoCastCommand) -> Result<(), GoCastCommand> {
        self.tx.send(cmd).map_err(|e| e.0)?;
        // Best-effort wake; if it fails the host still sees the command at
        // its next timer deadline.
        let _ = self.waker.send_to(&[], self.host);
        Ok(())
    }
}

/// Runs one [`GoCastNode`] over a real UDP socket.
///
/// Single-threaded event loop: receive → decode → `on_message`; fire due
/// timers; drain the command channel. Time is the host's monotonic clock,
/// expressed to the protocol as [`SimTime`] since host start. Between
/// packets the loop blocks until the next [`TimerWheel`] deadline — no
/// fixed-interval polling.
#[derive(Debug)]
pub struct UdpHost {
    node: GoCastNode,
    socket: UdpSocket,
    book: AddressBook,
    start: Instant,
    started: bool,
    timers: TimerWheel,
    rng: SmallRng,
    events: Vec<(SimTime, GoCastEvent)>,
    cmd_rx: mpsc::Receiver<GoCastCommand>,
    cmd_tx: mpsc::Sender<GoCastCommand>,
    waker: Arc<UdpSocket>,
    sent: u64,
    received: u64,
}

impl UdpHost {
    /// Binds the socket for `node`'s address-book entry (plus an ephemeral
    /// waker socket used by [`HostHandle::command`]).
    ///
    /// # Errors
    ///
    /// Propagates socket bind errors (e.g. the port is taken).
    pub fn bind(node: GoCastNode, book: AddressBook, seed: u64) -> std::io::Result<Self> {
        let socket = UdpSocket::bind(book.addr(node.id()))?;
        let waker = Arc::new(UdpSocket::bind((Ipv4Addr::LOCALHOST, 0))?);
        let (cmd_tx, cmd_rx) = mpsc::channel();
        Ok(UdpHost {
            node,
            socket,
            book,
            start: Instant::now(),
            started: false,
            timers: TimerWheel::new(),
            rng: SmallRng::seed_from_u64(seed),
            events: Vec::new(),
            cmd_rx,
            cmd_tx,
            waker,
            sent: 0,
            received: 0,
        })
    }

    /// A handle for injecting commands from other threads.
    pub fn handle(&self) -> HostHandle {
        HostHandle {
            tx: self.cmd_tx.clone(),
            waker: Arc::clone(&self.waker),
            host: self
                .socket
                .local_addr()
                .unwrap_or_else(|_| self.book.addr(self.node.id())),
        }
    }

    /// The hosted node (inspect between runs).
    pub fn node(&self) -> &GoCastNode {
        &self.node
    }

    /// Protocol events recorded so far, stamped with host-monotonic time.
    pub fn events(&self) -> &[(SimTime, GoCastEvent)] {
        &self.events
    }

    /// Datagrams sent / received so far.
    pub fn io_counts(&self) -> (u64, u64) {
        (self.sent, self.received)
    }

    /// Host-monotonic time since start, as the protocol sees it.
    pub fn now(&self) -> SimTime {
        SimTime::from_nanos(self.start.elapsed().as_nanos() as u64)
    }

    fn with_ctx<F: FnOnce(&mut GoCastNode, &mut Ctx<'_, GoCastNode>)>(&mut self, f: F) {
        let mut io = Io {
            socket: &self.socket,
            book: &self.book,
            start: self.start,
            timers: &mut self.timers,
            events: &mut self.events,
            sent: &mut self.sent,
        };
        let now = SimTime::from_nanos(io.start.elapsed().as_nanos() as u64);
        let mut ctx = Ctx::for_host(self.node.id(), now, &mut self.rng, &mut io);
        f(&mut self.node, &mut ctx);
    }

    /// Runs the event loop for `duration` of wall-clock time. Can be
    /// called repeatedly; `on_start` fires on the first call.
    pub fn run_for(&mut self, duration: Duration) {
        let deadline = Instant::now() + duration;
        if !self.started {
            self.started = true;
            self.with_ctx(|n, ctx| n.on_start(ctx));
        }
        let mut buf = [0u8; 65536];
        loop {
            let now = Instant::now();
            if now >= deadline {
                return;
            }
            // Commands first (non-blocking).
            while let Ok(cmd) = self.cmd_rx.try_recv() {
                self.with_ctx(|n, ctx| n.on_command(ctx, cmd));
            }
            // Fire due timers.
            while let Some(timer) = self.timers.pop_due(now) {
                self.with_ctx(|n, ctx| n.on_timer(ctx, timer));
            }
            // Block for the next packet until the next timer deadline (or
            // the loop deadline). Commands interrupt the wait through the
            // waker datagram, so no polling cap is needed; the floor only
            // keeps the timeout nonzero, which `set_read_timeout` requires.
            let next = self
                .timers
                .next_deadline()
                .map_or(deadline, |t| t.min(deadline));
            let wait = next
                .saturating_duration_since(Instant::now())
                .max(Duration::from_micros(100));
            self.socket
                .set_read_timeout(Some(wait))
                .expect("set_read_timeout");
            match self.socket.recv_from(&mut buf) {
                Ok((len, from_addr)) => {
                    let Some(from) = self.book.node_of(from_addr) else {
                        continue; // stranger (or waker) datagram
                    };
                    match decode(&buf[..len]) {
                        Ok(msg) => {
                            self.received += 1;
                            self.with_ctx(|n, ctx| n.on_message(ctx, from, msg));
                        }
                        Err(_) => continue, // malformed datagram — drop
                    }
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut => {}
                Err(_) => {
                    // Transient socket error (e.g. ICMP unreachable
                    // surfaced); UDP semantics say carry on.
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gocast::GoCastConfig;

    fn deployment_config() -> GoCastConfig {
        // Faster cadences so the tree forms within a few wall-clock
        // seconds of test time.
        GoCastConfig {
            gossip_period: Duration::from_millis(50),
            maintenance_period: Duration::from_millis(50),
            heartbeat_period: Duration::from_millis(500),
            idle_gossip_interval: Duration::from_millis(300),
            landmark_count: 2,
            ..Default::default()
        }
    }

    /// Builds `n` hosts on loopback with a ring + chord bootstrap overlay
    /// and full member knowledge.
    fn build_hosts(n: usize, base_port: u16) -> Vec<UdpHost> {
        let book = AddressBook::local(n, base_port);
        (0..n as u32)
            .map(|i| {
                let links = vec![
                    NodeId::new((i + 1) % n as u32),
                    NodeId::new((i + n as u32 - 1) % n as u32),
                    NodeId::new((i + 2) % n as u32),
                ];
                let members: Vec<NodeId> =
                    (0..n as u32).filter(|&j| j != i).map(NodeId::new).collect();
                let node = GoCastNode::with_initial_links(
                    NodeId::new(i),
                    deployment_config(),
                    links,
                    members,
                );
                UdpHost::bind(node, book.clone(), 77 + i as u64).expect("bind")
            })
            .collect()
    }

    #[test]
    fn address_book_lookups() {
        let book = AddressBook::local(3, 9801);
        assert_eq!(book.len(), 3);
        assert!(!book.is_empty());
        assert_eq!(book.addr(NodeId::new(1)).port(), 9802);
        assert_eq!(
            book.node_of(book.addr(NodeId::new(2))),
            Some(NodeId::new(2))
        );
        assert_eq!(book.node_of("10.0.0.1:1".parse().unwrap()), None);
    }

    #[test]
    fn multicast_over_real_udp_reaches_every_node() {
        let n = 5;
        let hosts = build_hosts(n, 19100);
        let handles: Vec<HostHandle> = hosts.iter().map(|h| h.handle()).collect();
        let threads: Vec<_> = hosts
            .into_iter()
            .map(|mut h| {
                std::thread::spawn(move || {
                    h.run_for(Duration::from_secs(5));
                    h
                })
            })
            .collect();
        // Let the overlay and tree form, then multicast from node 2.
        std::thread::sleep(Duration::from_millis(2500));
        handles[2].command(GoCastCommand::Multicast).unwrap();
        let hosts: Vec<UdpHost> = threads.into_iter().map(|t| t.join().unwrap()).collect();

        let id = gocast::MsgId::new(NodeId::new(2), 0);
        for h in &hosts {
            assert!(
                h.node().has_message(id),
                "node {} missed the multicast over UDP",
                h.node().id()
            );
            let (sent, received) = h.io_counts();
            assert!(sent > 0 && received > 0, "host exchanged no datagrams");
        }
        // The tree formed over real sockets: everyone follows root 0.
        for h in &hosts {
            assert_eq!(h.node().current_root(), NodeId::new(0));
        }
        let delivered: usize = hosts
            .iter()
            .flat_map(|h| h.events())
            .filter(|(_, e)| matches!(e, GoCastEvent::Delivered { .. }))
            .count();
        assert_eq!(delivered, n - 1);
    }

    #[test]
    fn host_survives_malformed_and_stranger_datagrams() {
        let n = 2;
        let book = AddressBook::local(n, 19200);
        let node = GoCastNode::with_initial_links(
            NodeId::new(0),
            deployment_config(),
            vec![NodeId::new(1)],
            vec![NodeId::new(1)],
        );
        let mut host = UdpHost::bind(node, book.clone(), 5).unwrap();
        // A stranger floods garbage at node 0's port.
        let attacker = UdpSocket::bind("127.0.0.1:0").unwrap();
        for _ in 0..50 {
            attacker
                .send_to(&[0xFF, 0x00, 0x13], book.addr(NodeId::new(0)))
                .unwrap();
        }
        host.run_for(Duration::from_millis(300));
        // Still alive and still schedules protocol work.
        assert!(host.node().is_joined());
    }

    #[test]
    fn command_wakes_a_sleeping_host() {
        // With only long-deadline timers pending, the host sleeps until
        // the next timer; a command must still be picked up promptly via
        // the waker datagram, not at the next (multi-second) wake-up.
        let book = AddressBook::local(1, 19300);
        let cfg = GoCastConfig {
            gossip_period: Duration::from_secs(10),
            maintenance_period: Duration::from_secs(10),
            heartbeat_period: Duration::from_secs(10),
            idle_gossip_interval: Duration::from_secs(10),
            tree_enabled: false,
            landmark_count: 0,
            ..GoCastConfig::default()
        };
        let node = GoCastNode::new(NodeId::new(0), cfg, Vec::new());
        let mut host = UdpHost::bind(node, book, 9).unwrap();
        let handle = host.handle();
        let t = std::thread::spawn(move || {
            host.run_for(Duration::from_secs(2));
            host
        });
        std::thread::sleep(Duration::from_millis(100));
        handle.command(GoCastCommand::Multicast).unwrap();
        let host = t.join().unwrap();
        let injected_at = host
            .events()
            .iter()
            .find(|(_, e)| matches!(e, GoCastEvent::Injected { .. }))
            .map(|(t, _)| *t)
            .expect("multicast command was never processed");
        assert!(
            injected_at < SimTime::from_millis(1_000),
            "command took {injected_at:?} to be processed — waker did not interrupt the wait"
        );
    }
}
