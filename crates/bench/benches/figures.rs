//! One benchmark per paper figure / claim, running the exact experiment
//! functions behind `gocast-experiments` at reduced scale. Each bench both
//! times the experiment and regenerates its (scaled) series — the
//! full-scale numbers recorded in EXPERIMENTS.md come from
//! `gocast-experiments all`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use gocast::GoCastConfig;
use gocast_baselines::PushGossipConfig;
use gocast_bench::bench_opts;
use gocast_experiments::{figures, runners, Proto};

fn fig1_gossip_reliability(c: &mut Criterion) {
    // Analytic part only in the hot loop; the empirical run is covered by
    // fig3-style delay benches.
    c.bench_function("fig1_gossip_reliability", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for f in 4..=20 {
                acc += gocast_baselines::prob_all_nodes_hear_all(1024, f as f64, 1000);
            }
            acc
        })
    });
}

fn fig3_delay_cdf(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_delay_cdf");
    g.sample_size(10);
    let opts = bench_opts(64, 11);
    g.bench_function("gocast_64", |b| {
        b.iter(|| runners::run_delay(&opts, Proto::GoCast(GoCastConfig::default()), 0.0).pulls)
    });
    g.bench_function("gossip_f5_64", |b| {
        b.iter(|| {
            runners::run_delay(&opts, Proto::PushGossip(PushGossipConfig::default()), 0.0).pulls
        })
    });
    g.bench_function("gocast_64_20pct_failed", |b| {
        b.iter(|| runners::run_delay(&opts, Proto::GoCast(GoCastConfig::default()), 0.2).pulls)
    });
    g.finish();
}

fn fig4_scalability(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_scalability");
    g.sample_size(10);
    for n in [64usize, 128] {
        let opts = bench_opts(n, 12);
        g.bench_function(format!("gocast_n{n}"), |b| {
            b.iter(|| {
                runners::run_delay(&opts, Proto::GoCast(GoCastConfig::default()), 0.0)
                    .per_node_avg
                    .mean()
            })
        });
    }
    g.finish();
}

fn fig5_adaptation(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_adaptation");
    g.sample_size(10);
    let opts = bench_opts(64, 13);
    g.bench_function("adapt_and_snapshot_64", |b| {
        b.iter(|| {
            let res = runners::run_adaptation(&opts, &GoCastConfig::default(), &[0, 5, 15], 15);
            (res.mean_degree, res.latency_series.len())
        })
    });
    g.finish();
}

fn fig6_resilience(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_resilience");
    g.sample_size(10);
    let opts = bench_opts(96, 14);
    let res = runners::run_adaptation(&opts, &GoCastConfig::default(), &[], 0);
    g.bench_function("q_sweep_96", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for f in [0.05, 0.25, 0.5] {
                total += runners::resilience_q(&res.final_snapshot, f, 5, 14);
            }
            total
        })
    });
    g.finish();
}

fn ext4_link_stress(c: &mut Criterion) {
    let mut g = c.benchmark_group("ext4_link_stress");
    g.sample_size(10);
    // Route a synthetic traffic matrix through the AS topology.
    let topo = gocast_net::AsTopology::preferential_attachment(64, 2, 256, 15);
    g.bench_function("stress_accumulate_10k_pairs", |b| {
        b.iter(|| {
            let mut stress = gocast_net::LinkStress::new();
            for i in 0..10_000u32 {
                stress.accumulate(&topo, i % 256, (i * 7 + 13) % 256, 1024);
            }
            stress.max()
        })
    });
    g.finish();
}

fn ext5_fanout(c: &mut Criterion) {
    let mut g = c.benchmark_group("ext5_fanout");
    g.sample_size(10);
    let opts = bench_opts(64, 16);
    for fanout in [5usize, 15] {
        g.bench_function(format!("gossip_f{fanout}_64"), |b| {
            b.iter(|| {
                runners::run_delay(
                    &opts,
                    Proto::PushGossip(PushGossipConfig::default().with_fanout(fanout)),
                    0.0,
                )
                .incomplete_nodes
            })
        });
    }
    g.finish();
}

fn txt1_redundancy(c: &mut Criterion) {
    let mut g = c.benchmark_group("txt1_redundancy");
    g.sample_size(10);
    let opts = bench_opts(64, 17);
    g.bench_function("pull_delay_300ms_64", |b| {
        b.iter(|| {
            runners::run_delay(
                &opts,
                Proto::GoCast(GoCastConfig::default().with_pull_delay(Duration::from_millis(300))),
                0.0,
            )
            .redundancy
        })
    });
    g.finish();
}

fn ablations(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    let opts = bench_opts(64, 18);
    g.bench_function("aggressive_drop_64", |b| {
        b.iter(|| {
            let cfg = GoCastConfig {
                aggressive_drop: true,
                ..Default::default()
            };
            let res = runners::run_adaptation(&opts, &cfg, &[], 0);
            res.link_changes_per_sec.iter().sum::<u64>()
        })
    });
    g.finish();
}

// Regenerate the scaled figure tables once at the end so `cargo bench`
// output contains the series themselves, not just timings.
fn print_scaled_figures(c: &mut Criterion) {
    let opts = bench_opts(96, 19);
    println!(
        "\n==== scaled figure regeneration (bench-sized; see EXPERIMENTS.md for full scale) ====\n"
    );
    figures::fig1(&opts);
    figures::fig3(&opts, 0.0);
    figures::txt2(&opts);
    let _ = c;
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    targets = fig1_gossip_reliability, fig3_delay_cdf, fig4_scalability, fig5_adaptation,
              fig6_resilience, ext4_link_stress, ext5_fanout, txt1_redundancy, ablations,
              print_scaled_figures
}
criterion_main!(benches);
