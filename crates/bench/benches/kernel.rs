//! Microbenchmarks for the simulation kernel and analysis hot paths.
//!
//! Besides printing per-benchmark timings, the custom `main` exports every
//! measurement to `BENCH_kernel.json` at the repository root — the kernel
//! events/sec baseline the experiment harness numbers are judged against.

use std::time::Duration;

use criterion::{criterion_group, BatchSize, Criterion, Throughput};
use gocast::{GoCastConfig, GoCastNode};
use gocast_analysis::{diameter, largest_component_fraction, Cdf};
use gocast_net::{king_like, synthetic_king, OnDemandKing, SyntheticKingConfig};
use gocast_sim::{
    EventQueue, LatencyModel, NodeId, NullRecorder, ShardedSimBuilder, SimBuilder, SimTime,
    TraceRecorder,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("schedule_pop_10k", |b| {
        let mut rng = SmallRng::seed_from_u64(1);
        b.iter_batched(
            || {
                (0..10_000u64)
                    .map(|_| SimTime::from_nanos(rng.gen_range(0..1_000_000)))
                    .collect::<Vec<_>>()
            },
            |times| {
                let mut q = EventQueue::new();
                for (i, t) in times.into_iter().enumerate() {
                    q.schedule(t, i);
                }
                let mut out = 0usize;
                while q.pop().is_some() {
                    out += 1;
                }
                out
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_latency_models(c: &mut Criterion) {
    let mut g = c.benchmark_group("latency_model");
    let net = king_like(1024, 3);
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("king_lookup_100k", |b| {
        let mut rng = SmallRng::seed_from_u64(2);
        b.iter(|| {
            let mut acc = Duration::ZERO;
            for _ in 0..100_000 {
                let a = NodeId::new(rng.gen_range(0..1024));
                let bn = NodeId::new(rng.gen_range(0..1024));
                acc += net.one_way(a, bn);
            }
            acc
        })
    });
    g.bench_function("king_build_256_sites", |b| {
        b.iter(|| {
            synthetic_king(
                256,
                &SyntheticKingConfig {
                    sites: 256,
                    seed: 4,
                    ..Default::default()
                },
            )
            .mean_site_latency()
        })
    });
    g.finish();
}

fn bench_gocast_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("gocast_sim");
    g.sample_size(10);
    // Cost of simulating one second of a 128-node overlay in steady state.
    g.bench_function("steady_state_second_128", |b| {
        let mut boot = gocast::bootstrap_random_graph(128, 3, 5);
        let net = synthetic_king(
            128,
            &SyntheticKingConfig {
                sites: 128,
                seed: 5,
                ..Default::default()
            },
        );
        let mut sim = SimBuilder::new(net).seed(5).build(|id| {
            let (links, members) = boot(id);
            GoCastNode::with_initial_links(id, GoCastConfig::default(), links, members)
        });
        sim.run_until(SimTime::from_secs(30));
        b.iter(|| {
            sim.run_for(Duration::from_secs(1));
            sim.now()
        })
    });
    // Cohort boot + first five seconds (heavy adaptation phase).
    g.bench_function("adaptation_burst_64", |b| {
        b.iter_batched(
            || {
                let mut boot = gocast::bootstrap_random_graph(64, 3, 6);
                let net = synthetic_king(
                    64,
                    &SyntheticKingConfig {
                        sites: 64,
                        seed: 6,
                        ..Default::default()
                    },
                );
                SimBuilder::new(net).seed(6).build(|id| {
                    let (links, members) = boot(id);
                    GoCastNode::with_initial_links(id, GoCastConfig::default(), links, members)
                })
            },
            |mut sim| {
                sim.run_until(SimTime::from_secs(5));
                sim.now()
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

/// Kernel event throughput: how many scheduled events the `Sim` loop
/// retires per wall-clock second in steady state, straight from
/// [`gocast_sim::KernelStats`]. This is the headline number in
/// `BENCH_kernel.json`.
fn bench_kernel_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel");
    g.sample_size(10);
    let mut boot = gocast::bootstrap_random_graph(128, 3, 9);
    let net = synthetic_king(
        128,
        &SyntheticKingConfig {
            sites: 128,
            seed: 9,
            ..Default::default()
        },
    );
    let mut sim = SimBuilder::new(net).seed(9).build(|id| {
        let (links, members) = boot(id);
        GoCastNode::with_initial_links(id, GoCastConfig::default(), links, members)
    });
    sim.run_until(SimTime::from_secs(30));
    // Calibrate the per-iteration workload: events retired in one
    // steady-state simulated second (stable once the overlay converged).
    let before = sim.kernel_stats().events_processed;
    sim.run_for(Duration::from_secs(1));
    let events_per_sim_sec = sim.kernel_stats().events_processed - before;
    g.throughput(Throughput::Elements(events_per_sim_sec));
    g.bench_function("events_per_steady_second_128", |b| {
        b.iter(|| {
            sim.run_for(Duration::from_secs(1));
            sim.kernel_stats().events_processed
        })
    });

    // The same workload with the JSONL trace sink attached (every event
    // serialized, bytes discarded into `io::sink()`): measures the causal
    // tracing overhead relative to the untraced number above.
    let mut boot = gocast::bootstrap_random_graph(128, 3, 9);
    let net = synthetic_king(
        128,
        &SyntheticKingConfig {
            sites: 128,
            seed: 9,
            ..Default::default()
        },
    );
    let mut traced =
        SimBuilder::new(net)
            .seed(9)
            .build_with(TraceRecorder::new(std::io::sink()), |id| {
                let (links, members) = boot(id);
                GoCastNode::with_initial_links(id, GoCastConfig::default(), links, members)
            });
    traced.run_until(SimTime::from_secs(30));
    let before = traced.kernel_stats().events_processed;
    traced.run_for(Duration::from_secs(1));
    let traced_per_sim_sec = traced.kernel_stats().events_processed - before;
    g.throughput(Throughput::Elements(traced_per_sim_sec));
    g.bench_function("events_per_steady_second_128_traced", |b| {
        b.iter(|| {
            traced.run_for(Duration::from_secs(1));
            traced.kernel_stats().events_processed
        })
    });

    // The same workload with kernel telemetry (counters, queue-depth and
    // dispatch-time histograms) enabled: measures the metrics-registry
    // overhead relative to the untraced number. DESIGN.md budgets ≤5%.
    let mut boot = gocast::bootstrap_random_graph(128, 3, 9);
    let net = synthetic_king(
        128,
        &SyntheticKingConfig {
            sites: 128,
            seed: 9,
            ..Default::default()
        },
    );
    let mut metered = SimBuilder::new(net).seed(9).telemetry().build(|id| {
        let (links, members) = boot(id);
        GoCastNode::with_initial_links(id, GoCastConfig::default(), links, members)
    });
    metered.run_until(SimTime::from_secs(30));
    let before = metered.kernel_stats().events_processed;
    metered.run_for(Duration::from_secs(1));
    let metered_per_sim_sec = metered.kernel_stats().events_processed - before;
    g.throughput(Throughput::Elements(metered_per_sim_sec));
    g.bench_function("events_per_steady_second_128_metrics", |b| {
        b.iter(|| {
            metered.run_for(Duration::from_secs(1));
            metered.kernel_stats().events_processed
        })
    });
    g.finish();
}

/// Sharded-kernel event throughput at experiment scale: a 10,000-node
/// GoCast overlay on the O(sites)-memory [`OnDemandKing`] latency model,
/// driven through [`gocast_sim::ShardedSim`]'s window loop in steady
/// state. This is the scaling-path headline (`kernel_scale_events_per_sec`
/// in `BENCH_kernel.json`): the single-kernel number above measures the
/// classic event loop, this one measures the lane-decomposed loop the
/// `scale` subcommand uses for 10⁵–10⁶-node runs. Serial (1 worker) so
/// the number is comparable across hosts with different core counts.
fn bench_sharded_kernel(c: &mut Criterion) {
    const NODES: usize = 10_000;
    let mut g = c.benchmark_group("kernel_scale");
    g.sample_size(10);
    let net = OnDemandKing::paper_default(NODES, 11 ^ 0x4B494E47);
    let mut boot = gocast::bootstrap_random_graph(NODES, 3, 11 ^ 0xB007);
    let mut sim = ShardedSimBuilder::new(net)
        .seed(11)
        .build_with(NullRecorder, |id| {
            let (links, members) = boot(id);
            GoCastNode::with_initial_links(id, GoCastConfig::default(), links, members)
        });
    sim.run_until(SimTime::from_secs(30));
    let before = sim.kernel_stats().events_processed;
    sim.run_for(Duration::from_secs(1));
    let events_per_sim_sec = sim.kernel_stats().events_processed - before;
    g.throughput(Throughput::Elements(events_per_sim_sec));
    g.bench_function("sharded_events_per_steady_second_10k", |b| {
        b.iter(|| {
            sim.run_for(Duration::from_secs(1));
            sim.kernel_stats().events_processed
        })
    });
    g.finish();
}

/// Wire throughput of the loopback deployment fabric under saturating
/// offered load: how many GoCast protocol messages per wall-clock second
/// a 64-node testnet moves through real UDP sockets when every slice
/// injects a burst of multicasts (each fanning out tree pushes plus
/// gossip to 63 receivers). Unlike the kernel numbers above, this is
/// bounded by syscall and scheduling cost, not virtual time — it sizes
/// the batched wire path directly. One benchmark per shard count
/// (1/2/4/8) yields the shard-scaling curve in a single run;
/// `testnet_msgs_per_sec` in the JSON is the best of the curve, with
/// `testnet_bench_shards` recording which shard count achieved it.
/// Skipped (and reported `null`) where loopback sockets cannot be bound.
fn bench_testnet(c: &mut Criterion) {
    use gocast::GoCastCommand;
    use gocast_testnet::{Testnet, TestnetConfig};
    if !gocast_testnet::loopback_available() {
        eprintln!("testnet bench skipped: loopback UDP unavailable");
        return;
    }
    const SLICE: Duration = Duration::from_millis(250);
    const NODES: u32 = 64;
    /// Multicasts injected per slice (4 per node): enough offered load to
    /// keep every shard's batch path saturated for the whole slice.
    const BURST: u32 = 256;
    let mut g = c.benchmark_group("testnet");
    g.sample_size(8);
    for shards in TESTNET_BENCH_SHARDS {
        let cfg = TestnetConfig::new(NODES as usize)
            .with_seed(9)
            .with_shards(shards)
            .with_record_trace(false);
        let mut net = match Testnet::build_bootstrap(&cfg) {
            Ok(n) => n,
            Err(e) => {
                eprintln!("testnet bench (shards={shards}) skipped: {e}");
                continue;
            }
        };
        // Let the overlay and tree form before measuring.
        net.run_for(Duration::from_secs(2));
        let inject = |net: &mut Testnet| {
            let now = net.now();
            for i in 0..BURST {
                net.schedule_command(now, NodeId::new(i % NODES), GoCastCommand::Multicast);
            }
        };
        // Saturate for one slice, then calibrate the per-slice workload.
        inject(&mut net);
        net.run_for(SLICE);
        let before = net.stats().wire_msgs;
        inject(&mut net);
        net.run_for(SLICE);
        let per_slice = (net.stats().wire_msgs - before).max(1);
        g.throughput(Throughput::Elements(per_slice));
        g.bench_function(testnet_bench_id(shards), |b| {
            b.iter(|| {
                inject(&mut net);
                net.run_for(SLICE);
                net.stats().wire_msgs
            })
        });
    }
    g.finish();
}

/// Shard counts swept by [`bench_testnet`]; the JSON exporter picks the
/// best of these as the headline `testnet_msgs_per_sec`.
const TESTNET_BENCH_SHARDS: [usize; 4] = [1, 2, 4, 8];

fn testnet_bench_id(shards: usize) -> String {
    format!("wire_msgs_per_quarter_second_64_shards{shards}")
}

fn bench_analysis(c: &mut Criterion) {
    let mut g = c.benchmark_group("analysis");
    // Degree-6 random graph, 1024 nodes.
    let mut rng = SmallRng::seed_from_u64(7);
    let n = 1024usize;
    let mut adj = vec![Vec::new(); n];
    for i in 0..n {
        for _ in 0..3 {
            let j = rng.gen_range(0..n);
            if i != j {
                adj[i].push(j as u32);
                adj[j].push(i as u32);
            }
        }
    }
    let alive = vec![true; n];
    g.bench_function("components_1024", |b| {
        b.iter(|| largest_component_fraction(&adj, &alive))
    });
    g.bench_function("diameter_1024", |b| b.iter(|| diameter(&adj, &alive)));
    g.bench_function("cdf_build_100k", |b| {
        let vals: Vec<Duration> = (0..100_000u64)
            .map(|i| Duration::from_nanos(i * 7919 % 1_000_000))
            .collect();
        b.iter(|| {
            let c = Cdf::from_durations(vals.iter().copied());
            c.percentile(0.99)
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    targets = bench_event_queue, bench_latency_models, bench_gocast_sim,
        bench_kernel_throughput, bench_sharded_kernel, bench_testnet,
        bench_analysis
}

/// JSON string escaping is unnecessary for our ASCII benchmark ids, but
/// guard against future quotes/backslashes anyway.
fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    benches();
    let results = criterion::take_results();
    let mut json = String::from("{\n  \"benchmarks\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"id\": \"{}\", \"iters\": {}, \"mean_ns\": {:.1}, \"rate_per_sec\": {}}}{}\n",
            json_escape(&r.id),
            r.iters,
            r.mean_ns,
            r.rate_per_sec()
                .map(|v| format!("{v:.1}"))
                .unwrap_or_else(|| "null".into()),
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    let rate_of = |id: &str| {
        results
            .iter()
            .find(|r| r.id == id)
            .and_then(|r| r.rate_per_sec())
            .map(|v| format!("{v:.1}"))
            .unwrap_or_else(|| "null".into())
    };
    json.push_str(&format!(
        "  \"kernel_events_per_sec\": {},\n",
        rate_of("kernel/events_per_steady_second_128"),
    ));
    json.push_str(&format!(
        "  \"kernel_events_per_sec_traced\": {},\n",
        rate_of("kernel/events_per_steady_second_128_traced"),
    ));
    json.push_str(&format!(
        "  \"kernel_events_per_sec_metrics\": {},\n",
        rate_of("kernel/events_per_steady_second_128_metrics"),
    ));
    json.push_str(&format!(
        "  \"kernel_scale_events_per_sec\": {},\n",
        rate_of("kernel_scale/sharded_events_per_steady_second_10k"),
    ));
    // Headline wire number: the best point on the shard-scaling curve,
    // plus which shard count achieved it (hardware-dependent).
    let mut best: Option<(usize, f64)> = None;
    for shards in TESTNET_BENCH_SHARDS {
        let id = format!("testnet/{}", testnet_bench_id(shards));
        let rate = results
            .iter()
            .find(|r| r.id == id)
            .and_then(|r| r.rate_per_sec());
        if let Some(rate) = rate {
            if best.is_none_or(|(_, b)| rate > b) {
                best = Some((shards, rate));
            }
        }
    }
    json.push_str(&format!(
        "  \"testnet_bench_shards\": {},\n",
        best.map(|(s, _)| s.to_string())
            .unwrap_or_else(|| "null".into()),
    ));
    json.push_str(&format!(
        "  \"testnet_msgs_per_sec\": {}\n}}\n",
        best.map(|(_, r)| format!("{r:.1}"))
            .unwrap_or_else(|| "null".into()),
    ));
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernel.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote kernel throughput baseline to {path}"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
}
