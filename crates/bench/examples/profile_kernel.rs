//! Standalone reproduction of the `kernel/events_per_steady_second_128`
//! benchmark workload, for running under a profiler (`gprofng collect app`).

use std::time::Duration;

use gocast::{GoCastConfig, GoCastNode};
use gocast_net::{synthetic_king, SyntheticKingConfig};
use gocast_sim::{SimBuilder, SimTime};

fn main() {
    let secs: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(60);
    let mut boot = gocast::bootstrap_random_graph(128, 3, 9);
    let net = synthetic_king(
        128,
        &SyntheticKingConfig {
            sites: 128,
            seed: 9,
            ..Default::default()
        },
    );
    let mut sim = SimBuilder::new(net).seed(9).build(|id| {
        let (links, members) = boot(id);
        GoCastNode::with_initial_links(id, GoCastConfig::default(), links, members)
    });
    sim.run_until(SimTime::from_secs(30));
    sim.run_for(Duration::from_secs(secs));
    println!("{}", sim.kernel_stats());
}
