//! # gocast-bench — benchmark harness
//!
//! Criterion benches live in `benches/`:
//!
//! - `figures` — one benchmark per paper figure, running the same
//!   experiment functions as the `gocast-experiments` binary at reduced
//!   scale (the full-scale runs are reproduced by
//!   `gocast-experiments all`; these benches track the *cost* of each
//!   experiment and print its headline numbers);
//! - `kernel` — microbenchmarks of the hot paths: event queue, simulation
//!   stepping, latency model lookups, and the analysis primitives.
//!
//! This library only exposes tiny option presets shared by the benches.

#![warn(missing_docs)]

use std::time::Duration;

use gocast_experiments::ExpOptions;

/// Bench-scale options: small enough that a single experiment iteration
/// stays in the tens-of-milliseconds to low-seconds range.
pub fn bench_opts(nodes: usize, seed: u64) -> ExpOptions {
    let mut o = ExpOptions::quick().with_seed(seed);
    o.nodes = nodes;
    o.sites = nodes.max(32);
    o.warmup = Duration::from_secs(15);
    o.messages = 10;
    o.rate = 10.0;
    o.drain = Duration::from_secs(10);
    o.out_dir = None;
    o
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_opts_are_small() {
        let o = bench_opts(64, 1);
        assert_eq!(o.nodes, 64);
        assert!(o.warmup <= Duration::from_secs(15));
        assert!(o.out_dir.is_none());
    }
}
