//! Diagnostic (run with --nocapture): dumps tree structure after adaptation.

use gocast::{GoCastConfig, GoCastEvent, GoCastNode};
use gocast_net::{synthetic_king, SyntheticKingConfig};
use gocast_sim::{NodeId, SimBuilder, SimTime, VecRecorder};

#[test]
#[ignore]
fn dump_tree_state() {
    let n = 64;
    let seed = 13;
    let net = synthetic_king(
        n,
        &SyntheticKingConfig {
            sites: n.max(16),
            seed: seed ^ 0xFEED,
            ..Default::default()
        },
    );
    let mut boot = gocast::bootstrap_random_graph(n, 3, seed);
    let mut sim =
        SimBuilder::new(net)
            .seed(seed)
            .build_with(VecRecorder::<GoCastEvent>::new(), |id| {
                let (links, members) = boot(id);
                GoCastNode::with_initial_links(id, GoCastConfig::default(), links, members)
            });
    sim.run_until(SimTime::from_secs(60));
    for i in 0..n as u32 {
        let node = sim.node(NodeId::new(i));
        println!(
            "n{i}: parent={:?} root={} is_root={} seq={} dist={:?} children={:?} neighbors={:?}",
            node.tree_parent(),
            node.current_root(),
            node.is_root(),
            node.tree_seq(),
            node.tree_distance(),
            node.tree_children(),
            node.overlay_links().map(|(p, _, _)| p).collect::<Vec<_>>(),
        );
    }
    // Find cycles.
    for i in 0..n as u32 {
        let mut cur = NodeId::new(i);
        let mut seen = vec![cur];
        while let Some(p) = sim.node(cur).tree_parent() {
            if seen.contains(&p) {
                println!("CYCLE from n{i}: {seen:?} -> {p}");
                break;
            }
            seen.push(p);
            cur = p;
            if seen.len() > n {
                break;
            }
        }
    }
    let parent_changes = sim
        .recorder()
        .events
        .iter()
        .filter(|(t, _, e)| {
            matches!(e, GoCastEvent::ParentChanged { .. }) && *t > SimTime::from_secs(40)
        })
        .count();
    println!("parent changes after t=40s: {parent_changes}");

    // Inject 5 multicasts like the failing test and trace delays.
    for i in 0..5u32 {
        sim.command_now(NodeId::new(i * 7 + 1), gocast::GoCastCommand::Multicast);
    }
    sim.run_until(SimTime::from_secs(70));
    let mut inject = std::collections::HashMap::new();
    let mut delays = Vec::new();
    let mut pulls = 0;
    let mut redundant = 0;
    for (t, _, e) in &sim.recorder().events {
        match e {
            GoCastEvent::Injected { id } => {
                inject.insert(*id, *t);
            }
            GoCastEvent::Delivered { id, .. } => {
                if let Some(t0) = inject.get(id) {
                    delays.push(t.saturating_since(*t0));
                }
            }
            GoCastEvent::PullRequested { .. } if *t > SimTime::from_secs(59) => pulls += 1,
            GoCastEvent::RedundantData { .. } if *t > SimTime::from_secs(59) => redundant += 1,
            _ => {}
        }
    }
    delays.sort();
    println!(
        "deliveries={} pulls={} redundant={} p50={:?} p90={:?} max={:?}",
        delays.len(),
        pulls,
        redundant,
        delays[delays.len() / 2],
        delays[delays.len() * 9 / 10],
        delays.last().unwrap()
    );
}
