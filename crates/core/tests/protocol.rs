//! End-to-end protocol behaviour tests for the GoCast node, driven by the
//! deterministic simulator on a synthetic Internet.

use std::time::Duration;

use gocast::{snapshot, DeliveryPath, GoCastCommand, GoCastConfig, GoCastEvent, GoCastNode};
use gocast_net::{synthetic_king, SyntheticKingConfig};
use gocast_sim::{NodeId, Sim, SimBuilder, SimTime, VecRecorder};

type Rec = VecRecorder<GoCastEvent>;

fn build(n: usize, seed: u64, cfg: GoCastConfig) -> Sim<GoCastNode, Rec> {
    let net = synthetic_king(
        n,
        &SyntheticKingConfig {
            sites: n.max(16),
            seed: seed ^ 0xFEED,
            ..Default::default()
        },
    );
    let mut boot = gocast::bootstrap_random_graph(n, cfg.c_degree() / 2, seed);
    SimBuilder::new(net)
        .seed(seed)
        .build_with(Rec::new(), |id| {
            let (links, members) = boot(id);
            GoCastNode::with_initial_links(id, cfg.clone(), links, members)
        })
}

fn count_events<F: Fn(&GoCastEvent) -> bool>(sim: &Sim<GoCastNode, Rec>, f: F) -> usize {
    sim.recorder()
        .events
        .iter()
        .filter(|(_, _, e)| f(e))
        .count()
}

#[test]
fn degrees_converge_to_target() {
    let mut sim = build(64, 11, GoCastConfig::default());
    sim.run_until(SimTime::from_secs(60));
    let snap = snapshot(&sim);
    let degrees = snap.degrees();
    // Paper: nodes converge to C_degree or C_degree + 1 (6 or 7), with
    // slack for nodes mid-handshake.
    let ok = degrees.iter().filter(|&&d| (5..=8).contains(&d)).count();
    assert!(
        ok >= 58,
        "expected >=58/64 nodes near degree 6, got {ok} (degrees {degrees:?})"
    );
    // Random degrees: C_rand or C_rand + 1.
    for (id, node) in sim.iter_nodes() {
        let d = node.degrees();
        assert!(
            d.d_rand <= 3,
            "{id} has {} random neighbors (want ~1)",
            d.d_rand
        );
    }
}

#[test]
fn overlay_latency_improves_with_adaptation() {
    let mut sim = build(64, 12, GoCastConfig::default());
    sim.run_until(SimTime::from_secs(2));
    let early = snapshot(&sim).mean_overlay_latency(sim.latency_model());
    sim.run_until(SimTime::from_secs(90));
    let late = snapshot(&sim).mean_overlay_latency(sim.latency_model());
    assert!(
        late < early * 7 / 10,
        "adaptation should cut mean link latency >30%: early {early:?}, late {late:?}"
    );
}

#[test]
fn tree_spans_all_nodes_and_uses_low_latency_links() {
    let mut sim = build(64, 13, GoCastConfig::default());
    sim.run_until(SimTime::from_secs(60));
    let snap = snapshot(&sim);
    // Everyone except the root has a parent.
    assert_eq!(snap.tree_edge_count(), 63, "tree must span all nodes");
    // Tree links should be no worse than overlay links on average (the
    // tree picks shortest paths).
    let tree = snap.mean_tree_latency(sim.latency_model());
    let overlay = snap.mean_overlay_latency(sim.latency_model());
    assert!(
        tree <= overlay + Duration::from_millis(5),
        "tree {tree:?} should not exceed overlay {overlay:?}"
    );
    // The tree is a tree: no node is its own ancestor (walk to root).
    for (id, node) in sim.iter_nodes() {
        let mut cur = id;
        let mut hops = 0;
        while let Some(p) = sim.node(cur).tree_parent() {
            cur = p;
            hops += 1;
            assert!(hops <= 64, "cycle in tree starting at {id}");
        }
        assert!(sim.node(cur).is_root(), "walk from {id} ended off-root");
        let _ = node;
    }
}

#[test]
fn multicast_reaches_everyone_mostly_via_tree() {
    let mut sim = build(64, 14, GoCastConfig::default());
    sim.run_until(SimTime::from_secs(60));
    for i in 0..5u32 {
        sim.command_now(NodeId::new(i * 7 + 1), GoCastCommand::Multicast);
    }
    sim.run_for(Duration::from_secs(10));
    let delivered = count_events(&sim, |e| matches!(e, GoCastEvent::Delivered { .. }));
    assert_eq!(delivered, 5 * 63, "every node gets every message once");
    let via_tree = count_events(&sim, |e| {
        matches!(
            e,
            GoCastEvent::Delivered {
                via: DeliveryPath::Tree,
                ..
            }
        )
    });
    assert!(
        via_tree as f64 >= 0.95 * delivered as f64,
        "tree should carry almost everything: {via_tree}/{delivered}"
    );
    // Redundant receptions should be a small fraction. (The paper reports
    // ~2% at 1,024 nodes after 500 s of adaptation; at this small scale
    // with a 60 s-old tree the gossip-pull race fires more often. The
    // paper-scale number is checked by the `txt1` experiment.)
    let redundant = count_events(&sim, |e| matches!(e, GoCastEvent::RedundantData { .. }));
    assert!(
        (redundant as f64) < 0.2 * delivered as f64,
        "too many redundant payloads: {redundant}"
    );
}

#[test]
fn delivery_survives_mass_failure_without_repair() {
    let n = 64;
    let mut sim = build(n, 15, GoCastConfig::default());
    sim.run_until(SimTime::from_secs(60));
    // Fail ~20% of nodes (every 5th, skipping the root at 0), then freeze
    // all repair, exactly like the paper's stress test.
    let mut failed = Vec::new();
    for i in (1..n as u32).step_by(5) {
        sim.fail_node(NodeId::new(i));
        failed.push(NodeId::new(i));
    }
    for i in 0..n as u32 {
        let id = NodeId::new(i);
        if sim.is_alive(id) {
            sim.command_now(id, GoCastCommand::FreezeMaintenance);
        }
    }
    sim.run_for(Duration::from_millis(200));
    let before = count_events(&sim, |e| matches!(e, GoCastEvent::Delivered { .. }));

    // A live node multicasts.
    let src = NodeId::new(2);
    assert!(sim.is_alive(src));
    sim.command_now(src, GoCastCommand::Multicast);
    sim.run_for(Duration::from_secs(30));

    let live: Vec<NodeId> = sim.alive_nodes().collect();
    let delivered = count_events(&sim, |e| matches!(e, GoCastEvent::Delivered { .. })) - before;
    assert_eq!(
        delivered,
        live.len() - 1,
        "all live nodes must receive the message despite the broken tree"
    );
    // At least some deliveries must have used the gossip-pull path (the
    // tree alone cannot cross dead fragments).
    let pulls = count_events(&sim, |e| matches!(e, GoCastEvent::PullRequested { .. }));
    assert!(pulls > 0, "expected gossip-based recovery to kick in");
}

#[test]
fn proximity_and_random_overlay_presets_deliver_without_tree() {
    for (name, cfg) in [
        ("proximity", GoCastConfig::proximity_overlay()),
        ("random", GoCastConfig::random_overlay()),
    ] {
        let mut sim = build(48, 16, cfg);
        sim.run_until(SimTime::from_secs(40));
        sim.command_now(NodeId::new(3), GoCastCommand::Multicast);
        sim.run_for(Duration::from_secs(30));
        let delivered = count_events(&sim, |e| matches!(e, GoCastEvent::Delivered { .. }));
        assert_eq!(delivered, 47, "{name}: overlay gossip must reach everyone");
        // No tree means nothing is delivered via a tree link.
        let via_tree = count_events(&sim, |e| {
            matches!(
                e,
                GoCastEvent::Delivered {
                    via: DeliveryPath::Tree,
                    ..
                }
            )
        });
        assert_eq!(via_tree, 0, "{name}: tree is disabled");
    }
}

#[test]
fn root_failover_elects_new_root_and_tree_recovers() {
    let mut sim = build(48, 17, GoCastConfig::default());
    sim.run_until(SimTime::from_secs(40));
    let old_root = NodeId::new(0);
    assert!(sim.node(old_root).is_root());
    sim.fail_node(old_root);
    // Failover needs heartbeat_timeout_factor (3) missed heartbeats (15 s)
    // plus re-flood time.
    sim.run_for(Duration::from_secs(120));
    let roots: Vec<NodeId> = sim
        .alive_nodes()
        .filter(|&id| sim.node(id).is_root())
        .collect();
    assert_eq!(roots.len(), 1, "exactly one live root, got {roots:?}");
    // Everyone alive follows the new root and a multicast still works.
    for id in sim.alive_nodes() {
        assert_eq!(
            sim.node(id).current_root(),
            roots[0],
            "{id} follows old root"
        );
    }
    let before = count_events(&sim, |e| matches!(e, GoCastEvent::Delivered { .. }));
    sim.command_now(NodeId::new(5), GoCastCommand::Multicast);
    sim.run_for(Duration::from_secs(10));
    let delivered = count_events(&sim, |e| matches!(e, GoCastEvent::Delivered { .. })) - before;
    assert_eq!(
        delivered, 46,
        "multicast after failover reaches all live nodes"
    );
}

#[test]
fn runtime_join_integrates_new_node() {
    let n = 33; // node 32 starts detached
    let net = synthetic_king(
        n,
        &SyntheticKingConfig {
            sites: 33,
            ..Default::default()
        },
    );
    let mut boot = gocast::bootstrap_random_graph(n - 1, 3, 18);
    let mut sim = SimBuilder::new(net).seed(18).build_with(Rec::new(), |id| {
        if id.index() < n - 1 {
            let (links, members) = boot(id);
            GoCastNode::with_initial_links(id, GoCastConfig::default(), links, members)
        } else {
            // The joiner: no links, no view; joins through node 3 later.
            GoCastNode::new(id, GoCastConfig::default(), Vec::new())
        }
    });
    sim.run_until(SimTime::from_secs(30));
    let joiner = NodeId::new(32);
    assert_eq!(sim.node(joiner).degrees().total(), 0);
    sim.command_now(
        joiner,
        GoCastCommand::Join {
            contact: NodeId::new(3),
        },
    );
    sim.run_for(Duration::from_secs(30));
    let d = sim.node(joiner).degrees();
    assert!(
        d.total() >= 4,
        "joiner should reach near-target degree, got {d:?}"
    );
    assert!(d.d_rand >= 1, "joiner needs a random link, got {d:?}");
    // And it receives multicasts.
    let before = count_events(&sim, |e| matches!(e, GoCastEvent::Delivered { .. }));
    sim.command_now(NodeId::new(1), GoCastCommand::Multicast);
    sim.run_for(Duration::from_secs(10));
    let delivered = count_events(&sim, |e| matches!(e, GoCastEvent::Delivered { .. })) - before;
    assert_eq!(delivered, 32, "all nodes incl. the joiner receive");
}

#[test]
fn graceful_leave_detaches_node() {
    let mut sim = build(48, 19, GoCastConfig::default());
    sim.run_until(SimTime::from_secs(40));
    let leaver = NodeId::new(7);
    sim.command_now(leaver, GoCastCommand::Leave);
    sim.run_for(Duration::from_secs(20));
    assert_eq!(sim.node(leaver).degrees().total(), 0);
    // Ex-neighbors recovered their degrees.
    let snap = snapshot(&sim);
    let degs = snap.degrees();
    for (i, &d) in degs.iter().enumerate() {
        if i != leaver.index() {
            assert!(d >= 4, "node {i} left under-connected: {d}");
        }
    }
}

#[test]
fn same_seed_same_trace_different_seed_differs() {
    let run = |seed| {
        let mut sim = build(32, seed, GoCastConfig::default());
        sim.run_until(SimTime::from_secs(20));
        sim.command_now(NodeId::new(1), GoCastCommand::Multicast);
        sim.run_for(Duration::from_secs(5));
        sim.into_recorder().events
    };
    let a = run(23);
    let b = run(23);
    assert_eq!(a, b, "same seed must reproduce the exact event trace");
    let c = run(24);
    assert_ne!(a, c, "different seeds should explore different traces");
}

#[test]
fn adaptive_periods_cut_idle_overhead_without_losing_messages() {
    let run = |adaptive: bool| {
        let cfg = GoCastConfig {
            adaptive_gossip: adaptive,
            adaptive_maintenance: adaptive,
            ..Default::default()
        };
        let mut sim = build(64, 27, cfg);
        sim.run_until(SimTime::from_secs(60));
        // Quiet period: count probe + gossip traffic for 60 s with no
        // multicast at all.
        sim.reset_stats();
        sim.run_for(Duration::from_secs(60));
        let quiet_msgs = sim.stats().total().messages;
        // Then traffic resumes and must still be delivered promptly.
        sim.reset_stats();
        for i in 0..10u32 {
            sim.schedule_command(
                sim.now() + Duration::from_millis(100 * i as u64),
                NodeId::new(i),
                GoCastCommand::Multicast,
            );
        }
        sim.run_for(Duration::from_secs(10));
        let delivered = count_events(&sim, |e| matches!(e, GoCastEvent::Delivered { .. }));
        (quiet_msgs, delivered)
    };
    let (fixed_quiet, fixed_delivered) = run(false);
    let (adaptive_quiet, adaptive_delivered) = run(true);
    assert_eq!(fixed_delivered, 10 * 63);
    assert_eq!(
        adaptive_delivered,
        10 * 63,
        "adaptivity must not lose messages"
    );
    assert!(
        (adaptive_quiet as f64) < 0.7 * fixed_quiet as f64,
        "adaptive idle traffic {adaptive_quiet} should be well below fixed {fixed_quiet}"
    );
}

#[test]
fn delivery_survives_link_failures_and_repairs() {
    let mut sim = build(64, 26, GoCastConfig::default());
    sim.run_until(SimTime::from_secs(60));
    // Cut every tree link of node 9 (its parent and children) without
    // killing anyone — a pure network fault.
    let victim = NodeId::new(9);
    let tree_peers = sim.node(victim).tree_neighbors();
    assert!(!tree_peers.is_empty());
    for p in &tree_peers {
        sim.fail_link(victim, *p);
    }
    // A multicast still reaches the victim through gossip pulls over its
    // remaining overlay links.
    let before = count_events(&sim, |e| matches!(e, GoCastEvent::Delivered { .. }));
    sim.command_now(NodeId::new(1), GoCastCommand::Multicast);
    sim.run_for(Duration::from_secs(10));
    let delivered = count_events(&sim, |e| matches!(e, GoCastEvent::Delivered { .. })) - before;
    assert_eq!(delivered, 63, "link cuts must not lose messages");
    assert!(sim
        .node(victim)
        .has_message(gocast::MsgId::new(NodeId::new(1), 0)));

    // Maintenance then notices the dead links (neighbor timeout) and
    // repairs: the victim reconnects and rejoins the tree.
    sim.run_for(Duration::from_secs(60));
    let d = sim.node(victim).degrees();
    assert!(
        d.total() >= 4,
        "victim should re-grow its degree, got {d:?}"
    );
    let parent = sim.node(victim).tree_parent();
    if let Some(p) = parent {
        assert!(
            !sim.is_link_failed(victim, p),
            "victim must not keep a dead parent link"
        );
    }
}

#[test]
fn pull_delay_reduces_redundancy() {
    let run = |cfg: GoCastConfig| {
        let mut sim = build(64, 25, cfg);
        sim.run_until(SimTime::from_secs(60));
        for i in 0..20u32 {
            sim.schedule_command(
                SimTime::from_secs(60) + Duration::from_millis(i as u64 * 100),
                NodeId::new(i % 64),
                GoCastCommand::Multicast,
            );
        }
        sim.run_for(Duration::from_secs(15));
        let redundant = count_events(&sim, |e| matches!(e, GoCastEvent::RedundantData { .. }));
        let delivered = count_events(&sim, |e| matches!(e, GoCastEvent::Delivered { .. }));
        assert_eq!(delivered, 20 * 63);
        redundant
    };
    let without = run(GoCastConfig::default());
    let with = run(GoCastConfig::default().with_pull_delay(Duration::from_millis(300)));
    assert!(
        with <= without,
        "f-delay must not increase redundancy: with={with} without={without}"
    );
}
