//! Rule-level behavioural tests: drive small, fully controlled topologies
//! and assert the paper's individual protocol rules (degree balancing
//! operations, conditions C1–C4, gossip windowing, pull retry, GC, tree
//! repair) one at a time.

use std::time::Duration;

use gocast::{DropReason, GoCastCommand, GoCastConfig, GoCastEvent, GoCastNode, MsgId};
use gocast_sim::{FixedLatency, LatencyModel, NodeId, Sim, SimBuilder, SimTime, VecRecorder};

type Rec = VecRecorder<GoCastEvent>;

/// A fully connected member view over `n` nodes with the given symmetric
/// initial links, on a fixed-latency network.
fn controlled(
    n: usize,
    links: &[(u32, u32)],
    cfg: GoCastConfig,
    seed: u64,
) -> Sim<GoCastNode, Rec> {
    let net = FixedLatency::new(n, Duration::from_millis(20));
    build_on(net, n, links, cfg, seed)
}

fn build_on<L: LatencyModel + 'static>(
    net: L,
    n: usize,
    links: &[(u32, u32)],
    cfg: GoCastConfig,
    seed: u64,
) -> Sim<GoCastNode, Rec> {
    let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for &(a, b) in links {
        adj[a as usize].push(NodeId::new(b));
        adj[b as usize].push(NodeId::new(a));
    }
    SimBuilder::new(net)
        .seed(seed)
        .build_with(Rec::new(), |id| {
            let members: Vec<NodeId> = (0..n as u32)
                .filter(|&i| i != id.as_u32())
                .map(NodeId::new)
                .collect();
            GoCastNode::with_initial_links(
                id,
                cfg.clone(),
                std::mem::take(&mut adj[id.index()]),
                members,
            )
        })
}

/// A two-tier latency model: nodes 0..k are mutually close (5 ms), all
/// other pairs are far (100 ms).
#[derive(Debug)]
struct TwoTier {
    n: usize,
    near_set: u32,
}

impl LatencyModel for TwoTier {
    fn one_way(&self, a: NodeId, b: NodeId) -> Duration {
        if a == b {
            Duration::ZERO
        } else if a.as_u32() < self.near_set && b.as_u32() < self.near_set {
            Duration::from_millis(5)
        } else {
            Duration::from_millis(100)
        }
    }
    fn len(&self) -> usize {
        self.n
    }
}

// ----------------------------------------------------------------------
// Random-degree balancing (§2.2.2).
// ----------------------------------------------------------------------

#[test]
fn random_degree_settles_at_target_or_target_plus_one() {
    // All nodes start with zero links; only random links are maintained
    // (c_near = 0 disables nearby maintenance entirely).
    let cfg = GoCastConfig::default().with_degrees(2, 0);
    let mut sim = controlled(24, &[], cfg, 1);
    sim.run_until(SimTime::from_secs(30));
    for (id, node) in sim.iter_nodes() {
        let d = node.degrees();
        assert_eq!(d.d_near, 0);
        assert!(
            (2..=3).contains(&d.d_rand),
            "{id}: D_rand = {} outside {{C_rand, C_rand+1}}",
            d.d_rand
        );
    }
}

#[test]
fn rebalance_op1_sheds_two_links_at_once() {
    // Node 0 starts with 4 nearby links typed as bootstrap; convert the
    // experiment to random-only config so the links count as... bootstrap
    // links are typed nearby, so instead build the surplus through the
    // protocol: give node 0 an oversized member view and force extra
    // ConnectTo traffic. Simplest observable contract: no node ends above
    // C_rand + 1 despite everyone simultaneously dialing random links.
    let cfg = GoCastConfig::default().with_degrees(1, 0);
    let mut sim = controlled(16, &[], cfg, 2);
    sim.run_until(SimTime::from_secs(30));
    for (id, node) in sim.iter_nodes() {
        assert!(
            node.degrees().d_rand <= 2,
            "{id} kept surplus random degree {}",
            node.degrees().d_rand
        );
    }
    // Operation 1/2 activity is visible as Rebalanced/Surplus drops.
    let drops = sim
        .recorder()
        .events
        .iter()
        .filter(|(_, _, e)| {
            matches!(
                e,
                GoCastEvent::LinkDropped {
                    reason: DropReason::Rebalanced | DropReason::Surplus,
                    ..
                }
            )
        })
        .count();
    assert!(drops > 0, "degree balancing never fired");
}

// ----------------------------------------------------------------------
// Nearby maintenance and conditions C1-C4 (§2.2.3).
// ----------------------------------------------------------------------

#[test]
fn nearby_links_migrate_to_close_nodes() {
    // 6 close nodes (0..6) + 6 far nodes; everyone starts linked to far
    // nodes only. The close nodes should discover each other.
    let net = TwoTier { n: 12, near_set: 6 };
    let links: Vec<(u32, u32)> = (0..6u32).map(|i| (i, i + 6)).collect();
    let cfg = GoCastConfig::default().with_degrees(0, 3);
    let mut sim = build_on(net, 12, &links, cfg, 3);
    sim.run_until(SimTime::from_secs(40));
    // Each close node should now have mostly close neighbors.
    for i in 0..6u32 {
        let node = sim.node(NodeId::new(i));
        let close_neighbors = node
            .overlay_links()
            .filter(|(p, _, _)| p.as_u32() < 6)
            .count();
        assert!(
            close_neighbors >= 2,
            "n{i} kept only {close_neighbors} close neighbors"
        );
    }
}

#[test]
fn c4_blocks_marginal_replacements() {
    // With C4 on, a candidate that is only slightly better than the worst
    // neighbor must NOT trigger a replacement; with C4 off it may.
    // Uniform latencies make every candidate exactly as good as every
    // neighbor, so with C4 on there must be zero Replaced drops.
    let cfg = GoCastConfig::default();
    assert!(cfg.c4_enabled);
    let links: Vec<(u32, u32)> = (0..12u32)
        .flat_map(|i| [(i, (i + 1) % 12), (i, (i + 3) % 12), (i, (i + 5) % 12)])
        .collect();
    let mut sim = controlled(12, &links, cfg, 4);
    sim.run_until(SimTime::from_secs(30));
    let replaced = sim
        .recorder()
        .events
        .iter()
        .filter(|(_, _, e)| {
            matches!(
                e,
                GoCastEvent::LinkDropped {
                    reason: DropReason::Replaced,
                    ..
                }
            )
        })
        .count();
    assert_eq!(
        replaced, 0,
        "uniform latencies can never satisfy RTT(X,Q) <= RTT(X,U)/2"
    );
}

#[test]
fn degree_slack_caps_acceptance() {
    // A node never exceeds target + slack for either link kind, no matter
    // how many peers dial it.
    let cfg = GoCastConfig::default();
    let slack = cfg.degree_slack;
    let links: Vec<(u32, u32)> = (1..20u32).map(|i| (0, i)).collect(); // star on node 0
    let mut sim = controlled(32, &links, cfg.clone(), 5);
    // Initial star gives node 0 nearby degree 19 > C_near + slack; the
    // drop rule must shed down toward C_near quickly.
    sim.run_until(SimTime::from_secs(20));
    let d = sim.node(NodeId::new(0)).degrees();
    assert!(
        (d.d_near as usize) <= cfg.c_near + slack,
        "node 0 still has {} nearby links",
        d.d_near
    );
    assert!(
        (d.d_near as usize) <= cfg.c_near + 1,
        "drop rule should reach C_near or C_near+1, got {}",
        d.d_near
    );
}

// ----------------------------------------------------------------------
// Dissemination details (§2.1).
// ----------------------------------------------------------------------

#[test]
fn gossip_exclusion_no_id_echoed_back() {
    // Two nodes: A multicasts; B must never gossip the ID back to A (A is
    // in B's heard-from set). We detect echoes as pull requests from A —
    // which would only happen if A forgot its own message, so instead
    // instrument via traffic: with only two nodes, after the initial Data
    // push, no PullRequest may ever flow.
    let cfg = GoCastConfig::default();
    let mut sim = controlled(2, &[(0, 1)], cfg, 6);
    sim.run_until(SimTime::from_secs(5));
    sim.command_now(NodeId::new(0), GoCastCommand::Multicast);
    sim.run_for(Duration::from_secs(10));
    let pulls = sim
        .recorder()
        .events
        .iter()
        .filter(|(_, _, e)| matches!(e, GoCastEvent::PullRequested { .. }))
        .count();
    assert_eq!(pulls, 0, "gossip exclusion rule violated");
    assert!(sim
        .node(NodeId::new(1))
        .has_message(MsgId::new(NodeId::new(0), 0)));
}

#[test]
fn pull_retries_move_to_another_candidate() {
    // Chain 0-1, 1-2, plus 2-3; node 0 multicasts, then the payload holder
    // that node 3 asks first (its only tree neighbor 2) dies between
    // gossip and pull... simpler deterministic setup: disable the tree
    // (proximity preset) so all delivery is gossip+pull, then kill a
    // gossiper right after it gossips. The message must still arrive via
    // another neighbor's gossip.
    let cfg = GoCastConfig {
        pull_timeout: Duration::from_millis(500),
        ..GoCastConfig::proximity_overlay()
    };
    let links = [(0u32, 1u32), (0, 2), (1, 3), (2, 3), (1, 2), (0, 3)];
    let mut sim = controlled(4, &links, cfg, 7);
    sim.run_until(SimTime::from_secs(5));
    sim.command_now(NodeId::new(0), GoCastCommand::Multicast);
    // Let the first gossips flow, then kill node 1 (a likely gossiper).
    sim.run_for(Duration::from_millis(150));
    sim.fail_node(NodeId::new(1));
    sim.run_for(Duration::from_secs(20));
    for i in [2u32, 3] {
        assert!(
            sim.node(NodeId::new(i))
                .has_message(MsgId::new(NodeId::new(0), 0)),
            "n{i} never recovered the message"
        );
    }
}

#[test]
fn store_is_garbage_collected_after_b() {
    let cfg = GoCastConfig {
        gc_wait: Duration::from_secs(20),
        ..Default::default()
    };
    let mut sim = controlled(3, &[(0, 1), (1, 2), (0, 2)], cfg, 8);
    sim.run_until(SimTime::from_secs(2));
    sim.command_now(NodeId::new(0), GoCastCommand::Multicast);
    sim.run_for(Duration::from_secs(5));
    let id = MsgId::new(NodeId::new(0), 0);
    assert!(sim.node(NodeId::new(1)).has_message(id));
    // After b (plus a GC sweep period), the memory is reclaimed.
    sim.run_for(Duration::from_secs(30));
    assert!(
        !sim.node(NodeId::new(1)).has_message(id),
        "message survived past the waiting period b"
    );
}

#[test]
fn source_can_multicast_without_being_root() {
    // "any node can start a multicast without first sending the message
    // to the root".
    let cfg = GoCastConfig::default();
    let links = [(0u32, 1u32), (1, 2), (2, 3), (3, 4)];
    let mut sim = controlled(5, &links, cfg, 9);
    sim.run_until(SimTime::from_secs(10));
    // Node 4 (a leaf, far from root 0) multicasts.
    sim.command_now(NodeId::new(4), GoCastCommand::Multicast);
    sim.run_for(Duration::from_secs(5));
    for i in 0..4u32 {
        assert!(sim
            .node(NodeId::new(i))
            .has_message(MsgId::new(NodeId::new(4), 0)));
    }
}

// ----------------------------------------------------------------------
// Tree behaviour (§2.3).
// ----------------------------------------------------------------------

#[test]
fn tree_prefers_short_paths() {
    // Two-tier: nodes 0..4 close; 4..8 far. Root is 0. Far nodes should
    // attach via whatever, but close nodes must not route through far
    // nodes (their direct/close paths are much shorter).
    let net = TwoTier { n: 8, near_set: 4 };
    let links: Vec<(u32, u32)> = (0..8u32)
        .flat_map(|i| [(i, (i + 1) % 8), (i, (i + 3) % 8)])
        .collect();
    let cfg = GoCastConfig::default();
    let mut sim = build_on(net, 8, &links, cfg, 10);
    sim.run_until(SimTime::from_secs(60));
    for i in 1..4u32 {
        let mut cur = NodeId::new(i);
        // Walk to the root; no hop from a close node may pass a far node.
        while let Some(p) = sim.node(cur).tree_parent() {
            assert!(
                p.as_u32() < 4,
                "close node {cur} routes to root via far node {p}"
            );
            cur = p;
        }
        assert!(sim.node(cur).is_root());
    }
}

#[test]
fn parent_and_child_views_are_consistent_in_steady_state() {
    let cfg = GoCastConfig::default();
    let links: Vec<(u32, u32)> = (0..16u32)
        .flat_map(|i| [(i, (i + 1) % 16), (i, (i + 4) % 16), (i, (i + 7) % 16)])
        .collect();
    let mut sim = controlled(16, &links, cfg, 11);
    sim.run_until(SimTime::from_secs(60));
    for (id, node) in sim.iter_nodes() {
        if let Some(p) = node.tree_parent() {
            assert!(
                sim.node(p).tree_children().contains(&id),
                "{p} does not know child {id}"
            );
        }
        for c in node.tree_children() {
            assert_eq!(
                sim.node(c).tree_parent(),
                Some(id),
                "{c} does not consider {id} its parent"
            );
        }
    }
}

#[test]
fn heartbeats_keep_flowing_and_seq_advances() {
    let cfg = GoCastConfig::default();
    let links = [(0u32, 1u32), (1, 2), (2, 0)];
    let mut sim = controlled(3, &links, cfg.clone(), 12);
    sim.run_until(SimTime::from_secs(31));
    let s1 = sim.node(NodeId::new(2)).tree_seq();
    sim.run_for(cfg.heartbeat_period * 2);
    let s2 = sim.node(NodeId::new(2)).tree_seq();
    assert!(s2 >= s1 + 2, "heartbeat waves stalled: {s1} -> {s2}");
}

#[test]
fn frozen_tree_does_not_heal_after_root_death() {
    let cfg = GoCastConfig::default();
    let links: Vec<(u32, u32)> = (0..12u32)
        .flat_map(|i| [(i, (i + 1) % 12), (i, (i + 5) % 12)])
        .collect();
    let mut sim = controlled(12, &links, cfg, 13);
    sim.run_until(SimTime::from_secs(30));
    for i in 0..12u32 {
        sim.command_now(NodeId::new(i), GoCastCommand::FreezeMaintenance);
    }
    sim.run_for(Duration::from_millis(10));
    sim.fail_node(NodeId::new(0));
    sim.run_for(Duration::from_secs(120));
    // Nobody may have taken over as root while frozen.
    let takeovers = sim
        .recorder()
        .events
        .iter()
        .filter(|(t, _, e)| {
            matches!(e, GoCastEvent::BecameRoot { .. }) && *t > SimTime::from_secs(30)
        })
        .count();
    assert_eq!(takeovers, 0, "frozen nodes must not elect a new root");
}

// ----------------------------------------------------------------------
// Capacity-scaled degrees (§2.2 extension).
// ----------------------------------------------------------------------

#[test]
fn capacity_scaled_node_grows_proportional_degree() {
    // Node 0 has capacity 2: it should settle near 2x the degree targets
    // while everyone else stays near 6, and the system keeps delivering.
    let n = 48;
    let net = FixedLatency::new(n, Duration::from_millis(20));
    let cfg = GoCastConfig::default();
    let mut sim = SimBuilder::new(net).seed(15).build_with(Rec::new(), |id| {
        let members: Vec<NodeId> = (0..n as u32)
            .filter(|&i| i != id.as_u32())
            .map(NodeId::new)
            .collect();
        let capacity = if id.index() == 0 { 2 } else { 1 };
        GoCastNode::with_capacity(id, cfg.clone(), Vec::new(), members, capacity)
    });
    sim.run_until(SimTime::from_secs(60));

    let big = sim.node(NodeId::new(0)).degrees();
    assert_eq!(sim.node(NodeId::new(0)).degree_targets(), (2, 10));
    assert!(
        big.total() >= 9,
        "capacity-2 node should hold ~12 links, got {big:?}"
    );
    let normal_mean: f64 = (1..n as u32)
        .map(|i| sim.node(NodeId::new(i)).degrees().total() as f64)
        .sum::<f64>()
        / (n - 1) as f64;
    assert!(
        (4.0..8.5).contains(&normal_mean),
        "capacity-1 nodes should stay near 6, got {normal_mean:.1}"
    );
    // Dissemination unaffected.
    sim.command_now(NodeId::new(5), GoCastCommand::Multicast);
    sim.run_for(Duration::from_secs(5));
    let delivered = sim
        .recorder()
        .events
        .iter()
        .filter(|(_, _, e)| matches!(e, GoCastEvent::Delivered { .. }))
        .count();
    assert_eq!(delivered, n - 1);
}

#[test]
#[should_panic(expected = "capacity")]
fn zero_capacity_rejected() {
    let _ = GoCastNode::with_capacity(
        NodeId::new(0),
        GoCastConfig::default(),
        Vec::new(),
        Vec::new(),
        0,
    );
}

// ----------------------------------------------------------------------
// Events and accounting.
// ----------------------------------------------------------------------

#[test]
fn delivered_counts_match_events() {
    let cfg = GoCastConfig::default();
    let links = [(0u32, 1u32), (1, 2), (2, 3), (3, 0), (0, 2)];
    let mut sim = controlled(4, &links, cfg, 14);
    sim.run_until(SimTime::from_secs(10));
    for _ in 0..3 {
        sim.command_now(NodeId::new(0), GoCastCommand::Multicast);
    }
    sim.run_for(Duration::from_secs(5));
    let event_count = sim
        .recorder()
        .events
        .iter()
        .filter(|(_, _, e)| matches!(e, GoCastEvent::Delivered { .. }))
        .count() as u64;
    let node_count: u64 = sim.iter_nodes().map(|(_, n)| n.delivered_count()).sum();
    assert_eq!(event_count, node_count);
    assert_eq!(event_count, 9, "3 messages x 3 receivers");
}
