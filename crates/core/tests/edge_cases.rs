//! Edge-case coverage: handshake rejection paths, stale-state handling,
//! frozen-mode invariants, gossip pacing, and adaptive-backoff behaviour.

use std::time::Duration;

use gocast::{GoCastCommand, GoCastConfig, GoCastEvent, GoCastNode, MsgId};
use gocast_sim::{
    FixedLatency, NodeId, Recorder, Sim, SimBuilder, SimTime, TrafficClass, VecRecorder,
};

type Rec = VecRecorder<GoCastEvent>;

/// Builds the controlled topology with any recorder — tests pick a
/// streaming combinator or a plain buffer as fits their assertion.
fn controlled_with<R: Recorder<GoCastEvent>>(
    n: usize,
    links: &[(u32, u32)],
    cfg: GoCastConfig,
    seed: u64,
    rec: R,
) -> Sim<GoCastNode, R> {
    let net = FixedLatency::new(n, Duration::from_millis(20));
    let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for &(a, b) in links {
        adj[a as usize].push(NodeId::new(b));
        adj[b as usize].push(NodeId::new(a));
    }
    SimBuilder::new(net).seed(seed).build_with(rec, |id| {
        let members: Vec<NodeId> = (0..n as u32)
            .filter(|&i| i != id.as_u32())
            .map(NodeId::new)
            .collect();
        GoCastNode::with_initial_links(
            id,
            cfg.clone(),
            std::mem::take(&mut adj[id.index()]),
            members,
        )
    })
}

fn controlled(
    n: usize,
    links: &[(u32, u32)],
    cfg: GoCastConfig,
    seed: u64,
) -> Sim<GoCastNode, Rec> {
    controlled_with(n, links, cfg, seed, Rec::new())
}

#[test]
fn frozen_node_ignores_incoming_link_churn_but_keeps_serving() {
    // Freeze node 0, then let the others keep adapting; node 0's links may
    // shrink (peers drop) but node 0 itself must not initiate changes, and
    // it must still forward data.
    // Stream only node 0's LinkAdded events instead of buffering the full
    // trace and re-scanning it.
    let rec = Rec::new().filter(|_, node: NodeId, e: &GoCastEvent| {
        node.index() == 0 && matches!(e, GoCastEvent::LinkAdded { .. })
    });
    let links = [(0u32, 1), (1, 2), (2, 3), (3, 0), (0, 2), (1, 3)];
    let mut sim = controlled_with(4, &links, GoCastConfig::default(), 1, rec);
    sim.run_until(SimTime::from_secs(10));
    sim.command_now(NodeId::new(0), GoCastCommand::FreezeMaintenance);
    sim.run_for(Duration::from_secs(5));
    let before = sim.recorder().inner.events.len();
    sim.run_for(Duration::from_secs(20));
    let after = sim.recorder().inner.events.len();
    assert_eq!(before, after, "frozen node added links");
    // Still forwards: a multicast from node 2 reaches node 0 and beyond.
    sim.command_now(NodeId::new(2), GoCastCommand::Multicast);
    sim.run_for(Duration::from_secs(5));
    assert!(sim
        .node(NodeId::new(0))
        .has_message(MsgId::new(NodeId::new(2), 0)));
}

#[test]
fn idle_system_sends_only_low_rate_gossip() {
    // With no multicast traffic, gossip sends are capped by the idle
    // interval: per node at most ~1/s (plus maintenance probes).
    let links = [(0u32, 1), (1, 2), (2, 0)];
    let mut sim = controlled(3, &links, GoCastConfig::default(), 2);
    sim.run_until(SimTime::from_secs(30));
    sim.reset_stats();
    sim.run_for(Duration::from_secs(30));
    let gossips = sim.stats().class(TrafficClass::Gossip).messages;
    // The idle cap is per neighbor: each node refreshes each of its 2
    // neighbors at most once per idle interval (1 s), so 3 nodes x 2
    // neighbors x 30 s = 180 is the ceiling — far below the 900 the
    // uncapped 10 Hz gossip clock would send.
    assert!(gossips <= 200, "idle gossip rate too high: {gossips}");
    assert!(gossips >= 60, "idle gossip starved: {gossips}");
}

#[test]
fn adaptive_gossip_snaps_back_on_traffic() {
    let cfg = GoCastConfig {
        adaptive_gossip: true,
        ..Default::default()
    };
    let links = [(0u32, 1), (1, 2), (2, 0)];
    let mut sim = controlled(3, &links, cfg, 3);
    // Long quiet period: backoff reaches the cap.
    sim.run_until(SimTime::from_secs(60));
    sim.reset_stats();
    // Burst of traffic: summaries must flow promptly again (the message
    // must reach everyone within a few base gossip periods even though
    // the tree already carries it; check gossip class traffic resumed).
    for i in 0..5 {
        sim.schedule_command(
            sim.now() + Duration::from_millis(100 * i),
            NodeId::new(0),
            GoCastCommand::Multicast,
        );
    }
    sim.run_for(Duration::from_secs(3));
    let gossips = sim.stats().class(TrafficClass::Gossip).messages;
    assert!(gossips >= 5, "gossip clock failed to wake: {gossips}");
    for i in [1u32, 2] {
        for seq in 0..5 {
            assert!(sim
                .node(NodeId::new(i))
                .has_message(MsgId::new(NodeId::new(0), seq)));
        }
    }
}

#[test]
fn leave_then_messages_do_not_resurrect_links() {
    let links = [(0u32, 1), (1, 2), (2, 3), (3, 0), (0, 2)];
    let mut sim = controlled(4, &links, GoCastConfig::default(), 4);
    sim.run_until(SimTime::from_secs(10));
    sim.command_now(NodeId::new(3), GoCastCommand::Leave);
    sim.run_for(Duration::from_secs(10));
    assert_eq!(sim.node(NodeId::new(3)).degrees().total(), 0);
    // Traffic continues among the others; the leaver stays detached.
    sim.command_now(NodeId::new(0), GoCastCommand::Multicast);
    sim.run_for(Duration::from_secs(10));
    assert_eq!(sim.node(NodeId::new(3)).degrees().total(), 0);
    assert!(
        !sim.node(NodeId::new(3))
            .has_message(MsgId::new(NodeId::new(0), 0)),
        "left node must not receive multicast traffic"
    );
    for i in [1u32, 2] {
        assert!(sim
            .node(NodeId::new(i))
            .has_message(MsgId::new(NodeId::new(0), 0)));
    }
}

#[test]
fn two_node_system_works_end_to_end() {
    // Degenerate scale: the smallest possible group.
    let mut cfg = GoCastConfig::default().with_degrees(0, 1);
    cfg.landmark_count = 1;
    let mut sim = controlled(2, &[(0, 1)], cfg, 5);
    sim.run_until(SimTime::from_secs(5));
    sim.command_now(NodeId::new(1), GoCastCommand::Multicast);
    sim.run_for(Duration::from_secs(2));
    assert!(sim
        .node(NodeId::new(0))
        .has_message(MsgId::new(NodeId::new(1), 0)));
    // Tree: node 1 is child of root 0 (or vice versa).
    let parents = [
        sim.node(NodeId::new(0)).tree_parent(),
        sim.node(NodeId::new(1)).tree_parent(),
    ];
    assert_eq!(parents.iter().filter(|p| p.is_some()).count(), 1);
}

#[test]
fn store_sizes_track_payload_configuration() {
    // Payload size flows through the data path into traffic accounting.
    let cfg = GoCastConfig::default().with_payload_size(4096);
    let links = [(0u32, 1), (1, 2), (2, 0)];
    let mut sim = controlled(3, &links, cfg, 6);
    sim.run_until(SimTime::from_secs(5));
    sim.reset_stats();
    sim.command_now(NodeId::new(0), GoCastCommand::Multicast);
    sim.run_for(Duration::from_secs(2));
    let data = sim.stats().class(TrafficClass::Data);
    assert!(data.messages >= 2);
    assert!(
        data.bytes >= data.messages * 4096,
        "payload bytes missing from accounting: {data:?}"
    );
}

#[test]
fn redundant_data_does_not_refire_delivery() {
    // When a payload arrives twice the Delivered event fires exactly once
    // and the duplicate is counted as redundant. The recorder tees the
    // full trace into a second, Delivered-only stream.
    let rec = Rec::new()
        .tee(Rec::new().filter(|_, _, e: &GoCastEvent| matches!(e, GoCastEvent::Delivered { .. })));
    let links = [(0u32, 1), (1, 2), (0, 2)];
    let mut sim = controlled_with(3, &links, GoCastConfig::default(), 7, rec);
    sim.run_until(SimTime::from_secs(10));
    for _ in 0..10 {
        sim.command_now(NodeId::new(0), GoCastCommand::Multicast);
        sim.run_for(Duration::from_millis(300));
    }
    sim.run_for(Duration::from_secs(3));
    let delivered = sim.recorder().second.inner.events.len();
    assert!(
        sim.recorder().first.events.len() > delivered,
        "tee'd full trace must contain more than the Delivered stream"
    );
    assert_eq!(delivered, 20, "exactly one Delivered per (node, message)");
    let per_node: Vec<u64> = (0..3)
        .map(|i| {
            sim.node(NodeId::new(i)).delivered_count() + sim.node(NodeId::new(i)).redundant_count()
        })
        .collect();
    assert!(per_node.iter().sum::<u64>() >= 20);
}

#[test]
fn degree_targets_accessor_reflects_config() {
    let node = GoCastNode::new(
        NodeId::new(9),
        GoCastConfig::default().with_degrees(2, 7),
        vec![],
    );
    assert_eq!(node.degree_targets(), (2, 7));
    assert_eq!(node.id(), NodeId::new(9));
    assert!(!node.is_frozen());
    assert_eq!(node.link_change_count(), 0);
    assert_eq!(node.member_view().len(), 0);
    assert!(node.coords().is_empty());
    assert_eq!(node.tree_seq(), 0);
    assert_eq!(node.tree_distance(), None);
}

#[test]
fn latency_model_is_visible_through_sim() {
    let links = [(0u32, 1)];
    let sim = controlled(2, &links, GoCastConfig::default(), 8);
    assert_eq!(
        sim.latency_model().one_way(NodeId::new(0), NodeId::new(1)),
        Duration::from_millis(20)
    );
    assert_eq!(sim.latency_model().len(), 2);
}
