//! # gocast — gossip-enhanced overlay multicast
//!
//! A from-scratch implementation of **GoCast** (Tang, Chang & Ward,
//! *GoCast: Gossip-Enhanced Overlay Multicast for Fast and Dependable
//! Group Communication*, DSN 2005).
//!
//! GoCast organizes nodes into a degree-constrained, proximity-aware
//! overlay (each node keeps `C_rand` = 1 random neighbor for connectivity
//! and `C_near` = 5 low-latency neighbors for efficiency). Multicast
//! messages propagate unconditionally along an efficient spanning tree
//! embedded in the overlay; in the background, neighbors exchange message
//! summaries (gossips) and pull anything the tree failed to deliver. The
//! result is reliable-multicast speed with gossip-multicast dependability.
//!
//! The protocol is implemented **sans-IO** as the [`GoCastNode`] state
//! machine and driven by the deterministic [`gocast_sim`] kernel.
//!
//! ## Quick start
//!
//! ```
//! use gocast::{GoCastCommand, GoCastConfig, GoCastEvent, GoCastNode};
//! use gocast_net::{synthetic_king, SyntheticKingConfig};
//! use gocast_sim::{NodeId, SimBuilder, SimTime, VecRecorder};
//! use std::time::Duration;
//!
//! // 32 nodes on a synthetic Internet; bootstrap with 3 random links each.
//! let n = 32;
//! let net = synthetic_king(n, &SyntheticKingConfig { sites: 32, ..Default::default() });
//! let mut boot = gocast::bootstrap_random_graph(n, 3, 99);
//! let mut sim = SimBuilder::new(net).seed(7).build_with(
//!     VecRecorder::new(),
//!     |id| {
//!         let (links, members) = boot(id);
//!         GoCastNode::with_initial_links(id, GoCastConfig::default(), links, members)
//!     },
//! );
//!
//! // Let the overlay adapt, then multicast from node 5.
//! sim.run_until(SimTime::from_secs(30));
//! sim.command_now(NodeId::new(5), GoCastCommand::Multicast);
//! sim.run_for(Duration::from_secs(5));
//!
//! let delivered = sim
//!     .recorder()
//!     .events
//!     .iter()
//!     .filter(|(_, _, e)| matches!(e, GoCastEvent::Delivered { .. }))
//!     .count();
//! assert_eq!(delivered, n - 1, "everyone but the source received it");
//! ```
//!
//! ## Crate layout
//!
//! - [`GoCastConfig`] — all protocol parameters (paper defaults), plus the
//!   "proximity overlay" / "random overlay" comparison presets.
//! - [`GoCastNode`] — the protocol state machine (dissemination §2.1,
//!   overlay maintenance §2.2, tree §2.3).
//! - [`GoCastEvent`] — metric events consumed by recorders.
//! - [`snapshot`] — point-in-time overlay/tree graph extraction.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod codec;
mod config;
mod node;
mod snapshot;
mod types;
mod wire;

pub use codec::{decode, encode, encode_into, encoded_len, DecodeError};
pub use config::{ConfigError, GoCastConfig, GoCastConfigBuilder};
pub use node::{GoCastCommand, GoCastNode};
pub use snapshot::{snapshot, Snapshot};
pub use types::{
    age_on_arrival, DegreeInfo, DeliveryPath, DropReason, GoCastEvent, LinkKind, MsgId,
    ProtocolCounters,
};
pub use wire::{GoCastMsg, GossipEntry, MemberEntry, ProbeKind, HEADER_BYTES};

use gocast_sim::NodeId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Builds the paper's bootstrap state: a random graph where each node has
/// initiated `links_per_node` connections to random peers (so the average
/// degree is `2 * links_per_node`), plus an initial random member view.
///
/// Returns a closure mapping each [`NodeId`] to its `(links, members)`;
/// feed it to [`gocast_sim::SimBuilder::build_with`].
///
/// # Panics
///
/// Panics if `n < links_per_node + 1`.
pub fn bootstrap_random_graph(
    n: usize,
    links_per_node: usize,
    seed: u64,
) -> impl FnMut(NodeId) -> (Vec<NodeId>, Vec<NodeId>) {
    assert!(n > links_per_node, "need more nodes than links per node");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for i in 0..n {
        let mut made = 0;
        let mut guard = 0;
        while made < links_per_node && guard < 100 {
            guard += 1;
            let j = rng.gen_range(0..n);
            if j == i || adj[i].contains(&NodeId::new(j as u32)) {
                continue;
            }
            adj[i].push(NodeId::new(j as u32));
            adj[j].push(NodeId::new(i as u32));
            made += 1;
        }
    }
    // Member views: a random sample of the cohort per node.
    let view_size = 32.min(n - 1);
    let mut views: Vec<Vec<NodeId>> = Vec::with_capacity(n);
    for i in 0..n {
        let mut v = Vec::with_capacity(view_size);
        let mut guard = 0;
        while v.len() < view_size && guard < 10 * view_size {
            guard += 1;
            let j = rng.gen_range(0..n);
            if j != i && !v.contains(&NodeId::new(j as u32)) {
                v.push(NodeId::new(j as u32));
            }
        }
        views.push(v);
    }
    move |id: NodeId| {
        (
            std::mem::take(&mut adj[id.index()]),
            std::mem::take(&mut views[id.index()]),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bootstrap_graph_is_symmetric_with_expected_degree() {
        let n = 64;
        let mut boot = bootstrap_random_graph(n, 3, 1);
        let links: Vec<Vec<NodeId>> = (0..n).map(|i| boot(NodeId::new(i as u32)).0).collect();
        let total: usize = links.iter().map(Vec::len).sum();
        // Each initiated link appears at both endpoints.
        assert!(
            total >= 2 * 3 * n - 2 * n,
            "roughly 6 per node, got {total}"
        );
        for (i, l) in links.iter().enumerate() {
            for p in l {
                assert!(
                    links[p.index()].contains(&NodeId::new(i as u32)),
                    "link {i}-{p} not symmetric"
                );
            }
        }
    }

    #[test]
    fn bootstrap_views_exclude_self() {
        let n = 16;
        let mut boot = bootstrap_random_graph(n, 2, 2);
        for i in 0..n {
            let (_, members) = boot(NodeId::new(i as u32));
            assert!(!members.contains(&NodeId::new(i as u32)));
            assert!(!members.is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "more nodes")]
    fn bootstrap_rejects_tiny_n() {
        let _ = bootstrap_random_graph(3, 3, 0);
    }
}
