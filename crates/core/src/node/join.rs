//! Bootstrap and the node-join protocol (paper §2.2.1).
//!
//! A new node contacts one known member, copies its member list, connects
//! to `C_rand` random members, and picks its initial nearby neighbors by
//! *estimated* latency (landmark coordinates), refining by real RTT probes
//! afterwards. Landmark probing also runs at cohort startup so every node
//! obtains coordinates.

use gocast_net::LandmarkVector;
use gocast_sim::{Ctx, NodeId, Timer};
use rand::Rng;

use crate::types::LinkKind;
use crate::wire::{GoCastMsg, MemberEntry, ProbeKind};

use super::{timers, GoCastNode};

impl GoCastNode {
    /// Begins measuring RTTs to the landmark nodes (the first
    /// `landmark_count` ids), staggered a little to avoid a thundering
    /// herd at t = 0.
    pub(crate) fn start_landmark_probing(&mut self, ctx: &mut Ctx<'_, Self>) {
        // Coordinates store at most MAX_LANDMARKS slots inline; larger
        // configured counts are clamped rather than overflowing.
        let count = self
            .cfg
            .landmark_count
            .min(gocast_net::MAX_LANDMARKS)
            .min(ctx.node_count());
        for i in 0..count {
            if NodeId::new(i as u32) == self.id {
                self.coords.set(i, std::time::Duration::ZERO);
                continue;
            }
            let delay_ms = 20 * i as u64 + ctx.rng().gen_range(0..20u64);
            ctx.set_timer(
                std::time::Duration::from_millis(delay_ms),
                Timer::with_payload(timers::LANDMARK, i as u32, 0),
            );
        }
    }

    /// Sends one landmark probe.
    pub(crate) fn on_landmark_timer(&mut self, ctx: &mut Ctx<'_, Self>, index: usize) {
        if !self.joined {
            return;
        }
        let sent_at_us = Self::now_us(ctx);
        ctx.send(
            NodeId::new(index as u32),
            GoCastMsg::Ping {
                kind: ProbeKind::Landmark(index as u16),
                sent_at_us,
            },
        );
    }

    /// Runtime join: ask `contact` for its member list.
    ///
    /// Also handles *re*join after a graceful leave, which froze
    /// maintenance and left the old tree attachment behind: both are
    /// re-armed here, and the heartbeat clock restarts so the returning
    /// node doesn't read its own absence as root silence and hijack the
    /// root role on its first root check.
    pub(crate) fn start_join(&mut self, ctx: &mut Ctx<'_, Self>, contact: NodeId) {
        self.joined = true;
        self.frozen = false;
        self.tree.parent = None;
        self.tree.dist_us = super::tree::DIST_INF;
        self.tree.last_heartbeat = ctx.now();
        self.probe_queue_built = false;
        ctx.send(contact, GoCastMsg::JoinRequest);
    }

    /// Answers a join request with our member list (plus known
    /// coordinates, plus ourselves).
    pub(crate) fn on_join_request(&mut self, ctx: &mut Ctx<'_, Self>, from: NodeId) {
        let mut members: Vec<MemberEntry> = self
            .view
            .iter()
            .filter(|&m| m != from)
            .map(|m| {
                let coords = self
                    .coord_cache
                    .get(&m)
                    .cloned()
                    .unwrap_or_else(LandmarkVector::unknown);
                (m, coords)
            })
            .collect();
        members.push((self.id, self.coords));
        ctx.send(from, GoCastMsg::JoinReply { members });
        // Learn about the joiner too.
        self.view.insert(from, ctx.rng());
    }

    /// Installs the contact's member list: "For the time being, node N
    /// accepts S as its member list", then connects `C_rand` random
    /// members. Nearby links follow from the ordinary maintenance cycle,
    /// which probes candidates in estimated-latency order.
    pub(crate) fn on_join_reply(
        &mut self,
        ctx: &mut Ctx<'_, Self>,
        _from: NodeId,
        members: Vec<MemberEntry>,
    ) {
        for (id, coords) in members {
            if id == self.id {
                continue;
            }
            self.view.insert(id, ctx.rng());
            if !coords.is_empty() {
                self.cache_coords(id, coords);
            }
        }
        // Random links first (connectivity insurance).
        if self.d_rand() < self.c_rand && self.pending_rand_link.is_none() {
            if let Some(cand) = self.view.sample(ctx.rng()) {
                if cand != self.id && !self.neighbors.contains_key(&cand) {
                    self.request_link(ctx, cand, LinkKind::Random, None, None);
                }
            }
        }
        // Rebuild the probe queue so nearby selection uses the fresh list.
        self.probe_queue_built = false;
    }
}
