//! The embedded multicast tree (paper §2.3).
//!
//! The tree conceptually has a root; tree links are the overlay links on
//! the latency-shortest paths from the root to every node (in the spirit of
//! DVMRP, but a single shared tree). The root floods a heartbeat through
//! *every overlay link* each period; the flood doubles as the
//! distance-vector update: each node re-emits the heartbeat with its own
//! distance, adopts the neighbor offering the smallest distance as parent,
//! and tells it so. Missing heartbeats trigger root failover.

use gocast_sim::{Ctx, NodeId, SimTime};

use crate::types::GoCastEvent;
use crate::wire::GoCastMsg;

use super::{timers, GoCastNode};

/// "Not connected to the root."
pub(crate) const DIST_INF: u64 = u64::MAX;

/// This node's view of the tree.
#[derive(Debug, Clone)]
pub(crate) struct TreeState {
    /// Current root identity.
    pub root: NodeId,
    /// Root epoch: bumped by failover takeovers. Higher epoch wins; ties
    /// break toward the smaller root id.
    pub epoch: u32,
    /// Latest heartbeat wave seen from this root.
    pub seq: u32,
    /// Our latency distance to the root (µs), [`DIST_INF`] when detached.
    pub dist_us: u64,
    /// Our tree parent (the overlay neighbor on our shortest root path).
    pub parent: Option<NodeId>,
    /// When we last heard any heartbeat of the current root.
    pub last_heartbeat: SimTime,
}

impl TreeState {
    pub(crate) fn new(root: NodeId) -> Self {
        TreeState {
            root,
            epoch: 0,
            seq: 0,
            dist_us: DIST_INF,
            parent: None,
            last_heartbeat: SimTime::ZERO,
        }
    }
}

impl GoCastNode {
    /// Whether identity `(root, epoch)` supersedes the current one.
    fn identity_newer(&self, root: NodeId, epoch: u32) -> bool {
        epoch > self.tree.epoch || (epoch == self.tree.epoch && root < self.tree.root)
    }

    /// Periodic heartbeat: only the root acts, flooding a new wave.
    pub(crate) fn on_heartbeat_tick(&mut self, ctx: &mut Ctx<'_, Self>) {
        if !self.cfg.tree_enabled {
            return;
        }
        Self::arm(ctx, self.cfg.heartbeat_period, timers::HEARTBEAT);
        if self.frozen || !self.joined || !self.is_root() {
            return;
        }
        self.tree.seq += 1;
        self.tree.dist_us = 0;
        self.tree.parent = None;
        self.tree.last_heartbeat = ctx.now();
        self.flood_tree_ad(ctx, None);
    }

    /// Sends our current tree advertisement to all neighbors but `except`.
    fn flood_tree_ad(&mut self, ctx: &mut Ctx<'_, Self>, except: Option<NodeId>) {
        if self.tree.dist_us == DIST_INF {
            return;
        }
        let ad = GoCastMsg::TreeAd {
            root: self.tree.root,
            epoch: self.tree.epoch,
            seq: self.tree.seq,
            dist_us: self.tree.dist_us,
        };
        let peers: Vec<NodeId> = self.neighbors.keys().copied().collect();
        for p in peers {
            if Some(p) != except {
                ctx.send(p, ad.clone());
            }
        }
    }

    /// Shares tree state with one (newly linked) neighbor.
    pub(crate) fn advertise_tree_to(&mut self, ctx: &mut Ctx<'_, Self>, peer: NodeId) {
        if !self.cfg.tree_enabled || self.tree.dist_us == DIST_INF {
            return;
        }
        ctx.send(
            peer,
            GoCastMsg::TreeAd {
                root: self.tree.root,
                epoch: self.tree.epoch,
                seq: self.tree.seq,
                dist_us: self.tree.dist_us,
            },
        );
    }

    /// Handles a tree advertisement (heartbeat flood / route update).
    pub(crate) fn on_tree_ad(
        &mut self,
        ctx: &mut Ctx<'_, Self>,
        from: NodeId,
        root: NodeId,
        epoch: u32,
        seq: u32,
        dist_us: u64,
    ) {
        if !self.cfg.tree_enabled || !self.joined {
            return;
        }
        // While frozen the tree must not adapt (the failure experiments
        // measure the unrepaired tree).
        if self.frozen {
            return;
        }
        if !self.neighbors.contains_key(&from) {
            // Advertisement raced a link drop.
            return;
        }

        if root == self.id && epoch == self.tree.epoch {
            // Our own flood reflected back; ignore.
            return;
        }

        if self.identity_newer(root, epoch) {
            // New root (startup or failover): adopt identity, restart
            // distances.
            self.tree.root = root;
            self.tree.epoch = epoch;
            self.tree.seq = 0;
            self.tree.dist_us = DIST_INF;
            self.set_parent(ctx, None);
        } else if root != self.tree.root || epoch != self.tree.epoch {
            // Stale identity; ignore.
            return;
        }

        self.tree.last_heartbeat = ctx.now();
        if let Some(n) = self.neighbors.get_mut(&from) {
            n.route = Some((root, epoch, seq, dist_us));
        }

        let link_rtt = self
            .neighbors
            .get(&from)
            .and_then(|n| n.rtt_us)
            .unwrap_or(100_000);
        let cand = dist_us.saturating_add(link_rtt / 2);

        if seq > self.tree.seq {
            // A new wave: refresh our distance, but keep the current
            // parent unless we have none — in steady state the tree
            // structure is identical wave after wave, and a stable parent
            // avoids transient duplicate pushes while a multicast is in
            // flight.
            self.tree.seq = seq;
            self.tree.dist_us = cand;
            if self.tree.parent.is_none() {
                self.set_parent(ctx, Some(from));
            }
            self.flood_tree_ad(ctx, None);
        } else if seq == self.tree.seq && cand < self.tree.dist_us {
            // Same wave, strictly better path: improve and re-flood.
            self.tree.dist_us = cand;
            self.set_parent(ctx, Some(from));
            self.flood_tree_ad(ctx, None);
        } else if seq == self.tree.seq && Some(from) == self.tree.parent && cand > self.tree.dist_us
        {
            // Our parent's path is worse than the best we know: re-pick
            // the parent from the route cache. This keeps the invariant
            // that a parent's distance is smaller than ours, which rules
            // out parent-pointer cycles.
            self.reparent(ctx, true);
        }
    }

    /// Updates the parent pointer, notifying the old and new parents.
    fn set_parent(&mut self, ctx: &mut Ctx<'_, Self>, parent: Option<NodeId>) {
        if self.tree.parent == parent {
            return;
        }
        if let Some(old) = self.tree.parent {
            if self.neighbors.contains_key(&old) {
                ctx.send(old, GoCastMsg::ParentSelect { selected: false });
            }
        }
        if let Some(new) = parent {
            ctx.send(new, GoCastMsg::ParentSelect { selected: true });
        }
        self.tree.parent = parent;
        ctx.emit(GoCastEvent::ParentChanged { parent });
    }

    /// A neighbor chose (or un-chose) us as its parent.
    pub(crate) fn on_parent_select(
        &mut self,
        _ctx: &mut Ctx<'_, Self>,
        from: NodeId,
        selected: bool,
    ) {
        if let Some(n) = self.neighbors.get_mut(&from) {
            n.is_child = selected;
        }
    }

    /// Re-picks the parent from cached neighbor advertisements (used when
    /// the parent link vanished or the parent's path got worse). Prefers
    /// advertisements from the current heartbeat wave — stale entries can
    /// describe paths that no longer exist and would re-create cycles.
    /// `flood` controls whether we re-advertise afterwards.
    pub(crate) fn reparent(&mut self, ctx: &mut Ctx<'_, Self>, flood: bool) {
        if !self.cfg.tree_enabled {
            return;
        }
        if self.frozen {
            // No tree repair while frozen.
            self.tree.parent = None;
            return;
        }
        let candidates = |require_seq: Option<u32>| {
            self.neighbors
                .iter()
                .filter_map(|(&p, n)| {
                    let (root, epoch, seq, dist) = n.route?;
                    if root != self.tree.root || epoch != self.tree.epoch || dist == DIST_INF {
                        return None;
                    }
                    if let Some(s) = require_seq {
                        if seq != s {
                            return None;
                        }
                    }
                    Some((dist.saturating_add(n.rtt_us.unwrap_or(100_000) / 2), p))
                })
                .min()
        };
        let best = candidates(Some(self.tree.seq)).or_else(|| candidates(None));
        match best {
            Some((dist, p)) => {
                self.tree.dist_us = dist;
                self.set_parent(ctx, Some(p));
                if flood {
                    self.flood_tree_ad(ctx, Some(p));
                }
            }
            None => {
                self.tree.dist_us = DIST_INF;
                self.set_parent(ctx, None);
            }
        }
    }

    /// Periodic root liveness check: if no heartbeat for
    /// `heartbeat_timeout_factor` periods, take over as root with a higher
    /// epoch. Concurrent takeovers converge because higher epochs win and
    /// ties break toward the smaller node id.
    pub(crate) fn on_root_check(&mut self, ctx: &mut Ctx<'_, Self>) {
        if !self.cfg.tree_enabled {
            return;
        }
        Self::arm(ctx, self.cfg.heartbeat_period, timers::ROOT_CHECK);
        if self.frozen || !self.joined || self.is_root() {
            return;
        }
        let silence = ctx.now().saturating_since(self.tree.last_heartbeat);
        let timeout = self.cfg.heartbeat_period * self.cfg.heartbeat_timeout_factor;
        if silence <= timeout {
            return;
        }
        // Take over.
        let epoch = self.tree.epoch + 1;
        self.tree.root = self.id;
        self.tree.epoch = epoch;
        self.tree.seq = 1;
        self.tree.dist_us = 0;
        self.tree.last_heartbeat = ctx.now();
        self.set_parent(ctx, None);
        ctx.emit(GoCastEvent::BecameRoot { epoch });
        self.flood_tree_ad(ctx, None);
    }
}
