//! Overlay link table and link handshakes (paper §2.2, §2.2.1).
//!
//! Links are established with a request/accept handshake and torn down
//! with a one-way drop notification. Degrees are piggybacked on handshake
//! and gossip messages, so the maintenance rules can read a neighbor's
//! degree without extra round trips.

use gocast_sim::{Ctx, NodeId, SimTime};

use crate::types::{DegreeInfo, DropReason, GoCastEvent, LinkKind};
use crate::wire::GoCastMsg;

use super::GoCastNode;

/// Per-neighbor state.
#[derive(Debug, Clone)]
pub(crate) struct Neighbor {
    /// Random or nearby.
    pub kind: LinkKind,
    /// Measured link RTT (µs), once a probe or handshake measured it.
    pub rtt_us: Option<u64>,
    /// Last time any message arrived from this neighbor.
    pub last_seen: SimTime,
    /// Last time we sent this neighbor a gossip.
    pub last_gossip_sent: SimTime,
    /// The neighbor's last advertised degrees.
    pub degrees: DegreeInfo,
    /// Latest tree advertisement heard from this neighbor:
    /// `(root, epoch, seq, dist_us)`.
    pub route: Option<(NodeId, u32, u32, u64)>,
    /// Whether this neighbor selected us as its tree parent.
    pub is_child: bool,
}

impl Neighbor {
    /// `assumed_degrees` seeds the degree advertisement before the peer
    /// tells us its real numbers: assume it is a homogeneous node at zero
    /// degree, which keeps condition C1 conservative (an unknown neighbor
    /// is never dropped).
    fn new(kind: LinkKind, rtt_us: Option<u64>, now: SimTime, assumed_degrees: DegreeInfo) -> Self {
        Neighbor {
            kind,
            rtt_us,
            last_seen: now,
            last_gossip_sent: now,
            degrees: assumed_degrees,
            route: None,
            is_child: false,
        }
    }
}

impl GoCastNode {
    /// Number of random neighbors (`D_rand`).
    pub(crate) fn d_rand(&self) -> usize {
        self.neighbors
            .values()
            .filter(|n| n.kind == LinkKind::Random)
            .count()
    }

    /// Number of nearby neighbors (`D_near`).
    pub(crate) fn d_near(&self) -> usize {
        self.neighbors
            .values()
            .filter(|n| n.kind == LinkKind::Nearby)
            .count()
    }

    /// `max_nearby_RTT`: the worst measured RTT among nearby links
    /// (condition C3). `u64::MAX` when nothing is measured yet, which
    /// makes C3 vacuously true — matching a node that cannot yet judge.
    pub(crate) fn max_nearby_rtt_us(&self) -> u64 {
        self.neighbors
            .values()
            .filter(|n| n.kind == LinkKind::Nearby)
            .filter_map(|n| n.rtt_us)
            .max()
            .unwrap_or(u64::MAX)
    }

    /// Installs a pre-established (bootstrap) link and probes its RTT.
    pub(crate) fn install_initial_link(&mut self, ctx: &mut Ctx<'_, Self>, peer: NodeId) {
        if peer == self.id || self.neighbors.contains_key(&peer) {
            return;
        }
        let assumed = DegreeInfo {
            t_rand: self.c_rand as u16,
            t_near: self.c_near as u16,
            ..DegreeInfo::default()
        };
        self.neighbors.insert(
            peer,
            Neighbor::new(LinkKind::Nearby, None, ctx.now(), assumed),
        );
        self.link_changes += 1;
        ctx.emit(GoCastEvent::LinkAdded {
            peer,
            kind: LinkKind::Nearby,
        });
        self.send_link_probe(ctx, peer);
    }

    /// Probes an established link to measure its RTT (tree weights).
    pub(crate) fn send_link_probe(&mut self, ctx: &mut Ctx<'_, Self>, peer: NodeId) {
        let sent_at_us = Self::now_us(ctx);
        ctx.send(
            peer,
            GoCastMsg::Ping {
                kind: crate::wire::ProbeKind::LinkMeasure,
                sent_at_us,
            },
        );
    }

    /// Adds a confirmed link. Idempotent; refreshes RTT when given.
    pub(crate) fn add_link(
        &mut self,
        ctx: &mut Ctx<'_, Self>,
        peer: NodeId,
        kind: LinkKind,
        rtt_us: Option<u64>,
        peer_degrees: DegreeInfo,
    ) {
        debug_assert_ne!(peer, self.id, "self-link");
        if let Some(n) = self.neighbors.get_mut(&peer) {
            if rtt_us.is_some() {
                n.rtt_us = rtt_us;
            }
            n.degrees = peer_degrees;
            return;
        }
        let assumed = DegreeInfo {
            t_rand: self.c_rand as u16,
            t_near: self.c_near as u16,
            ..DegreeInfo::default()
        };
        let mut n = Neighbor::new(kind, rtt_us, ctx.now(), assumed);
        n.degrees = peer_degrees;
        self.neighbors.insert(peer, n);
        self.link_changes += 1;
        self.maint_backoff = 0;
        ctx.emit(GoCastEvent::LinkAdded { peer, kind });
        // Measure the link if the handshake didn't (random links).
        if rtt_us.is_none() {
            self.send_link_probe(ctx, peer);
        }
        // Share tree state so the new neighbor can route through us.
        self.advertise_tree_to(ctx, peer);
    }

    /// Removes a link. `notify` sends the peer a [`GoCastMsg::LinkDrop`].
    /// Cleans up tree parent/child state tied to the peer.
    pub(crate) fn drop_link(
        &mut self,
        ctx: &mut Ctx<'_, Self>,
        peer: NodeId,
        reason: DropReason,
        notify: bool,
    ) {
        let Some(n) = self.neighbors.remove(&peer) else {
            return;
        };
        self.link_changes += 1;
        self.maint_backoff = 0;
        self.counters.count_drop(reason);
        ctx.emit(GoCastEvent::LinkDropped {
            peer,
            kind: n.kind,
            reason,
        });
        if notify {
            ctx.send(
                peer,
                GoCastMsg::LinkDrop {
                    kind: n.kind,
                    reason,
                },
            );
        }
        if self.tree.parent == Some(peer) {
            self.reparent(ctx, false);
        }
    }

    /// Handles an incoming link request (acceptor side of §2.2.1).
    ///
    /// Accept rules: degree below `target + slack`; for nearby links whose
    /// requester measured the RTT, additionally C3 — when already at
    /// target degree, the new link must beat our worst nearby link.
    pub(crate) fn on_link_request(
        &mut self,
        ctx: &mut Ctx<'_, Self>,
        from: NodeId,
        kind: LinkKind,
        rtt_us: Option<u64>,
        degrees: DegreeInfo,
    ) {
        if from == self.id || !self.joined {
            return;
        }
        if self.neighbors.contains_key(&from) {
            // Simultaneous handshake: both requested; both accept.
            let my = self.degrees();
            ctx.send(from, GoCastMsg::LinkAccept { kind, degrees: my });
            if let Some(n) = self.neighbors.get_mut(&from) {
                if rtt_us.is_some() {
                    n.rtt_us = rtt_us;
                }
                n.degrees = degrees;
            }
            return;
        }
        let ok = match kind {
            LinkKind::Random => self.d_rand() < self.c_rand + self.cfg.degree_slack,
            LinkKind::Nearby => {
                let cap = self.d_near() < self.c_near + self.cfg.degree_slack;
                let c3 = if self.d_near() >= self.c_near {
                    match rtt_us {
                        Some(r) => r < self.max_nearby_rtt_us(),
                        None => true,
                    }
                } else {
                    true
                };
                cap && c3
            }
        };
        if ok {
            let my = self.degrees();
            ctx.send(from, GoCastMsg::LinkAccept { kind, degrees: my });
            self.add_link(ctx, from, kind, rtt_us, degrees);
        } else {
            ctx.send(from, GoCastMsg::LinkReject { kind });
        }
    }

    /// Handles acceptance of a link we requested.
    pub(crate) fn on_link_accept(
        &mut self,
        ctx: &mut Ctx<'_, Self>,
        from: NodeId,
        kind: LinkKind,
        degrees: DegreeInfo,
    ) {
        let pending = match kind {
            LinkKind::Random => &mut self.pending_rand_link,
            LinkKind::Nearby => &mut self.pending_link,
        };
        let Some(p) = pending.take() else {
            // Stale accept (we gave up); treat as peer-initiated link so
            // the two sides stay symmetric.
            self.add_link(ctx, from, kind, None, degrees);
            self.enforce_degree_cap(ctx, kind);
            return;
        };
        if p.peer != from {
            // Accept from someone else entirely: restore and handle as
            // symmetric add.
            *pending = Some(p);
            self.add_link(ctx, from, kind, None, degrees);
            self.enforce_degree_cap(ctx, kind);
            return;
        }
        // RTT: measured probe when available, else the handshake round
        // trip.
        let rtt = p
            .rtt_us
            .unwrap_or_else(|| (ctx.now().saturating_since(p.sent_at)).as_micros() as u64);
        self.add_link(ctx, from, kind, Some(rtt), degrees);
        if let Some(victim) = p.replace {
            if self.neighbors.contains_key(&victim) {
                self.drop_link(ctx, victim, DropReason::Replaced, true);
            }
        }
        // The replace victim can be gone already (crashed, dropped by the
        // peer) when the accept lands, in which case the add above was
        // net-new and may have pushed the degree past the ceiling.
        self.enforce_degree_cap(ctx, kind);
    }

    /// Restores the accept-rule ceiling `C + slack` after a link add that
    /// could not be degree-checked up front (stale accepts, replace
    /// victims that vanished in flight): while `D_kind` exceeds the
    /// ceiling, drop the worst link of that kind — highest RTT, an
    /// unmeasured link worst of all — within the same instant.
    pub(crate) fn enforce_degree_cap(&mut self, ctx: &mut Ctx<'_, Self>, kind: LinkKind) {
        let cap = match kind {
            LinkKind::Random => self.c_rand,
            LinkKind::Nearby => self.c_near,
        } + self.cfg.degree_slack;
        loop {
            let d = match kind {
                LinkKind::Random => self.d_rand(),
                LinkKind::Nearby => self.d_near(),
            };
            if d <= cap {
                return;
            }
            let victim = self
                .neighbors
                .iter()
                .filter(|(_, n)| n.kind == kind)
                .max_by_key(|(&p, n)| (n.rtt_us.unwrap_or(u64::MAX), p.as_u32()))
                .map(|(&p, _)| p);
            match victim {
                Some(p) => self.drop_link(ctx, p, DropReason::Surplus, true),
                None => return,
            }
        }
    }

    /// Handles rejection of a link we requested.
    pub(crate) fn on_link_reject(
        &mut self,
        _ctx: &mut Ctx<'_, Self>,
        from: NodeId,
        kind: LinkKind,
    ) {
        let pending = match kind {
            LinkKind::Random => &mut self.pending_rand_link,
            LinkKind::Nearby => &mut self.pending_link,
        };
        if pending.map(|p| p.peer) == Some(from) {
            *pending = None;
        }
    }

    /// Peer dropped the link.
    pub(crate) fn on_link_drop(
        &mut self,
        ctx: &mut Ctx<'_, Self>,
        from: NodeId,
        _kind: LinkKind,
        _reason: DropReason,
    ) {
        self.drop_link(ctx, from, DropReason::PeerRequest, false);
    }

    /// Random rebalancing (operation 1, receiver side): the sender dropped
    /// its links to us and `target`; we establish a random link to
    /// `target` to keep our degree.
    pub(crate) fn on_connect_to(&mut self, ctx: &mut Ctx<'_, Self>, _from: NodeId, target: NodeId) {
        if target == self.id || self.neighbors.contains_key(&target) || self.frozen {
            return;
        }
        self.request_link(ctx, target, LinkKind::Random, None, None);
    }

    /// Sends a link request, tracking it in the appropriate pending slot.
    pub(crate) fn request_link(
        &mut self,
        ctx: &mut Ctx<'_, Self>,
        peer: NodeId,
        kind: LinkKind,
        rtt_us: Option<u64>,
        replace: Option<NodeId>,
    ) {
        let slot = match kind {
            LinkKind::Random => &mut self.pending_rand_link,
            LinkKind::Nearby => &mut self.pending_link,
        };
        if slot.is_some() {
            return; // one in-flight request per kind
        }
        *slot = Some(super::PendingLink {
            peer,
            sent_at: ctx.now(),
            rtt_us,
            replace,
        });
        let degrees = self.degrees();
        ctx.send(
            peer,
            GoCastMsg::LinkRequest {
                kind,
                rtt_us,
                degrees,
            },
        );
    }

    /// Expires pending link requests that were never answered (peer dead or
    /// message lost), so the slot frees up for the next maintenance cycle.
    pub(crate) fn expire_pending_links(&mut self, now: SimTime) {
        let deadline = std::time::Duration::from_secs(2);
        for slot in [&mut self.pending_link, &mut self.pending_rand_link] {
            if let Some(p) = slot {
                if now.saturating_since(p.sent_at) > deadline {
                    *slot = None;
                }
            }
        }
    }

    /// Drops neighbors that have gone silent past the timeout (failure
    /// detection; disabled while frozen).
    pub(crate) fn check_neighbor_liveness(&mut self, ctx: &mut Ctx<'_, Self>) {
        let now = ctx.now();
        let stale: Vec<NodeId> = self
            .neighbors
            .iter()
            .filter(|(_, n)| now.saturating_since(n.last_seen) > self.cfg.neighbor_timeout)
            .map(|(&p, _)| p)
            .collect();
        for p in stale {
            self.view.remove(p);
            self.coord_cache.remove(&p);
            self.drop_link(ctx, p, DropReason::PeerFailed, false);
        }
    }
}
