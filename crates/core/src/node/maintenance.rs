//! Overlay maintenance (paper §2.2.2–§2.2.3).
//!
//! Every maintenance period `r` a node runs two protocols:
//!
//! - **random neighbors** — push `D_rand` toward `C_rand` with the two
//!   degree-balancing operations (hand a surplus pair to each other;
//!   drop a link to an over-degree random neighbor);
//! - **nearby neighbors** — probe one member-list candidate per cycle
//!   (estimated-latency order first, round-robin afterwards) and apply the
//!   replace/add/drop rules with conditions C1–C4.

use gocast_net::LandmarkVector;
use gocast_sim::{Ctx, NodeId};
use rand::Rng;

use crate::types::{DegreeInfo, DropReason, LinkKind};
use crate::wire::{GoCastMsg, ProbeKind};

use super::{timers, GoCastNode};

impl GoCastNode {
    /// The periodic maintenance tick.
    pub(crate) fn on_maintenance_tick(&mut self, ctx: &mut Ctx<'_, Self>) {
        if self.frozen || !self.joined {
            Self::arm(ctx, self.cfg.maintenance_period, timers::MAINTENANCE);
            return;
        }
        let changes_before = self.link_changes;
        self.expire_pending_links(ctx.now());
        self.check_neighbor_liveness(ctx);
        self.maintain_random(ctx);
        self.maintain_nearby(ctx);

        // Future-work feature (§2.2.3): "As the overlay stabilizes, the
        // opportunity for improvement diminishes. The maintenance cycle r
        // can be increased accordingly to reduce maintenance overheads."
        let period = if self.cfg.adaptive_maintenance {
            let deficient = self.d_rand() < self.c_rand || self.d_near() < self.c_near;
            if self.link_changes != changes_before || deficient {
                self.maint_backoff = 0;
            } else {
                self.maint_backoff = self.maint_backoff.saturating_add(1);
            }
            (self.cfg.maintenance_period * 2u32.pow(self.maint_backoff.min(5)))
                .min(self.cfg.max_maintenance_period)
        } else {
            self.cfg.maintenance_period
        };
        Self::arm(ctx, period, timers::MAINTENANCE);
    }

    // ------------------------------------------------------------------
    // Random neighbors (§2.2.2).
    // ------------------------------------------------------------------

    fn maintain_random(&mut self, ctx: &mut Ctx<'_, Self>) {
        if self.c_rand == 0 {
            return;
        }
        let d = self.d_rand();
        if d < self.c_rand {
            // Too few: connect to a random member.
            if self.pending_rand_link.is_some() {
                return;
            }
            // Draw a few samples to find a non-neighbor.
            for _ in 0..4 {
                let Some(cand) = self.view.sample(ctx.rng()) else {
                    return;
                };
                if cand != self.id && !self.neighbors.contains_key(&cand) {
                    self.request_link(ctx, cand, LinkKind::Random, None, None);
                    return;
                }
            }
        } else if d >= self.c_rand + 2 {
            // Operation 1: pick two random neighbors Y and Z, ask Y to
            // connect to Z, and drop both links. Our degree falls by two;
            // theirs stay unchanged.
            let randoms: Vec<NodeId> = self
                .neighbors
                .iter()
                .filter(|(_, n)| n.kind == LinkKind::Random)
                .map(|(&p, _)| p)
                .collect();
            let i = ctx.rng().gen_range(0..randoms.len());
            let mut j = ctx.rng().gen_range(0..randoms.len() - 1);
            if j >= i {
                j += 1;
            }
            let (y, z) = (randoms[i], randoms[j]);
            ctx.send(y, GoCastMsg::ConnectTo { target: z });
            self.drop_link(ctx, y, DropReason::Rebalanced, true);
            self.drop_link(ctx, z, DropReason::Rebalanced, true);
        } else if d > self.c_rand {
            // Operation 2: drop the link to a random neighbor that itself
            // has more than C_rand random neighbors, so both degrees stay
            // >= C_rand. If no such neighbor exists, stay at C_rand + 1.
            let victim = self
                .neighbors
                .iter()
                .filter(|(_, n)| n.kind == LinkKind::Random && n.degrees.d_rand > n.degrees.t_rand)
                .map(|(&p, _)| p)
                .next();
            if let Some(w) = victim {
                self.drop_link(ctx, w, DropReason::Surplus, true);
            }
        }
    }

    // ------------------------------------------------------------------
    // Nearby neighbors (§2.2.3).
    // ------------------------------------------------------------------

    fn maintain_nearby(&mut self, ctx: &mut Ctx<'_, Self>) {
        if self.c_near == 0 {
            return;
        }
        self.drop_surplus_nearby(ctx);
        // One RTT measurement per cycle toward adding/replacing.
        if self.pending_link.is_none() {
            if let Some(cand) = self.next_probe_candidate(ctx) {
                let sent_at_us = Self::now_us(ctx);
                ctx.send(
                    cand,
                    GoCastMsg::Ping {
                        kind: ProbeKind::Candidate,
                        sent_at_us,
                    },
                );
            }
        }
    }

    /// Builds the estimated-latency-ordered probe queue once coordinates
    /// are usable, then walks it; afterwards falls back to round-robin
    /// over the member view ("Once all nodes in S have been measured, the
    /// estimated latencies are no longer used ... in a round robin
    /// fashion").
    fn next_probe_candidate(&mut self, ctx: &mut Ctx<'_, Self>) -> Option<NodeId> {
        if !self.probe_queue_built && !self.coords.is_empty() && !self.view.is_empty() {
            let my = self.coords;
            let mut q: Vec<(u64, NodeId)> = self
                .view
                .iter()
                .map(|id| {
                    let est = self
                        .coord_cache
                        .get(&id)
                        .and_then(|c| my.estimate_rtt(c))
                        .map(|d| d.as_micros() as u64)
                        .unwrap_or(u64::MAX / 2);
                    (est, id)
                })
                .collect();
            q.sort_unstable();
            self.probe_queue = q.into_iter().map(|(_, id)| id).collect();
            self.probe_cursor = 0;
            self.probe_queue_built = true;
        }
        // Walk the sorted queue first.
        while self.probe_cursor < self.probe_queue.len() {
            let cand = self.probe_queue[self.probe_cursor];
            self.probe_cursor += 1;
            if cand != self.id && !self.neighbors.contains_key(&cand) && self.view.contains(cand) {
                return Some(cand);
            }
        }
        // Then round-robin over the (possibly grown) view.
        for _ in 0..self.view.len().min(8) {
            let cand = self.view.next_round_robin()?;
            if cand != self.id && !self.neighbors.contains_key(&cand) {
                return Some(cand);
            }
        }
        let _ = ctx; // candidate selection uses no randomness beyond the view
        None
    }

    /// Drop rule: only once `D_near >= C_near + 2` (or `+ 1` under the
    /// aggressive ablation), shed longest-latency nearby links whose
    /// holder's degree is not dangerously low (condition C1), down to
    /// `C_near`.
    fn drop_surplus_nearby(&mut self, ctx: &mut Ctx<'_, Self>) {
        let threshold = if self.cfg.aggressive_drop { 1 } else { 2 };
        let d = self.d_near();
        if d < self.c_near + threshold {
            return;
        }
        let mut droppable: Vec<(u64, NodeId)> = self
            .neighbors
            .iter()
            .filter(|(_, n)| n.kind == LinkKind::Nearby && self.c1_allows(n.degrees))
            .map(|(&p, n)| (n.rtt_us.unwrap_or(u64::MAX), p))
            .collect();
        // Longest latency first; unmeasured links count as long.
        droppable.sort_unstable_by(|a, b| b.cmp(a));
        let excess = d - self.c_near;
        for (_, p) in droppable.into_iter().take(excess) {
            self.drop_link(ctx, p, DropReason::Surplus, true);
        }
    }

    /// Condition C1 for a neighbor with advertised degrees `deg`:
    /// `D_near(U) >= C_near - c1_offset`.
    fn c1_allows(&self, deg: DegreeInfo) -> bool {
        deg.d_near as usize + self.cfg.c1_offset >= deg.t_near as usize
    }

    // ------------------------------------------------------------------
    // Probe replies: candidate evaluation (C1–C4).
    // ------------------------------------------------------------------

    /// Handles any pong; routes candidate pongs into the add/replace rules.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_pong(
        &mut self,
        ctx: &mut Ctx<'_, Self>,
        from: NodeId,
        kind: ProbeKind,
        sent_at_us: u64,
        degrees: DegreeInfo,
        max_nearby_rtt_us: u64,
        coords: LandmarkVector,
    ) {
        let rtt_us = Self::now_us(ctx).saturating_sub(sent_at_us);
        if !coords.is_empty() {
            self.cache_coords(from, coords);
        }
        match kind {
            ProbeKind::Landmark(i) => {
                self.coords
                    .set(i as usize, std::time::Duration::from_micros(rtt_us));
            }
            ProbeKind::LinkMeasure => {
                if let Some(n) = self.neighbors.get_mut(&from) {
                    n.rtt_us = Some(rtt_us);
                    n.degrees = degrees;
                }
            }
            ProbeKind::Candidate => {
                if self.frozen || !self.joined {
                    return;
                }
                if let Some(n) = self.neighbors.get_mut(&from) {
                    // Became a neighbor while the probe was in flight.
                    n.rtt_us = Some(rtt_us);
                    n.degrees = degrees;
                    return;
                }
                self.evaluate_candidate(ctx, from, rtt_us, degrees, max_nearby_rtt_us);
            }
        }
    }

    /// Applies the paper's add/replace decision to a freshly measured
    /// candidate `q`.
    fn evaluate_candidate(
        &mut self,
        ctx: &mut Ctx<'_, Self>,
        q: NodeId,
        rtt_us: u64,
        q_degrees: DegreeInfo,
        q_max_nearby_rtt_us: u64,
    ) {
        if self.pending_link.is_some() {
            return;
        }
        // C2: the candidate's nearby degree is not too high.
        let c2 = (q_degrees.d_near as usize) < q_degrees.t_near as usize + self.cfg.degree_slack;
        // C3: if the candidate is at/above target degree, our link must
        // beat its current worst nearby link.
        let c3 = !q_degrees.near_saturated() || rtt_us < q_max_nearby_rtt_us;
        if !(c2 && c3) {
            return;
        }

        if self.d_near() < self.c_near {
            // Adding: one new nearby neighbor per cycle at most.
            self.request_link(ctx, q, LinkKind::Nearby, Some(rtt_us), None);
            return;
        }

        // Replacing: C1 — pick the longest-latency nearby neighbor whose
        // own nearby degree is not dangerously low.
        let victim = self
            .neighbors
            .iter()
            .filter(|(_, n)| {
                n.kind == LinkKind::Nearby && n.rtt_us.is_some() && self.c1_allows(n.degrees)
            })
            .max_by_key(|(_, n)| n.rtt_us.unwrap_or(0))
            .map(|(&p, n)| (p, n.rtt_us.unwrap_or(u64::MAX)));
        let Some((u, u_rtt_us)) = victim else {
            return;
        };
        // C4: only adopt a significantly better link.
        if self.cfg.c4_enabled && rtt_us * 2 > u_rtt_us {
            return;
        }
        if !self.cfg.c4_enabled && rtt_us >= u_rtt_us {
            return;
        }
        self.request_link(ctx, q, LinkKind::Nearby, Some(rtt_us), Some(u));
    }

    /// Answers a ping with our degrees, worst nearby RTT, and coordinates.
    pub(crate) fn on_ping(
        &mut self,
        ctx: &mut Ctx<'_, Self>,
        from: NodeId,
        kind: ProbeKind,
        sent_at_us: u64,
    ) {
        let degrees = self.degrees();
        let max_nearby_rtt_us = self.max_nearby_rtt_us();
        let coords = self.coords;
        ctx.send(
            from,
            GoCastMsg::Pong {
                kind,
                sent_at_us,
                degrees,
                max_nearby_rtt_us,
                coords,
            },
        );
    }
}
