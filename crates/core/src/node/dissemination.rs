//! Message dissemination (paper §2.1): unconditional push along tree
//! links, plus background gossip of message IDs to overlay neighbors and
//! pull of anything missing.

use gocast_net::LandmarkVector;
use gocast_sim::{Ctx, NodeId, Timer};

use crate::types::{age_on_arrival, DegreeInfo, DeliveryPath, GoCastEvent, MsgId};
use crate::wire::{GoCastMsg, GossipEntry, MemberEntry};

use super::{timers, GoCastNode, Pending, Stored};

impl GoCastNode {
    /// Injects a new multicast message originated by this node and pushes
    /// it into the tree.
    pub(crate) fn inject_multicast(&mut self, ctx: &mut Ctx<'_, Self>) {
        let id = MsgId::new(self.id, self.next_seq);
        self.next_seq += 1;
        let size = self.cfg.payload_size;
        self.store_message(ctx, id, 0, 0, size);
        ctx.emit(GoCastEvent::Injected { id });
        self.wake_gossip(ctx);
        if self.cfg.tree_enabled {
            self.forward_on_tree(ctx, id, None);
        }
    }

    /// Records a message in the store and the recent-reception window.
    fn store_message(
        &mut self,
        ctx: &mut Ctx<'_, Self>,
        id: MsgId,
        age_us: u64,
        hop: u32,
        size: u32,
    ) {
        self.store.insert(
            id,
            Stored {
                received_at: ctx.now(),
                age_at_receive_us: age_us,
                hop,
                heard_from: Vec::new(),
                size,
            },
        );
        self.recent.push_back((id, ctx.now()));
    }

    /// Forwards a stored message along every tree link except `except`
    /// ("each node that receives the message immediately forwards the
    /// message to its tree neighbors except the node from which the
    /// message arrived").
    pub(crate) fn forward_on_tree(
        &mut self,
        ctx: &mut Ctx<'_, Self>,
        id: MsgId,
        except: Option<NodeId>,
    ) {
        let Some(stored) = self.store.get(&id) else {
            return;
        };
        let age_us = stored.age_at(ctx.now());
        let size = stored.size;
        // The copy we send is one causal hop further from the origin than
        // the copy we hold.
        let hop = stored.hop + 1;
        let targets = self.tree_neighbors();
        for peer in targets {
            if Some(peer) == except {
                continue;
            }
            self.counters.pushes_sent += 1;
            ctx.emit(GoCastEvent::PushSent { id, to: peer, hop });
            ctx.send(
                peer,
                GoCastMsg::Data {
                    id,
                    age_us,
                    hop,
                    size,
                },
            );
        }
    }

    /// A full payload arrived — via a tree link (push) or as a pull
    /// response.
    pub(crate) fn on_data(
        &mut self,
        ctx: &mut Ctx<'_, Self>,
        from: NodeId,
        id: MsgId,
        age_us: u64,
        hop: u32,
        size: u32,
    ) {
        let from_tree_link =
            self.tree.parent == Some(from) || self.neighbors.get(&from).is_some_and(|n| n.is_child);
        if from_tree_link {
            self.counters.pushes_received += 1;
        }
        if let Some(stored) = self.store.get_mut(&id) {
            // Duplicate. (With the abort optimization of §2.1 the bytes
            // would mostly not cross the wire; we still count the event.)
            self.redundant += 1;
            self.counters.redundant += 1;
            ctx.emit(GoCastEvent::RedundantData { id, from });
            if !stored.heard_from.contains(&from) {
                stored.heard_from.push(from);
            }
            return;
        }
        let link_rtt = self
            .neighbors
            .get(&from)
            .and_then(|n| n.rtt_us.map(std::time::Duration::from_micros));
        let age = age_on_arrival(std::time::Duration::from_micros(age_us), link_rtt);
        self.store_message(ctx, id, age.as_micros() as u64, hop, size);
        self.store
            .get_mut(&id)
            .expect("just inserted")
            .heard_from
            .push(from);
        self.delivered += 1;
        self.wake_gossip(ctx);

        let via = if from_tree_link {
            DeliveryPath::Tree
        } else {
            DeliveryPath::Pull
        };
        match via {
            DeliveryPath::Tree => self.counters.delivered_tree += 1,
            _ => self.counters.delivered_pull += 1,
        }
        ctx.emit(GoCastEvent::Delivered { id, via, from, hop });
        self.pending_pulls.remove(&id);

        if self.cfg.tree_enabled {
            // Push onward along tree links. A message obtained through a
            // pull is forwarded to *all* tree neighbors (it entered this
            // tree fragment here); a tree push skips the link it came from.
            let except = if from_tree_link { Some(from) } else { None };
            self.forward_on_tree(ctx, id, except);
        }
    }

    // ------------------------------------------------------------------
    // Gossip.
    // ------------------------------------------------------------------

    /// The effective gossip period under the adaptive-gossip feature:
    /// exponential backoff while there is nothing to summarize, capped at
    /// the idle-gossip interval.
    fn effective_gossip_period(&self) -> std::time::Duration {
        if !self.cfg.adaptive_gossip || self.gossip_backoff == 0 {
            return self.cfg.gossip_period;
        }
        let scaled = self.cfg.gossip_period * 2u32.pow(self.gossip_backoff.min(6));
        scaled.min(self.cfg.idle_gossip_interval)
    }

    /// Re-arms the gossip timer with the current generation and effective
    /// period.
    pub(crate) fn arm_gossip(&self, ctx: &mut Ctx<'_, Self>) {
        ctx.set_timer(
            self.effective_gossip_period(),
            Timer::with_payload(timers::GOSSIP, self.gossip_gen, 0),
        );
    }

    /// A message arrived: if the gossip clock had backed off, snap it back
    /// to the base period (invalidating the slow timer via the generation
    /// counter) so summaries flow at full rate again.
    fn wake_gossip(&mut self, ctx: &mut Ctx<'_, Self>) {
        if self.cfg.adaptive_gossip && self.gossip_backoff > 0 {
            self.gossip_backoff = 0;
            self.gossip_gen = self.gossip_gen.wrapping_add(1);
            self.arm_gossip(ctx);
        }
    }

    /// Periodic gossip tick: pick the next overlay neighbor round-robin
    /// and send it the IDs received since our last gossip to it, excluding
    /// IDs it told us about.
    pub(crate) fn on_gossip_tick(&mut self, ctx: &mut Ctx<'_, Self>, gen: u32) {
        if gen != self.gossip_gen {
            return; // superseded by wake_gossip
        }
        if !self.joined {
            self.arm_gossip(ctx);
            return;
        }
        let Some(peer) = self.next_gossip_peer() else {
            self.gossip_backoff = self.gossip_backoff.saturating_add(1);
            self.arm_gossip(ctx);
            return;
        };
        let nb = &self.neighbors[&peer];
        let since = nb.last_gossip_sent;
        let now = ctx.now();

        // Collect IDs from the recent-reception window.
        let mut ids: Vec<GossipEntry> = Vec::new();
        for &(id, t) in self.recent.iter().rev() {
            if t <= since {
                break;
            }
            if let Some(stored) = self.store.get(&id) {
                if !stored.heard_from.contains(&peer) {
                    ids.push((id, stored.age_at(now)));
                }
            }
        }
        ids.reverse();

        // "A gossip can be saved if there is no multicast message during
        // that period" — but we still refresh membership/liveness at a low
        // rate.
        if ids.is_empty() {
            self.gossip_backoff = self.gossip_backoff.saturating_add(1);
            if now.saturating_since(since) < self.cfg.idle_gossip_interval {
                self.arm_gossip(ctx);
                return;
            }
        } else {
            self.gossip_backoff = 0;
        }
        self.arm_gossip(ctx);

        let members = self.pick_gossip_members(ctx);
        let degrees = self.degrees();
        let coords = self.coords;
        if let Some(n) = self.neighbors.get_mut(&peer) {
            n.last_gossip_sent = now;
        }
        self.counters.gossip_rounds += 1;
        self.counters.ihave_entries_sent += ids.len() as u64;
        for &(id, _) in &ids {
            ctx.emit(GoCastEvent::IHaveSent { id, to: peer });
        }
        ctx.send(
            peer,
            GoCastMsg::Gossip {
                ids,
                members,
                coords,
                degrees,
            },
        );
    }

    /// Advances the round-robin cursor over the neighbor table.
    fn next_gossip_peer(&mut self) -> Option<NodeId> {
        if self.neighbors.is_empty() {
            return None;
        }
        let next = match self.gossip_cursor {
            Some(cur) => self
                .neighbors
                .range((std::ops::Bound::Excluded(cur), std::ops::Bound::Unbounded))
                .next()
                .map(|(&p, _)| p)
                .or_else(|| self.neighbors.keys().next().copied()),
            None => self.neighbors.keys().next().copied(),
        };
        self.gossip_cursor = next;
        next
    }

    /// Samples member entries (with coordinates when known) to piggyback.
    fn pick_gossip_members(&mut self, ctx: &mut Ctx<'_, Self>) -> Vec<MemberEntry> {
        let k = self.cfg.members_per_gossip;
        if k == 0 {
            return Vec::new();
        }
        let mut out: Vec<MemberEntry> = self
            .view
            .sample_k(k, ctx.rng())
            .into_iter()
            .map(|id| {
                let coords = self
                    .coord_cache
                    .get(&id)
                    .cloned()
                    .unwrap_or_else(LandmarkVector::unknown);
                (id, coords)
            })
            .collect();
        // Introduce ourselves too (address + coordinates).
        out.push((self.id, self.coords));
        out
    }

    /// Handles a gossip from neighbor `from`.
    pub(crate) fn on_gossip(
        &mut self,
        ctx: &mut Ctx<'_, Self>,
        from: NodeId,
        ids: Vec<GossipEntry>,
        members: Vec<MemberEntry>,
        coords: LandmarkVector,
        degrees: DegreeInfo,
    ) {
        self.counters.gossips_received += 1;
        if let Some(n) = self.neighbors.get_mut(&from) {
            n.degrees = degrees;
        }
        if !coords.is_empty() {
            self.cache_coords(from, coords);
        }
        for (id, c) in members {
            if id != self.id {
                self.view.insert(id, ctx.rng());
                if !c.is_empty() {
                    self.cache_coords(id, c);
                }
            }
        }

        let now = ctx.now();
        let mut to_request: Vec<MsgId> = Vec::new();
        for (id, age_us) in ids {
            if let Some(stored) = self.store.get_mut(&id) {
                if !stored.heard_from.contains(&from) {
                    stored.heard_from.push(from);
                }
                continue;
            }
            let link_rtt = self
                .neighbors
                .get(&from)
                .and_then(|n| n.rtt_us.map(std::time::Duration::from_micros));
            let age = age_on_arrival(std::time::Duration::from_micros(age_us), link_rtt).as_micros()
                as u64;
            if let Some(p) = self.pending_pulls.get_mut(&id) {
                if !p.candidates.contains(&from) {
                    p.candidates.push(from);
                }
                continue;
            }
            self.pending_pulls.insert(
                id,
                Pending {
                    heard_at: now,
                    candidates: vec![from],
                    requested_from: None,
                },
            );
            // Delayed-pull optimization (§2.1): wait until the message is
            // at least `f` old, giving the tree a chance to deliver first.
            let f_us = self.cfg.pull_delay.as_micros() as u64;
            if age >= f_us {
                to_request.push(id);
            } else {
                ctx.set_timer(
                    std::time::Duration::from_micros(f_us - age),
                    Timer::with_payload(timers::PULL_DELAY, id.origin.as_u32(), id.seq as u64),
                );
            }
        }
        for id in to_request {
            self.send_pull(ctx, id);
        }
    }

    /// Requests a missing message from the best-known candidate.
    fn send_pull(&mut self, ctx: &mut Ctx<'_, Self>, id: MsgId) {
        let Some(p) = self.pending_pulls.get_mut(&id) else {
            return;
        };
        if p.requested_from.is_some() {
            return;
        }
        // Rotate through candidates on retries; first candidate first.
        let Some(&target) = p.candidates.first() else {
            return;
        };
        p.requested_from = Some(target);
        self.counters.pulls_issued += 1;
        ctx.emit(GoCastEvent::PullRequested { id, to: target });
        ctx.send(target, GoCastMsg::PullRequest { ids: vec![id] });
        ctx.set_timer(
            self.cfg.pull_timeout,
            Timer::with_payload(timers::PULL_TIMEOUT, id.origin.as_u32(), id.seq as u64),
        );
    }

    /// The delayed-pull timer fired: request if still missing.
    pub(crate) fn on_pull_delay(&mut self, ctx: &mut Ctx<'_, Self>, id: MsgId) {
        if self.store.contains_key(&id) {
            self.pending_pulls.remove(&id);
            return;
        }
        self.send_pull(ctx, id);
    }

    /// A pull went unanswered: retry from another candidate.
    pub(crate) fn on_pull_timeout(&mut self, ctx: &mut Ctx<'_, Self>, id: MsgId) {
        if self.store.contains_key(&id) {
            return;
        }
        let Some(p) = self.pending_pulls.get_mut(&id) else {
            return;
        };
        let Some(failed) = p.requested_from.take() else {
            return;
        };
        self.counters.retransmits += 1;
        // Demote the unresponsive candidate to the back of the list.
        p.candidates.retain(|&c| c != failed);
        p.candidates.push(failed);
        if p.candidates.len() > 1 || p.candidates.first() != Some(&failed) {
            self.send_pull(ctx, id);
        } else {
            // Only the failed candidate is known; wait for another gossip
            // and try it again anyway (it may just be slow).
            self.send_pull(ctx, id);
        }
    }

    /// Answers a pull request with the stored payloads.
    pub(crate) fn on_pull_request(
        &mut self,
        ctx: &mut Ctx<'_, Self>,
        from: NodeId,
        ids: Vec<MsgId>,
    ) {
        let now = ctx.now();
        for id in ids {
            if let Some(stored) = self.store.get(&id) {
                let age_us = stored.age_at(now);
                let size = stored.size;
                let hop = stored.hop + 1;
                self.counters.pulls_served += 1;
                ctx.emit(GoCastEvent::PullServed { id, to: from, hop });
                ctx.send(
                    from,
                    GoCastMsg::Data {
                        id,
                        age_us,
                        hop,
                        size,
                    },
                );
            }
        }
    }

    // ------------------------------------------------------------------
    // Garbage collection.
    // ------------------------------------------------------------------

    /// Periodic sweep: reclaim messages older than the waiting period `b`
    /// and trim the recent-reception window.
    pub(crate) fn on_gc_tick(&mut self, ctx: &mut Ctx<'_, Self>) {
        Self::arm(ctx, std::time::Duration::from_secs(5), timers::GC);
        let now = ctx.now();
        let b = self.cfg.gc_wait;
        self.store
            .retain(|_, s| now.saturating_since(s.received_at) <= b);
        // The recent window only needs to cover the largest gossip gap.
        let window = self.cfg.idle_gossip_interval * 8;
        while let Some(&(_, t)) = self.recent.front() {
            if now.saturating_since(t) > window {
                self.recent.pop_front();
            } else {
                break;
            }
        }
        // Pending pulls for messages nobody can serve anymore are dropped.
        self.pending_pulls
            .retain(|_, p| now.saturating_since(p.heard_at) <= b);
    }
}
