//! The GoCast node state machine.
//!
//! One [`GoCastNode`] per participant. The state machine is split across
//! submodules by protocol role:
//!
//! - [`dissemination`]: tree push, neighbor gossip, pulls, GC (paper §2.1);
//! - [`neighbors`]: the overlay link table and link handshakes (§2.2);
//! - [`maintenance`]: random/nearby degree maintenance, C1–C4 (§2.2.2–2.2.3);
//! - [`tree`]: the embedded shortest-path tree and root failover (§2.3);
//! - [`join`]: bootstrap, landmark probing, and the join protocol (§2.2.1).

mod dissemination;
mod join;
mod maintenance;
mod neighbors;
mod tree;

use std::collections::{BTreeMap, VecDeque};
use std::time::Duration;

use gocast_membership::MemberView;
use gocast_net::LandmarkVector;
use gocast_sim::{Ctx, FxHashMap, NodeId, Protocol, SimTime, Stack, StackCaps, Timer};
use rand::Rng;

use crate::config::GoCastConfig;
use crate::types::{DegreeInfo, GoCastEvent, LinkKind, MsgId};
use crate::wire::GoCastMsg;

pub(crate) use neighbors::Neighbor;
pub(crate) use tree::TreeState;

/// Timer kinds (the `kind` field of [`Timer`]).
pub(crate) mod timers {
    /// Periodic gossip tick (period `t`).
    pub const GOSSIP: u32 = 1;
    /// Periodic overlay maintenance tick (period `r`).
    pub const MAINTENANCE: u32 = 2;
    /// Periodic heartbeat emission (root only acts).
    pub const HEARTBEAT: u32 = 3;
    /// Periodic message-store garbage collection.
    pub const GC: u32 = 4;
    /// Delayed pull for one message (`a` = origin, `b` = seq).
    pub const PULL_DELAY: u32 = 5;
    /// Pull retry for one message (`a` = origin, `b` = seq).
    pub const PULL_TIMEOUT: u32 = 6;
    /// Send the next landmark probe (`a` = landmark index).
    pub const LANDMARK: u32 = 7;
    /// Periodic root liveness check.
    pub const ROOT_CHECK: u32 = 8;
}

/// A multicast message held in the store.
#[derive(Debug, Clone)]
pub(crate) struct Stored {
    /// When this node received it.
    pub received_at: SimTime,
    /// Its age (µs since injection) at the moment of reception.
    pub age_at_receive_us: u64,
    /// Causal hop count from the origin at reception (0 at the origin).
    pub hop: u32,
    /// Neighbors this node heard the ID from (excluded from gossips to
    /// them, and never re-offered the payload).
    pub heard_from: Vec<NodeId>,
    /// Payload size (bytes).
    pub size: u32,
}

impl Stored {
    /// The message's age at simulated time `now`.
    pub fn age_at(&self, now: SimTime) -> u64 {
        self.age_at_receive_us + now.saturating_since(self.received_at).as_micros() as u64
    }
}

/// A message known (via gossip) but not yet received.
#[derive(Debug, Clone)]
pub(crate) struct Pending {
    /// When the first gossip mentioning it arrived.
    pub heard_at: SimTime,
    /// Neighbors known to hold the message.
    pub candidates: Vec<NodeId>,
    /// The neighbor currently asked for the payload, if any.
    pub requested_from: Option<NodeId>,
}

/// An in-flight outgoing link request.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PendingLink {
    pub peer: NodeId,
    pub sent_at: SimTime,
    /// RTT to `peer` measured by the preceding probe (nearby links).
    pub rtt_us: Option<u64>,
    /// Nearby neighbor to drop if the request is accepted (replacement).
    pub replace: Option<NodeId>,
}

/// The GoCast protocol state machine for one node.
///
/// Drive it with [`gocast_sim::Sim`]; interrogate it between runs through
/// the read-only accessors ([`GoCastNode::degrees`],
/// [`GoCastNode::tree_parent`], ...).
#[derive(Debug)]
pub struct GoCastNode {
    pub(crate) cfg: GoCastConfig,
    pub(crate) id: NodeId,
    /// This node's degree targets — `cfg.c_rand`/`cfg.c_near` scaled by
    /// the node's capacity factor (1 by default).
    pub(crate) c_rand: usize,
    pub(crate) c_near: usize,
    pub(crate) joined: bool,
    pub(crate) frozen: bool,
    /// Links seeded before start (symmetric; typed nearby).
    pub(crate) initial_links: Vec<NodeId>,
    /// Members seeded before start.
    pub(crate) initial_members: Vec<NodeId>,
    pub(crate) view: MemberView,
    pub(crate) coords: LandmarkVector,
    /// Cached landmark coordinates of peers, bounded by
    /// [`COORD_CACHE_CAP`].
    pub(crate) coord_cache: FxHashMap<NodeId, LandmarkVector>,
    pub(crate) neighbors: BTreeMap<NodeId, Neighbor>,
    pub(crate) pending_link: Option<PendingLink>,
    pub(crate) pending_rand_link: Option<PendingLink>,
    /// Next multicast sequence number.
    pub(crate) next_seq: u32,
    pub(crate) store: FxHashMap<MsgId, Stored>,
    /// Reception order, for windowed gossip construction.
    pub(crate) recent: VecDeque<(MsgId, SimTime)>,
    pub(crate) pending_pulls: BTreeMap<MsgId, Pending>,
    /// Round-robin cursor over `neighbors` for gossip.
    pub(crate) gossip_cursor: Option<NodeId>,
    /// Candidate probe order (estimated-latency ascending), then cursor.
    pub(crate) probe_queue: Vec<NodeId>,
    pub(crate) probe_cursor: usize,
    pub(crate) probe_queue_built: bool,
    pub(crate) tree: TreeState,
    /// Adaptive-period state (future-work features): consecutive empty
    /// gossip ticks, a generation counter to cancel slowed-down gossip
    /// timers, and consecutive quiet maintenance cycles.
    pub(crate) gossip_backoff: u32,
    pub(crate) gossip_gen: u32,
    pub(crate) maint_backoff: u32,
    // Counters exposed to analysis.
    pub(crate) delivered: u64,
    pub(crate) redundant: u64,
    pub(crate) link_changes: u64,
    /// Per-protocol activity counters (pushes, gossip, pulls, drops).
    pub(crate) counters: crate::types::ProtocolCounters,
}

/// Upper bound on cached peer coordinates per node. The cache serves RTT
/// estimation for the node's *own* candidates — view members (capacity
/// 128) and neighbors — so this cap is never approached in normal
/// operation; it exists to bound per-node memory at 10⁵–10⁶-node scale,
/// where gossip under heavy churn would otherwise accrete coordinates for
/// every peer ever mentioned.
pub(crate) const COORD_CACHE_CAP: usize = 4096;

impl GoCastNode {
    /// Caches `coords` for `id`, refreshing an existing entry but refusing
    /// to grow the cache past [`COORD_CACHE_CAP`].
    pub(crate) fn cache_coords(&mut self, id: NodeId, coords: LandmarkVector) {
        if self.coord_cache.len() >= COORD_CACHE_CAP && !self.coord_cache.contains_key(&id) {
            return;
        }
        self.coord_cache.insert(id, coords);
    }

    /// Creates a node that bootstraps from `members` (its initial partial
    /// view) with no pre-established links; it will join through the
    /// overlay maintenance protocols.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`GoCastConfig::validate`].
    pub fn new(id: NodeId, cfg: GoCastConfig, members: Vec<NodeId>) -> Self {
        Self::with_initial_links(id, cfg, Vec::new(), members)
    }

    /// Creates a node with pre-established overlay links (the paper's
    /// experiments start from a random graph where "each node initiates
    /// connections to `C_degree`/2 random nodes"). `links` must be
    /// symmetric across nodes; they are typed *nearby* and adapted from
    /// there.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`GoCastConfig::validate`].
    pub fn with_initial_links(
        id: NodeId,
        cfg: GoCastConfig,
        links: Vec<NodeId>,
        members: Vec<NodeId>,
    ) -> Self {
        Self::with_capacity(id, cfg, links, members, 1)
    }

    /// Creates a node whose degree targets are scaled by `capacity`: a
    /// capacity-2 node aims for `2 * C_rand` random and `2 * C_near`
    /// nearby neighbors, carrying proportionally more gossip and tree
    /// fan-out (the capacity extension sketched in §2.2).
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`GoCastConfig::validate`] or if
    /// `capacity == 0`.
    pub fn with_capacity(
        id: NodeId,
        cfg: GoCastConfig,
        links: Vec<NodeId>,
        members: Vec<NodeId>,
        capacity: usize,
    ) -> Self {
        cfg.validate().expect("invalid GoCast configuration");
        assert!(capacity > 0, "capacity must be positive");
        let view = MemberView::new(id, cfg.member_view_capacity);
        let tree = TreeState::new(cfg.root);
        let c_rand = cfg.c_rand * capacity;
        let c_near = cfg.c_near * capacity;
        GoCastNode {
            cfg,
            id,
            c_rand,
            c_near,
            joined: false,
            frozen: false,
            initial_links: links,
            initial_members: members,
            view,
            coords: LandmarkVector::unknown(),
            coord_cache: FxHashMap::default(),
            neighbors: BTreeMap::new(),
            pending_link: None,
            pending_rand_link: None,
            next_seq: 0,
            store: FxHashMap::default(),
            recent: VecDeque::new(),
            pending_pulls: BTreeMap::new(),
            gossip_cursor: None,
            probe_queue: Vec::new(),
            probe_cursor: 0,
            probe_queue_built: false,
            tree,
            gossip_backoff: 0,
            gossip_gen: 0,
            maint_backoff: 0,
            delivered: 0,
            redundant: 0,
            link_changes: 0,
            counters: crate::types::ProtocolCounters::default(),
        }
    }

    // ------------------------------------------------------------------
    // Read-only accessors (analysis / harness).
    // ------------------------------------------------------------------

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The configuration.
    pub fn config(&self) -> &GoCastConfig {
        &self.cfg
    }

    /// Current random/nearby degrees plus this node's targets.
    pub fn degrees(&self) -> DegreeInfo {
        let mut d = DegreeInfo {
            t_rand: self.c_rand as u16,
            t_near: self.c_near as u16,
            ..DegreeInfo::default()
        };
        for n in self.neighbors.values() {
            match n.kind {
                LinkKind::Random => d.d_rand += 1,
                LinkKind::Nearby => d.d_near += 1,
            }
        }
        d
    }

    /// This node's (possibly capacity-scaled) degree targets
    /// `(C_rand, C_near)`.
    pub fn degree_targets(&self) -> (usize, usize) {
        (self.c_rand, self.c_near)
    }

    /// Iterates over `(peer, kind, measured RTT)` for every overlay link.
    pub fn overlay_links(&self) -> impl Iterator<Item = (NodeId, LinkKind, Option<Duration>)> + '_ {
        self.neighbors
            .iter()
            .map(|(&p, n)| (p, n.kind, n.rtt_us.map(Duration::from_micros)))
    }

    /// Whether `peer` is an overlay neighbor.
    pub fn is_neighbor(&self, peer: NodeId) -> bool {
        self.neighbors.contains_key(&peer)
    }

    /// The current tree parent (`None`: root or detached).
    pub fn tree_parent(&self) -> Option<NodeId> {
        self.tree.parent
    }

    /// Current tree children.
    pub fn tree_children(&self) -> Vec<NodeId> {
        self.neighbors
            .iter()
            .filter(|(_, n)| n.is_child)
            .map(|(&p, _)| p)
            .collect()
    }

    /// Tree neighbors: parent plus children.
    pub fn tree_neighbors(&self) -> Vec<NodeId> {
        let mut v = self.tree_children();
        if let Some(p) = self.tree.parent {
            v.push(p);
        }
        v
    }

    /// The heartbeat wave sequence number this node last joined.
    pub fn tree_seq(&self) -> u32 {
        self.tree.seq
    }

    /// This node's latency distance to the root, if attached.
    pub fn tree_distance(&self) -> Option<Duration> {
        (self.tree.dist_us != u64::MAX).then(|| Duration::from_micros(self.tree.dist_us))
    }

    /// Whether this node currently believes it is the tree root.
    pub fn is_root(&self) -> bool {
        self.tree.root == self.id
    }

    /// The root this node currently follows.
    pub fn current_root(&self) -> NodeId {
        self.tree.root
    }

    /// Whether this node has received (or injected) `id`.
    pub fn has_message(&self, id: MsgId) -> bool {
        self.store.contains_key(&id)
    }

    /// Messages delivered to this node (first receptions, injections
    /// excluded).
    pub fn delivered_count(&self) -> u64 {
        self.delivered
    }

    /// Redundant full-payload receptions.
    pub fn redundant_count(&self) -> u64 {
        self.redundant
    }

    /// Total link additions + removals this node performed.
    pub fn link_change_count(&self) -> u64 {
        self.link_changes
    }

    /// Per-node protocol activity counters (pushes sent/received, gossip
    /// rounds, pulls issued/served, retransmits, drops by reason).
    pub fn counters(&self) -> &crate::types::ProtocolCounters {
        &self.counters
    }

    /// The membership view.
    pub fn member_view(&self) -> &MemberView {
        &self.view
    }

    /// This node's landmark coordinates.
    pub fn coords(&self) -> &LandmarkVector {
        &self.coords
    }

    /// Whether maintenance has been frozen by
    /// [`GoCastCommand::FreezeMaintenance`].
    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    /// Whether this node has completed bootstrapping (always true for
    /// nodes started with the full cohort; joining nodes flip it when the
    /// join reply arrives).
    pub fn is_joined(&self) -> bool {
        self.joined
    }

    // ------------------------------------------------------------------
    // Shared internals.
    // ------------------------------------------------------------------

    /// Current time in µs (for wire timestamps).
    pub(crate) fn now_us(ctx: &Ctx<'_, Self>) -> u64 {
        ctx.now().as_nanos() / 1_000
    }

    /// Schedules a periodic timer with a small deterministic phase already
    /// applied (the caller passes the delay).
    pub(crate) fn arm(ctx: &mut Ctx<'_, Self>, delay: Duration, kind: u32) {
        ctx.set_timer(delay, Timer::of_kind(kind));
    }
}

/// Out-of-band commands injected by the harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GoCastCommand {
    /// Inject a new multicast message from this node.
    Multicast,
    /// Join the overlay through `contact` (runtime churn).
    Join {
        /// A node already in the overlay.
        contact: NodeId,
    },
    /// Gracefully leave: drop all links and go quiet.
    Leave,
    /// Stop all repair activity (overlay maintenance, tree repair, failure
    /// detection). Used by the paper's failure experiments, which measure
    /// dissemination over the *unrepaired* overlay and tree.
    FreezeMaintenance,
}

impl Protocol for GoCastNode {
    type Msg = GoCastMsg;
    type Command = GoCastCommand;
    type Event = GoCastEvent;

    fn on_start(&mut self, ctx: &mut Ctx<'_, Self>) {
        self.start(ctx);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Self>, from: NodeId, msg: GoCastMsg) {
        if let Some(n) = self.neighbors.get_mut(&from) {
            n.last_seen = ctx.now();
        }
        match msg {
            GoCastMsg::Data {
                id,
                age_us,
                hop,
                size,
            } => self.on_data(ctx, from, id, age_us, hop, size),
            GoCastMsg::Gossip {
                ids,
                members,
                coords,
                degrees,
            } => self.on_gossip(ctx, from, ids, members, coords, degrees),
            GoCastMsg::PullRequest { ids } => self.on_pull_request(ctx, from, ids),
            GoCastMsg::JoinRequest => self.on_join_request(ctx, from),
            GoCastMsg::JoinReply { members } => self.on_join_reply(ctx, from, members),
            GoCastMsg::Ping { kind, sent_at_us } => self.on_ping(ctx, from, kind, sent_at_us),
            GoCastMsg::Pong {
                kind,
                sent_at_us,
                degrees,
                max_nearby_rtt_us,
                coords,
            } => self.on_pong(
                ctx,
                from,
                kind,
                sent_at_us,
                degrees,
                max_nearby_rtt_us,
                coords,
            ),
            GoCastMsg::LinkRequest {
                kind,
                rtt_us,
                degrees,
            } => self.on_link_request(ctx, from, kind, rtt_us, degrees),
            GoCastMsg::LinkAccept { kind, degrees } => {
                self.on_link_accept(ctx, from, kind, degrees)
            }
            GoCastMsg::LinkReject { kind } => self.on_link_reject(ctx, from, kind),
            GoCastMsg::LinkDrop { kind, reason } => self.on_link_drop(ctx, from, kind, reason),
            GoCastMsg::ConnectTo { target } => self.on_connect_to(ctx, from, target),
            GoCastMsg::TreeAd {
                root,
                epoch,
                seq,
                dist_us,
            } => self.on_tree_ad(ctx, from, root, epoch, seq, dist_us),
            GoCastMsg::ParentSelect { selected } => self.on_parent_select(ctx, from, selected),
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Self>, timer: Timer) {
        match timer.kind {
            timers::GOSSIP => self.on_gossip_tick(ctx, timer.a),
            timers::MAINTENANCE => self.on_maintenance_tick(ctx),
            timers::HEARTBEAT => self.on_heartbeat_tick(ctx),
            timers::GC => self.on_gc_tick(ctx),
            timers::PULL_DELAY => {
                let id = MsgId::new(NodeId::new(timer.a), timer.b as u32);
                self.on_pull_delay(ctx, id);
            }
            timers::PULL_TIMEOUT => {
                let id = MsgId::new(NodeId::new(timer.a), timer.b as u32);
                self.on_pull_timeout(ctx, id);
            }
            timers::LANDMARK => self.on_landmark_timer(ctx, timer.a as usize),
            timers::ROOT_CHECK => self.on_root_check(ctx),
            _ => debug_assert!(false, "unknown timer kind {}", timer.kind),
        }
    }

    fn on_command(&mut self, ctx: &mut Ctx<'_, Self>, cmd: GoCastCommand) {
        match cmd {
            GoCastCommand::Multicast => self.inject_multicast(ctx),
            GoCastCommand::Join { contact } => self.start_join(ctx, contact),
            GoCastCommand::Leave => self.leave(ctx),
            GoCastCommand::FreezeMaintenance => self.frozen = true,
        }
    }
}

impl Stack for GoCastNode {
    const NAME: &'static str = "gocast";

    /// GoCast promises every optional invariant: bounded degrees (the
    /// accept rules), pull-only-when-missing, and an explicit tree.
    fn capabilities() -> StackCaps {
        StackCaps::all()
    }

    fn joined(&self) -> bool {
        self.is_joined()
    }

    fn attached(&self) -> bool {
        self.is_joined() && (self.is_root() || self.tree_parent().is_some())
    }

    fn overlay_degree(&self) -> usize {
        self.neighbors.len()
    }

    fn member_count(&self) -> usize {
        self.view.len()
    }

    fn delivered_count(&self) -> u64 {
        self.delivered
    }

    fn holds(&self, origin: NodeId, seq: u32) -> bool {
        self.has_message(MsgId::new(origin, seq))
    }

    fn cmd_multicast() -> GoCastCommand {
        GoCastCommand::Multicast
    }

    fn cmd_join(contact: NodeId) -> GoCastCommand {
        GoCastCommand::Join { contact }
    }

    fn cmd_leave() -> GoCastCommand {
        GoCastCommand::Leave
    }

    fn cmd_freeze() -> Option<GoCastCommand> {
        Some(GoCastCommand::FreezeMaintenance)
    }
}

impl GoCastNode {
    /// Startup: seed the view and links, arm the periodic timers with
    /// deterministic per-node phase jitter (so 1,024 nodes don't all tick
    /// on the same instant), and begin landmark probing.
    fn start(&mut self, ctx: &mut Ctx<'_, Self>) {
        self.joined = true;
        let members = std::mem::take(&mut self.initial_members);
        for m in members {
            self.view.insert(m, ctx.rng());
        }
        let links = std::mem::take(&mut self.initial_links);
        for peer in links {
            self.install_initial_link(ctx, peer);
        }

        let jitter = |ctx: &mut Ctx<'_, Self>, max: Duration| {
            let us = ctx.rng().gen_range(0..max.as_micros().max(1) as u64);
            Duration::from_micros(us)
        };

        let j = jitter(ctx, self.cfg.gossip_period);
        ctx.set_timer(j, Timer::with_payload(timers::GOSSIP, self.gossip_gen, 0));
        let j = jitter(ctx, self.cfg.maintenance_period);
        Self::arm(ctx, j, timers::MAINTENANCE);
        let j = jitter(ctx, Duration::from_secs(5));
        Self::arm(ctx, Duration::from_secs(5) + j, timers::GC);

        if self.cfg.tree_enabled {
            self.tree.last_heartbeat = ctx.now();
            if self.is_root() {
                self.tree.dist_us = 0;
                ctx.emit(GoCastEvent::BecameRoot { epoch: 0 });
                // First heartbeat soon after boot so the tree forms quickly.
                Self::arm(ctx, Duration::from_millis(200), timers::HEARTBEAT);
            } else {
                Self::arm(ctx, self.cfg.heartbeat_period, timers::HEARTBEAT);
            }
            let j = jitter(ctx, Duration::from_secs(2));
            Self::arm(ctx, self.cfg.heartbeat_period + j, timers::ROOT_CHECK);
        }

        self.start_landmark_probing(ctx);
    }

    /// Graceful leave: tell every neighbor, then stop participating.
    fn leave(&mut self, ctx: &mut Ctx<'_, Self>) {
        let peers: Vec<NodeId> = self.neighbors.keys().copied().collect();
        for p in peers {
            self.drop_link(ctx, p, crate::types::DropReason::Surplus, true);
        }
        self.joined = false;
        self.frozen = true;
    }
}
