//! Protocol configuration.
//!
//! Defaults follow Section 3 of the paper: gossip period `t` = 0.1 s,
//! maintenance period `r` = 0.1 s, target degrees `C_rand` = 1 and
//! `C_near` = 5, GC wait `b` = 2 min, root heartbeat every 15 s.

use std::time::Duration;

use gocast_sim::NodeId;
use serde::{Deserialize, Serialize};

/// Configuration for a GoCast node.
///
/// Build one with [`GoCastConfig::default`] and adjust fields through the
/// builder-style setters, or use the presets [`GoCastConfig::proximity_overlay`]
/// and [`GoCastConfig::random_overlay`] that reproduce the paper's
/// simplified comparison protocols.
///
/// ```
/// use gocast::GoCastConfig;
/// use std::time::Duration;
///
/// let cfg = GoCastConfig::default()
///     .with_pull_delay(Duration::from_millis(300))
///     .with_payload_size(512);
/// cfg.validate().unwrap();
/// assert_eq!(cfg.c_rand + cfg.c_near, 6);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GoCastConfig {
    /// Target number of random neighbors (`C_rand`, paper default 1).
    pub c_rand: usize,
    /// Target number of nearby neighbors (`C_near`, paper default 5).
    pub c_near: usize,
    /// Acceptance slack: a node accepts a new link while its degree is
    /// below `target + degree_slack` (paper: 5).
    pub degree_slack: usize,
    /// Gossip period `t` (paper: 0.1 s).
    pub gossip_period: Duration,
    /// Overlay maintenance period `r` (paper: 0.1 s).
    pub maintenance_period: Duration,
    /// How long a node keeps a message after last gossiping its ID
    /// (`b`, paper: 2 min).
    pub gc_wait: Duration,
    /// Delay before pulling a message first heard via gossip (`f`).
    /// `Duration::ZERO` disables the optimization (paper evaluates both 0
    /// and 0.3 s).
    pub pull_delay: Duration,
    /// Retry interval when a pull request goes unanswered.
    pub pull_timeout: Duration,
    /// Root heartbeat / tree refresh period (paper: 15 s).
    pub heartbeat_period: Duration,
    /// Heartbeats missed before suspecting the root.
    pub heartbeat_timeout_factor: u32,
    /// Whether to build and use the embedded tree. Disabled for the
    /// paper's "proximity overlay" / "random overlay" comparison variants.
    pub tree_enabled: bool,
    /// Idle neighbor timeout: a neighbor silent this long is considered
    /// failed and its link dropped (only while maintenance is active).
    pub neighbor_timeout: Duration,
    /// Capacity of the partial membership view.
    pub member_view_capacity: usize,
    /// Random member addresses piggybacked per gossip.
    pub members_per_gossip: usize,
    /// Maximum interval between gossips to a neighbor even when there are
    /// no message IDs to report (keeps membership and liveness flowing).
    pub idle_gossip_interval: Duration,
    /// Number of landmark nodes used for latency estimation (the first
    /// `landmark_count` node ids act as landmarks).
    pub landmark_count: usize,
    /// Wire size of a multicast payload in bytes (accounting only).
    pub payload_size: u32,
    /// The initial tree root ("the first node in the overlay").
    pub root: NodeId,
    /// Ablation: enforce condition C4 (`RTT(X,Q) <= RTT(X,U)/2`) when
    /// replacing nearby neighbors (paper: on).
    pub c4_enabled: bool,
    /// Ablation: C1 lower bound offset. A neighbor `U` may be replaced or
    /// dropped only if `D_near(U) >= C_near - c1_offset`. The paper uses 1
    /// and reports that 0 dramatically worsens link latency.
    pub c1_offset: usize,
    /// Ablation: drop surplus nearby links already at `C_near + 1` instead
    /// of the paper's `C_near + 2` (paper reports ~1/3 more link changes).
    pub aggressive_drop: bool,
    /// Future-work feature (§2.1): adapt the gossip period to the message
    /// rate — back off exponentially while there is nothing to summarize
    /// (up to [`GoCastConfig::idle_gossip_interval`]) and snap back to
    /// `gossip_period` the moment a message arrives.
    pub adaptive_gossip: bool,
    /// Future-work feature (§2.2.3): adapt the maintenance period to the
    /// stability of the overlay — back off exponentially while no link
    /// changes and no degree deficit are observed, up to
    /// `max_maintenance_period`.
    pub adaptive_maintenance: bool,
    /// Upper bound for the adaptive maintenance period.
    pub max_maintenance_period: Duration,
}

impl Default for GoCastConfig {
    fn default() -> Self {
        GoCastConfig {
            c_rand: 1,
            c_near: 5,
            degree_slack: 5,
            gossip_period: Duration::from_millis(100),
            maintenance_period: Duration::from_millis(100),
            gc_wait: Duration::from_secs(120),
            pull_delay: Duration::ZERO,
            pull_timeout: Duration::from_secs(2),
            heartbeat_period: Duration::from_secs(15),
            heartbeat_timeout_factor: 3,
            tree_enabled: true,
            neighbor_timeout: Duration::from_secs(10),
            member_view_capacity: 128,
            members_per_gossip: 3,
            idle_gossip_interval: Duration::from_secs(1),
            landmark_count: 8,
            payload_size: 1024,
            root: NodeId::new(0),
            c4_enabled: true,
            c1_offset: 1,
            aggressive_drop: false,
            adaptive_gossip: false,
            adaptive_maintenance: false,
            max_maintenance_period: Duration::from_secs(2),
        }
    }
}

impl GoCastConfig {
    /// The paper's "proximity overlay" comparison protocol: the GoCast
    /// overlay (1 random + 5 nearby) but dissemination through gossip only,
    /// no tree.
    pub fn proximity_overlay() -> Self {
        GoCastConfig {
            tree_enabled: false,
            ..Default::default()
        }
    }

    /// The paper's "random overlay" comparison protocol: 6 random
    /// neighbors, gossip-only dissemination, no proximity adaptation,
    /// no tree.
    pub fn random_overlay() -> Self {
        GoCastConfig {
            c_rand: 6,
            c_near: 0,
            tree_enabled: false,
            ..Default::default()
        }
    }

    /// Target total node degree (`C_degree = C_rand + C_near`).
    pub fn c_degree(&self) -> usize {
        self.c_rand + self.c_near
    }

    /// Sets the pull delay `f` (builder style).
    pub fn with_pull_delay(mut self, f: Duration) -> Self {
        self.pull_delay = f;
        self
    }

    /// Sets the target degrees (builder style).
    pub fn with_degrees(mut self, c_rand: usize, c_near: usize) -> Self {
        self.c_rand = c_rand;
        self.c_near = c_near;
        self
    }

    /// Sets the payload size (builder style).
    pub fn with_payload_size(mut self, bytes: u32) -> Self {
        self.payload_size = bytes;
        self
    }

    /// Sets the tree root (builder style).
    pub fn with_root(mut self, root: NodeId) -> Self {
        self.root = root;
        self
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when a field combination cannot work (zero
    /// total degree, zero periods, or a zero view capacity).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.c_degree() == 0 {
            return Err(ConfigError::ZeroDegree);
        }
        if self.gossip_period.is_zero() || self.maintenance_period.is_zero() {
            return Err(ConfigError::ZeroPeriod);
        }
        if self.member_view_capacity == 0 {
            return Err(ConfigError::ZeroViewCapacity);
        }
        if self.heartbeat_timeout_factor == 0 {
            return Err(ConfigError::ZeroHeartbeatFactor);
        }
        Ok(())
    }
}

/// An invalid [`GoCastConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// `c_rand + c_near == 0`: the node could never have a neighbor.
    ZeroDegree,
    /// A protocol period is zero; timers would spin forever.
    ZeroPeriod,
    /// The membership view cannot hold any entry.
    ZeroViewCapacity,
    /// The root would be suspected immediately.
    ZeroHeartbeatFactor,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroDegree => write!(f, "target node degree is zero"),
            ConfigError::ZeroPeriod => write!(f, "gossip or maintenance period is zero"),
            ConfigError::ZeroViewCapacity => write!(f, "member view capacity is zero"),
            ConfigError::ZeroHeartbeatFactor => {
                write!(f, "heartbeat timeout factor is zero")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = GoCastConfig::default();
        assert_eq!(c.c_rand, 1);
        assert_eq!(c.c_near, 5);
        assert_eq!(c.c_degree(), 6);
        assert_eq!(c.gossip_period, Duration::from_millis(100));
        assert_eq!(c.maintenance_period, Duration::from_millis(100));
        assert_eq!(c.gc_wait, Duration::from_secs(120));
        assert_eq!(c.heartbeat_period, Duration::from_secs(15));
        assert!(c.tree_enabled);
        assert!(c.c4_enabled);
        assert_eq!(c.c1_offset, 1);
        assert!(!c.aggressive_drop);
        c.validate().unwrap();
    }

    #[test]
    fn presets_match_paper_variants() {
        let p = GoCastConfig::proximity_overlay();
        assert!(!p.tree_enabled);
        assert_eq!((p.c_rand, p.c_near), (1, 5));
        p.validate().unwrap();

        let r = GoCastConfig::random_overlay();
        assert!(!r.tree_enabled);
        assert_eq!((r.c_rand, r.c_near), (6, 0));
        r.validate().unwrap();
    }

    #[test]
    fn validation_catches_bad_configs() {
        let c = GoCastConfig::default().with_degrees(0, 0);
        assert_eq!(c.validate(), Err(ConfigError::ZeroDegree));

        let c = GoCastConfig {
            gossip_period: Duration::ZERO,
            ..Default::default()
        };
        assert_eq!(c.validate(), Err(ConfigError::ZeroPeriod));

        let c = GoCastConfig {
            member_view_capacity: 0,
            ..Default::default()
        };
        assert_eq!(c.validate(), Err(ConfigError::ZeroViewCapacity));

        let c = GoCastConfig {
            heartbeat_timeout_factor: 0,
            ..Default::default()
        };
        assert_eq!(c.validate(), Err(ConfigError::ZeroHeartbeatFactor));
    }

    #[test]
    fn error_messages_are_lowercase_prose() {
        assert_eq!(ConfigError::ZeroDegree.to_string(), "target node degree is zero");
    }

    #[test]
    fn builder_setters_chain() {
        let c = GoCastConfig::default()
            .with_degrees(2, 4)
            .with_payload_size(9)
            .with_root(NodeId::new(5))
            .with_pull_delay(Duration::from_millis(1));
        assert_eq!(c.c_rand, 2);
        assert_eq!(c.c_near, 4);
        assert_eq!(c.payload_size, 9);
        assert_eq!(c.root, NodeId::new(5));
        assert_eq!(c.pull_delay, Duration::from_millis(1));
    }
}
