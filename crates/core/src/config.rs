//! Protocol configuration.
//!
//! Defaults follow Section 3 of the paper: gossip period `t` = 0.1 s,
//! maintenance period `r` = 0.1 s, target degrees `C_rand` = 1 and
//! `C_near` = 5, GC wait `b` = 2 min, root heartbeat every 15 s.

use std::time::Duration;

use gocast_sim::NodeId;
use serde::{Deserialize, Serialize};

/// Configuration for a GoCast node.
///
/// Build one with [`GoCastConfig::builder`], which validates the field
/// combination before handing out a config, or start from
/// [`GoCastConfig::default`] and adjust fields through the builder-style
/// setters. The presets [`GoCastConfig::proximity_overlay`] and
/// [`GoCastConfig::random_overlay`] reproduce the paper's simplified
/// comparison protocols.
///
/// ```
/// use gocast::GoCastConfig;
/// use std::time::Duration;
///
/// let cfg = GoCastConfig::builder()
///     .pull_delay(Duration::from_millis(300))
///     .payload_size(512)
///     .build()
///     .unwrap();
/// assert_eq!(cfg.c_rand + cfg.c_near, 6);
///
/// // Invalid combinations are rejected at build time:
/// assert!(GoCastConfig::builder().degrees(0, 0).build().is_err());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GoCastConfig {
    /// Target number of random neighbors (`C_rand`, paper default 1).
    pub c_rand: usize,
    /// Target number of nearby neighbors (`C_near`, paper default 5).
    pub c_near: usize,
    /// Acceptance slack: a node accepts a new link while its degree is
    /// below `target + degree_slack` (paper: 5).
    pub degree_slack: usize,
    /// Gossip period `t` (paper: 0.1 s).
    pub gossip_period: Duration,
    /// Overlay maintenance period `r` (paper: 0.1 s).
    pub maintenance_period: Duration,
    /// How long a node keeps a message after last gossiping its ID
    /// (`b`, paper: 2 min).
    pub gc_wait: Duration,
    /// Delay before pulling a message first heard via gossip (`f`).
    /// `Duration::ZERO` disables the optimization (paper evaluates both 0
    /// and 0.3 s).
    pub pull_delay: Duration,
    /// Retry interval when a pull request goes unanswered.
    pub pull_timeout: Duration,
    /// Root heartbeat / tree refresh period (paper: 15 s).
    pub heartbeat_period: Duration,
    /// Heartbeats missed before suspecting the root.
    pub heartbeat_timeout_factor: u32,
    /// Whether to build and use the embedded tree. Disabled for the
    /// paper's "proximity overlay" / "random overlay" comparison variants.
    pub tree_enabled: bool,
    /// Idle neighbor timeout: a neighbor silent this long is considered
    /// failed and its link dropped (only while maintenance is active).
    pub neighbor_timeout: Duration,
    /// Capacity of the partial membership view.
    pub member_view_capacity: usize,
    /// Random member addresses piggybacked per gossip.
    pub members_per_gossip: usize,
    /// Maximum interval between gossips to a neighbor even when there are
    /// no message IDs to report (keeps membership and liveness flowing).
    pub idle_gossip_interval: Duration,
    /// Number of landmark nodes used for latency estimation (the first
    /// `landmark_count` node ids act as landmarks). Effectively capped at
    /// `gocast_net::MAX_LANDMARKS`: coordinates are stored inline, and
    /// probing clamps to that many slots.
    pub landmark_count: usize,
    /// Wire size of a multicast payload in bytes (accounting only).
    pub payload_size: u32,
    /// The initial tree root ("the first node in the overlay").
    pub root: NodeId,
    /// Ablation: enforce condition C4 (`RTT(X,Q) <= RTT(X,U)/2`) when
    /// replacing nearby neighbors (paper: on).
    pub c4_enabled: bool,
    /// Ablation: C1 lower bound offset. A neighbor `U` may be replaced or
    /// dropped only if `D_near(U) >= C_near - c1_offset`. The paper uses 1
    /// and reports that 0 dramatically worsens link latency.
    pub c1_offset: usize,
    /// Ablation: drop surplus nearby links already at `C_near + 1` instead
    /// of the paper's `C_near + 2` (paper reports ~1/3 more link changes).
    pub aggressive_drop: bool,
    /// Future-work feature (§2.1): adapt the gossip period to the message
    /// rate — back off exponentially while there is nothing to summarize
    /// (up to [`GoCastConfig::idle_gossip_interval`]) and snap back to
    /// `gossip_period` the moment a message arrives.
    pub adaptive_gossip: bool,
    /// Future-work feature (§2.2.3): adapt the maintenance period to the
    /// stability of the overlay — back off exponentially while no link
    /// changes and no degree deficit are observed, up to
    /// `max_maintenance_period`.
    pub adaptive_maintenance: bool,
    /// Upper bound for the adaptive maintenance period.
    pub max_maintenance_period: Duration,
}

impl Default for GoCastConfig {
    fn default() -> Self {
        GoCastConfig {
            c_rand: 1,
            c_near: 5,
            degree_slack: 5,
            gossip_period: Duration::from_millis(100),
            maintenance_period: Duration::from_millis(100),
            gc_wait: Duration::from_secs(120),
            pull_delay: Duration::ZERO,
            pull_timeout: Duration::from_secs(2),
            heartbeat_period: Duration::from_secs(15),
            heartbeat_timeout_factor: 3,
            tree_enabled: true,
            neighbor_timeout: Duration::from_secs(10),
            member_view_capacity: 128,
            members_per_gossip: 3,
            idle_gossip_interval: Duration::from_secs(1),
            landmark_count: 8,
            payload_size: 1024,
            root: NodeId::new(0),
            c4_enabled: true,
            c1_offset: 1,
            aggressive_drop: false,
            adaptive_gossip: false,
            adaptive_maintenance: false,
            max_maintenance_period: Duration::from_secs(2),
        }
    }
}

impl GoCastConfig {
    /// Starts a validating builder from the paper's defaults.
    ///
    /// Unlike mutating fields directly, [`GoCastConfigBuilder::build`]
    /// refuses combinations the protocol cannot run with (zero degree,
    /// zero periods, empty membership view).
    pub fn builder() -> GoCastConfigBuilder {
        GoCastConfigBuilder {
            cfg: GoCastConfig::default(),
        }
    }

    /// The paper's "proximity overlay" comparison protocol: the GoCast
    /// overlay (1 random + 5 nearby) but dissemination through gossip only,
    /// no tree.
    pub fn proximity_overlay() -> Self {
        GoCastConfig::builder()
            .tree_enabled(false)
            .build()
            .expect("preset is valid")
    }

    /// The paper's "random overlay" comparison protocol: 6 random
    /// neighbors, gossip-only dissemination, no proximity adaptation,
    /// no tree.
    pub fn random_overlay() -> Self {
        GoCastConfig::builder()
            .degrees(6, 0)
            .tree_enabled(false)
            .build()
            .expect("preset is valid")
    }

    /// Target total node degree (`C_degree = C_rand + C_near`).
    pub fn c_degree(&self) -> usize {
        self.c_rand + self.c_near
    }

    /// Sets the pull delay `f` (builder style).
    pub fn with_pull_delay(mut self, f: Duration) -> Self {
        self.pull_delay = f;
        self
    }

    /// Sets the target degrees (builder style).
    pub fn with_degrees(mut self, c_rand: usize, c_near: usize) -> Self {
        self.c_rand = c_rand;
        self.c_near = c_near;
        self
    }

    /// Sets the payload size (builder style).
    pub fn with_payload_size(mut self, bytes: u32) -> Self {
        self.payload_size = bytes;
        self
    }

    /// Sets the tree root (builder style).
    pub fn with_root(mut self, root: NodeId) -> Self {
        self.root = root;
        self
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when a field combination cannot work (zero
    /// total degree, zero periods, or a zero view capacity).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.c_degree() == 0 {
            return Err(ConfigError::ZeroDegree);
        }
        if self.gossip_period.is_zero() || self.maintenance_period.is_zero() {
            return Err(ConfigError::ZeroPeriod);
        }
        if self.member_view_capacity == 0 {
            return Err(ConfigError::ZeroViewCapacity);
        }
        if self.heartbeat_timeout_factor == 0 {
            return Err(ConfigError::ZeroHeartbeatFactor);
        }
        Ok(())
    }
}

/// Validating builder for [`GoCastConfig`], started with
/// [`GoCastConfig::builder`].
///
/// Every setter takes and returns the builder by value so calls chain;
/// [`GoCastConfigBuilder::build`] runs [`GoCastConfig::validate`] and
/// only hands out configs the protocol can actually run with.
///
/// ```
/// use gocast::{ConfigError, GoCastConfig};
/// use std::time::Duration;
///
/// let cfg = GoCastConfig::builder()
///     .gossip_period(Duration::from_millis(50))
///     .c_rand(2)
///     .c_near(4)
///     .build()
///     .unwrap();
/// assert_eq!(cfg.c_degree(), 6);
///
/// let err = GoCastConfig::builder()
///     .gossip_period(Duration::ZERO)
///     .build()
///     .unwrap_err();
/// assert_eq!(err, ConfigError::ZeroPeriod);
/// ```
#[derive(Debug, Clone)]
pub struct GoCastConfigBuilder {
    cfg: GoCastConfig,
}

macro_rules! builder_setters {
    ($($(#[$doc:meta])* $name:ident: $ty:ty),+ $(,)?) => {
        $(
            $(#[$doc])*
            pub fn $name(mut self, value: $ty) -> Self {
                self.cfg.$name = value;
                self
            }
        )+
    };
}

impl GoCastConfigBuilder {
    builder_setters! {
        /// Target number of random neighbors (`C_rand`).
        c_rand: usize,
        /// Target number of nearby neighbors (`C_near`).
        c_near: usize,
        /// Acceptance slack above the target degree.
        degree_slack: usize,
        /// Gossip period `t`.
        gossip_period: Duration,
        /// Overlay maintenance period `r`.
        maintenance_period: Duration,
        /// Message retention after the last gossip mentioning it (`b`).
        gc_wait: Duration,
        /// Delay before pulling a message first heard via gossip (`f`).
        pull_delay: Duration,
        /// Retry interval for unanswered pulls.
        pull_timeout: Duration,
        /// Root heartbeat / tree refresh period.
        heartbeat_period: Duration,
        /// Heartbeats missed before suspecting the root.
        heartbeat_timeout_factor: u32,
        /// Whether to build and use the embedded tree.
        tree_enabled: bool,
        /// Idle neighbor timeout.
        neighbor_timeout: Duration,
        /// Capacity of the partial membership view.
        member_view_capacity: usize,
        /// Random member addresses piggybacked per gossip.
        members_per_gossip: usize,
        /// Maximum interval between gossips to an idle neighbor.
        idle_gossip_interval: Duration,
        /// Number of landmark nodes for latency estimation.
        landmark_count: usize,
        /// Wire size of a multicast payload in bytes.
        payload_size: u32,
        /// The initial tree root.
        root: NodeId,
        /// Ablation: enforce condition C4 on nearby replacements.
        c4_enabled: bool,
        /// Ablation: C1 lower bound offset.
        c1_offset: usize,
        /// Ablation: drop surplus nearby links at `C_near + 1`.
        aggressive_drop: bool,
        /// Future work: adapt the gossip period to the message rate.
        adaptive_gossip: bool,
        /// Future work: adapt the maintenance period to overlay stability.
        adaptive_maintenance: bool,
        /// Upper bound for the adaptive maintenance period.
        max_maintenance_period: Duration,
    }

    /// Sets both target degrees at once (`C_rand`, `C_near`).
    pub fn degrees(mut self, c_rand: usize, c_near: usize) -> Self {
        self.cfg.c_rand = c_rand;
        self.cfg.c_near = c_near;
        self
    }

    /// Validates the accumulated configuration and returns it.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] [`GoCastConfig::validate`]
    /// reports.
    pub fn build(self) -> Result<GoCastConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

/// An invalid [`GoCastConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// `c_rand + c_near == 0`: the node could never have a neighbor.
    ZeroDegree,
    /// A protocol period is zero; timers would spin forever.
    ZeroPeriod,
    /// The membership view cannot hold any entry.
    ZeroViewCapacity,
    /// The root would be suspected immediately.
    ZeroHeartbeatFactor,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroDegree => write!(f, "target node degree is zero"),
            ConfigError::ZeroPeriod => write!(f, "gossip or maintenance period is zero"),
            ConfigError::ZeroViewCapacity => write!(f, "member view capacity is zero"),
            ConfigError::ZeroHeartbeatFactor => {
                write!(f, "heartbeat timeout factor is zero")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = GoCastConfig::default();
        assert_eq!(c.c_rand, 1);
        assert_eq!(c.c_near, 5);
        assert_eq!(c.c_degree(), 6);
        assert_eq!(c.gossip_period, Duration::from_millis(100));
        assert_eq!(c.maintenance_period, Duration::from_millis(100));
        assert_eq!(c.gc_wait, Duration::from_secs(120));
        assert_eq!(c.heartbeat_period, Duration::from_secs(15));
        assert!(c.tree_enabled);
        assert!(c.c4_enabled);
        assert_eq!(c.c1_offset, 1);
        assert!(!c.aggressive_drop);
        c.validate().unwrap();
    }

    #[test]
    fn presets_match_paper_variants() {
        let p = GoCastConfig::proximity_overlay();
        assert!(!p.tree_enabled);
        assert_eq!((p.c_rand, p.c_near), (1, 5));
        p.validate().unwrap();

        let r = GoCastConfig::random_overlay();
        assert!(!r.tree_enabled);
        assert_eq!((r.c_rand, r.c_near), (6, 0));
        r.validate().unwrap();
    }

    #[test]
    fn validation_catches_bad_configs() {
        let c = GoCastConfig::default().with_degrees(0, 0);
        assert_eq!(c.validate(), Err(ConfigError::ZeroDegree));

        let c = GoCastConfig {
            gossip_period: Duration::ZERO,
            ..Default::default()
        };
        assert_eq!(c.validate(), Err(ConfigError::ZeroPeriod));

        let c = GoCastConfig {
            member_view_capacity: 0,
            ..Default::default()
        };
        assert_eq!(c.validate(), Err(ConfigError::ZeroViewCapacity));

        let c = GoCastConfig {
            heartbeat_timeout_factor: 0,
            ..Default::default()
        };
        assert_eq!(c.validate(), Err(ConfigError::ZeroHeartbeatFactor));
    }

    #[test]
    fn error_messages_are_lowercase_prose() {
        assert_eq!(
            ConfigError::ZeroDegree.to_string(),
            "target node degree is zero"
        );
    }

    #[test]
    fn builder_validates_and_builds() {
        let cfg = GoCastConfig::builder()
            .gossip_period(Duration::from_millis(50))
            .maintenance_period(Duration::from_millis(200))
            .degrees(2, 4)
            .payload_size(64)
            .root(NodeId::new(3))
            .build()
            .unwrap();
        assert_eq!(cfg.gossip_period, Duration::from_millis(50));
        assert_eq!(cfg.maintenance_period, Duration::from_millis(200));
        assert_eq!((cfg.c_rand, cfg.c_near), (2, 4));
        assert_eq!(cfg.payload_size, 64);
        assert_eq!(cfg.root, NodeId::new(3));

        assert_eq!(
            GoCastConfig::builder().degrees(0, 0).build(),
            Err(ConfigError::ZeroDegree)
        );
        assert_eq!(
            GoCastConfig::builder()
                .maintenance_period(Duration::ZERO)
                .build(),
            Err(ConfigError::ZeroPeriod)
        );
        assert_eq!(
            GoCastConfig::builder().member_view_capacity(0).build(),
            Err(ConfigError::ZeroViewCapacity)
        );
        assert_eq!(
            GoCastConfig::builder().heartbeat_timeout_factor(0).build(),
            Err(ConfigError::ZeroHeartbeatFactor)
        );
    }

    #[test]
    fn builder_defaults_match_default_config() {
        assert_eq!(
            GoCastConfig::builder().build().unwrap(),
            GoCastConfig::default()
        );
    }

    #[test]
    fn builder_setters_chain() {
        let c = GoCastConfig::default()
            .with_degrees(2, 4)
            .with_payload_size(9)
            .with_root(NodeId::new(5))
            .with_pull_delay(Duration::from_millis(1));
        assert_eq!(c.c_rand, 2);
        assert_eq!(c.c_near, 4);
        assert_eq!(c.payload_size, 9);
        assert_eq!(c.root, NodeId::new(5));
        assert_eq!(c.pull_delay, Duration::from_millis(1));
    }
}
