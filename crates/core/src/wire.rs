//! Wire messages exchanged between GoCast nodes.
//!
//! The simulator never serializes these; [`Wire::wire_size`] returns the
//! size the message would have on the wire so traffic accounting matches a
//! real deployment (IDs are 8 bytes, addresses 4, a small header per
//! packet).

use gocast_net::LandmarkVector;
use gocast_sim::{NodeId, TrafficClass, Wire};
use serde::{Deserialize, Serialize};

use crate::types::{DegreeInfo, DropReason, LinkKind, MsgId};

/// Per-packet overhead charged to every message (transport + protocol
/// header).
pub const HEADER_BYTES: u32 = 28;

/// What a [`GoCastMsg::Ping`] is measuring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProbeKind {
    /// Measuring the RTT to landmark `index` (latency estimation).
    Landmark(u16),
    /// Measuring a nearby-neighbor candidate from the member list.
    Candidate,
    /// Measuring an established overlay link (tree weights need it).
    LinkMeasure,
}

/// A gossip entry: a message ID plus its age (microseconds since the
/// origin injected it), used by the delayed-pull optimization.
pub type GossipEntry = (MsgId, u64);

/// A piggybacked membership entry: a node address plus its landmark
/// coordinates when known.
pub type MemberEntry = (NodeId, LandmarkVector);

/// Every message a GoCast node can send.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum GoCastMsg {
    /// A full multicast payload, pushed along a tree link or answering a
    /// pull request.
    Data {
        /// Message identity.
        id: MsgId,
        /// Age at send time (µs since injection at the origin).
        age_us: u64,
        /// Causal hop count: how many overlay hops this copy is from the
        /// origin (the origin sends `hop = 1`). Carried on the wire so
        /// receivers can emit hop-annotated delivery events and traces can
        /// reconstruct dissemination trees.
        hop: u32,
        /// Payload size in bytes.
        size: u32,
    },
    /// A periodic message summary to one overlay neighbor.
    Gossip {
        /// IDs (with ages) received since the last gossip to this neighbor,
        /// excluding IDs heard *from* this neighbor.
        ids: Vec<GossipEntry>,
        /// Piggybacked random member addresses (partial membership).
        members: Vec<MemberEntry>,
        /// Sender's landmark coordinates.
        coords: LandmarkVector,
        /// Sender's current degrees.
        degrees: DegreeInfo,
    },
    /// Request for messages the sender learned about via gossip but has not
    /// received.
    PullRequest {
        /// The missing message IDs.
        ids: Vec<MsgId>,
    },
    /// A joining node asks a contact for its member list.
    JoinRequest,
    /// The contact's member list.
    JoinReply {
        /// Member addresses with coordinates when known.
        members: Vec<MemberEntry>,
    },
    /// RTT probe.
    Ping {
        /// What is being measured.
        kind: ProbeKind,
        /// Sender clock at transmission (echoed back; the sender computes
        /// RTT as `now - sent_at_us` without keeping per-ping state).
        sent_at_us: u64,
    },
    /// RTT probe response, carrying the responder's state needed by the
    /// overlay maintenance conditions C2/C3.
    Pong {
        /// Echoed probe kind.
        kind: ProbeKind,
        /// Echoed transmission timestamp.
        sent_at_us: u64,
        /// Responder's degrees (condition C2).
        degrees: DegreeInfo,
        /// Responder's worst nearby-link RTT in µs (condition C3);
        /// `u64::MAX` when unknown.
        max_nearby_rtt_us: u64,
        /// Responder's landmark coordinates.
        coords: LandmarkVector,
    },
    /// Ask to become an overlay neighbor.
    LinkRequest {
        /// Random or nearby.
        kind: LinkKind,
        /// Measured RTT between requester and target, when the requester
        /// probed first (nearby links); lets the acceptor run condition C3.
        rtt_us: Option<u64>,
        /// Requester's degrees.
        degrees: DegreeInfo,
    },
    /// Accept a link request.
    LinkAccept {
        /// Echoed link kind.
        kind: LinkKind,
        /// Acceptor's degrees.
        degrees: DegreeInfo,
    },
    /// Decline a link request.
    LinkReject {
        /// Echoed link kind.
        kind: LinkKind,
    },
    /// Unilaterally drop an established link.
    LinkDrop {
        /// The link kind being dropped.
        kind: LinkKind,
        /// Why.
        reason: DropReason,
    },
    /// Random-degree rebalancing (operation 1): the sender is dropping its
    /// links to the receiver and to `target`, and asks the receiver to
    /// connect to `target` so both keep their random degree.
    ConnectTo {
        /// The node the receiver should establish a random link to.
        target: NodeId,
    },
    /// Tree advertisement: the root's periodic heartbeat flood, re-emitted
    /// by every node with its own distance-to-root. Doubles as the
    /// distance-vector route update of the DVMRP-style tree protocol.
    TreeAd {
        /// Current root.
        root: NodeId,
        /// Root epoch (bumped on failover).
        epoch: u32,
        /// Heartbeat sequence number within the epoch.
        seq: u32,
        /// Sender's latency distance from the root, in µs.
        dist_us: u64,
    },
    /// Tell a neighbor it is (or no longer is) this node's tree parent.
    ParentSelect {
        /// `true` = you are now my parent; `false` = you no longer are.
        selected: bool,
    },
}

impl Wire for GoCastMsg {
    /// Exact on-the-wire size: the fixed transport header, the body as the
    /// binary codec in [`crate::encode`] produces it, and — for `Data` —
    /// the payload bytes themselves.
    ///
    /// Computed via [`crate::codec::encoded_len`], which is arithmetic and
    /// allocation-free: this method runs once per simulated send, so it
    /// must never build the actual encode buffer. Property tests pin
    /// `wire_size() == HEADER_BYTES + encode(self).len() + payload`.
    fn wire_size(&self) -> u32 {
        let payload = match self {
            GoCastMsg::Data { size, .. } => *size,
            _ => 0,
        };
        HEADER_BYTES + crate::codec::encoded_len(self) as u32 + payload
    }

    fn class(&self) -> TrafficClass {
        match self {
            GoCastMsg::Data { .. } => TrafficClass::Data,
            GoCastMsg::Gossip { .. } => TrafficClass::Gossip,
            GoCastMsg::PullRequest { .. } => TrafficClass::Request,
            GoCastMsg::JoinRequest | GoCastMsg::JoinReply { .. } => TrafficClass::Membership,
            GoCastMsg::Ping { .. } | GoCastMsg::Pong { .. } => TrafficClass::Probe,
            GoCastMsg::LinkRequest { .. }
            | GoCastMsg::LinkAccept { .. }
            | GoCastMsg::LinkReject { .. }
            | GoCastMsg::LinkDrop { .. }
            | GoCastMsg::ConnectTo { .. } => TrafficClass::Control,
            GoCastMsg::TreeAd { .. } | GoCastMsg::ParentSelect { .. } => TrafficClass::Tree,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_size_includes_payload() {
        let m = GoCastMsg::Data {
            id: MsgId::new(NodeId::new(0), 1),
            age_us: 0,
            hop: 1,
            size: 1024,
        };
        assert_eq!(m.wire_size(), HEADER_BYTES + 25 + 1024);
        assert_eq!(m.class(), TrafficClass::Data);
    }

    #[test]
    fn gossip_size_scales_with_ids() {
        let base = GoCastMsg::Gossip {
            ids: vec![],
            members: vec![],
            coords: LandmarkVector::unknown(),
            degrees: DegreeInfo::default(),
        };
        let two = GoCastMsg::Gossip {
            ids: vec![
                (MsgId::new(NodeId::new(0), 1), 5),
                (MsgId::new(NodeId::new(0), 2), 5),
            ],
            members: vec![],
            coords: LandmarkVector::unknown(),
            degrees: DegreeInfo::default(),
        };
        assert_eq!(two.wire_size() - base.wire_size(), 32);
        assert_eq!(base.class(), TrafficClass::Gossip);
    }

    #[test]
    fn gossips_are_small_relative_to_data() {
        // The paper's efficiency argument requires summaries to be much
        // smaller than payloads.
        let gossip = GoCastMsg::Gossip {
            ids: (0..10)
                .map(|s| (MsgId::new(NodeId::new(1), s), 0))
                .collect(),
            members: vec![(NodeId::new(2), LandmarkVector::unknown())],
            coords: LandmarkVector::unknown(),
            degrees: DegreeInfo::default(),
        };
        let data = GoCastMsg::Data {
            id: MsgId::new(NodeId::new(1), 0),
            age_us: 0,
            hop: 1,
            size: 1024,
        };
        assert!(gossip.wire_size() * 4 < data.wire_size());
    }

    #[test]
    fn wire_size_matches_codec_exactly() {
        use gocast_sim::Wire as _;
        let msgs = [
            GoCastMsg::Data {
                id: MsgId::new(NodeId::new(0), 1),
                age_us: 9,
                hop: 3,
                size: 512,
            },
            GoCastMsg::Gossip {
                ids: vec![(MsgId::new(NodeId::new(0), 1), 5)],
                members: vec![(NodeId::new(2), LandmarkVector::unknown())],
                coords: LandmarkVector::from_rtts([std::time::Duration::from_millis(4)]),
                degrees: DegreeInfo::default(),
            },
            GoCastMsg::JoinRequest,
            GoCastMsg::LinkRequest {
                kind: LinkKind::Nearby,
                rtt_us: Some(1),
                degrees: DegreeInfo::default(),
            },
            GoCastMsg::TreeAd {
                root: NodeId::new(0),
                epoch: 1,
                seq: 2,
                dist_us: 3,
            },
        ];
        for m in msgs {
            let payload = match &m {
                GoCastMsg::Data { size, .. } => *size,
                _ => 0,
            };
            assert_eq!(
                m.wire_size(),
                HEADER_BYTES + crate::codec::encode(&m).len() as u32 + payload,
                "size mismatch for {m:?}"
            );
        }
    }

    #[test]
    fn every_variant_has_a_class() {
        let msgs = [
            GoCastMsg::JoinRequest,
            GoCastMsg::Ping {
                kind: ProbeKind::Candidate,
                sent_at_us: 0,
            },
            GoCastMsg::LinkReject {
                kind: LinkKind::Random,
            },
            GoCastMsg::ConnectTo {
                target: NodeId::new(1),
            },
            GoCastMsg::TreeAd {
                root: NodeId::new(0),
                epoch: 0,
                seq: 0,
                dist_us: 0,
            },
            GoCastMsg::ParentSelect { selected: true },
        ];
        for m in msgs {
            assert!(m.wire_size() >= HEADER_BYTES);
            let _ = m.class();
        }
    }
}
