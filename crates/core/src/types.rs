//! Shared protocol types: message identifiers, link kinds, degree
//! advertisements, and the metric events GoCast emits to the recorder.

use std::fmt;
use std::time::Duration;

use gocast_sim::NodeId;
use serde::{Deserialize, Serialize};

/// Globally unique multicast message identifier.
///
/// The paper concatenates the origin's IP address with a locally assigned,
/// monotonically increasing sequence number; this is the same thing with a
/// [`NodeId`] in place of the address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MsgId {
    /// The node that injected the message.
    pub origin: NodeId,
    /// Origin-local sequence number.
    pub seq: u32,
}

impl MsgId {
    /// Creates a message id.
    pub const fn new(origin: NodeId, seq: u32) -> Self {
        MsgId { origin, seq }
    }
}

impl fmt::Display for MsgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.origin, self.seq)
    }
}

/// Classification of an overlay link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkKind {
    /// A link to a uniformly random node (connectivity insurance).
    Random,
    /// A link chosen for low latency (efficiency).
    Nearby,
}

impl fmt::Display for LinkKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkKind::Random => write!(f, "random"),
            LinkKind::Nearby => write!(f, "nearby"),
        }
    }
}

/// A node's current degrees *and targets*, piggybacked on most protocol
/// messages so neighbors can run the degree-balancing rules without extra
/// round trips.
///
/// Targets are advertised because nodes may scale their targets to their
/// capacity (the extension §2.2 mentions: "Tuning node degree according to
/// node capacity can be accommodated in our protocol"): conditions that
/// reason about *another* node's degree (C1, C2, operation 2) must compare
/// against that node's own targets, not ours.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DegreeInfo {
    /// Number of random neighbors (`D_rand`).
    pub d_rand: u16,
    /// Number of nearby neighbors (`D_near`).
    pub d_near: u16,
    /// This node's target random degree (`C_rand`, possibly capacity
    /// scaled).
    pub t_rand: u16,
    /// This node's target nearby degree (`C_near`, possibly capacity
    /// scaled).
    pub t_near: u16,
}

impl DegreeInfo {
    /// Total degree.
    pub fn total(self) -> u16 {
        self.d_rand + self.d_near
    }

    /// Whether the node is at or above its own random-degree target.
    pub fn rand_saturated(self) -> bool {
        self.d_rand >= self.t_rand
    }

    /// Whether the node is at or above its own nearby-degree target.
    pub fn near_saturated(self) -> bool {
        self.d_near >= self.t_near
    }
}

/// How a multicast message reached a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeliveryPath {
    /// Pushed along a tree link.
    Tree,
    /// Pulled after its ID was learned from a neighbor's gossip.
    Pull,
    /// The node injected the message itself.
    Local,
}

/// Why an overlay link was removed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DropReason {
    /// Replaced by a lower-latency candidate (nearby maintenance).
    Replaced,
    /// Excess degree (random or nearby drop rules).
    Surplus,
    /// Random-degree rebalancing (operation 1: handed to a neighbor pair).
    Rebalanced,
    /// The peer asked to drop.
    PeerRequest,
    /// The peer went silent past the neighbor timeout.
    PeerFailed,
}

/// Metric events emitted to the simulation recorder.
///
/// These are the raw material for every figure: the analysis crate folds
/// them into delay CDFs, redundancy counts, and link-churn series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum GoCastEvent {
    /// This node injected a new multicast message.
    Injected {
        /// The new message's id.
        id: MsgId,
    },
    /// First reception of a multicast message.
    Delivered {
        /// The message.
        id: MsgId,
        /// How it arrived.
        via: DeliveryPath,
    },
    /// A full payload arrived for a message already received (the 2%
    /// overhead discussed in §2.1).
    RedundantData {
        /// The message.
        id: MsgId,
    },
    /// An overlay link to `peer` was established.
    LinkAdded {
        /// The new neighbor.
        peer: NodeId,
        /// Random or nearby.
        kind: LinkKind,
    },
    /// An overlay link to `peer` was removed.
    LinkDropped {
        /// The former neighbor.
        peer: NodeId,
        /// Random or nearby.
        kind: LinkKind,
        /// Why it was removed.
        reason: DropReason,
    },
    /// The node adopted a new tree parent (`None` = it is the root or is
    /// detached).
    ParentChanged {
        /// The new parent.
        parent: Option<NodeId>,
    },
    /// The node began acting as tree root (startup or failover).
    BecameRoot {
        /// Root epoch (increases on failover).
        epoch: u32,
    },
    /// A pull request was sent for a message learned via gossip.
    PullRequested {
        /// The missing message.
        id: MsgId,
    },
}

/// Computes the age of a message at reception: the age stamped on the wire
/// plus the (estimated) one-way latency of the hop it just crossed.
///
/// The paper's protocol estimates elapsed time "by piggybacking and adding
/// up the propagation delays and waiting times as the message travels away
/// from the source"; half the measured link RTT is that estimate.
pub fn age_on_arrival(wire_age: Duration, link_rtt: Option<Duration>) -> Duration {
    wire_age + link_rtt.unwrap_or(Duration::from_millis(100)) / 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msg_id_orders_by_origin_then_seq() {
        let a = MsgId::new(NodeId::new(1), 5);
        let b = MsgId::new(NodeId::new(2), 0);
        let c = MsgId::new(NodeId::new(1), 6);
        assert!(a < b);
        assert!(a < c);
        assert!(c < b);
    }

    #[test]
    fn msg_id_displays_origin_and_seq() {
        assert_eq!(MsgId::new(NodeId::new(3), 9).to_string(), "n3#9");
    }

    #[test]
    fn degree_info_totals() {
        let d = DegreeInfo {
            d_rand: 1,
            d_near: 5,
            t_rand: 1,
            t_near: 5,
        };
        assert_eq!(d.total(), 6);
        assert!(d.rand_saturated());
        assert!(d.near_saturated());
        assert!(!DegreeInfo {
            d_rand: 0,
            d_near: 4,
            t_rand: 1,
            t_near: 5
        }
        .near_saturated());
        assert_eq!(DegreeInfo::default().total(), 0);
    }

    #[test]
    fn age_on_arrival_uses_half_rtt() {
        let age = age_on_arrival(Duration::from_millis(10), Some(Duration::from_millis(40)));
        assert_eq!(age, Duration::from_millis(30));
    }

    #[test]
    fn age_on_arrival_has_fallback() {
        let age = age_on_arrival(Duration::from_millis(10), None);
        assert_eq!(age, Duration::from_millis(60));
    }

    #[test]
    fn link_kind_displays() {
        assert_eq!(LinkKind::Random.to_string(), "random");
        assert_eq!(LinkKind::Nearby.to_string(), "nearby");
    }
}
