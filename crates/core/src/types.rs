//! Shared protocol types: message identifiers, link kinds, degree
//! advertisements, and the metric events GoCast emits to the recorder.

use std::fmt;
use std::time::Duration;

use gocast_sim::NodeId;
use serde::{Deserialize, Serialize};

/// Globally unique multicast message identifier.
///
/// The paper concatenates the origin's IP address with a locally assigned,
/// monotonically increasing sequence number; this is the same thing with a
/// [`NodeId`] in place of the address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MsgId {
    /// The node that injected the message.
    pub origin: NodeId,
    /// Origin-local sequence number.
    pub seq: u32,
}

impl MsgId {
    /// Creates a message id.
    pub const fn new(origin: NodeId, seq: u32) -> Self {
        MsgId { origin, seq }
    }
}

impl fmt::Display for MsgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.origin, self.seq)
    }
}

/// Classification of an overlay link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkKind {
    /// A link to a uniformly random node (connectivity insurance).
    Random,
    /// A link chosen for low latency (efficiency).
    Nearby,
}

impl LinkKind {
    /// Stable snake_case name, used by the JSONL trace schema.
    pub const fn as_str(self) -> &'static str {
        match self {
            LinkKind::Random => "random",
            LinkKind::Nearby => "nearby",
        }
    }

    /// Parses the name produced by [`LinkKind::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "random" => Some(LinkKind::Random),
            "nearby" => Some(LinkKind::Nearby),
            _ => None,
        }
    }
}

impl fmt::Display for LinkKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A node's current degrees *and targets*, piggybacked on most protocol
/// messages so neighbors can run the degree-balancing rules without extra
/// round trips.
///
/// Targets are advertised because nodes may scale their targets to their
/// capacity (the extension §2.2 mentions: "Tuning node degree according to
/// node capacity can be accommodated in our protocol"): conditions that
/// reason about *another* node's degree (C1, C2, operation 2) must compare
/// against that node's own targets, not ours.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DegreeInfo {
    /// Number of random neighbors (`D_rand`).
    pub d_rand: u16,
    /// Number of nearby neighbors (`D_near`).
    pub d_near: u16,
    /// This node's target random degree (`C_rand`, possibly capacity
    /// scaled).
    pub t_rand: u16,
    /// This node's target nearby degree (`C_near`, possibly capacity
    /// scaled).
    pub t_near: u16,
}

impl DegreeInfo {
    /// Total degree.
    pub fn total(self) -> u16 {
        self.d_rand + self.d_near
    }

    /// Whether the node is at or above its own random-degree target.
    pub fn rand_saturated(self) -> bool {
        self.d_rand >= self.t_rand
    }

    /// Whether the node is at or above its own nearby-degree target.
    pub fn near_saturated(self) -> bool {
        self.d_near >= self.t_near
    }
}

/// How a multicast message reached a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeliveryPath {
    /// Pushed along a tree link.
    Tree,
    /// Pulled after its ID was learned from a neighbor's gossip.
    Pull,
    /// The node injected the message itself.
    Local,
}

impl DeliveryPath {
    /// Stable snake_case name, used by the JSONL trace schema.
    pub const fn as_str(self) -> &'static str {
        match self {
            DeliveryPath::Tree => "tree",
            DeliveryPath::Pull => "pull",
            DeliveryPath::Local => "local",
        }
    }

    /// Parses the name produced by [`DeliveryPath::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "tree" => Some(DeliveryPath::Tree),
            "pull" => Some(DeliveryPath::Pull),
            "local" => Some(DeliveryPath::Local),
            _ => None,
        }
    }
}

/// Why an overlay link was removed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DropReason {
    /// Replaced by a lower-latency candidate (nearby maintenance).
    Replaced,
    /// Excess degree (random or nearby drop rules).
    Surplus,
    /// Random-degree rebalancing (operation 1: handed to a neighbor pair).
    Rebalanced,
    /// The peer asked to drop.
    PeerRequest,
    /// The peer went silent past the neighbor timeout.
    PeerFailed,
}

impl DropReason {
    /// Every variant, in [`DropReason::index`] order.
    ///
    /// Exhaustiveness is enforced by `index`/`as_str`: adding a variant
    /// without extending this table is a compile error there.
    pub const ALL: [DropReason; 5] = [
        DropReason::Replaced,
        DropReason::Surplus,
        DropReason::Rebalanced,
        DropReason::PeerRequest,
        DropReason::PeerFailed,
    ];

    /// Dense index into per-reason counter arrays (`0..ALL.len()`).
    pub const fn index(self) -> usize {
        match self {
            DropReason::Replaced => 0,
            DropReason::Surplus => 1,
            DropReason::Rebalanced => 2,
            DropReason::PeerRequest => 3,
            DropReason::PeerFailed => 4,
        }
    }

    /// Stable snake_case name, used by the JSONL trace schema.
    pub const fn as_str(self) -> &'static str {
        match self {
            DropReason::Replaced => "replaced",
            DropReason::Surplus => "surplus",
            DropReason::Rebalanced => "rebalanced",
            DropReason::PeerRequest => "peer_request",
            DropReason::PeerFailed => "peer_failed",
        }
    }

    /// Parses the name produced by [`DropReason::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        DropReason::ALL.into_iter().find(|r| r.as_str() == s)
    }
}

impl fmt::Display for DropReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Per-node protocol activity counters, maintained inline by the node and
/// exposed through [`crate::GoCastNode::counters`] and the overlay
/// [`crate::Snapshot`].
///
/// These are the node-wise message-complexity numbers the paper's
/// evaluation reasons about (tree pushes vs. gossip vs. pull recovery),
/// kept O(1) per node regardless of run length.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ProtocolCounters {
    /// DATA messages pushed along tree links (one per link per message).
    pub pushes_sent: u64,
    /// DATA messages received over a tree link from the sender's view of
    /// the tree (first copies and redundant copies alike).
    pub pushes_received: u64,
    /// Gossip rounds in which this node actually sent an IHAVE message.
    pub gossip_rounds: u64,
    /// IHAVE message-id entries sent across all gossip rounds.
    pub ihave_entries_sent: u64,
    /// Gossip (IHAVE) messages received.
    pub gossips_received: u64,
    /// Pull requests this node issued (initial requests and retries).
    pub pulls_issued: u64,
    /// Pull requests this node served with full payloads.
    pub pulls_served: u64,
    /// Pull retries after a pull timeout (subset of `pulls_issued`).
    pub retransmits: u64,
    /// Messages first delivered via a tree push.
    pub delivered_tree: u64,
    /// Messages first delivered via gossip-triggered pull recovery.
    pub delivered_pull: u64,
    /// Redundant full payloads received (message already held).
    pub redundant: u64,
    /// Overlay links dropped, indexed by [`DropReason::index`].
    pub drops: [u64; DropReason::ALL.len()],
}

impl ProtocolCounters {
    /// Records one dropped link under its reason.
    pub fn count_drop(&mut self, reason: DropReason) {
        self.drops[reason.index()] += 1;
    }

    /// Links dropped for `reason`.
    pub fn drops_for(&self, reason: DropReason) -> u64 {
        self.drops[reason.index()]
    }

    /// Links dropped for any reason.
    pub fn drops_total(&self) -> u64 {
        self.drops.iter().sum()
    }

    /// Messages first delivered via any path.
    pub fn delivered_total(&self) -> u64 {
        self.delivered_tree + self.delivered_pull
    }

    /// Adds every counter from `other` into `self` (for cluster-wide
    /// aggregation over a snapshot).
    pub fn merge(&mut self, other: &ProtocolCounters) {
        self.pushes_sent += other.pushes_sent;
        self.pushes_received += other.pushes_received;
        self.gossip_rounds += other.gossip_rounds;
        self.ihave_entries_sent += other.ihave_entries_sent;
        self.gossips_received += other.gossips_received;
        self.pulls_issued += other.pulls_issued;
        self.pulls_served += other.pulls_served;
        self.retransmits += other.retransmits;
        self.delivered_tree += other.delivered_tree;
        self.delivered_pull += other.delivered_pull;
        self.redundant += other.redundant;
        for (d, o) in self.drops.iter_mut().zip(other.drops.iter()) {
            *d += o;
        }
    }
}

impl fmt::Display for ProtocolCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "push {}/{} (sent/recv)  gossip {} rounds ({} ids sent, {} recv)  \
             pull {}/{} (issued/served, {} retries)  delivered {}+{} (tree+pull)  \
             redundant {}  drops {}",
            self.pushes_sent,
            self.pushes_received,
            self.gossip_rounds,
            self.ihave_entries_sent,
            self.gossips_received,
            self.pulls_issued,
            self.pulls_served,
            self.retransmits,
            self.delivered_tree,
            self.delivered_pull,
            self.redundant,
            self.drops_total(),
        )?;
        let mut any = false;
        for r in DropReason::ALL {
            if self.drops_for(r) > 0 {
                write!(
                    f,
                    "{}{}={}",
                    if any { " " } else { " (" },
                    r.as_str(),
                    self.drops_for(r)
                )?;
                any = true;
            }
        }
        if any {
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// Metric events emitted to the simulation recorder.
///
/// These are the raw material for every figure: the analysis crate folds
/// them into delay CDFs, redundancy counts, and link-churn series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum GoCastEvent {
    /// This node injected a new multicast message.
    Injected {
        /// The new message's id.
        id: MsgId,
    },
    /// First reception of a multicast message.
    Delivered {
        /// The message.
        id: MsgId,
        /// How it arrived.
        via: DeliveryPath,
        /// The neighbor the payload came from (the causal parent in the
        /// dissemination tree; the origin itself for a one-hop delivery).
        from: NodeId,
        /// Causal hop count from the origin (1 = direct from origin).
        hop: u32,
    },
    /// A full payload arrived for a message already received (the 2%
    /// overhead discussed in §2.1).
    RedundantData {
        /// The message.
        id: MsgId,
        /// The neighbor the duplicate came from.
        from: NodeId,
    },
    /// A full payload was pushed to a tree neighbor.
    PushSent {
        /// The message.
        id: MsgId,
        /// The tree neighbor it was pushed to.
        to: NodeId,
        /// Hop count stamped on the outgoing copy.
        hop: u32,
    },
    /// A message id was advertised to a neighbor in a gossip (IHAVE)
    /// message — one event per id entry.
    IHaveSent {
        /// The advertised message.
        id: MsgId,
        /// The gossip target.
        to: NodeId,
    },
    /// A pull request was answered with the full payload.
    PullServed {
        /// The message.
        id: MsgId,
        /// The requesting neighbor.
        to: NodeId,
        /// Hop count stamped on the outgoing copy.
        hop: u32,
    },
    /// An overlay link to `peer` was established.
    LinkAdded {
        /// The new neighbor.
        peer: NodeId,
        /// Random or nearby.
        kind: LinkKind,
    },
    /// An overlay link to `peer` was removed.
    LinkDropped {
        /// The former neighbor.
        peer: NodeId,
        /// Random or nearby.
        kind: LinkKind,
        /// Why it was removed.
        reason: DropReason,
    },
    /// The node adopted a new tree parent (`None` = it is the root or is
    /// detached).
    ParentChanged {
        /// The new parent.
        parent: Option<NodeId>,
    },
    /// The node began acting as tree root (startup or failover).
    BecameRoot {
        /// Root epoch (increases on failover).
        epoch: u32,
    },
    /// A pull request was sent for a message learned via gossip.
    PullRequested {
        /// The missing message.
        id: MsgId,
        /// The neighbor the pull was sent to.
        to: NodeId,
    },
}

impl GoCastEvent {
    /// Folds this event into live [`ProtocolMetrics`](gocast_metrics::ProtocolMetrics) counters.
    ///
    /// `GoCastEvent` is the common event currency of every stack (GoCast,
    /// Plumtree, the gossip baselines), which makes this fold
    /// capability-neutral: a stack without a capability simply never emits
    /// the corresponding event, leaving its counter at zero. Overlay and
    /// tree maintenance events (`LinkAdded`, `ParentChanged`, ...) are
    /// structural rather than per-message and are not counted.
    pub fn observe_into(&self, m: &mut gocast_metrics::ProtocolMetrics) {
        match self {
            GoCastEvent::Injected { .. } => m.injected.inc(),
            GoCastEvent::Delivered { .. } => m.deliveries.inc(),
            GoCastEvent::PushSent { .. } => m.pushes.inc(),
            GoCastEvent::IHaveSent { .. } => m.ihaves.inc(),
            GoCastEvent::PullRequested { .. } => m.pull_requests.inc(),
            GoCastEvent::PullServed { .. } => m.pulls_served.inc(),
            GoCastEvent::RedundantData { .. } => m.redundant_drops.inc(),
            GoCastEvent::LinkAdded { .. }
            | GoCastEvent::LinkDropped { .. }
            | GoCastEvent::ParentChanged { .. }
            | GoCastEvent::BecameRoot { .. } => {}
        }
    }
}

impl gocast_sim::TraceEvent for GoCastEvent {
    /// The JSONL trace schema: one flat object per event with stable
    /// snake_case keys. `ev` names the kind; message ids are split into
    /// `origin`/`seq`; enum values use the `as_str` names.
    fn trace_fields(&self, out: &mut String) {
        use std::fmt::Write as _;

        fn msg(out: &mut String, ev: &str, id: MsgId) {
            let _ = write!(
                out,
                "\"ev\":\"{ev}\",\"origin\":{},\"seq\":{}",
                id.origin.as_u32(),
                id.seq
            );
        }

        match self {
            GoCastEvent::Injected { id } => msg(out, "injected", *id),
            GoCastEvent::Delivered { id, via, from, hop } => {
                msg(out, "delivered", *id);
                let _ = write!(
                    out,
                    ",\"from\":{},\"hop\":{},\"via\":\"{}\"",
                    from.as_u32(),
                    hop,
                    via.as_str()
                );
            }
            GoCastEvent::RedundantData { id, from } => {
                msg(out, "redundant_data", *id);
                let _ = write!(out, ",\"from\":{}", from.as_u32());
            }
            GoCastEvent::PushSent { id, to, hop } => {
                msg(out, "push_sent", *id);
                let _ = write!(out, ",\"to\":{},\"hop\":{}", to.as_u32(), hop);
            }
            GoCastEvent::IHaveSent { id, to } => {
                msg(out, "ihave_sent", *id);
                let _ = write!(out, ",\"to\":{}", to.as_u32());
            }
            GoCastEvent::PullRequested { id, to } => {
                msg(out, "pull_requested", *id);
                let _ = write!(out, ",\"to\":{}", to.as_u32());
            }
            GoCastEvent::PullServed { id, to, hop } => {
                msg(out, "pull_served", *id);
                let _ = write!(out, ",\"to\":{},\"hop\":{}", to.as_u32(), hop);
            }
            GoCastEvent::LinkAdded { peer, kind } => {
                let _ = write!(
                    out,
                    "\"ev\":\"link_added\",\"peer\":{},\"kind\":\"{}\"",
                    peer.as_u32(),
                    kind.as_str()
                );
            }
            GoCastEvent::LinkDropped { peer, kind, reason } => {
                let _ = write!(
                    out,
                    "\"ev\":\"link_dropped\",\"peer\":{},\"kind\":\"{}\",\"reason\":\"{}\"",
                    peer.as_u32(),
                    kind.as_str(),
                    reason.as_str()
                );
            }
            GoCastEvent::ParentChanged { parent } => match parent {
                Some(p) => {
                    let _ = write!(out, "\"ev\":\"parent_changed\",\"parent\":{}", p.as_u32());
                }
                None => out.push_str("\"ev\":\"parent_changed\",\"parent\":null"),
            },
            GoCastEvent::BecameRoot { epoch } => {
                let _ = write!(out, "\"ev\":\"became_root\",\"epoch\":{epoch}");
            }
        }
    }
}

/// Computes the age of a message at reception: the age stamped on the wire
/// plus the (estimated) one-way latency of the hop it just crossed.
///
/// The paper's protocol estimates elapsed time "by piggybacking and adding
/// up the propagation delays and waiting times as the message travels away
/// from the source"; half the measured link RTT is that estimate.
pub fn age_on_arrival(wire_age: Duration, link_rtt: Option<Duration>) -> Duration {
    wire_age + link_rtt.unwrap_or(Duration::from_millis(100)) / 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msg_id_orders_by_origin_then_seq() {
        let a = MsgId::new(NodeId::new(1), 5);
        let b = MsgId::new(NodeId::new(2), 0);
        let c = MsgId::new(NodeId::new(1), 6);
        assert!(a < b);
        assert!(a < c);
        assert!(c < b);
    }

    #[test]
    fn msg_id_displays_origin_and_seq() {
        assert_eq!(MsgId::new(NodeId::new(3), 9).to_string(), "n3#9");
    }

    #[test]
    fn degree_info_totals() {
        let d = DegreeInfo {
            d_rand: 1,
            d_near: 5,
            t_rand: 1,
            t_near: 5,
        };
        assert_eq!(d.total(), 6);
        assert!(d.rand_saturated());
        assert!(d.near_saturated());
        assert!(!DegreeInfo {
            d_rand: 0,
            d_near: 4,
            t_rand: 1,
            t_near: 5
        }
        .near_saturated());
        assert_eq!(DegreeInfo::default().total(), 0);
    }

    #[test]
    fn age_on_arrival_uses_half_rtt() {
        let age = age_on_arrival(Duration::from_millis(10), Some(Duration::from_millis(40)));
        assert_eq!(age, Duration::from_millis(30));
    }

    #[test]
    fn age_on_arrival_has_fallback() {
        let age = age_on_arrival(Duration::from_millis(10), None);
        assert_eq!(age, Duration::from_millis(60));
    }

    #[test]
    fn link_kind_displays() {
        assert_eq!(LinkKind::Random.to_string(), "random");
        assert_eq!(LinkKind::Nearby.to_string(), "nearby");
    }

    #[test]
    fn drop_reason_names_round_trip() {
        for (i, r) in DropReason::ALL.into_iter().enumerate() {
            assert_eq!(r.index(), i, "ALL must be in index order");
            assert_eq!(DropReason::parse(r.as_str()), Some(r));
            assert!(
                r.as_str()
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c == '_'),
                "{} is not snake_case",
                r.as_str()
            );
        }
        assert_eq!(DropReason::parse("no_such_reason"), None);
    }

    #[test]
    fn delivery_path_names_round_trip() {
        for p in [DeliveryPath::Tree, DeliveryPath::Pull, DeliveryPath::Local] {
            assert_eq!(DeliveryPath::parse(p.as_str()), Some(p));
        }
        assert_eq!(DeliveryPath::parse("teleport"), None);
    }

    #[test]
    fn counters_cover_every_drop_reason() {
        let mut c = ProtocolCounters::default();
        for r in DropReason::ALL {
            c.count_drop(r);
            c.count_drop(r);
        }
        for r in DropReason::ALL {
            assert_eq!(c.drops_for(r), 2);
        }
        assert_eq!(c.drops_total(), 2 * DropReason::ALL.len() as u64);
    }

    #[test]
    fn trace_fields_use_stable_snake_case_schema() {
        use gocast_sim::TraceEvent as _;
        let cases: Vec<(GoCastEvent, &str)> = vec![
            (
                GoCastEvent::Injected {
                    id: MsgId::new(NodeId::new(3), 9),
                },
                "\"ev\":\"injected\",\"origin\":3,\"seq\":9",
            ),
            (
                GoCastEvent::Delivered {
                    id: MsgId::new(NodeId::new(3), 9),
                    via: DeliveryPath::Tree,
                    from: NodeId::new(5),
                    hop: 2,
                },
                "\"ev\":\"delivered\",\"origin\":3,\"seq\":9,\"from\":5,\"hop\":2,\"via\":\"tree\"",
            ),
            (
                GoCastEvent::PushSent {
                    id: MsgId::new(NodeId::new(0), 1),
                    to: NodeId::new(4),
                    hop: 1,
                },
                "\"ev\":\"push_sent\",\"origin\":0,\"seq\":1,\"to\":4,\"hop\":1",
            ),
            (
                GoCastEvent::PullRequested {
                    id: MsgId::new(NodeId::new(0), 1),
                    to: NodeId::new(8),
                },
                "\"ev\":\"pull_requested\",\"origin\":0,\"seq\":1,\"to\":8",
            ),
            (
                GoCastEvent::LinkDropped {
                    peer: NodeId::new(2),
                    kind: LinkKind::Nearby,
                    reason: DropReason::PeerFailed,
                },
                "\"ev\":\"link_dropped\",\"peer\":2,\"kind\":\"nearby\",\"reason\":\"peer_failed\"",
            ),
            (
                GoCastEvent::ParentChanged { parent: None },
                "\"ev\":\"parent_changed\",\"parent\":null",
            ),
        ];
        for (ev, expect) in cases {
            let mut out = String::new();
            ev.trace_fields(&mut out);
            assert_eq!(out, expect, "schema drift for {ev:?}");
        }
    }

    #[test]
    fn counters_merge_adds_fieldwise() {
        let mut a = ProtocolCounters {
            pushes_sent: 1,
            delivered_tree: 2,
            ..Default::default()
        };
        let mut b = ProtocolCounters {
            pushes_sent: 10,
            delivered_pull: 5,
            ..Default::default()
        };
        b.count_drop(DropReason::Surplus);
        a.merge(&b);
        assert_eq!(a.pushes_sent, 11);
        assert_eq!(a.delivered_total(), 7);
        assert_eq!(a.drops_for(DropReason::Surplus), 1);
    }
}
