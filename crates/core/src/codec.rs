//! Binary wire codec for [`GoCastMsg`].
//!
//! The simulator never serializes messages, but a production deployment
//! of the same state machines would; this module defines the wire format
//! and guarantees that [`gocast_sim::Wire::wire_size`] is *exact*: the
//! traffic statistics every experiment reports are the sizes this codec
//! produces (plus the fixed per-packet header), enforced by round-trip
//! property tests.
//!
//! Format: one tag byte, then fixed-width little-endian fields;
//! variable-length sequences are prefixed with a `u32` count. No varints —
//! sizes stay computable without encoding.

use gocast_net::LandmarkVector;
use gocast_sim::NodeId;

use crate::types::{DegreeInfo, DropReason, LinkKind, MsgId};
use crate::wire::{GoCastMsg, ProbeKind};

/// A malformed buffer was handed to [`decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended before the message did.
    Truncated,
    /// An unknown tag or enum discriminant.
    BadTag(u8),
    /// Trailing bytes after a complete message.
    TrailingBytes(usize),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "buffer ended before the message did"),
            DecodeError::BadTag(t) => write!(f, "unknown tag or discriminant {t}"),
            DecodeError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
        }
    }
}

impl std::error::Error for DecodeError {}

struct Writer<'a>(&'a mut Vec<u8>);

impl Writer<'_> {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn node(&mut self, n: NodeId) {
        self.u32(n.as_u32());
    }
    fn msg_id(&mut self, id: MsgId) {
        self.node(id.origin);
        self.u32(id.seq);
    }
    fn degrees(&mut self, d: DegreeInfo) {
        for v in [d.d_rand, d.d_near, d.t_rand, d.t_near] {
            self.0.extend_from_slice(&v.to_le_bytes());
        }
    }
    fn coords(&mut self, c: &LandmarkVector) {
        // Stored as RTT microseconds per landmark; reconstructed via set().
        self.u32(c.len() as u32);
        for i in 0..c.len() {
            self.u32(c.rtt_us_at(i));
        }
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.pos + n > self.buf.len() {
            return Err(DecodeError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn node(&mut self) -> Result<NodeId, DecodeError> {
        Ok(NodeId::new(self.u32()?))
    }
    fn msg_id(&mut self) -> Result<MsgId, DecodeError> {
        Ok(MsgId::new(self.node()?, self.u32()?))
    }
    fn degrees(&mut self) -> Result<DegreeInfo, DecodeError> {
        Ok(DegreeInfo {
            d_rand: self.u16()?,
            d_near: self.u16()?,
            t_rand: self.u16()?,
            t_near: self.u16()?,
        })
    }
    fn coords(&mut self) -> Result<LandmarkVector, DecodeError> {
        let n = self.u32()? as usize;
        if n > gocast_net::MAX_LANDMARKS {
            return Err(DecodeError::BadTag(255)); // implausible landmark count
        }
        let mut v = LandmarkVector::unknown();
        for i in 0..n {
            v.set(i, std::time::Duration::from_micros(self.u32()? as u64));
        }
        Ok(v)
    }
}

fn link_kind_tag(k: LinkKind) -> u8 {
    match k {
        LinkKind::Random => 0,
        LinkKind::Nearby => 1,
    }
}

fn link_kind_from(t: u8) -> Result<LinkKind, DecodeError> {
    match t {
        0 => Ok(LinkKind::Random),
        1 => Ok(LinkKind::Nearby),
        other => Err(DecodeError::BadTag(other)),
    }
}

fn drop_reason_tag(r: DropReason) -> u8 {
    // `DropReason::index` is exhaustive by construction, so every variant
    // (present and future) gets a stable tag automatically.
    r.index() as u8
}

fn drop_reason_from(t: u8) -> Result<DropReason, DecodeError> {
    DropReason::ALL
        .get(t as usize)
        .copied()
        .ok_or(DecodeError::BadTag(t))
}

fn probe_kind(w: &mut Writer<'_>, k: ProbeKind) {
    match k {
        ProbeKind::Landmark(i) => {
            w.u8(0);
            w.0.extend_from_slice(&i.to_le_bytes());
        }
        ProbeKind::Candidate => {
            w.u8(1);
            w.0.extend_from_slice(&0u16.to_le_bytes());
        }
        ProbeKind::LinkMeasure => {
            w.u8(2);
            w.0.extend_from_slice(&0u16.to_le_bytes());
        }
    }
}

fn probe_kind_from(r: &mut Reader<'_>) -> Result<ProbeKind, DecodeError> {
    let tag = r.u8()?;
    let arg = r.u16()?;
    Ok(match tag {
        0 => ProbeKind::Landmark(arg),
        1 => ProbeKind::Candidate,
        2 => ProbeKind::LinkMeasure,
        other => return Err(DecodeError::BadTag(other)),
    })
}

/// Encodes a message body (header not included — the transport adds it).
///
/// The returned buffer's length always equals
/// `msg.wire_size() - HEADER_BYTES + 1` (the `+ 1` is the tag byte, which
/// the accounting folds into the header).
pub fn encode(msg: &GoCastMsg) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    encode_into(msg, &mut out);
    out
}

/// [`encode`] into a caller-owned buffer, appending to its current
/// contents. Deployment hosts reuse one scratch buffer across sends so
/// the steady-state encode path performs no heap allocation once the
/// buffer has grown to the largest message seen (`encoded_len` bounds it
/// exactly).
pub fn encode_into(msg: &GoCastMsg, out: &mut Vec<u8>) {
    let mut w = Writer(out);
    match msg {
        GoCastMsg::Data {
            id,
            age_us,
            hop,
            size,
        } => {
            w.u8(0);
            w.msg_id(*id);
            w.u64(*age_us);
            w.u32(*hop);
            // The payload itself is application data; encode its length.
            w.u32(*size);
        }
        GoCastMsg::Gossip {
            ids,
            members,
            coords,
            degrees,
        } => {
            w.u8(1);
            w.u32(ids.len() as u32);
            for (id, age) in ids {
                w.msg_id(*id);
                w.u64(*age);
            }
            w.u32(members.len() as u32);
            for (m, c) in members {
                w.node(*m);
                w.coords(c);
            }
            w.coords(coords);
            w.degrees(*degrees);
        }
        GoCastMsg::PullRequest { ids } => {
            w.u8(2);
            w.u32(ids.len() as u32);
            for id in ids {
                w.msg_id(*id);
            }
        }
        GoCastMsg::JoinRequest => w.u8(3),
        GoCastMsg::JoinReply { members } => {
            w.u8(4);
            w.u32(members.len() as u32);
            for (m, c) in members {
                w.node(*m);
                w.coords(c);
            }
        }
        GoCastMsg::Ping { kind, sent_at_us } => {
            w.u8(5);
            probe_kind(&mut w, *kind);
            w.u64(*sent_at_us);
        }
        GoCastMsg::Pong {
            kind,
            sent_at_us,
            degrees,
            max_nearby_rtt_us,
            coords,
        } => {
            w.u8(6);
            probe_kind(&mut w, *kind);
            w.u64(*sent_at_us);
            w.degrees(*degrees);
            w.u64(*max_nearby_rtt_us);
            w.coords(coords);
        }
        GoCastMsg::LinkRequest {
            kind,
            rtt_us,
            degrees,
        } => {
            w.u8(7);
            w.u8(link_kind_tag(*kind));
            match rtt_us {
                Some(v) => {
                    w.u8(1);
                    w.u64(*v);
                }
                None => {
                    w.u8(0);
                    w.u64(0);
                }
            }
            w.degrees(*degrees);
        }
        GoCastMsg::LinkAccept { kind, degrees } => {
            w.u8(8);
            w.u8(link_kind_tag(*kind));
            w.degrees(*degrees);
        }
        GoCastMsg::LinkReject { kind } => {
            w.u8(9);
            w.u8(link_kind_tag(*kind));
        }
        GoCastMsg::LinkDrop { kind, reason } => {
            w.u8(10);
            w.u8(link_kind_tag(*kind));
            w.u8(drop_reason_tag(*reason));
        }
        GoCastMsg::ConnectTo { target } => {
            w.u8(11);
            w.node(*target);
        }
        GoCastMsg::TreeAd {
            root,
            epoch,
            seq,
            dist_us,
        } => {
            w.u8(12);
            w.node(*root);
            w.u32(*epoch);
            w.u32(*seq);
            w.u64(*dist_us);
        }
        GoCastMsg::ParentSelect { selected } => {
            w.u8(13);
            w.u8(u8::from(*selected));
        }
    }
}

/// Encoded size of a landmark vector: count word + one `u32` per slot.
#[inline]
fn coords_len(c: &LandmarkVector) -> usize {
    4 + 4 * c.len()
}

/// Exact length of [`encode`]`(msg)` computed arithmetically, without
/// building the buffer.
///
/// This is the hot-path companion to [`encode`]: traffic accounting needs
/// the wire size of every message sent, and calling `encode(msg).len()`
/// there would heap-allocate a `Vec<u8>` per send. The format uses no
/// varints precisely so this stays a closed-form sum; the
/// `encoded_len_matches_encode_for_every_variant` property test pins the
/// two functions together.
pub fn encoded_len(msg: &GoCastMsg) -> usize {
    // Field sizes: tag 1, NodeId 4, MsgId 8, u64 8, u32 4, DegreeInfo 8
    // (four u16s), ProbeKind 3 (tag + u16 argument).
    match msg {
        GoCastMsg::Data { .. } => 25,
        GoCastMsg::Gossip {
            ids,
            members,
            coords,
            ..
        } => {
            1 + 4
                + 16 * ids.len()
                + 4
                + members
                    .iter()
                    .map(|(_, c)| 4 + coords_len(c))
                    .sum::<usize>()
                + coords_len(coords)
                + 8
        }
        GoCastMsg::PullRequest { ids } => 1 + 4 + 8 * ids.len(),
        GoCastMsg::JoinRequest => 1,
        GoCastMsg::JoinReply { members } => {
            1 + 4
                + members
                    .iter()
                    .map(|(_, c)| 4 + coords_len(c))
                    .sum::<usize>()
        }
        GoCastMsg::Ping { .. } => 12,
        GoCastMsg::Pong { coords, .. } => 28 + coords_len(coords),
        GoCastMsg::LinkRequest { .. } => 19,
        GoCastMsg::LinkAccept { .. } => 10,
        GoCastMsg::LinkReject { .. } => 2,
        GoCastMsg::LinkDrop { .. } => 3,
        GoCastMsg::ConnectTo { .. } => 5,
        GoCastMsg::TreeAd { .. } => 21,
        GoCastMsg::ParentSelect { .. } => 2,
    }
}

/// Decodes a message body produced by [`encode`].
///
/// # Errors
///
/// Returns [`DecodeError`] on truncation, unknown tags, or trailing bytes.
pub fn decode(buf: &[u8]) -> Result<GoCastMsg, DecodeError> {
    let mut r = Reader { buf, pos: 0 };
    let msg = match r.u8()? {
        0 => GoCastMsg::Data {
            id: r.msg_id()?,
            age_us: r.u64()?,
            hop: r.u32()?,
            size: r.u32()?,
        },
        1 => {
            let n = r.u32()? as usize;
            let mut ids = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                ids.push((r.msg_id()?, r.u64()?));
            }
            let m = r.u32()? as usize;
            let mut members = Vec::with_capacity(m.min(4096));
            for _ in 0..m {
                members.push((r.node()?, r.coords()?));
            }
            GoCastMsg::Gossip {
                ids,
                members,
                coords: r.coords()?,
                degrees: r.degrees()?,
            }
        }
        2 => {
            let n = r.u32()? as usize;
            let mut ids = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                ids.push(r.msg_id()?);
            }
            GoCastMsg::PullRequest { ids }
        }
        3 => GoCastMsg::JoinRequest,
        4 => {
            let m = r.u32()? as usize;
            let mut members = Vec::with_capacity(m.min(4096));
            for _ in 0..m {
                members.push((r.node()?, r.coords()?));
            }
            GoCastMsg::JoinReply { members }
        }
        5 => GoCastMsg::Ping {
            kind: probe_kind_from(&mut r)?,
            sent_at_us: r.u64()?,
        },
        6 => GoCastMsg::Pong {
            kind: probe_kind_from(&mut r)?,
            sent_at_us: r.u64()?,
            degrees: r.degrees()?,
            max_nearby_rtt_us: r.u64()?,
            coords: r.coords()?,
        },
        7 => {
            let kind = link_kind_from(r.u8()?)?;
            let has = r.u8()? == 1;
            let v = r.u64()?;
            GoCastMsg::LinkRequest {
                kind,
                rtt_us: has.then_some(v),
                degrees: r.degrees()?,
            }
        }
        8 => GoCastMsg::LinkAccept {
            kind: link_kind_from(r.u8()?)?,
            degrees: r.degrees()?,
        },
        9 => GoCastMsg::LinkReject {
            kind: link_kind_from(r.u8()?)?,
        },
        10 => GoCastMsg::LinkDrop {
            kind: link_kind_from(r.u8()?)?,
            reason: drop_reason_from(r.u8()?)?,
        },
        11 => GoCastMsg::ConnectTo { target: r.node()? },
        12 => GoCastMsg::TreeAd {
            root: r.node()?,
            epoch: r.u32()?,
            seq: r.u32()?,
            dist_us: r.u64()?,
        },
        13 => GoCastMsg::ParentSelect {
            selected: r.u8()? == 1,
        },
        other => return Err(DecodeError::BadTag(other)),
    };
    if r.pos != buf.len() {
        return Err(DecodeError::TrailingBytes(buf.len() - r.pos));
    }
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<GoCastMsg> {
        let coords = LandmarkVector::from_rtts([
            std::time::Duration::from_millis(10),
            std::time::Duration::from_millis(50),
        ]);
        let deg = DegreeInfo {
            d_rand: 1,
            d_near: 5,
            t_rand: 1,
            t_near: 5,
        };
        vec![
            GoCastMsg::Data {
                id: MsgId::new(NodeId::new(3), 7),
                age_us: 123_456,
                hop: 4,
                size: 1024,
            },
            GoCastMsg::Gossip {
                ids: vec![
                    (MsgId::new(NodeId::new(1), 2), 10),
                    (MsgId::new(NodeId::new(4), 0), 0),
                ],
                members: vec![
                    (NodeId::new(9), coords),
                    (NodeId::new(2), LandmarkVector::unknown()),
                ],
                coords,
                degrees: deg,
            },
            GoCastMsg::PullRequest {
                ids: vec![MsgId::new(NodeId::new(1), 2)],
            },
            GoCastMsg::JoinRequest,
            GoCastMsg::JoinReply {
                members: vec![(NodeId::new(5), coords)],
            },
            GoCastMsg::Ping {
                kind: ProbeKind::Landmark(3),
                sent_at_us: 42,
            },
            GoCastMsg::Pong {
                kind: ProbeKind::Candidate,
                sent_at_us: 42,
                degrees: deg,
                max_nearby_rtt_us: u64::MAX,
                coords,
            },
            GoCastMsg::LinkRequest {
                kind: LinkKind::Nearby,
                rtt_us: Some(5000),
                degrees: deg,
            },
            GoCastMsg::LinkRequest {
                kind: LinkKind::Random,
                rtt_us: None,
                degrees: deg,
            },
            GoCastMsg::LinkAccept {
                kind: LinkKind::Nearby,
                degrees: deg,
            },
            GoCastMsg::LinkReject {
                kind: LinkKind::Random,
            },
            GoCastMsg::LinkDrop {
                kind: LinkKind::Nearby,
                reason: DropReason::Replaced,
            },
            GoCastMsg::ConnectTo {
                target: NodeId::new(17),
            },
            GoCastMsg::TreeAd {
                root: NodeId::new(0),
                epoch: 2,
                seq: 99,
                dist_us: 12_345,
            },
            GoCastMsg::ParentSelect { selected: true },
            GoCastMsg::ParentSelect { selected: false },
        ]
    }

    fn arb_coords(rng: &mut proptest::TestRng) -> LandmarkVector {
        use rand::Rng;
        let n = rng.gen_range(0..5usize);
        LandmarkVector::from_rtts(
            (0..n).map(|_| std::time::Duration::from_micros(rng.gen_range(0..1_000_000u64))),
        )
    }

    /// A random instance of variant `variant` (0..14, one per message kind).
    fn arb_msg(variant: u8, rng: &mut proptest::TestRng) -> GoCastMsg {
        use rand::{Rng, RngCore};
        fn id(rng: &mut proptest::TestRng) -> MsgId {
            MsgId::new(
                NodeId::new(rng.gen_range(0..1000u32)),
                rng.next_u64() as u32,
            )
        }
        fn deg(rng: &mut proptest::TestRng) -> DegreeInfo {
            DegreeInfo {
                d_rand: rng.next_u64() as u16,
                d_near: rng.next_u64() as u16,
                t_rand: rng.next_u64() as u16,
                t_near: rng.next_u64() as u16,
            }
        }
        fn kind(rng: &mut proptest::TestRng) -> LinkKind {
            if rng.gen_bool(0.5) {
                LinkKind::Random
            } else {
                LinkKind::Nearby
            }
        }
        fn probe(rng: &mut proptest::TestRng) -> ProbeKind {
            match rng.gen_range(0..3u8) {
                0 => ProbeKind::Landmark(rng.next_u64() as u16),
                1 => ProbeKind::Candidate,
                _ => ProbeKind::LinkMeasure,
            }
        }
        match variant {
            0 => GoCastMsg::Data {
                id: id(rng),
                age_us: rng.next_u64(),
                hop: rng.next_u64() as u32,
                size: rng.gen_range(0..65536u32),
            },
            1 => GoCastMsg::Gossip {
                ids: (0..rng.gen_range(0..8usize))
                    .map(|_| (id(rng), rng.next_u64()))
                    .collect(),
                members: (0..rng.gen_range(0..8usize))
                    .map(|_| (NodeId::new(rng.gen_range(0..1000u32)), arb_coords(rng)))
                    .collect(),
                coords: arb_coords(rng),
                degrees: deg(rng),
            },
            2 => GoCastMsg::PullRequest {
                ids: (0..rng.gen_range(0..8usize)).map(|_| id(rng)).collect(),
            },
            3 => GoCastMsg::JoinRequest,
            4 => GoCastMsg::JoinReply {
                members: (0..rng.gen_range(0..8usize))
                    .map(|_| (NodeId::new(rng.gen_range(0..1000u32)), arb_coords(rng)))
                    .collect(),
            },
            5 => GoCastMsg::Ping {
                kind: probe(rng),
                sent_at_us: rng.next_u64(),
            },
            6 => GoCastMsg::Pong {
                kind: probe(rng),
                sent_at_us: rng.next_u64(),
                degrees: deg(rng),
                max_nearby_rtt_us: rng.next_u64(),
                coords: arb_coords(rng),
            },
            7 => GoCastMsg::LinkRequest {
                kind: kind(rng),
                rtt_us: if rng.gen_bool(0.5) {
                    Some(rng.next_u64())
                } else {
                    None
                },
                degrees: deg(rng),
            },
            8 => GoCastMsg::LinkAccept {
                kind: kind(rng),
                degrees: deg(rng),
            },
            9 => GoCastMsg::LinkReject { kind: kind(rng) },
            10 => GoCastMsg::LinkDrop {
                kind: kind(rng),
                reason: DropReason::ALL[rng.gen_range(0..DropReason::ALL.len())],
            },
            11 => GoCastMsg::ConnectTo {
                target: NodeId::new(rng.gen_range(0..1000u32)),
            },
            12 => GoCastMsg::TreeAd {
                root: NodeId::new(rng.gen_range(0..1000u32)),
                epoch: rng.next_u64() as u32,
                seq: rng.next_u64() as u32,
                dist_us: rng.next_u64(),
            },
            _ => GoCastMsg::ParentSelect {
                selected: rng.gen_bool(0.5),
            },
        }
    }

    #[test]
    fn encoded_len_matches_encode_for_every_variant() {
        use proptest::prelude::*;
        proptest::run_cases("encoded_len_matches_encode_for_every_variant", |rng| {
            for variant in 0..14u8 {
                let msg = arb_msg(variant, rng);
                let buf = encode(&msg);
                prop_assert_eq!(
                    encoded_len(&msg),
                    buf.len(),
                    "encoded_len disagrees with encode for {:?}",
                    msg
                );
            }
            Ok(())
        });
    }

    #[test]
    fn every_variant_round_trips() {
        for msg in samples() {
            let bytes = encode(&msg);
            let back = decode(&bytes).unwrap_or_else(|e| panic!("{msg:?}: {e}"));
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn truncation_is_detected() {
        for msg in samples() {
            let bytes = encode(&msg);
            for cut in 0..bytes.len() {
                let r = decode(&bytes[..cut]);
                assert!(
                    r.is_err(),
                    "{msg:?} decoded from {cut}/{} bytes",
                    bytes.len()
                );
            }
        }
    }

    #[test]
    fn decode_survives_random_prefixes_and_mutations_of_every_variant() {
        // A datagram off a real socket can arrive truncated or corrupted;
        // `decode` must return an error (or a different valid message,
        // e.g. when the mutated byte was payload) and never panic. Each
        // case exercises every message variant with a random prefix cut
        // and a random single-byte mutation, plus pure-noise buffers.
        use proptest::prelude::*;
        use rand::{Rng, RngCore};
        proptest::run_cases(
            "decode_survives_random_prefixes_and_mutations_of_every_variant",
            |rng| {
                for variant in 0..14u8 {
                    let msg = arb_msg(variant, rng);
                    let bytes = encode(&msg);
                    let decoded = decode(&bytes);
                    prop_assert_eq!(decoded.as_ref(), Ok(&msg));

                    // Random prefix: always an error, never a panic.
                    let cut = rng.gen_range(0..bytes.len());
                    prop_assert!(
                        decode(&bytes[..cut]).is_err(),
                        "{:?} decoded from a {}/{} prefix",
                        &msg,
                        cut,
                        bytes.len()
                    );

                    // Random single-byte mutation: must not panic. It may
                    // decode (the flip hit payload bytes) or fail; both
                    // are fine, crashing is not.
                    let mut mutated = bytes.clone();
                    let at = rng.gen_range(0..mutated.len());
                    mutated[at] ^= (rng.next_u64() as u8) | 1; // guaranteed flip
                    let _ = decode(&mutated);

                    // Mutated then truncated — the combination a lossy
                    // wire actually produces.
                    let cut = rng.gen_range(0..=mutated.len());
                    let _ = decode(&mutated[..cut]);
                }
                // Pure noise of arbitrary length.
                let len = rng.gen_range(0..256usize);
                let mut noise = vec![0u8; len];
                rng.fill_bytes(&mut noise);
                let _ = decode(&noise);
                Ok(())
            },
        );
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode(&GoCastMsg::JoinRequest);
        bytes.push(0);
        assert_eq!(decode(&bytes), Err(DecodeError::TrailingBytes(1)));
    }

    #[test]
    fn unknown_tag_is_rejected() {
        assert_eq!(decode(&[200]), Err(DecodeError::BadTag(200)));
        assert!(matches!(decode(&[]), Err(DecodeError::Truncated)));
    }

    #[test]
    fn every_drop_reason_round_trips() {
        // Exhaustive: the binary tag and the snake_case trace name must
        // both survive a round trip for every variant.
        for reason in DropReason::ALL {
            let msg = GoCastMsg::LinkDrop {
                kind: LinkKind::Random,
                reason,
            };
            assert_eq!(decode(&encode(&msg)), Ok(msg));
            assert_eq!(DropReason::parse(reason.as_str()), Some(reason));
        }
    }

    #[test]
    fn errors_display_lowercase() {
        assert_eq!(
            DecodeError::Truncated.to_string(),
            "buffer ended before the message did"
        );
    }
}
